"""A set with deterministic (insertion) iteration order.

Python sets iterate in hash order, which varies between runs for
stringy keys.  The analysis and the restructuring both iterate over sets
of nodes/queries, and we want bit-identical output across runs, so every
set that is ever iterated is an :class:`OrderedSet`.
"""

from __future__ import annotations

from typing import Dict, Generic, Hashable, Iterable, Iterator, Optional, TypeVar

T = TypeVar("T", bound=Hashable)


class OrderedSet(Generic[T]):
    """Insertion-ordered set backed by a dict (dicts preserve order)."""

    __slots__ = ("_items",)

    def __init__(self, items: Optional[Iterable[T]] = None) -> None:
        self._items: Dict[T, None] = {}
        if items is not None:
            for item in items:
                self._items[item] = None

    def add(self, item: T) -> bool:
        """Insert ``item``; return True if it was not already present."""
        if item in self._items:
            return False
        self._items[item] = None
        return True

    def discard(self, item: T) -> None:
        self._items.pop(item, None)

    def remove(self, item: T) -> None:
        del self._items[item]

    def update(self, items: Iterable[T]) -> None:
        for item in items:
            self._items[item] = None

    def pop_first(self) -> T:
        """Remove and return the oldest element (FIFO discipline)."""
        item = next(iter(self._items))
        del self._items[item]
        return item

    def copy(self) -> "OrderedSet[T]":
        fresh: OrderedSet[T] = OrderedSet()
        fresh._items = dict(self._items)
        return fresh

    def __contains__(self, item: object) -> bool:
        return item in self._items

    def __iter__(self) -> Iterator[T]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, OrderedSet):
            return set(self._items) == set(other._items)
        if isinstance(other, (set, frozenset)):
            return set(self._items) == other
        return NotImplemented

    def __repr__(self) -> str:
        return f"OrderedSet({list(self._items)!r})"
