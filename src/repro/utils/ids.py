"""Monotonic integer id allocation.

Node ids must be unique for the lifetime of an ICFG even across node
splitting and deletion, so each graph owns one allocator and never reuses
an id.  Determinism matters: analysis worklists and restructuring order
iterate structures keyed by id, and tests compare dumps textually.
"""

from __future__ import annotations


class IdAllocator:
    """Hands out consecutive integers starting at ``start``."""

    def __init__(self, start: int = 0) -> None:
        self._next = start

    def allocate(self) -> int:
        """Return a fresh id, never returned before by this allocator."""
        value = self._next
        self._next += 1
        return value

    def reserve_through(self, used: int) -> None:
        """Make sure no future id collides with ``used`` or anything below."""
        if used >= self._next:
            self._next = used + 1

    @property
    def next_id(self) -> int:
        """The id the next :meth:`allocate` call would return."""
        return self._next

    def clone(self) -> "IdAllocator":
        """An independent allocator continuing from the same point."""
        return IdAllocator(self._next)
