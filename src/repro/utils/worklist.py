"""FIFO worklist with duplicate suppression.

Both the correlation analysis (paper Fig. 4) and the restructuring
(paper Fig. 8) are worklist algorithms.  This worklist deduplicates
pending items: re-adding an item that is already queued is a no-op, but
an item may be re-queued after it has been removed (restructuring needs
that; the analysis adds each pair at most once via its own ``Q[n]`` set).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generic, Hashable, Iterable, Optional, Set, TypeVar

T = TypeVar("T", bound=Hashable)


class Worklist(Generic[T]):
    """FIFO queue; items currently queued are never queued twice."""

    __slots__ = ("_queue", "_queued", "_total_pushed")

    def __init__(self, items: Optional[Iterable[T]] = None) -> None:
        self._queue: Deque[T] = deque()
        self._queued: Set[T] = set()
        self._total_pushed = 0
        if items is not None:
            for item in items:
                self.push(item)

    def push(self, item: T) -> bool:
        """Queue ``item`` unless it is already pending; report whether queued."""
        if item in self._queued:
            return False
        self._queue.append(item)
        self._queued.add(item)
        self._total_pushed += 1
        return True

    def pop(self) -> T:
        item = self._queue.popleft()
        self._queued.discard(item)
        return item

    @property
    def total_pushed(self) -> int:
        """How many distinct pushes succeeded over the worklist's lifetime."""
        return self._total_pushed

    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        return bool(self._queue)

    def __contains__(self, item: object) -> bool:
        return item in self._queued
