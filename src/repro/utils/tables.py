"""Plain-text table rendering for the experiment harness.

The paper reports its evaluation as tables and figure series; the
harness prints them in a monospace layout so ``EXPERIMENTS.md`` and the
benchmark logs stay readable without plotting dependencies.
"""

from __future__ import annotations

from typing import List, Sequence, Union

Cell = Union[str, int, float, None]


def _format_cell(cell: Cell) -> str:
    if cell is None:
        return "-"
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def render_table(headers: Sequence[str], rows: Sequence[Sequence[Cell]],
                 title: str = "") -> str:
    """Render an aligned ASCII table.

    Numeric columns are right-aligned, text columns left-aligned; the
    alignment of a column follows its first body cell.
    """
    text_rows: List[List[str]] = [[_format_cell(c) for c in row] for row in rows]
    ncols = len(headers)
    for row in text_rows:
        if len(row) != ncols:
            raise ValueError(
                f"row has {len(row)} cells, expected {ncols}: {row!r}")

    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    right_align = []
    for i in range(ncols):
        sample: Cell = rows[0][i] if rows else ""
        right_align.append(isinstance(sample, (int, float)))

    def fmt_line(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            if right_align[i]:
                parts.append(cell.rjust(widths[i]))
            else:
                parts.append(cell.ljust(widths[i]))
        return "| " + " | ".join(parts) + " |"

    sep = "+" + "+".join("-" * (w + 2) for w in widths) + "+"
    lines = []
    if title:
        lines.append(title)
    lines.append(sep)
    lines.append(fmt_line(list(headers)))
    lines.append(sep)
    for row in text_rows:
        lines.append(fmt_line(row))
    lines.append(sep)
    return "\n".join(lines)


def render_markdown_table(headers: Sequence[str],
                          rows: Sequence[Sequence[Cell]]) -> str:
    """Render the same data as a GitHub-flavoured markdown table."""
    text_rows = [[_format_cell(c) for c in row] for row in rows]
    lines = ["| " + " | ".join(headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    for row in text_rows:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)
