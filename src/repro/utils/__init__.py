"""Small shared utilities: id allocation, worklists, table rendering."""

from repro.utils.ids import IdAllocator
from repro.utils.ordered import OrderedSet
from repro.utils.tables import render_table
from repro.utils.worklist import Worklist

__all__ = ["IdAllocator", "OrderedSet", "Worklist", "render_table"]
