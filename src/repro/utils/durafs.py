"""The durable-I/O layer: every byte this package persists goes here.

Before this module existed, each durable surface — the summary store,
the batch and serve journals, the serve result cache, the telemetry
sidecar, diagnostics bundles — hand-rolled its own tmp+fsync+rename,
swallowed write-side ``OSError`` in ad-hoc ways, and leaked orphaned
``*.tmp.<pid>`` files whenever a writer crashed between the write and
the rename.  None of those recovery paths could be tested, because the
in-optimizer :class:`~repro.robustness.faults.FaultPlan` only injects
at analysis/transform sites, not at I/O sites.

This module centralizes the discipline and makes it injectable:

- :func:`atomic_write_bytes` / :func:`atomic_write_json` /
  :func:`atomic_write_text` — write to ``<path>.tmp.<pid>``, fsync,
  atomically rename.  ``must=True`` surfaces failures as the original
  errno-carrying ``OSError`` (journal-grade: the caller needs a
  definite error); ``must=False`` is best-effort (cache-grade: the
  entry is simply not persisted) and returns ``False``.
- :class:`AppendFile` — the journal discipline: every append is
  write+flush+fsync before the caller may act on the record.
- :func:`safe_scan` — defensive directory listing (errors read as
  empty, sorted for determinism).
- :func:`sweep_orphans` — reclaim crashed writers' temp files.  The
  ``.tmp.<pid>`` suffix is *not* trusted as ownership (PIDs are
  recycled, so "is that pid alive?" can hold a fresh process hostage
  for a dead one's garbage); instead any temp file older than
  ``ttl_s`` is fair game — a live writer holds its temp file for
  milliseconds, never an hour.  ``*.evict`` markers (phase one of the
  store's two-phase delete) are reclaimed unconditionally: the rename
  already removed them from the readable namespace.

All of it routes through an injectable :class:`Filesystem` adapter.  A
deterministic :class:`FsFaultPlan` (same idiom as the seeded
:class:`~repro.robustness.faults.FaultPlan`: named sites, exact hit
counts, fires once) arms errno-carrying faults at named I/O sites —
``ENOSPC``/``EIO``/``EROFS`` on open/write/fsync/rename, a torn write
that persists only the first N bytes, a crash before the rename, an
fsync that lies — so tests can simulate a crash at *every* fault point
of every durable surface and prove the recovery invariants: journals
replay byte-identically, stores and caches read "miss, never wrong".

Observability counters (all deterministic given the fault plan):
``fsio.writes``, ``fsio.appends``, ``fsio.write_errors``,
``fsio.orphans_swept``.
"""

from __future__ import annotations

import errno as _errno
import json
import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs

#: Age (seconds) past which a ``*.tmp.<pid>`` file is presumed to be a
#: crashed writer's orphan.  Live writers hold their temp file for the
#: duration of one write+fsync — milliseconds — so an hour is safe by
#: five orders of magnitude.
ORPHAN_TTL_S = 3600.0

#: The gated operations a fault can arm on.
FS_OPS = ("open", "write", "fsync", "rename", "remove", "scan", "truncate")

#: The actions :class:`FsFaultSpec` understands.
FS_ACTIONS = ("errno", "torn", "crash", "lying-fsync")


class SimulatedCrash(BaseException):
    """An :class:`FsFaultPlan` ``crash``/``torn`` fault fired.

    Deliberately a ``BaseException`` (not :class:`OSError`, not
    :class:`~repro.errors.ReproError`): no recovery path may swallow
    it, exactly as no ``except`` clause survives a real SIGKILL.  Tests
    catch it at the point where a real crash would have ended the
    process, then assert on what the filesystem was left holding.
    """


@dataclass
class FsFaultSpec:
    """One armed I/O fault: fire on the ``hit``-th ``op`` at ``site``
    (``hit=0`` fires on *every* hit — a persistently failing device).

    Actions:

    - ``errno`` — raise ``OSError(err)`` instead of performing the op.
    - ``torn`` — (write only) persist the first ``keep_bytes`` bytes,
      then crash: the classic half-written record.
    - ``crash`` — crash *before* the op runs (armed on ``rename``,
      this is the crash-before-rename window that orphans temp files).
      Any data a lying fsync pretended to persist is dropped first.
    - ``lying-fsync`` — (fsync only) report success without syncing;
      a later ``crash`` fault rolls the file back to its last honestly
      synced length, modelling a volatile write cache losing power.
    """

    site: str
    op: str = "write"
    hit: int = 1
    action: str = "errno"
    err: int = _errno.ENOSPC
    keep_bytes: int = 0

    def __post_init__(self) -> None:
        if self.op not in FS_OPS:
            raise ValueError(f"unknown fs op {self.op!r}")
        if self.action not in FS_ACTIONS:
            raise ValueError(f"unknown fs fault action {self.action!r}")


@dataclass
class FiredFsFault:
    """Record of an I/O fault that actually fired."""

    site: str
    op: str
    hit: int
    action: str
    detail: str = ""


class FsFaultPlan:
    """A deterministic schedule of I/O faults, keyed by (site, op).

    Same contract as :class:`~repro.robustness.faults.FaultPlan`: every
    gated operation counts a hit for its (site, op) pair, and a spec
    armed for that pair fires on its exact hit count — reproducibly,
    with no randomness and no timing dependence.  ``fired`` records
    what happened, for assertions.
    """

    def __init__(self, specs: Sequence[FsFaultSpec] = ()) -> None:
        self.specs: List[FsFaultSpec] = list(specs)
        self.hits: Dict[Tuple[str, str], int] = {}
        self.fired: List[FiredFsFault] = []

    @classmethod
    def erroring(cls, site: str, op: str = "write", hit: int = 1,
                 err: int = _errno.ENOSPC) -> "FsFaultPlan":
        """A single errno-raising fault (default: disk full on write)."""
        return cls([FsFaultSpec(site, op, hit, "errno", err=err)])

    @classmethod
    def crashing(cls, site: str, op: str = "rename",
                 hit: int = 1) -> "FsFaultPlan":
        """A single crash fault (default: crash-before-rename)."""
        return cls([FsFaultSpec(site, op, hit, "crash")])

    @classmethod
    def tearing(cls, site: str, keep_bytes: int = 0,
                hit: int = 1) -> "FsFaultPlan":
        """A single torn-write-then-crash fault."""
        return cls([FsFaultSpec(site, "write", hit, "torn",
                                keep_bytes=keep_bytes)])

    @classmethod
    def lying(cls, site: str, hit: int = 1) -> "FsFaultPlan":
        """A single fsync-that-lies fault (pair with a later crash)."""
        return cls([FsFaultSpec(site, "fsync", hit, "lying-fsync")])

    def reset(self) -> "FsFaultPlan":
        """Forget hit counts and fired records so the plan can rerun."""
        self.hits.clear()
        self.fired.clear()
        return self

    def match(self, site: str, op: str) -> Optional[FsFaultSpec]:
        """Count a hit of (site, op); return the spec due to fire, if any."""
        key = (site, op)
        count = self.hits.get(key, 0) + 1
        self.hits[key] = count
        for spec in self.specs:
            if spec.site == site and spec.op == op \
                    and spec.hit in (0, count):
                return spec
        return None


class GatedFile:
    """A writable file whose write/fsync/truncate pass the fault gate.

    Tracks ``durable_pos`` — the byte length the file would have after
    a crash: advanced by honest fsyncs, left behind by lying ones.
    Always binary; callers encode.
    """

    def __init__(self, fs: "Filesystem", raw, path: str, site: str) -> None:
        self._fs = fs
        self._raw = raw
        self.path = path
        self.site = site
        self.durable_pos = raw.tell()

    def write(self, data: bytes) -> None:
        self._fs._write(self, data)

    def flush(self) -> None:
        self._raw.flush()

    def fsync(self) -> None:
        self._fs._fsync(self)

    def tell(self) -> int:
        return self._raw.tell()

    def fileno(self) -> int:
        return self._raw.fileno()

    def close(self) -> None:
        if not self._raw.closed:
            self._raw.close()

    @property
    def closed(self) -> bool:
        return self._raw.closed

    def __enter__(self) -> "GatedFile":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class Filesystem:
    """The injectable adapter every durable operation routes through.

    With no plan attached it is a thin veneer over ``os``; with an
    :class:`FsFaultPlan` it deterministically injects errno failures,
    torn writes, crashes, and lying fsyncs at named sites.  One
    instance may gate any number of surfaces — sites keep them apart.
    """

    def __init__(self, plan: Optional[FsFaultPlan] = None) -> None:
        self.plan = plan
        #: path -> durable watermark of files whose fsync lied (bytes
        #: past the watermark are lost when a crash fault fires).
        self._lying: Dict[str, int] = {}

    # -- the gate ----------------------------------------------------------

    def _gate(self, site: str, op: str, path: str) -> Optional[FsFaultSpec]:
        """Consult the plan; raise for errno/crash, hand back the spec
        for actions the calling op must carry out itself."""
        if self.plan is None:
            return None
        spec = self.plan.match(site, op)
        if spec is None:
            return None
        if spec.action == "errno":
            self.plan.fired.append(FiredFsFault(
                site, op, spec.hit, "errno",
                detail=os.strerror(spec.err)))
            raise OSError(spec.err, os.strerror(spec.err), path)
        if spec.action == "crash":
            self._lose_unsynced()
            self.plan.fired.append(FiredFsFault(
                site, op, spec.hit, "crash", detail=path))
            raise SimulatedCrash(
                f"simulated crash at {site}:{op} (hit {spec.hit})")
        return spec

    def _lose_unsynced(self) -> None:
        """A crash drops everything a lying fsync pretended to persist."""
        for path, watermark in sorted(self._lying.items()):
            try:
                with open(path, "r+b") as handle:
                    handle.truncate(watermark)
            except OSError:
                continue
        self._lying.clear()

    # -- gated operations --------------------------------------------------

    def open(self, path: str, mode: str, site: str) -> GatedFile:
        """Open ``path`` for writing (binary ``wb``/``ab``/``r+b``)."""
        self._gate(site, "open", path)
        return GatedFile(self, open(path, mode), path, site)

    def _write(self, handle: GatedFile, data: bytes) -> None:
        spec = self._gate(handle.site, "write", handle.path)
        if spec is not None and spec.action == "torn":
            kept = data[:max(0, spec.keep_bytes)]
            handle._raw.write(kept)
            handle._raw.flush()
            self._lose_unsynced()
            self.plan.fired.append(FiredFsFault(
                handle.site, "write", spec.hit, "torn",
                detail=f"kept {len(kept)}/{len(data)} bytes"))
            raise SimulatedCrash(
                f"simulated torn write at {handle.site} "
                f"(kept {len(kept)}/{len(data)} bytes)")
        handle._raw.write(data)

    def _fsync(self, handle: GatedFile) -> None:
        spec = self._gate(handle.site, "fsync", handle.path)
        if spec is not None and spec.action == "lying-fsync":
            # Report success; remember how much was *actually* durable
            # so a later crash fault can lose the difference.
            self._lying.setdefault(handle.path, handle.durable_pos)
            self.plan.fired.append(FiredFsFault(
                handle.site, "fsync", spec.hit, "lying-fsync",
                detail=f"durable up to byte {handle.durable_pos}"))
            return
        handle._raw.flush()
        os.fsync(handle._raw.fileno())
        handle.durable_pos = handle._raw.tell()
        self._lying.pop(handle.path, None)

    def replace(self, src: str, dst: str, site: str) -> None:
        self._gate(site, "rename", dst)
        os.replace(src, dst)

    def remove(self, path: str, site: str) -> None:
        self._gate(site, "remove", path)
        os.remove(path)

    def listdir(self, path: str, site: str) -> List[str]:
        self._gate(site, "scan", path)
        return os.listdir(path)

    def truncate_file(self, path: str, length: int, site: str) -> None:
        """Truncate + fsync (journal torn-tail repair)."""
        self._gate(site, "truncate", path)
        with open(path, "r+b") as handle:
            handle.truncate(length)
            handle.flush()
            os.fsync(handle.fileno())

    # -- ungated conveniences (read-only / idempotent) ---------------------

    @staticmethod
    def makedirs(path: str) -> None:
        if path:
            os.makedirs(path, exist_ok=True)

    @staticmethod
    def exists(path: str) -> bool:
        return os.path.exists(path)

    @staticmethod
    def stat(path: str) -> os.stat_result:
        return os.stat(path)


#: The process-wide default adapter (no faults).  Resolved lazily by
#: every helper, so tests can monkeypatch it to gate an entire
#: subsystem without threading an instance through constructors.
DEFAULT_FS = Filesystem()


def resolve_fs(fs: Optional[Filesystem]) -> Filesystem:
    """``fs`` if given, else the module default (looked up at call time)."""
    return fs if fs is not None else DEFAULT_FS


# ---------------------------------------------------------------------------
# Atomic whole-file writes.
# ---------------------------------------------------------------------------


def atomic_write_bytes(path: str, data: bytes, *, site: str,
                       fs: Optional[Filesystem] = None,
                       must: bool = False, do_fsync: bool = True) -> bool:
    """Write ``data`` to ``path`` atomically (tmp, fsync, rename).

    ``must=False``: best-effort — an ``OSError`` is counted
    (``fsio.write_errors``), the temp file is cleaned up, and ``False``
    is returned; the target is never half-written.  ``must=True``:
    the cleaned-up ``OSError`` re-raises so the caller can produce a
    definite, errno-carrying operator error.  A :class:`SimulatedCrash`
    always propagates and leaves the debris a real crash would — that
    is the point of it.
    """
    fs = resolve_fs(fs)
    fs.makedirs(os.path.dirname(path))
    tmp_path = f"{path}.tmp.{os.getpid()}"
    try:
        with fs.open(tmp_path, "wb", site) as handle:
            handle.write(data)
            handle.flush()
            if do_fsync:
                handle.fsync()
        fs.replace(tmp_path, path, site)
    except OSError:
        obs.add("fsio.write_errors")
        try:                       # raw cleanup: must not re-enter the gate
            os.remove(tmp_path)
        except OSError:
            pass
        if must:
            raise
        return False
    obs.add("fsio.writes")
    return True


def atomic_write_json(path: str, payload, *, site: str,
                      fs: Optional[Filesystem] = None,
                      must: bool = False, do_fsync: bool = True) -> bool:
    """Canonical-JSON :func:`atomic_write_bytes` (sorted keys, compact)."""
    data = json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")
    return atomic_write_bytes(path, data, site=site, fs=fs, must=must,
                              do_fsync=do_fsync)


def atomic_write_text(path: str, text: str, *, site: str,
                      fs: Optional[Filesystem] = None,
                      must: bool = False, do_fsync: bool = True) -> bool:
    """UTF-8 text :func:`atomic_write_bytes`."""
    return atomic_write_bytes(path, text.encode("utf-8"), site=site, fs=fs,
                              must=must, do_fsync=do_fsync)


# ---------------------------------------------------------------------------
# Append-with-fsync (the journal discipline).
# ---------------------------------------------------------------------------


class AppendFile:
    """An append-only handle where every append is made durable.

    ``append`` is write+flush+fsync; it either returns with the record
    durable or raises the original errno-carrying ``OSError`` (counted
    as ``fsio.write_errors``) with nothing to hide — journals need
    definite answers, not best effort.  ``do_fsync=False`` relaxes the
    discipline for advisory sidecars (telemetry) that flush but accept
    loss on power failure.
    """

    def __init__(self, path: str, *, site: str,
                 fs: Optional[Filesystem] = None,
                 fresh: bool = False, do_fsync: bool = True) -> None:
        self.path = path
        self.site = site
        self.do_fsync = do_fsync
        self.fs = resolve_fs(fs)
        self.fs.makedirs(os.path.dirname(path))
        self._handle = self.fs.open(path, "wb" if fresh else "ab", site)

    def append(self, text: str) -> None:
        """Durably append ``text`` (caller includes any newline)."""
        try:
            self._handle.write(text.encode("utf-8"))
            self._handle.flush()
            if self.do_fsync:
                self._handle.fsync()
        except OSError:
            obs.add("fsio.write_errors")
            raise
        obs.add("fsio.appends")

    @property
    def closed(self) -> bool:
        return self._handle.closed

    def close(self) -> None:
        self._handle.close()


# ---------------------------------------------------------------------------
# Defensive scans and orphan reclamation.
# ---------------------------------------------------------------------------


def safe_scan(directory: str, *, site: str,
              fs: Optional[Filesystem] = None,
              suffix: Optional[str] = None) -> List[str]:
    """Sorted directory listing; unreadable directories read as empty."""
    fs = resolve_fs(fs)
    try:
        names = fs.listdir(directory, site)
    except OSError:
        return []
    if suffix is not None:
        names = [name for name in names if name.endswith(suffix)]
    return sorted(names)


def sweep_orphans(directory: str, *, site: str,
                  fs: Optional[Filesystem] = None,
                  ttl_s: float = ORPHAN_TTL_S,
                  now: Optional[float] = None) -> int:
    """Reclaim crashed writers' debris from ``directory``.

    Removes ``*.tmp.<pid>`` files older than ``ttl_s`` (age-based on
    purpose: PID reuse makes the pid suffix unsafe as ownership — a
    recycled pid would pin a dead writer's garbage forever) and every
    ``*.evict`` marker regardless of age (phase one of a two-phase
    delete already unlinked the entry from its readable name).  Counted
    as ``fsio.orphans_swept``; returns the number removed.
    """
    fs = resolve_fs(fs)
    try:
        names = fs.listdir(directory, site)
    except OSError:
        return 0
    if now is None:
        now = time.time()
    swept = 0
    for name in sorted(names):
        is_tmp = ".tmp." in name
        is_evict = name.endswith(".evict")
        if not (is_tmp or is_evict):
            continue
        path = os.path.join(directory, name)
        try:
            if is_tmp and not is_evict \
                    and now - fs.stat(path).st_mtime < ttl_s:
                continue           # possibly a live writer: leave it
            fs.remove(path, site)
        except OSError:
            continue               # raced another sweeper, or unreadable
        swept += 1
    if swept:
        obs.add("fsio.orphans_swept", swept)
    return swept


def parse_size(text: str) -> int:
    """``'64m'``/``'1g'``/``'4096'`` -> bytes (k/m/g suffixes, base 1024)."""
    raw = str(text).strip().lower()
    factor = 1
    for suffix, mult in (("k", 1024), ("m", 1024 ** 2), ("g", 1024 ** 3)):
        if raw.endswith(suffix):
            raw, factor = raw[:-1], mult
            break
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(f"unparseable size {text!r} "
                         f"(expected bytes or k/m/g suffix)") from None
    if value < 0:
        raise ValueError(f"negative size {text!r}")
    return value * factor
