"""The ``icbe`` command line tool.

Subcommands::

    icbe run <file.mc> [--input N ...]        execute a MiniC program
    icbe dump <file.mc> [--dot]               print the ICFG
    icbe analyze <file.mc> [--intra]          correlation per conditional
    icbe optimize <file.mc> [options]         run ICBE and report
    icbe predict <file.mc> [--intra]          static prediction hints
    icbe inline <file.mc> [options]           exhaustive pre-pass inlining
    icbe batch <job>... [--jobs N] [--resume DIR]  crash-isolated batch runs
    icbe serve [--port N] [--workers K]       long-lived optimization daemon
    icbe experiment <name>                    run a paper experiment

Every subcommand accepts ``suite:<name>[@scale]`` benchmark references
wherever it accepts a ``.mc`` file, and the top-level ``--trace
FILE.jsonl`` / ``--profile`` flags run it under an observability
session: ``--trace`` writes the hierarchical span tree plus the metrics
snapshot as JSONL (convert with ``python -m repro.obs.export``),
``--profile`` prints a pstats-style per-span aggregate to stderr.  See
docs/OBSERVABILITY.md.

Frontend, semantic, and IO errors exit with code 2 and a one-line
diagnostic on stderr — never a traceback (``--traceback`` re-enables
the stack for debugging).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis import AnalysisConfig, analyze_branch
from repro.analysis.cost import duplication_upper_bound
from repro.interp import Workload, run_icfg
from repro.ir import dump_icfg, verify_icfg
from repro.ir.printer import to_dot
from repro.transform import ICBEOptimizer, OptimizerOptions


def _load(source: str):
    """Load a job source: a ``.mc`` path or ``suite:<name>[@scale]``."""
    from repro.robustness.worker import load_job_icfg
    icfg, _ = load_job_icfg(source)
    return icfg


def _config(args: argparse.Namespace) -> AnalysisConfig:
    return AnalysisConfig(interprocedural=not args.intra,
                          budget=args.budget)


def cmd_run(args: argparse.Namespace) -> int:
    """``icbe run``: execute a program over a workload.

    Suite references run their deterministic reference workload when no
    ``--input`` is given; ``.mc`` files default to an empty workload.
    """
    from repro.robustness.worker import load_job_icfg
    icfg, ref_workload = load_job_icfg(args.file)
    workload = (ref_workload if not args.input and ref_workload is not None
                else Workload(args.input))
    result = run_icfg(icfg, workload)
    for value in result.output:
        print(value)
    print(f"-- status: {result.status}  exit: {result.exit_value}  "
          f"conditionals executed: {result.profile.executed_conditionals}  "
          f"operations: {result.profile.executed_operations}",
          file=sys.stderr)
    return 0 if result.status == "ok" else 1


def cmd_dump(args: argparse.Namespace) -> int:
    """``icbe dump``: print the ICFG as text or DOT."""
    icfg = _load(args.file)
    print(to_dot(icfg) if args.dot else dump_icfg(icfg))
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    """``icbe analyze``: correlation results per conditional."""
    icfg = _load(args.file)
    config = _config(args)
    results = {branch.id: analyze_branch(icfg, branch.id, config)
               for branch in icfg.branch_nodes()}
    if args.dot:
        from repro.ir.printer import correlation_fills
        print(to_dot(icfg, fills=correlation_fills(icfg, results)))
        return 0
    for branch in icfg.branch_nodes():
        result = results[branch.id]
        line = result.describe()
        if result.has_correlation:
            line += f"  [duplication bound {duplication_upper_bound(result)}]"
        print(f"{branch.label():40s} {line}")
    return 0


def cmd_optimize(args: argparse.Namespace) -> int:
    """``icbe optimize``: run ICBE and report the effect."""
    icfg = _load(args.file)
    optimizer = ICBEOptimizer(OptimizerOptions(
        config=_config(args), duplication_limit=args.limit,
        strict=args.strict, diff_check=args.diff_check,
        deadline_s=args.deadline, guard_growth_factor=args.guard_growth,
        diagnostics_dir=args.diagnostics,
        analysis_cache=not args.no_analysis_cache,
        analysis_jobs=args.analysis_jobs,
        summary_store_dir=args.summary_store,
        summary_store_quota=args.summary_store_quota))
    report = optimizer.optimize(icfg)
    print(f"conditionals optimized: {report.optimized_count} / "
          f"{report.conditionals_before}")
    print(f"nodes: {report.nodes_before} -> {report.nodes_after} "
          f"({report.growth_percent:+.1f}%)")
    if not args.no_analysis_cache:
        print(f"analysis cache: {report.cache.describe()}")
    if report.store is not None:
        stats = report.store.snapshot()
        print(f"summary store: {stats['hits']} hits / "
              f"{stats['misses']} misses / {stats['stores']} stored"
              + (f" / {stats['rejects']} rejected"
                 if stats["rejects"] else "")
              + (f" / {stats['evictions']} evicted"
                 if stats["evictions"] else "")
              + (f" / {stats['io_errors']} io errors "
                 f"[{stats['health']}]"
                 if stats["io_errors"] else ""))
    if report.failed_count or report.rolled_back_count:
        print(f"transactions rolled back: {report.failed_count} failed, "
              f"{report.rolled_back_count} differential")
    if args.diff_check:
        clean = not any(b.phase in ("diff-check", "final-diff")
                        for b in report.diagnostics)
        print(f"differential validation: "
              f"{'clean' if clean else 'mismatches rolled back'}")
    if args.input is not None:
        workload = Workload(args.input)
        before = run_icfg(icfg, workload)
        after = run_icfg(report.optimized, workload)
        match = "identical" if after.observable == before.observable \
            else "DIFFERENT (bug!)"
        print(f"executed conditionals: "
              f"{before.profile.executed_conditionals} -> "
              f"{after.profile.executed_conditionals}  (output {match})")
    if args.emit:
        print(dump_icfg(report.optimized))
    return 0


def cmd_predict(args: argparse.Namespace) -> int:
    """``icbe predict``: static prediction with correlation hints."""
    from repro.analysis.prediction import predict_all
    icfg = _load(args.file)
    predictions = predict_all(icfg, _config(args))
    for branch in icfg.branch_nodes():
        prediction = predictions[branch.id]
        direction = "taken" if prediction.taken else "not-taken"
        confidence = "certain" if prediction.certain else prediction.source
        print(f"{branch.label():40s} predict {direction:9s} [{confidence}]")
    return 0


def cmd_inline(args: argparse.Namespace) -> int:
    """``icbe inline``: exhaustive pre-pass inlining."""
    from repro.transform.inline import inline_exhaustively
    icfg = _load(args.file)
    nodes_before = icfg.node_count()
    working = icfg.clone()
    inlined = inline_exhaustively(working, node_budget=args.node_budget)
    verify_icfg(working)
    print(f"inlined {inlined} call sites; nodes {nodes_before} -> "
          f"{working.node_count()}")
    if args.input is not None:
        workload = Workload(args.input)
        before = run_icfg(icfg, workload)
        after = run_icfg(working, workload)
        match = "identical" if after.observable == before.observable \
            else "DIFFERENT (bug!)"
        print(f"output {match}")
    if args.emit:
        print(dump_icfg(working))
    return 0


def _parse_injections(specs) -> dict:
    """``--inject KIND:JOB[:TIERS]`` options -> {job name: inject dict}."""
    from repro.errors import SupervisorError
    injections = {}
    for text in specs or ():
        parts = text.split(":")
        if len(parts) < 2 or parts[0] not in ("hang", "crash", "oom"):
            raise SupervisorError(
                f"bad --inject spec {text!r} "
                f"(expected hang|crash|oom:JOB[:TIERS])", spec=text)
        tiers = ([int(t) for t in parts[2].split(",")]
                 if len(parts) > 2 else [0])
        injections[parts[1]] = {"kind": parts[0], "tiers": tiers}
    return injections


def cmd_batch(args: argparse.Namespace) -> int:
    """``icbe batch``: supervised, crash-isolated batch optimization."""
    from repro.robustness.supervisor import (BatchSupervisor, JobSpec,
                                             SupervisorOptions)

    injections = _parse_injections(args.inject)
    specs = []
    for source in args.files:
        spec = JobSpec(source)
        if spec.name in injections:
            spec.inject = injections[spec.name]
        specs.append(spec)
    run_dir = args.resume if args.resume else args.run_dir
    options = SupervisorOptions(
        jobs=args.jobs, timeout_s=args.timeout, memory_mb=args.memory_mb,
        seed=args.seed, budget=args.budget, duplication_limit=args.limit,
        diff_check=not args.no_diff_check,
        backoff_base_s=args.backoff, breaker_threshold=args.breaker,
        analysis_jobs=args.analysis_jobs,
        summary_store=args.summary_store,
        summary_store_quota=args.summary_store_quota)
    supervisor = BatchSupervisor(specs, run_dir, options=options,
                                 resume=args.resume is not None)
    report = supervisor.run()
    for outcome in report.outcomes:
        print(outcome.describe())
    tiers = report.tier_counts()
    statuses = report.status_counts()
    print("-- tiers: " + "  ".join(f"{k}={v}" for k, v in tiers.items()))
    print(f"-- {statuses['OK']} ok, {statuses['DEGRADED']} degraded, "
          f"{statuses['FAILED']} failed; {report.total_retries} retries, "
          f"{report.total_kills} kills"
          + (f"; resumed {report.resumed_jobs} from journal"
             if report.resumed_jobs else ""))
    for name, entry in sorted(report.job_telemetry().items()):
        print(f"-- telemetry: {name}: {entry['attempts']} attempt(s), "
              f"{entry['wall_s']:.2f}s wall, "
              f"peak rss {entry['peak_rss_kb']} KiB", file=sys.stderr)
    print(f"-- journal: {supervisor.journal.path}  "
          f"wall: {report.wall_s:.2f}s", file=sys.stderr)
    return 1 if report.failed_jobs else 0


def cmd_serve(args: argparse.Namespace) -> int:
    """``icbe serve``: the long-lived optimization daemon."""
    from repro.serve.app import run_daemon
    from repro.serve.config import ServeOptions

    options = ServeOptions(
        host=args.host, port=args.port, run_dir=args.run_dir,
        workers=args.workers, max_jobs_per_worker=args.max_jobs_per_worker,
        rss_watermark_kb=args.rss_watermark_kb,
        heartbeat_timeout_s=args.heartbeat_timeout,
        queue_limit=args.queue_limit,
        rate_capacity=args.rate_burst, rate_refill_per_s=args.rate,
        timeout_s=args.timeout, default_deadline_s=args.deadline,
        drain_grace_s=args.drain_grace, seed=args.seed,
        breaker_threshold=args.breaker, budget=args.budget,
        duplication_limit=args.limit, diff_check=not args.no_diff_check,
        memory_mb=args.memory_mb,
        analysis_jobs=args.analysis_jobs,
        summary_store=args.summary_store,
        summary_store_quota=args.summary_store_quota)
    return run_daemon(options)


def cmd_experiment(args: argparse.Namespace) -> int:
    """``icbe experiment``: run one paper experiment."""
    from repro.harness.__main__ import main as harness_main
    return harness_main([args.name])


def _quota(text: str) -> int:
    """argparse type for ``--summary-store-quota`` (accepts 64m, 1g...)."""
    from repro.utils.durafs import parse_size
    try:
        return parse_size(text)
    except ValueError as bad:
        raise argparse.ArgumentTypeError(str(bad))


def _add_analysis_scaling_flags(p: argparse.ArgumentParser) -> None:
    """``--analysis-jobs`` / ``--summary-store[-quota]``, shared by
    every subcommand that runs the optimizer.  All outcome-neutral:
    reports and graphs are byte-identical at any setting."""
    p.add_argument("--analysis-jobs", type=int, default=1, metavar="N",
                   help="shard the correlation analysis across N worker "
                        "processes before the (serial, deterministic) "
                        "transform phase; 1 = no prewarm (default)")
    p.add_argument("--summary-store", default=None, metavar="DIR",
                   help="persist completed summary-node entries to a "
                        "content-addressed store in DIR and reuse them "
                        "across runs and programs")
    p.add_argument("--summary-store-quota", type=_quota, default=None,
                   metavar="BYTES",
                   help="cap the summary store at this many bytes "
                        "(suffixes k/m/g; oldest entries are evicted "
                        "crash-safely; evictions only ever cost misses)")


def build_parser() -> argparse.ArgumentParser:
    """The argparse command tree."""
    # Observability flags live on a shared parent so they parse both
    # before and after the subcommand (``icbe --trace f optimize x`` and
    # ``icbe optimize x --trace f``); argparse only applies a subparser
    # default when the top-level parse left the attribute unset.
    obs_parent = argparse.ArgumentParser(add_help=False)
    obs_parent.add_argument(
        "--trace", default=None, metavar="FILE.jsonl",
        help="run under an observability session and write the span "
             "tree + metrics snapshot as JSONL (convert to Chrome "
             "trace-viewer format with python -m repro.obs.export)")
    obs_parent.add_argument(
        "--profile", action="store_true",
        help="print a pstats-style per-span aggregate of the "
             "invocation to stderr")
    parser = argparse.ArgumentParser(
        prog="icbe", parents=[obs_parent],
        description="Interprocedural Conditional Branch Elimination "
                    "(PLDI 1997 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_parser(name: str, **kwargs) -> argparse.ArgumentParser:
        return sub.add_parser(name, parents=[obs_parent], **kwargs)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("file", help="MiniC source file")
        p.add_argument("--intra", action="store_true",
                       help="intraprocedural baseline analysis")
        p.add_argument("--budget", type=int, default=1000,
                       help="node-query-pair analysis budget")

    run_p = add_parser("run", help="execute a program")
    run_p.add_argument("file")
    run_p.add_argument("--input", type=int, nargs="*", default=[],
                       help="workload values for input()")
    run_p.set_defaults(func=cmd_run)

    dump_p = add_parser("dump", help="print the ICFG")
    dump_p.add_argument("file")
    dump_p.add_argument("--dot", action="store_true",
                        help="Graphviz output")
    dump_p.set_defaults(func=cmd_dump)

    analyze_p = add_parser("analyze", help="correlation per conditional")
    common(analyze_p)
    analyze_p.add_argument("--dot", action="store_true",
                           help="Graphviz output with correlation overlay")
    analyze_p.set_defaults(func=cmd_analyze)

    optimize_p = add_parser("optimize", help="run the ICBE optimizer")
    common(optimize_p)
    optimize_p.add_argument("--limit", type=int, default=None,
                            help="per-conditional duplication limit")
    optimize_p.add_argument("--input", type=int, nargs="*", default=None,
                            help="workload to measure dynamic reduction")
    optimize_p.add_argument("--emit", action="store_true",
                            help="dump the optimized ICFG")
    optimize_p.add_argument("--diff-check", action="store_true",
                            help="differentially validate every accepted "
                                 "transform against the original program")
    optimize_p.add_argument("--strict", action="store_true",
                            help="re-raise the first transactional failure "
                                 "instead of rolling back")
    optimize_p.add_argument("--deadline", type=float, default=None,
                            help="per-conditional wall-clock deadline "
                                 "in seconds")
    optimize_p.add_argument("--guard-growth", type=float, default=None,
                            help="abort one conditional when its working "
                                 "graph exceeds this multiple of its size")
    optimize_p.add_argument("--diagnostics", default=None, metavar="DIR",
                            help="write a diagnostics bundle per rolled-back "
                                 "transform into DIR")
    _add_analysis_scaling_flags(optimize_p)
    optimize_p.add_argument("--no-analysis-cache", action="store_true",
                            help="disable the shared analysis context "
                                 "(cross-branch summary cache, memoized "
                                 "mod/ref, incremental re-verification); "
                                 "outcomes are identical, only slower")
    optimize_p.set_defaults(func=cmd_optimize)

    predict_p = add_parser(
        "predict", help="correlation-assisted static branch prediction")
    common(predict_p)
    predict_p.set_defaults(func=cmd_predict)

    inline_p = add_parser(
        "inline", help="exhaustively inline non-recursive call sites")
    inline_p.add_argument("file")
    inline_p.add_argument("--node-budget", type=int, default=100_000,
                          help="stop when the graph exceeds this many nodes")
    inline_p.add_argument("--input", type=int, nargs="*", default=None,
                          help="workload to verify behaviour is unchanged")
    inline_p.add_argument("--emit", action="store_true",
                          help="dump the inlined ICFG")
    inline_p.set_defaults(func=cmd_inline)

    batch_p = add_parser(
        "batch", help="optimize many programs under the crash-isolated "
                      "batch supervisor (checkpoint/resume, degradation "
                      "ladder; see docs/ROBUSTNESS.md)")
    batch_p.add_argument("files", nargs="*", metavar="JOB",
                         help="MiniC files, or suite:<name>[@scale] "
                              "benchmark references; may be empty with "
                              "--resume (jobs come from the journal)")
    batch_p.add_argument("--jobs", type=int, default=1, metavar="N",
                         help="parallel worker subprocesses")
    batch_p.add_argument("--resume", default=None, metavar="DIR",
                         help="resume an interrupted run from DIR's "
                              "journal, skipping completed jobs")
    batch_p.add_argument("--run-dir", default="icbe-batch", metavar="DIR",
                         help="directory for the journal, report, and "
                              "worker scratch (default: ./icbe-batch)")
    batch_p.add_argument("--seed", type=int, default=0,
                         help="the single seed every randomized component "
                              "(backoff jitter, differential workloads, "
                              "chaos points) derives from")
    batch_p.add_argument("--timeout", type=float, default=60.0, metavar="S",
                         help="per-attempt wall-clock timeout; hung "
                              "workers are killed")
    batch_p.add_argument("--memory-mb", type=int, default=512, metavar="MB",
                         help="per-worker address-space cap "
                              "(resource.setrlimit)")
    batch_p.add_argument("--budget", type=int, default=1000,
                         help="node-query-pair analysis budget")
    batch_p.add_argument("--limit", type=int, default=100,
                         help="per-conditional duplication limit")
    batch_p.add_argument("--backoff", type=float, default=0.05, metavar="S",
                         help="base retry backoff (grows exponentially, "
                              "seeded jitter)")
    batch_p.add_argument("--breaker", type=int, default=5, metavar="K",
                         help="open a job class's circuit breaker after K "
                              "consecutive hard worker deaths")
    batch_p.add_argument("--no-diff-check", action="store_true",
                         help="skip per-job differential validation")
    batch_p.add_argument("--inject", action="append", metavar="SPEC",
                         help="chaos drill: hang|crash|oom:JOB[:TIERS] "
                              "(repeatable; deterministic given --seed)")
    _add_analysis_scaling_flags(batch_p)
    batch_p.set_defaults(func=cmd_batch)

    serve_p = add_parser(
        "serve", help="run the long-lived optimization service "
                      "(HTTP/JSON API, resident worker pool, admission "
                      "control, graceful drain; see docs/SERVING.md)")
    serve_p.add_argument("--host", default="127.0.0.1",
                         help="listen address (default: 127.0.0.1)")
    serve_p.add_argument("--port", type=int, default=8420,
                         help="listen port; 0 binds an ephemeral port, "
                              "published in <run-dir>/serve.json")
    serve_p.add_argument("--workers", type=int, default=2, metavar="K",
                         help="resident optimization workers")
    serve_p.add_argument("--run-dir", default="icbe-serve", metavar="DIR",
                         help="journal, result cache, program spool, and "
                              "discovery file (default: ./icbe-serve); "
                              "restarting here recovers journaled jobs")
    serve_p.add_argument("--queue-limit", type=int, default=64,
                         help="refuse submissions beyond this queue depth "
                              "(HTTP 429 + Retry-After)")
    serve_p.add_argument("--rate", type=float, default=10.0, metavar="R",
                         help="sustained per-client submissions/second")
    serve_p.add_argument("--rate-burst", type=float, default=30.0,
                         metavar="B", help="per-client burst capacity")
    serve_p.add_argument("--timeout", type=float, default=60.0, metavar="S",
                         help="per-attempt wall clock; a longer attempt "
                              "is killed and the job descends the ladder")
    serve_p.add_argument("--deadline", type=float, default=300.0,
                         metavar="S", help="default per-request deadline "
                         "(queue wait + all attempts)")
    serve_p.add_argument("--drain-grace", type=float, default=10.0,
                         metavar="S", help="how long in-flight attempts "
                         "may finish after SIGTERM before checkpointing")
    serve_p.add_argument("--max-jobs-per-worker", type=int, default=64,
                         help="recycle a worker after this many jobs")
    serve_p.add_argument("--rss-watermark-kb", type=int, default=1_048_576,
                         help="recycle a worker whose peak RSS crossed "
                              "this watermark (KiB)")
    serve_p.add_argument("--heartbeat-timeout", type=float, default=10.0,
                         metavar="S", help="kill + respawn a worker "
                         "silent for this long")
    serve_p.add_argument("--seed", type=int, default=0,
                         help="seed for backoff jitter and differential "
                              "workloads")
    serve_p.add_argument("--breaker", type=int, default=5, metavar="K",
                         help="open a job class's circuit breaker after K "
                              "consecutive hard worker deaths")
    serve_p.add_argument("--memory-mb", type=int, default=512, metavar="MB",
                         help="per-worker address-space cap")
    serve_p.add_argument("--budget", type=int, default=1000,
                         help="node-query-pair analysis budget")
    serve_p.add_argument("--limit", type=int, default=100,
                         help="per-conditional duplication limit")
    serve_p.add_argument("--no-diff-check", action="store_true",
                         help="skip per-job differential validation")
    _add_analysis_scaling_flags(serve_p)
    serve_p.set_defaults(func=cmd_serve)

    exp_p = add_parser("experiment", help="run a paper experiment")
    exp_p.add_argument("name",
                       help="table1|table2|fig9|fig10|fig11|headline|all")
    exp_p.set_defaults(func=cmd_experiment)

    parser.add_argument("--traceback", action="store_true",
                        help="debugging: re-raise errors instead of the "
                             "one-line exit-code-2 diagnostic")
    return parser


def _invoke(args: argparse.Namespace) -> int:
    """Dispatch one parsed invocation, honouring ``--trace``/``--profile``.

    With either flag the whole subcommand runs under an observability
    session rooted at a ``cli.<command>`` span; the trace file and the
    profile table are emitted even when the command fails, so a slow or
    crashing run still leaves its evidence behind.
    """
    if not args.trace and not args.profile:
        return args.func(args)
    from repro import obs
    with obs.session() as active:
        try:
            with obs.span(f"cli.{args.command}"):
                return args.func(args)
        finally:
            if args.trace:
                active.write_jsonl(args.trace,
                                   meta={"command": args.command})
                print(f"-- trace: {args.trace} "
                      f"({len(active.export_spans())} spans)",
                      file=sys.stderr)
            if args.profile:
                print(active.render_profile(), file=sys.stderr)


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``icbe`` executable.

    Operator errors — bad source programs, missing files, unusable run
    directories — exit with code 2 and a single diagnostic line on
    stderr (plus the exception's structured context, if any), never a
    traceback.  Internal bugs still raise so they stay loud.
    """
    from repro.errors import ReproError, SupervisorDrained, error_context

    args = build_parser().parse_args(argv)
    try:
        return _invoke(args)
    except SupervisorDrained as drained:
        # A graceful signal-initiated drain is not an operator error:
        # exit with the conventional 128+signum so process managers see
        # a clean signal exit (130 for SIGINT, 143 for SIGTERM).
        print(f"icbe: {drained}", file=sys.stderr)
        return drained.exit_code
    except (ReproError, OSError) as failure:
        if getattr(args, "traceback", False):
            raise
        print(f"icbe: error: {failure}", file=sys.stderr)
        context = error_context(failure)
        if context:
            detail = ", ".join(f"{k}={v}" for k, v in sorted(context.items()))
            print(f"icbe: context: {detail}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
