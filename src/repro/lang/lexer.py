"""Hand-written scanner for MiniC.

Supports ``//`` line comments and ``/* ... */`` block comments, decimal
integer literals, and the operator set in :mod:`repro.lang.tokens`.
"""

from __future__ import annotations

from typing import List

from repro.errors import LexError
from repro.lang.tokens import KEYWORDS, Token, TokenKind

_TWO_CHAR = {
    "==": TokenKind.EQ,
    "!=": TokenKind.NE,
    "<=": TokenKind.LE,
    ">=": TokenKind.GE,
    "&&": TokenKind.AND,
    "||": TokenKind.OR,
}

_ONE_CHAR = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    ";": TokenKind.SEMI,
    ",": TokenKind.COMMA,
    "=": TokenKind.ASSIGN,
    "<": TokenKind.LT,
    ">": TokenKind.GT,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "/": TokenKind.SLASH,
    "%": TokenKind.PERCENT,
    "!": TokenKind.NOT,
}


class _Scanner:
    def __init__(self, source: str) -> None:
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1

    def at_end(self) -> bool:
        return self.pos >= len(self.source)

    def peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        if index >= len(self.source):
            return ""
        return self.source[index]

    def advance(self) -> str:
        char = self.source[self.pos]
        self.pos += 1
        if char == "\n":
            self.line += 1
            self.column = 1
        else:
            self.column += 1
        return char

    def skip_trivia(self) -> None:
        """Consume whitespace and comments."""
        while not self.at_end():
            char = self.peek()
            if char in " \t\r\n":
                self.advance()
            elif char == "/" and self.peek(1) == "/":
                while not self.at_end() and self.peek() != "\n":
                    self.advance()
            elif char == "/" and self.peek(1) == "*":
                start_line, start_col = self.line, self.column
                self.advance()
                self.advance()
                while True:
                    if self.at_end():
                        raise LexError("unterminated block comment",
                                       start_line, start_col)
                    if self.peek() == "*" and self.peek(1) == "/":
                        self.advance()
                        self.advance()
                        break
                    self.advance()
            else:
                return

    def scan_token(self) -> Token:
        line, column = self.line, self.column
        char = self.peek()

        if char.isdigit():
            text = []
            while not self.at_end() and self.peek().isdigit():
                text.append(self.advance())
            if not self.at_end() and (self.peek().isalpha() or self.peek() == "_"):
                raise LexError(
                    f"identifier cannot start with a digit: "
                    f"{''.join(text)}{self.peek()}...", line, column)
            return Token(TokenKind.INT, "".join(text), line, column)

        if char.isalpha() or char == "_":
            text = []
            while not self.at_end() and (self.peek().isalnum() or self.peek() == "_"):
                text.append(self.advance())
            word = "".join(text)
            kind = KEYWORDS.get(word, TokenKind.NAME)
            return Token(kind, word, line, column)

        two = char + self.peek(1)
        if two in _TWO_CHAR:
            self.advance()
            self.advance()
            return Token(_TWO_CHAR[two], two, line, column)

        if char in _ONE_CHAR:
            self.advance()
            return Token(_ONE_CHAR[char], char, line, column)

        raise LexError(f"unexpected character {char!r}", line, column)


def tokenize(source: str) -> List[Token]:
    """Scan ``source`` into a token list terminated by an EOF token."""
    scanner = _Scanner(source)
    tokens: List[Token] = []
    while True:
        scanner.skip_trivia()
        if scanner.at_end():
            tokens.append(Token(TokenKind.EOF, "", scanner.line, scanner.column))
            return tokens
        tokens.append(scanner.scan_token())
