"""Abstract syntax tree for MiniC.

The AST is deliberately plain: frozen-ish dataclasses, one class per
construct, a ``line`` attribute on everything for diagnostics.  Nested
call expressions are legal in the AST; lowering hoists them into
temporaries so that every ICFG call is its own node.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


@dataclass
class Expr:
    """Base class for expressions."""

    line: int = field(default=0, compare=False)


@dataclass
class IntLit(Expr):
    """Integer literal (negative values arise from constant folding)."""

    value: int = 0


@dataclass
class VarRef(Expr):
    """Reference to a local, parameter, or global variable."""

    name: str = ""


@dataclass
class Unary(Expr):
    """Unary ``-`` (negation) or ``!`` (logical not)."""

    op: str = "-"
    operand: Expr = field(default_factory=Expr)


@dataclass
class Binary(Expr):
    """Binary arithmetic, relational, or (eager) logical operator."""

    op: str = "+"
    left: Expr = field(default_factory=Expr)
    right: Expr = field(default_factory=Expr)


@dataclass
class UnsignedCast(Expr):
    """``(unsigned) e`` — reinterpret as non-negative (paper source #3).

    Semantics: the low 8 bits of the operand, i.e. the value of an
    ``unsigned char`` fetch in the paper's stdio example.  The analysis
    only relies on the result being non-negative.
    """

    operand: Expr = field(default_factory=Expr)


@dataclass
class CallExpr(Expr):
    """Procedure call.  May appear nested; lowering hoists it."""

    name: str = ""
    args: List[Expr] = field(default_factory=list)


@dataclass
class InputExpr(Expr):
    """``input()`` — next value from the workload input stream."""


@dataclass
class AllocExpr(Expr):
    """``alloc(n)`` — allocate ``n`` heap cells; may yield 0 (NULL)."""

    size: Expr = field(default_factory=Expr)


@dataclass
class LoadExpr(Expr):
    """``load(p)`` — read heap cell ``p``; faults if ``p`` is 0.

    A successful load implies ``p != 0`` downstream (paper source #4).
    """

    address: Expr = field(default_factory=Expr)


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------


@dataclass
class Stmt:
    """Base class for statements."""

    line: int = field(default=0, compare=False)


@dataclass
class VarDecl(Stmt):
    """``var x;`` or ``var x = e;`` — function-scoped local."""

    name: str = ""
    init: Optional[Expr] = None


@dataclass
class Assign(Stmt):
    """``x = e;``"""

    name: str = ""
    value: Expr = field(default_factory=Expr)


@dataclass
class CallStmt(Stmt):
    """``f(a, b);`` — call for effect, result discarded."""

    call: CallExpr = field(default_factory=CallExpr)


@dataclass
class If(Stmt):
    """``if (cond) { ... } else { ... }`` (else optional)."""

    cond: Expr = field(default_factory=Expr)
    then_body: List[Stmt] = field(default_factory=list)
    else_body: List[Stmt] = field(default_factory=list)


@dataclass
class While(Stmt):
    """``while (cond) { ... }``"""

    cond: Expr = field(default_factory=Expr)
    body: List[Stmt] = field(default_factory=list)


@dataclass
class Return(Stmt):
    """``return;`` or ``return e;`` (bare return yields 0)."""

    value: Optional[Expr] = None


@dataclass
class Print(Stmt):
    """``print e;`` — append a value to the observable output."""

    value: Expr = field(default_factory=Expr)


@dataclass
class StoreStmt(Stmt):
    """``store(p, v);`` — write heap cell; faults and asserts ``p != 0``."""

    address: Expr = field(default_factory=Expr)
    value: Expr = field(default_factory=Expr)


@dataclass
class Break(Stmt):
    """``break;``"""


@dataclass
class Continue(Stmt):
    """``continue;``"""


# --------------------------------------------------------------------------
# Top level
# --------------------------------------------------------------------------


@dataclass
class GlobalDecl:
    """``global g;`` or ``global g = 3;`` (initializer must be constant)."""

    name: str
    init: int = 0
    line: int = 0


@dataclass
class ProcDef:
    """``proc f(a, b) { ... }``"""

    name: str
    params: List[str]
    body: List[Stmt]
    line: int = 0


@dataclass
class Program:
    """A whole MiniC translation unit."""

    globals: List[GlobalDecl] = field(default_factory=list)
    procs: List[ProcDef] = field(default_factory=list)

    def proc(self, name: str) -> ProcDef:
        """Look up a procedure by name (raises KeyError if absent)."""
        for proc in self.procs:
            if proc.name == name:
                return proc
        raise KeyError(name)

    def proc_names(self) -> Tuple[str, ...]:
        return tuple(p.name for p in self.procs)
