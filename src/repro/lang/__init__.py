"""MiniC: the small C-like source language the reproduction analyzes.

The paper's implementation sat inside the ICC retargetable C compiler.
We replace that front end with MiniC, a deliberately small imperative
language that still exposes every construct the ICBE optimization cares
about: procedures with parameters and return values, globals, loops,
short-circuit conditionals, an ``(unsigned)`` conversion, and a tiny
nullable heap (``alloc``/``load``/``store``) so that all four correlation
sources from paper §3.1 arise in real programs.

Public surface:

- :func:`parse_program` — source text → checked AST.
- :func:`repro.lang.pretty.pretty_print` — AST → canonical source text.
"""

from repro.lang.ast import Program
from repro.lang.lexer import tokenize
from repro.lang.parser import parse_program
from repro.lang.pretty import pretty_print
from repro.lang.sema import check_program

__all__ = ["Program", "tokenize", "parse_program", "pretty_print",
           "check_program"]
