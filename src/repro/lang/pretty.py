"""Pretty printer: AST → canonical MiniC source.

Round trip guarantee (tested property): ``parse(pretty(parse(s)))`` is
structurally equal to ``parse(s)``.  Output is fully parenthesized at
binary operators so no precedence reasoning is needed.
"""

from __future__ import annotations

from typing import List

from repro.lang import ast

_INDENT = "    "


def _expr(expr: ast.Expr) -> str:
    if isinstance(expr, ast.IntLit):
        # Negative literals print as "-n"; the parser folds unary minus on
        # a literal back into an IntLit, so the round trip is exact.
        return str(expr.value)
    if isinstance(expr, ast.VarRef):
        return expr.name
    if isinstance(expr, ast.Unary):
        return f"{expr.op}{_atom(expr.operand)}"
    if isinstance(expr, ast.Binary):
        return f"({_expr(expr.left)} {expr.op} {_expr(expr.right)})"
    if isinstance(expr, ast.UnsignedCast):
        return f"(unsigned) {_atom(expr.operand)}"
    if isinstance(expr, ast.CallExpr):
        args = ", ".join(_expr(a) for a in expr.args)
        return f"{expr.name}({args})"
    if isinstance(expr, ast.InputExpr):
        return "input()"
    if isinstance(expr, ast.AllocExpr):
        return f"alloc({_expr(expr.size)})"
    if isinstance(expr, ast.LoadExpr):
        return f"load({_expr(expr.address)})"
    raise TypeError(f"unknown expression {type(expr).__name__}")


def _atom(expr: ast.Expr) -> str:
    """Like :func:`_expr` but parenthesizes anything non-atomic."""
    text = _expr(expr)
    if isinstance(expr, ast.IntLit):
        # A negative literal after unary minus would print as "--n";
        # parenthesize so the round trip is exact.
        return text if expr.value >= 0 else f"({text})"
    if isinstance(expr, (ast.VarRef, ast.CallExpr, ast.InputExpr,
                         ast.AllocExpr, ast.LoadExpr)):
        return text
    if text.startswith("("):
        return text
    return f"({text})"


def _stmts(stmts: List[ast.Stmt], depth: int, out: List[str]) -> None:
    pad = _INDENT * depth
    for stmt in stmts:
        if isinstance(stmt, ast.VarDecl):
            if stmt.init is None:
                out.append(f"{pad}var {stmt.name};")
            else:
                out.append(f"{pad}var {stmt.name} = {_expr(stmt.init)};")
        elif isinstance(stmt, ast.Assign):
            out.append(f"{pad}{stmt.name} = {_expr(stmt.value)};")
        elif isinstance(stmt, ast.CallStmt):
            out.append(f"{pad}{_expr(stmt.call)};")
        elif isinstance(stmt, ast.If):
            out.append(f"{pad}if ({_expr(stmt.cond)}) {{")
            _stmts(stmt.then_body, depth + 1, out)
            if stmt.else_body:
                out.append(f"{pad}}} else {{")
                _stmts(stmt.else_body, depth + 1, out)
            out.append(f"{pad}}}")
        elif isinstance(stmt, ast.While):
            out.append(f"{pad}while ({_expr(stmt.cond)}) {{")
            _stmts(stmt.body, depth + 1, out)
            out.append(f"{pad}}}")
        elif isinstance(stmt, ast.Return):
            if stmt.value is None:
                out.append(f"{pad}return;")
            else:
                out.append(f"{pad}return {_expr(stmt.value)};")
        elif isinstance(stmt, ast.Print):
            out.append(f"{pad}print {_expr(stmt.value)};")
        elif isinstance(stmt, ast.StoreStmt):
            out.append(
                f"{pad}store({_expr(stmt.address)}, {_expr(stmt.value)});")
        elif isinstance(stmt, ast.Break):
            out.append(f"{pad}break;")
        elif isinstance(stmt, ast.Continue):
            out.append(f"{pad}continue;")
        else:
            raise TypeError(f"unknown statement {type(stmt).__name__}")


def pretty_print(program: ast.Program) -> str:
    """Render ``program`` as parseable MiniC source text."""
    out: List[str] = []
    for decl in program.globals:
        if decl.init == 0:
            out.append(f"global {decl.name};")
        else:
            out.append(f"global {decl.name} = {decl.init};")
    if program.globals:
        out.append("")
    for proc in program.procs:
        params = ", ".join(proc.params)
        out.append(f"proc {proc.name}({params}) {{")
        _stmts(proc.body, 1, out)
        out.append("}")
        out.append("")
    return "\n".join(out).rstrip() + "\n"


def count_source_lines(program: ast.Program) -> int:
    """Non-blank source lines of the canonical rendering (Table 1 metric)."""
    return sum(1 for line in pretty_print(program).splitlines() if line.strip())
