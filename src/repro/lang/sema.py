"""Semantic checks for MiniC programs.

MiniC uses function-level scoping (like C89 after hoisting): every
``var`` declaration in a procedure introduces one function-scoped local,
visible in the whole body.  Locals may shadow globals.  The checks here
are the ones lowering relies on:

- no duplicate procedure names, globals, parameters, or locals;
- every referenced variable is a parameter, local, or global;
- every called procedure exists and is called with the right arity;
- ``break``/``continue`` appear only inside loops;
- a procedure named ``main`` exists and takes no parameters.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.errors import SemanticError
from repro.lang import ast

ENTRY_PROC = "main"


def collect_locals(proc: ast.ProcDef) -> List[str]:
    """All ``var`` names declared anywhere in ``proc`` (document order)."""
    names: List[str] = []

    def walk(stmts: List[ast.Stmt]) -> None:
        for stmt in stmts:
            if isinstance(stmt, ast.VarDecl):
                names.append(stmt.name)
            elif isinstance(stmt, ast.If):
                walk(stmt.then_body)
                walk(stmt.else_body)
            elif isinstance(stmt, ast.While):
                walk(stmt.body)

    walk(proc.body)
    return names


class _ProcChecker:
    def __init__(self, proc: ast.ProcDef, globals_: Set[str],
                 arities: Dict[str, int]) -> None:
        self.proc = proc
        self.globals = globals_
        self.arities = arities
        self.visible: Set[str] = set(proc.params)
        self.declared_locals: Set[str] = set()

    def fail(self, message: str, line: int) -> None:
        raise SemanticError(f"{self.proc.name}: line {line}: {message}",
                            proc=self.proc.name, line=line)

    def check(self) -> None:
        seen_params: Set[str] = set()
        for param in self.proc.params:
            if param in seen_params:
                self.fail(f"duplicate parameter {param!r}", self.proc.line)
            seen_params.add(param)
        # Pre-scan declarations so function-level scoping holds even for
        # uses that textually precede the declaration inside a branch.
        for name in collect_locals(self.proc):
            if name in self.declared_locals or name in seen_params:
                self.fail(f"duplicate local {name!r}", self.proc.line)
            self.declared_locals.add(name)
        self.visible |= self.declared_locals
        self.check_stmts(self.proc.body, in_loop=False)

    def check_stmts(self, stmts: List[ast.Stmt], in_loop: bool) -> None:
        for stmt in stmts:
            self.check_stmt(stmt, in_loop)

    def check_stmt(self, stmt: ast.Stmt, in_loop: bool) -> None:
        if isinstance(stmt, ast.VarDecl):
            if stmt.init is not None:
                self.check_expr(stmt.init)
        elif isinstance(stmt, ast.Assign):
            self.check_var(stmt.name, stmt.line)
            self.check_expr(stmt.value)
        elif isinstance(stmt, ast.CallStmt):
            self.check_expr(stmt.call)
        elif isinstance(stmt, ast.If):
            self.check_expr(stmt.cond)
            self.check_stmts(stmt.then_body, in_loop)
            self.check_stmts(stmt.else_body, in_loop)
        elif isinstance(stmt, ast.While):
            self.check_expr(stmt.cond)
            self.check_stmts(stmt.body, in_loop=True)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.check_expr(stmt.value)
        elif isinstance(stmt, ast.Print):
            self.check_expr(stmt.value)
        elif isinstance(stmt, ast.StoreStmt):
            self.check_expr(stmt.address)
            self.check_expr(stmt.value)
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            if not in_loop:
                kind = "break" if isinstance(stmt, ast.Break) else "continue"
                self.fail(f"{kind!r} outside of a loop", stmt.line)
        else:
            self.fail(f"unknown statement {type(stmt).__name__}", stmt.line)

    def check_var(self, name: str, line: int) -> None:
        if name not in self.visible and name not in self.globals:
            self.fail(f"undeclared variable {name!r}", line)

    def check_expr(self, expr: ast.Expr) -> None:
        if isinstance(expr, ast.IntLit):
            return
        if isinstance(expr, ast.VarRef):
            self.check_var(expr.name, expr.line)
        elif isinstance(expr, ast.Unary):
            self.check_expr(expr.operand)
        elif isinstance(expr, ast.Binary):
            self.check_expr(expr.left)
            self.check_expr(expr.right)
        elif isinstance(expr, ast.UnsignedCast):
            self.check_expr(expr.operand)
        elif isinstance(expr, ast.CallExpr):
            if expr.name not in self.arities:
                self.fail(f"call to undefined procedure {expr.name!r}",
                          expr.line)
            expected = self.arities[expr.name]
            if len(expr.args) != expected:
                self.fail(
                    f"procedure {expr.name!r} expects {expected} argument(s), "
                    f"got {len(expr.args)}", expr.line)
            for arg in expr.args:
                self.check_expr(arg)
        elif isinstance(expr, ast.InputExpr):
            return
        elif isinstance(expr, ast.AllocExpr):
            self.check_expr(expr.size)
        elif isinstance(expr, ast.LoadExpr):
            self.check_expr(expr.address)
        else:
            self.fail(f"unknown expression {type(expr).__name__}", expr.line)


def check_program(program: ast.Program) -> None:
    """Validate ``program``; raise :class:`SemanticError` on the first fault."""
    globals_: Set[str] = set()
    for decl in program.globals:
        if decl.name in globals_:
            raise SemanticError(
                f"line {decl.line}: duplicate global {decl.name!r}")
        globals_.add(decl.name)

    arities: Dict[str, int] = {}
    for proc in program.procs:
        if proc.name in arities:
            raise SemanticError(
                f"line {proc.line}: duplicate procedure {proc.name!r}")
        arities[proc.name] = len(proc.params)

    if ENTRY_PROC not in arities:
        raise SemanticError(f"program has no {ENTRY_PROC!r} procedure")
    if arities[ENTRY_PROC] != 0:
        raise SemanticError(f"{ENTRY_PROC!r} must take no parameters")

    for proc in program.procs:
        _ProcChecker(proc, globals_, arities).check()
