"""Token definitions for the MiniC scanner."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, unique


@unique
class TokenKind(Enum):
    """Every lexical category MiniC distinguishes."""

    # Literals and names.
    INT = "int"
    NAME = "name"

    # Keywords.
    PROC = "proc"
    GLOBAL = "global"
    VAR = "var"
    IF = "if"
    ELSE = "else"
    WHILE = "while"
    RETURN = "return"
    PRINT = "print"
    INPUT = "input"
    ALLOC = "alloc"
    LOAD = "load"
    STORE = "store"
    BREAK = "break"
    CONTINUE = "continue"
    UNSIGNED = "unsigned"

    # Punctuation and operators.
    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    SEMI = ";"
    COMMA = ","
    ASSIGN = "="
    EQ = "=="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    NOT = "!"
    AND = "&&"
    OR = "||"

    EOF = "<eof>"


KEYWORDS = {
    "proc": TokenKind.PROC,
    "global": TokenKind.GLOBAL,
    "var": TokenKind.VAR,
    "if": TokenKind.IF,
    "else": TokenKind.ELSE,
    "while": TokenKind.WHILE,
    "return": TokenKind.RETURN,
    "print": TokenKind.PRINT,
    "input": TokenKind.INPUT,
    "alloc": TokenKind.ALLOC,
    "load": TokenKind.LOAD,
    "store": TokenKind.STORE,
    "break": TokenKind.BREAK,
    "continue": TokenKind.CONTINUE,
    "unsigned": TokenKind.UNSIGNED,
}


@dataclass(frozen=True)
class Token:
    """One lexeme with its source position (1-based line/column)."""

    kind: TokenKind
    text: str
    line: int
    column: int

    @property
    def int_value(self) -> int:
        """The numeric value of an INT token."""
        if self.kind is not TokenKind.INT:
            raise ValueError(f"not an integer token: {self!r}")
        return int(self.text)

    def __repr__(self) -> str:
        return f"Token({self.kind.name}, {self.text!r}, {self.line}:{self.column})"
