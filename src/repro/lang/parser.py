"""Recursive-descent parser for MiniC.

Grammar (EBNF, ``[]`` optional, ``{}`` repetition)::

    program      = { global_decl | proc_def } ;
    global_decl  = "global" NAME [ "=" [ "-" ] INT ] ";" ;
    proc_def     = "proc" NAME "(" [ NAME { "," NAME } ] ")" block ;
    block        = "{" { stmt } "}" ;
    stmt         = "var" NAME [ "=" expr ] ";"
                 | NAME "=" expr ";"
                 | NAME "(" args ")" ";"
                 | "if" "(" expr ")" block [ "else" ( block | if_stmt ) ]
                 | "while" "(" expr ")" block
                 | "return" [ expr ] ";"
                 | "print" expr ";"
                 | "store" "(" expr "," expr ")" ";"
                 | "break" ";" | "continue" ";" ;
    expr         = or_expr ;
    or_expr      = and_expr { "||" and_expr } ;
    and_expr     = cmp_expr { "&&" cmp_expr } ;
    cmp_expr     = add_expr [ relop add_expr ] ;
    add_expr     = mul_expr { ("+" | "-") mul_expr } ;
    mul_expr     = unary { ("*" | "/" | "%") unary } ;
    unary        = ("-" | "!") unary | primary ;
    primary      = INT | NAME | NAME "(" args ")"
                 | "(" "unsigned" ")" unary
                 | "(" expr ")"
                 | "input" "(" ")" | "alloc" "(" expr ")"
                 | "load" "(" expr ")" ;

Comparison is non-associative (``a < b < c`` is a parse error), which
keeps predicates in the shape the analysis reasons about.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import ParseError
from repro.lang import ast
from repro.lang.lexer import tokenize
from repro.lang.sema import check_program
from repro.lang.tokens import Token, TokenKind

_RELOPS = {
    TokenKind.EQ: "==",
    TokenKind.NE: "!=",
    TokenKind.LT: "<",
    TokenKind.LE: "<=",
    TokenKind.GT: ">",
    TokenKind.GE: ">=",
}

_ADDOPS = {TokenKind.PLUS: "+", TokenKind.MINUS: "-"}
_MULOPS = {TokenKind.STAR: "*", TokenKind.SLASH: "/", TokenKind.PERCENT: "%"}


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- token helpers ----------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def at(self, kind: TokenKind) -> bool:
        return self.peek().kind is kind

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind is not TokenKind.EOF:
            self.pos += 1
        return token

    def expect(self, kind: TokenKind, context: str = "") -> Token:
        token = self.peek()
        if token.kind is not kind:
            where = f" in {context}" if context else ""
            found = token.text or token.kind.value
            raise ParseError(
                f"expected {kind.value!r} but found {found!r}{where}",
                token.line, token.column)
        return self.advance()

    def error(self, message: str) -> ParseError:
        token = self.peek()
        return ParseError(message, token.line, token.column)

    # -- top level ---------------------------------------------------------

    def parse_program(self) -> ast.Program:
        program = ast.Program()
        while not self.at(TokenKind.EOF):
            if self.at(TokenKind.GLOBAL):
                program.globals.append(self.parse_global())
            elif self.at(TokenKind.PROC):
                program.procs.append(self.parse_proc())
            else:
                raise self.error(
                    f"expected 'proc' or 'global' at top level, found "
                    f"{self.peek().text!r}")
        return program

    def parse_global(self) -> ast.GlobalDecl:
        keyword = self.expect(TokenKind.GLOBAL)
        name = self.expect(TokenKind.NAME, "global declaration").text
        init = 0
        if self.at(TokenKind.ASSIGN):
            self.advance()
            negate = False
            if self.at(TokenKind.MINUS):
                self.advance()
                negate = True
            literal = self.expect(TokenKind.INT, "global initializer")
            init = -literal.int_value if negate else literal.int_value
        self.expect(TokenKind.SEMI, "global declaration")
        return ast.GlobalDecl(name=name, init=init, line=keyword.line)

    def parse_proc(self) -> ast.ProcDef:
        keyword = self.expect(TokenKind.PROC)
        name = self.expect(TokenKind.NAME, "procedure definition").text
        self.expect(TokenKind.LPAREN, "parameter list")
        params: List[str] = []
        if not self.at(TokenKind.RPAREN):
            params.append(self.expect(TokenKind.NAME, "parameter list").text)
            while self.at(TokenKind.COMMA):
                self.advance()
                params.append(self.expect(TokenKind.NAME, "parameter list").text)
        self.expect(TokenKind.RPAREN, "parameter list")
        body = self.parse_block()
        return ast.ProcDef(name=name, params=params, body=body,
                           line=keyword.line)

    # -- statements ----------------------------------------------------------

    def parse_block(self) -> List[ast.Stmt]:
        self.expect(TokenKind.LBRACE, "block")
        stmts: List[ast.Stmt] = []
        while not self.at(TokenKind.RBRACE):
            if self.at(TokenKind.EOF):
                raise self.error("unterminated block (missing '}')")
            stmts.append(self.parse_stmt())
        self.expect(TokenKind.RBRACE, "block")
        return stmts

    def parse_stmt(self) -> ast.Stmt:
        token = self.peek()
        kind = token.kind
        if kind is TokenKind.VAR:
            return self.parse_var_decl()
        if kind is TokenKind.IF:
            return self.parse_if()
        if kind is TokenKind.WHILE:
            return self.parse_while()
        if kind is TokenKind.RETURN:
            return self.parse_return()
        if kind is TokenKind.PRINT:
            self.advance()
            value = self.parse_expr()
            self.expect(TokenKind.SEMI, "print statement")
            return ast.Print(value=value, line=token.line)
        if kind is TokenKind.STORE:
            self.advance()
            self.expect(TokenKind.LPAREN, "store statement")
            address = self.parse_expr()
            self.expect(TokenKind.COMMA, "store statement")
            value = self.parse_expr()
            self.expect(TokenKind.RPAREN, "store statement")
            self.expect(TokenKind.SEMI, "store statement")
            return ast.StoreStmt(address=address, value=value, line=token.line)
        if kind is TokenKind.BREAK:
            self.advance()
            self.expect(TokenKind.SEMI, "break statement")
            return ast.Break(line=token.line)
        if kind is TokenKind.CONTINUE:
            self.advance()
            self.expect(TokenKind.SEMI, "continue statement")
            return ast.Continue(line=token.line)
        if kind is TokenKind.NAME:
            if self.peek(1).kind is TokenKind.ASSIGN:
                name = self.advance().text
                self.advance()
                value = self.parse_expr()
                self.expect(TokenKind.SEMI, "assignment")
                return ast.Assign(name=name, value=value, line=token.line)
            if self.peek(1).kind is TokenKind.LPAREN:
                call = self.parse_call()
                self.expect(TokenKind.SEMI, "call statement")
                return ast.CallStmt(call=call, line=token.line)
            raise self.error(
                f"expected '=' or '(' after name {token.text!r}")
        raise self.error(f"unexpected token {token.text!r} at start of statement")

    def parse_var_decl(self) -> ast.VarDecl:
        keyword = self.expect(TokenKind.VAR)
        name = self.expect(TokenKind.NAME, "variable declaration").text
        init: Optional[ast.Expr] = None
        if self.at(TokenKind.ASSIGN):
            self.advance()
            init = self.parse_expr()
        self.expect(TokenKind.SEMI, "variable declaration")
        return ast.VarDecl(name=name, init=init, line=keyword.line)

    def parse_if(self) -> ast.If:
        keyword = self.expect(TokenKind.IF)
        self.expect(TokenKind.LPAREN, "if condition")
        cond = self.parse_expr()
        self.expect(TokenKind.RPAREN, "if condition")
        then_body = self.parse_block()
        else_body: List[ast.Stmt] = []
        if self.at(TokenKind.ELSE):
            self.advance()
            if self.at(TokenKind.IF):
                else_body = [self.parse_if()]
            else:
                else_body = self.parse_block()
        return ast.If(cond=cond, then_body=then_body, else_body=else_body,
                      line=keyword.line)

    def parse_while(self) -> ast.While:
        keyword = self.expect(TokenKind.WHILE)
        self.expect(TokenKind.LPAREN, "while condition")
        cond = self.parse_expr()
        self.expect(TokenKind.RPAREN, "while condition")
        body = self.parse_block()
        return ast.While(cond=cond, body=body, line=keyword.line)

    def parse_return(self) -> ast.Return:
        keyword = self.expect(TokenKind.RETURN)
        value: Optional[ast.Expr] = None
        if not self.at(TokenKind.SEMI):
            value = self.parse_expr()
        self.expect(TokenKind.SEMI, "return statement")
        return ast.Return(value=value, line=keyword.line)

    # -- expressions -----------------------------------------------------------

    def parse_expr(self) -> ast.Expr:
        return self.parse_or()

    def parse_or(self) -> ast.Expr:
        left = self.parse_and()
        while self.at(TokenKind.OR):
            token = self.advance()
            right = self.parse_and()
            left = ast.Binary(op="||", left=left, right=right, line=token.line)
        return left

    def parse_and(self) -> ast.Expr:
        left = self.parse_cmp()
        while self.at(TokenKind.AND):
            token = self.advance()
            right = self.parse_cmp()
            left = ast.Binary(op="&&", left=left, right=right, line=token.line)
        return left

    def parse_cmp(self) -> ast.Expr:
        left = self.parse_add()
        if self.peek().kind in _RELOPS:
            token = self.advance()
            right = self.parse_add()
            result = ast.Binary(op=_RELOPS[token.kind], left=left, right=right,
                                line=token.line)
            if self.peek().kind in _RELOPS:
                raise self.error("chained comparisons are not allowed")
            return result
        return left

    def parse_add(self) -> ast.Expr:
        left = self.parse_mul()
        while self.peek().kind in _ADDOPS:
            token = self.advance()
            right = self.parse_mul()
            left = ast.Binary(op=_ADDOPS[token.kind], left=left, right=right,
                              line=token.line)
        return left

    def parse_mul(self) -> ast.Expr:
        left = self.parse_unary()
        while self.peek().kind in _MULOPS:
            token = self.advance()
            right = self.parse_unary()
            left = ast.Binary(op=_MULOPS[token.kind], left=left, right=right,
                              line=token.line)
        return left

    def parse_unary(self) -> ast.Expr:
        token = self.peek()
        if token.kind is TokenKind.MINUS:
            self.advance()
            operand = self.parse_unary()
            if isinstance(operand, ast.IntLit):
                return ast.IntLit(value=-operand.value, line=token.line)
            return ast.Unary(op="-", operand=operand, line=token.line)
        if token.kind is TokenKind.NOT:
            self.advance()
            operand = self.parse_unary()
            return ast.Unary(op="!", operand=operand, line=token.line)
        return self.parse_primary()

    def parse_primary(self) -> ast.Expr:
        token = self.peek()
        kind = token.kind
        if kind is TokenKind.INT:
            self.advance()
            return ast.IntLit(value=token.int_value, line=token.line)
        if kind is TokenKind.INPUT:
            self.advance()
            self.expect(TokenKind.LPAREN, "input()")
            self.expect(TokenKind.RPAREN, "input()")
            return ast.InputExpr(line=token.line)
        if kind is TokenKind.ALLOC:
            self.advance()
            self.expect(TokenKind.LPAREN, "alloc()")
            size = self.parse_expr()
            self.expect(TokenKind.RPAREN, "alloc()")
            return ast.AllocExpr(size=size, line=token.line)
        if kind is TokenKind.LOAD:
            self.advance()
            self.expect(TokenKind.LPAREN, "load()")
            address = self.parse_expr()
            self.expect(TokenKind.RPAREN, "load()")
            return ast.LoadExpr(address=address, line=token.line)
        if kind is TokenKind.NAME:
            if self.peek(1).kind is TokenKind.LPAREN:
                return self.parse_call()
            self.advance()
            return ast.VarRef(name=token.text, line=token.line)
        if kind is TokenKind.LPAREN:
            if self.peek(1).kind is TokenKind.UNSIGNED:
                self.advance()
                self.advance()
                self.expect(TokenKind.RPAREN, "(unsigned) cast")
                operand = self.parse_unary()
                return ast.UnsignedCast(operand=operand, line=token.line)
            self.advance()
            inner = self.parse_expr()
            self.expect(TokenKind.RPAREN, "parenthesized expression")
            return inner
        raise self.error(f"unexpected token {token.text!r} in expression")

    def parse_call(self) -> ast.CallExpr:
        name_token = self.expect(TokenKind.NAME, "call")
        self.expect(TokenKind.LPAREN, "call")
        args: List[ast.Expr] = []
        if not self.at(TokenKind.RPAREN):
            args.append(self.parse_expr())
            while self.at(TokenKind.COMMA):
                self.advance()
                args.append(self.parse_expr())
        self.expect(TokenKind.RPAREN, "call")
        return ast.CallExpr(name=name_token.text, args=args,
                            line=name_token.line)


def parse_program(source: str, check: bool = True) -> ast.Program:
    """Parse MiniC source text into a :class:`~repro.lang.ast.Program`.

    With ``check=True`` (the default) the program is also semantically
    validated (scopes, arity, break placement).
    """
    from repro import obs
    with obs.span("frontend.parse") as span:
        program = _Parser(tokenize(source)).parse_program()
        if check:
            with obs.span("frontend.sema"):
                check_program(program)
        span.set(procs=len(program.procs))
    return program
