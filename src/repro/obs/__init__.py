"""Zero-dependency observability: hierarchical spans + metrics registry.

The rest of the system calls four module-level functions —
:func:`span`, :func:`add`, :func:`gauge`, :func:`observe` — at its
instrumentation sites.  **Off by default**: with no active session each
call is one global load, one ``None`` check, and an immediate return
(:data:`~repro.obs.trace.NULL_SPAN` for spans), which is what keeps the
disabled overhead under the 2% budget asserted in
``tests/obs/test_overhead.py``.

Turning it on is scoped, not global::

    from repro import obs

    with obs.session() as active:
        report = ICBEOptimizer(options).optimize(icfg)
    active.write_jsonl("out.jsonl")          # spans + metrics snapshot
    print(active.render_profile())           # pstats-style aggregate

or, from the command line, ``icbe optimize prog.mc --trace out.jsonl``.

Sessions do not stack: entering a session while one is active raises
(the optimizer and supervisor assume one unambiguous event sink), and
worker subprocesses install their own fresh session whose spans the
supervisor later :meth:`~repro.obs.trace.Tracer.adopt`\\ s.

See docs/OBSERVABILITY.md for the span taxonomy and metric catalog.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator, Optional, Union

from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                               Number)
from repro.obs.trace import NULL_SPAN, Span, Tracer, _NullSpan

__all__ = ["ObsSession", "session", "suspended", "current", "enabled",
           "span", "add", "gauge", "observe", "Tracer", "Span",
           "MetricsRegistry", "Counter", "Gauge", "Histogram", "NULL_SPAN"]


class ObsSession:
    """One observability scope: a tracer plus a metrics registry."""

    def __init__(self, tracer: Optional[Tracer] = None,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.tracer = tracer if tracer is not None else Tracer()
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    # -- export sugar ------------------------------------------------------

    def export_spans(self) -> list:
        """Finished spans as JSON records, in start order."""
        return self.tracer.export()

    def write_jsonl(self, path: str, meta: Optional[dict] = None) -> None:
        """Write the session's trace + metrics snapshot to ``path``."""
        from repro.obs.export import write_jsonl
        write_jsonl(path, self.tracer.export(),
                    metrics=self.metrics.snapshot(), meta=meta)

    def render_profile(self, limit: int = 0) -> str:
        """The pstats-style per-span-name aggregate table."""
        from repro.obs.export import render_profile
        return render_profile(self.tracer.export(), limit=limit)


#: The active session, or None (disabled — the fast path).
_ACTIVE: Optional[ObsSession] = None


def current() -> Optional[ObsSession]:
    """The active session, or None when observability is off."""
    return _ACTIVE


def enabled() -> bool:
    """True while a session is active."""
    return _ACTIVE is not None


@contextmanager
def session(tracer: Optional[Tracer] = None,
            metrics: Optional[MetricsRegistry] = None,
            ) -> Iterator[ObsSession]:
    """Activate an observability session for the ``with`` body."""
    global _ACTIVE
    if _ACTIVE is not None:
        raise RuntimeError("an observability session is already active; "
                           "sessions do not nest")
    _ACTIVE = ObsSession(tracer=tracer, metrics=metrics)
    try:
        yield _ACTIVE
    finally:
        _ACTIVE = None


def reset() -> None:
    """Forcibly drop any active session (subprocess hygiene: a forked
    worker must not keep appending to its parent's session)."""
    global _ACTIVE
    _ACTIVE = None


@contextmanager
def suspended() -> Iterator[None]:
    """Temporarily deactivate the active session (if any) for the
    ``with`` body, restoring it afterwards — so a component can run a
    private session of its own (e.g. the harness self-profile) even
    when the surrounding CLI invocation is being traced."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = None
    try:
        yield
    finally:
        _ACTIVE = previous


# -- instrumentation-site fast paths ----------------------------------------


def span(name: str, **attrs: Any) -> Union[Span, _NullSpan]:
    """Open a span on the active session (or return the null span)."""
    active = _ACTIVE
    if active is None:
        return NULL_SPAN
    return active.tracer.span(name, **attrs)


def add(name: str, amount: Number = 1) -> None:
    """Increment counter ``name`` on the active session (or no-op)."""
    active = _ACTIVE
    if active is None:
        return
    active.metrics.add(name, amount)


def gauge(name: str, value: Number) -> None:
    """Set gauge ``name`` on the active session (or no-op)."""
    active = _ACTIVE
    if active is None:
        return
    active.metrics.set(name, value)


def observe(name: str, value: Number) -> None:
    """Record into histogram ``name`` on the active session (or no-op)."""
    active = _ACTIVE
    if active is None:
        return
    active.metrics.observe(name, value)
