"""Hierarchical tracing: spans with monotonic timing and attributes.

A :class:`Span` is one timed region of work — ``analysis.correlation``
for one conditional, ``pass.restructure`` for a whole pass — with a
name, a parent, key=value attributes, and start/end instants taken from
a monotonic clock (``time.perf_counter``; never wall-clock time, so
spans are immune to clock steps).  Spans nest: the :class:`Tracer`
keeps an open-span stack, each new span becomes a child of the span
open at the time, and the finished spans form a tree that can be
exported (see :mod:`repro.obs.export`) as JSONL, a Chrome trace, or a
pstats-style aggregate table.

Exception safety is part of the contract: a span opened with ``with``
always closes, an exception escaping the body marks the span
``status="error"`` with the exception text, and a *leaked* child (one
the instrumented code opened but never closed, e.g. because an
exception bypassed its ``__exit__``) is force-closed when any ancestor
closes — the stack can never wedge.

Spans that crossed a process boundary (the batch supervisor's worker
subprocesses) are re-attached with :meth:`Tracer.adopt`, which remaps
ids, re-parents the foreign roots, and rebases the foreign clock domain
onto the local one.

This module never inspects the ambient on/off switch — that lives in
:mod:`repro.obs` (``obs.span(...)`` returns :data:`NULL_SPAN` when
tracing is disabled, which is the <2%-overhead fast path).
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Iterable, List, Optional


class Span:
    """One timed, attributed region of work inside a :class:`Tracer`."""

    __slots__ = ("_tracer", "span_id", "parent_id", "name", "attrs",
                 "start_s", "end_s", "status", "error")

    def __init__(self, tracer: "Tracer", span_id: int, parent_id: int,
                 name: str, attrs: Dict[str, Any]) -> None:
        self._tracer = tracer
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.attrs = attrs
        self.start_s = 0.0
        self.end_s = 0.0
        self.status = "ok"
        self.error = ""

    @property
    def duration_s(self) -> float:
        """The span's measured duration (0.0 while still open)."""
        return max(0.0, self.end_s - self.start_s)

    def set(self, **attrs: Any) -> "Span":
        """Attach (or overwrite) attributes on the open span."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer.finish(self, exc)
        return False

    def to_json(self) -> dict:
        """The span as one JSONL-able record (see docs/OBSERVABILITY.md)."""
        record = {"id": self.span_id, "parent": self.parent_id,
                  "name": self.name, "start_s": round(self.start_s, 9),
                  "dur_s": round(self.duration_s, 9), "status": self.status}
        if self.error:
            record["error"] = self.error
        if self.attrs:
            record["attrs"] = {k: _jsonable(v)
                               for k, v in sorted(self.attrs.items())}
        return record


def _jsonable(value: Any) -> Any:
    """Clamp attribute values to JSON-safe scalars."""
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return str(value)


class _NullSpan:
    """The do-nothing span handed out when tracing is disabled.

    A process-wide singleton: entering, exiting, and ``set`` are all
    no-ops, so instrumentation sites cost one function call and one
    attribute probe when observability is off.
    """

    __slots__ = ()

    def set(self, **attrs: Any) -> "_NullSpan":
        """No-op attribute setter (disabled-tracing fast path)."""
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


#: The shared disabled-path span; identity-comparable in tests.
NULL_SPAN = _NullSpan()


class Tracer:
    """Records a tree of :class:`Span`\\ s against a monotonic clock.

    Single-owner by design: one tracer per observability session (the
    batch supervisor's workers each build their own and the parent
    adopts the serialized results; see :meth:`adopt`).
    """

    def __init__(self,
                 clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        #: Finished spans, in completion (post-) order.
        self.spans: List[Span] = []
        self._stack: List[Span] = []
        self._next_id = 1

    # -- recording ---------------------------------------------------------

    def span(self, name: str, **attrs: Any) -> Span:
        """Open a child of the currently open span (or a root)."""
        parent = self._stack[-1].span_id if self._stack else 0
        span = Span(self, self._next_id, parent, name, attrs)
        self._next_id += 1
        span.start_s = self._clock()
        self._stack.append(span)
        return span

    def finish(self, span: Span, exc: Optional[BaseException] = None) -> None:
        """Close ``span`` (normally via ``with``), force-closing any
        leaked descendants so the open-span stack cannot wedge."""
        now = self._clock()
        if exc is not None:
            span.status = "error"
            span.error = f"{type(exc).__name__}: {exc}"
        while self._stack:
            open_span = self._stack.pop()
            if open_span is span:
                break
            open_span.end_s = now
            open_span.status = "leaked"
            self.spans.append(open_span)
        span.end_s = now
        self.spans.append(span)

    def record(self, name: str, start_s: float, end_s: float,
               parent_id: int = 0, **attrs: Any) -> Span:
        """Append an already-timed span (used for retrospective spans,
        e.g. a supervisor attributing a worker attempt it timed)."""
        span = Span(self, self._next_id, parent_id, name, attrs)
        self._next_id += 1
        span.start_s = start_s
        span.end_s = end_s
        self.spans.append(span)
        return span

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def now(self) -> float:
        """The tracer's clock (monotonic seconds)."""
        return self._clock()

    # -- export & adoption -------------------------------------------------

    def export(self) -> List[dict]:
        """Every finished span as JSON records, in start order."""
        return [span.to_json()
                for span in sorted(self.spans, key=lambda s: (s.start_s,
                                                              s.span_id))]

    def adopt(self, records: Iterable[dict], parent_id: int = 0,
              clock_offset_s: float = 0.0, origin: str = "") -> int:
        """Attach spans exported by *another* tracer (typically a worker
        subprocess) under ``parent_id``.

        Ids are remapped into this tracer's id space, foreign roots
        (``parent == 0``) are re-parented to ``parent_id``, every start
        instant is shifted by ``clock_offset_s`` (the two processes'
        ``perf_counter`` epochs are unrelated), and ``origin`` is
        stamped as an attribute so adopted spans stay identifiable.
        Returns the number of spans adopted.
        """
        records = list(records)
        id_map: Dict[int, int] = {}
        for record in records:
            id_map[record["id"]] = self._next_id
            self._next_id += 1
        for record in records:
            attrs = dict(record.get("attrs") or {})
            if origin:
                attrs["origin"] = origin
            span = Span(self, id_map[record["id"]],
                        id_map.get(record["parent"], parent_id),
                        record["name"], attrs)
            span.start_s = record["start_s"] + clock_offset_s
            span.end_s = span.start_s + record["dur_s"]
            span.status = record.get("status", "ok")
            span.error = record.get("error", "")
            self.spans.append(span)
        return len(records)
