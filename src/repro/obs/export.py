"""Trace exporters: JSONL, Chrome trace, and a pstats-style table.

Three consumers of one span tree:

- :func:`write_jsonl` / :func:`read_jsonl` — the on-disk interchange
  format (``icbe ... --trace out.jsonl``): one JSON record per line,
  first a ``{"type": "trace"}`` header, then one record per span in
  start order, then a ``{"type": "metrics"}`` footer with the
  registry snapshot.
- :func:`to_chrome_trace` — the same spans as Chrome's trace-event JSON
  (open ``chrome://tracing`` or https://ui.perfetto.dev and load the
  file): complete ``"ph": "X"`` events, microsecond timestamps.
- :func:`render_profile` — a deterministic-layout aggregate table in
  the spirit of ``pstats``: per span name, call count, total (inclusive)
  time, self (exclusive) time, and mean — the self-profile the harness
  report embeds.

Run ``python -m repro.obs.export trace.jsonl chrome.json`` to convert a
JSONL trace for ``chrome://tracing``.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

TRACE_SCHEMA_VERSION = 1


# -- JSONL ------------------------------------------------------------------


def write_jsonl(path: str, spans: List[dict],
                metrics: Optional[dict] = None,
                meta: Optional[dict] = None) -> None:
    """Write one trace (span records + optional metrics snapshot) as
    line-delimited JSON; ``meta`` lands in the header record."""
    with open(path, "w", encoding="utf-8") as handle:
        header = {"type": "trace", "version": TRACE_SCHEMA_VERSION}
        if meta:
            header["meta"] = meta
        handle.write(json.dumps(header, sort_keys=True) + "\n")
        for record in spans:
            handle.write(json.dumps({"type": "span", **record},
                                    sort_keys=True) + "\n")
        if metrics is not None:
            handle.write(json.dumps({"type": "metrics", "snapshot": metrics},
                                    sort_keys=True) + "\n")


def read_jsonl(path: str) -> dict:
    """Parse a ``--trace`` file back into
    ``{"meta": ..., "spans": [...], "metrics": ...}``."""
    result: dict = {"meta": {}, "spans": [], "metrics": None}
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.get("type")
            if kind == "trace":
                result["meta"] = record.get("meta", {})
            elif kind == "span":
                result["spans"].append(record)
            elif kind == "metrics":
                result["metrics"] = record.get("snapshot")
    return result


# -- Chrome trace -----------------------------------------------------------


def to_chrome_trace(spans: List[dict], process_name: str = "icbe") -> dict:
    """Span records -> Chrome trace-event JSON (``chrome://tracing``).

    Each span becomes one complete event (``"ph": "X"``) with
    microsecond ``ts``/``dur`` rebased so the earliest span starts at 0.
    Spans adopted from worker subprocesses keep their ``origin``
    attribute and are routed to their own ``tid`` lane so the
    supervisor's timeline and each worker's stay visually separate.
    """
    events: List[dict] = []
    if spans:
        epoch = min(record["start_s"] for record in spans)
    else:
        epoch = 0.0
    lanes: Dict[str, int] = {"": 1}
    for record in spans:
        origin = str((record.get("attrs") or {}).get("origin", ""))
        if origin not in lanes:
            lanes[origin] = len(lanes) + 1
        event = {
            "name": record["name"],
            "ph": "X",
            "pid": 1,
            "tid": lanes[origin],
            "ts": round((record["start_s"] - epoch) * 1e6, 3),
            "dur": round(record["dur_s"] * 1e6, 3),
            "cat": record["name"].split(".", 1)[0],
        }
        args = dict(record.get("attrs") or {})
        args["span_id"] = record["id"]
        args["parent"] = record["parent"]
        if record.get("status", "ok") != "ok":
            args["status"] = record["status"]
        if record.get("error"):
            args["error"] = record["error"]
        event["args"] = args
        events.append(event)
    metadata = [{"name": "process_name", "ph": "M", "pid": 1,
                 "args": {"name": process_name}}]
    for origin, tid in sorted(lanes.items(), key=lambda item: item[1]):
        metadata.append({"name": "thread_name", "ph": "M", "pid": 1,
                         "tid": tid,
                         "args": {"name": origin or "supervisor"}})
    return {"traceEvents": metadata + events,
            "displayTimeUnit": "ms"}


# -- pstats-style self-profile ----------------------------------------------


def aggregate_spans(spans: List[dict]) -> Dict[str, dict]:
    """Per span name: calls, total (inclusive) and self (exclusive)
    seconds.  Self time subtracts each span's *direct* children."""
    child_time: Dict[int, float] = {}
    for record in spans:
        parent = record.get("parent", 0)
        if parent:
            child_time[parent] = (child_time.get(parent, 0.0)
                                  + record["dur_s"])
    rows: Dict[str, dict] = {}
    for record in spans:
        row = rows.setdefault(record["name"],
                              {"calls": 0, "total_s": 0.0, "self_s": 0.0,
                               "errors": 0})
        row["calls"] += 1
        row["total_s"] += record["dur_s"]
        row["self_s"] += max(0.0, record["dur_s"]
                             - child_time.get(record["id"], 0.0))
        if record.get("status", "ok") == "error":
            row["errors"] += 1
    return rows


def render_profile(spans: List[dict], limit: int = 0) -> str:
    """The aggregate span table, widest total time first."""
    rows = aggregate_spans(spans)
    ordered = sorted(rows.items(),
                     key=lambda item: (-item[1]["total_s"], item[0]))
    if limit:
        ordered = ordered[:limit]
    lines = [f"{'span':32s} {'calls':>7s} {'total s':>10s} "
             f"{'self s':>10s} {'mean ms':>9s}"]
    for name, row in ordered:
        mean_ms = 1e3 * row["total_s"] / max(1, row["calls"])
        suffix = f"  ({row['errors']} errors)" if row["errors"] else ""
        lines.append(f"{name:32s} {row['calls']:>7d} "
                     f"{row['total_s']:>10.4f} {row['self_s']:>10.4f} "
                     f"{mean_ms:>9.3f}{suffix}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.obs.export trace.jsonl [chrome.json]``:
    convert a ``--trace`` JSONL file to Chrome trace JSON (and print
    the aggregate profile table)."""
    import sys
    args = sys.argv[1:] if argv is None else argv
    if not args or args[0] in ("-h", "--help"):
        print("usage: python -m repro.obs.export trace.jsonl [chrome.json]")
        return 0 if args else 2
    trace = read_jsonl(args[0])
    if len(args) > 1:
        with open(args[1], "w", encoding="utf-8") as handle:
            json.dump(to_chrome_trace(trace["spans"]), handle)
        print(f"wrote {args[1]} ({len(trace['spans'])} spans)")
    print(render_profile(trace["spans"]))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
