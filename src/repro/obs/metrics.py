"""The metrics registry: counters, gauges, and histograms.

One :class:`MetricsRegistry` per observability session holds every
named instrument.  The registry's :meth:`~MetricsRegistry.snapshot` is
**deterministic by construction**: instruments record *what happened*
(branches eliminated, nodes split, cache hits, journal fsyncs), never
*how long it took* — durations belong to spans
(:mod:`repro.obs.trace`), which keeps two same-seed runs byte-identical
when their counter snapshots are serialized (asserted in
``tests/obs/test_metrics.py`` and compared exactly by the perf gate,
``benchmarks/perf_baseline.py``).

Histograms use fixed power-of-two bucket bounds, so their snapshots are
deterministic dictionaries too (no quantile estimation, no sampling).

Naming convention: dotted lowercase paths, ``<layer>.<what>`` —
``analysis.pairs_examined``, ``transform.branches_eliminated``,
``cache.summary_hits``, ``journal.fsyncs``.  The full catalog lives in
docs/OBSERVABILITY.md.
"""

from __future__ import annotations

from typing import Dict, List, Union

Number = Union[int, float]

#: Upper bounds of the fixed histogram buckets (powers of two, plus a
#: catch-all).  Fixed bounds keep snapshots deterministic.
HISTOGRAM_BOUNDS = tuple(2 ** i for i in range(16))


class Counter:
    """A monotonically increasing tally."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def add(self, amount: Number = 1) -> None:
        """Increment by ``amount`` (negative increments are a bug)."""
        self.value += amount


class Gauge:
    """A point-in-time level (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def set(self, value: Number) -> None:
        """Record the current level."""
        self.value = value


class Histogram:
    """A fixed-bucket distribution of deterministic values.

    ``observe(v)`` lands ``v`` in the first bucket whose upper bound is
    >= v (the last bucket is the overflow).  Tracks count/total/min/max
    alongside the buckets.
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total: Number = 0
        self.min: Number = 0
        self.max: Number = 0
        self.buckets: List[int] = [0] * (len(HISTOGRAM_BOUNDS) + 1)

    def observe(self, value: Number) -> None:
        """Record one observation."""
        if self.count == 0:
            self.min = self.max = value
        else:
            self.min = min(self.min, value)
            self.max = max(self.max, value)
        self.count += 1
        self.total += value
        for index, bound in enumerate(HISTOGRAM_BOUNDS):
            if value <= bound:
                self.buckets[index] += 1
                return
        self.buckets[-1] += 1

    def to_json(self) -> dict:
        """The histogram as a deterministic record."""
        return {"count": self.count, "total": self.total,
                "min": self.min, "max": self.max,
                "buckets": list(self.buckets)}


class MetricsRegistry:
    """Named instruments for one observability session."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        #: Total instrument updates ever applied through this registry —
        #: the event count the disabled-overhead budget test multiplies
        #: by the per-call cost of the disabled fast path.
        self.total_updates = 0

    # -- instrument access -------------------------------------------------

    def counter(self, name: str) -> Counter:
        """The counter named ``name``, created on first use."""
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        """The gauge named ``name``, created on first use."""
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        """The histogram named ``name``, created on first use."""
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name)
        return instrument

    # -- recording (session-facing sugar) ----------------------------------

    def add(self, name: str, amount: Number = 1) -> None:
        """Increment counter ``name``."""
        self.counter(name).add(amount)
        self.total_updates += 1

    def set(self, name: str, value: Number) -> None:
        """Set gauge ``name``."""
        self.gauge(name).set(value)
        self.total_updates += 1

    def observe(self, name: str, value: Number) -> None:
        """Record ``value`` into histogram ``name``."""
        self.histogram(name).observe(value)
        self.total_updates += 1

    # -- snapshots ---------------------------------------------------------

    def snapshot(self) -> dict:
        """Every instrument's state as a deterministic, sorted record.

        Two runs that performed the same work produce byte-identical
        ``json.dumps(snapshot, sort_keys=True)`` output — the property
        the perf gate's counter comparison and the determinism unit
        test both rely on.
        """
        return {
            "counters": {name: c.value
                         for name, c in sorted(self._counters.items())},
            "gauges": {name: g.value
                       for name, g in sorted(self._gauges.items())},
            "histograms": {name: h.to_json()
                           for name, h in sorted(self._histograms.items())},
        }

    def merge(self, snapshot: dict, prefix: str = "") -> None:
        """Fold another registry's snapshot into this one (used by the
        batch supervisor to absorb worker-side metrics).  Counter values
        add; gauges last-write-win; histograms merge bucket-wise."""
        for name, value in (snapshot.get("counters") or {}).items():
            self.counter(prefix + name).add(value)
        for name, value in (snapshot.get("gauges") or {}).items():
            self.gauge(prefix + name).set(value)
        for name, data in (snapshot.get("histograms") or {}).items():
            histogram = self.histogram(prefix + name)
            if histogram.count == 0:
                histogram.min = data["min"]
                histogram.max = data["max"]
            elif data["count"]:
                histogram.min = min(histogram.min, data["min"])
                histogram.max = max(histogram.max, data["max"])
            histogram.count += data["count"]
            histogram.total += data["total"]
            buckets = data.get("buckets") or []
            for index, tally in enumerate(buckets[:len(histogram.buckets)]):
                histogram.buckets[index] += tally
