"""Correlation idiom templates (the phenomena the paper measures).

The paper's introduction attributes interprocedural correlation to the
modular style procedures are written in: callees validate inputs their
callers already validated, and callers re-check values their callees
just classified.  This module builds those idioms:

- **library procedures** with classifying shapes (error-code returns,
  parameter guards, error flags) used by both the random generator and
  the fixed benchmark suite;
- **caller-side emitters** that call a library procedure and re-test
  its result/arguments, creating the statically-detectable correlation
  ICBE eliminates.

Each emitter returns True when it could be applied in the current
context (e.g. some need an existing scalar variable).
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, List

from repro.lang import ast

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.benchgen.generator import _Generator, _ProcContext


# --------------------------------------------------------------------------
# Library procedure shapes
# --------------------------------------------------------------------------


def getter_with_error_return(name: str, offset: int) -> ast.ProcDef:
    """``proc name(p) { if (p <= 0) return -1; return (unsigned)(p+k); }``

    The classic classify-and-return shape: the result is either exactly
    -1 or provably non-negative, so a caller's ``!= -1`` test is fully
    correlated (the paper's fgetc/EOF example).
    """
    body: List[ast.Stmt] = [
        ast.If(cond=ast.Binary(op="<=", left=ast.VarRef(name="p"),
                               right=ast.IntLit(value=0)),
               then_body=[ast.Return(value=ast.IntLit(value=-1))],
               else_body=[]),
        ast.Return(value=ast.UnsignedCast(
            operand=ast.Binary(op="+", left=ast.VarRef(name="p"),
                               right=ast.IntLit(value=offset)))),
    ]
    return ast.ProcDef(name=name, params=["p"], body=body)


def guarded_worker(name: str, scale: int) -> ast.ProcDef:
    """``proc name(p) { if (p == 0) return -2; return p * k; }``

    Parameter validation a caller typically repeats (paper's second
    motivating idiom); callers that guard the argument make the callee's
    test fully correlated via entry splitting.
    """
    body: List[ast.Stmt] = [
        ast.If(cond=ast.Binary(op="==", left=ast.VarRef(name="p"),
                               right=ast.IntLit(value=0)),
               then_body=[ast.Return(value=ast.IntLit(value=-2))],
               else_body=[]),
        ast.Return(value=ast.Binary(op="*", left=ast.VarRef(name="p"),
                                    right=ast.IntLit(value=scale))),
    ]
    return ast.ProcDef(name=name, params=["p"], body=body)


def flag_setter(name: str, flag_global: str, threshold: int) -> ast.ProcDef:
    """``proc name(p) { if (p < t) { err := 1; return 0; }
    err := 0; return p; }``

    Status communicated through a global error flag with constant
    assignments — the caller's flag test correlates through the exit.
    """
    body: List[ast.Stmt] = [
        ast.If(cond=ast.Binary(op="<", left=ast.VarRef(name="p"),
                               right=ast.IntLit(value=threshold)),
               then_body=[
                   ast.Assign(name=flag_global, value=ast.IntLit(value=1)),
                   ast.Return(value=ast.IntLit(value=0)),
               ],
               else_body=[]),
        ast.Assign(name=flag_global, value=ast.IntLit(value=0)),
        ast.Return(value=ast.VarRef(name="p")),
    ]
    return ast.ProcDef(name=name, params=["p"], body=body)


def bounded_recursive(name: str, step: int) -> ast.ProcDef:
    """``proc name(p) { if (p <= 0) return 0; return k + name(p - 1); }``

    Bounded self-recursion: exercises summary computation on a cyclic
    call graph (queries on the recursive call's result must terminate
    through the summary dedup).
    """
    body: List[ast.Stmt] = [
        ast.If(cond=ast.Binary(op="<=", left=ast.VarRef(name="p"),
                               right=ast.IntLit(value=0)),
               then_body=[ast.Return(value=ast.IntLit(value=0))],
               else_body=[]),
        ast.Return(value=ast.Binary(
            op="+", left=ast.IntLit(value=step),
            right=ast.CallExpr(name=name,
                               args=[ast.Binary(op="-",
                                                left=ast.VarRef(name="p"),
                                                right=ast.IntLit(value=1))]))),
    ]
    return ast.ProcDef(name=name, params=["p"], body=body)


LIBRARY_KINDS = ("getter", "guarded", "flag", "recur")


def build_library(rng: random.Random, count: int,
                  flag_global: str) -> List[ast.ProcDef]:
    """A batch of library procedures cycling through the shapes."""
    procs: List[ast.ProcDef] = []
    for index in range(count):
        kind = LIBRARY_KINDS[index % len(LIBRARY_KINDS)]
        name = f"lib_{kind}{index}"
        if kind == "getter":
            procs.append(getter_with_error_return(name, rng.randint(0, 5)))
        elif kind == "guarded":
            procs.append(guarded_worker(name, rng.randint(2, 5)))
        elif kind == "flag":
            procs.append(flag_setter(name, flag_global, rng.randint(0, 3)))
        else:
            procs.append(bounded_recursive(name, rng.randint(1, 3)))
    return procs


# --------------------------------------------------------------------------
# Caller-side idiom emitters (used by the random generator)
# --------------------------------------------------------------------------


def _library_of_kind(gen: "_Generator", kind: str) -> str:
    names = [p for p in gen.library_names if f"_{kind}" in p]
    return gen.rng.choice(names) if names else ""


def return_value_recheck(gen: "_Generator", ctx: "_ProcContext",
                         body: List[ast.Stmt], caller_index: int) -> bool:
    """``x = lib_getter(e); if (x == -1) ... else ...`` — the caller
    re-tests the value the callee just classified."""
    callee = _library_of_kind(gen, "getter")
    if not callee:
        return False
    result = ctx.fresh_var("r")
    ctx.scalars.append(result)
    body.append(ast.VarDecl(name=result,
                            init=ast.CallExpr(name=callee,
                                              args=[gen.gen_operand(ctx)])))
    body.append(ast.If(
        cond=ast.Binary(op="==", left=ast.VarRef(name=result),
                        right=ast.IntLit(value=-1)),
        then_body=[ast.Print(value=ast.IntLit(value=-99))],
        else_body=[ast.Print(value=ast.VarRef(name=result))]))
    return True


def parameter_revalidation(gen: "_Generator", ctx: "_ProcContext",
                           body: List[ast.Stmt], caller_index: int) -> bool:
    """``if (v != 0) { r = lib_guarded(v); print r; }`` — the callee's
    own ``v == 0`` guard is redundant on this path."""
    callee = _library_of_kind(gen, "guarded")
    if not callee:
        return False
    scalars = [n for n in ctx.scalars if n not in ctx.counters]
    if not scalars:
        return False
    value = gen.rng.choice(scalars)
    result = ctx.fresh_var("r")
    ctx.scalars.append(result)
    body.append(ast.VarDecl(name=result, init=ast.IntLit(value=0)))
    body.append(ast.If(
        cond=ast.Binary(op="!=", left=ast.VarRef(name=value),
                        right=ast.IntLit(value=0)),
        then_body=[
            ast.Assign(name=result,
                       value=ast.CallExpr(name=callee,
                                          args=[ast.VarRef(name=value)])),
            ast.Print(value=ast.VarRef(name=result)),
        ],
        else_body=[]))
    return True


def error_flag_check(gen: "_Generator", ctx: "_ProcContext",
                     body: List[ast.Stmt], caller_index: int) -> bool:
    """``r = lib_flag(e); if (err == 1) ...`` — flag set by constants in
    the callee, tested in the caller."""
    callee = _library_of_kind(gen, "flag")
    if not callee:
        return False
    result = ctx.fresh_var("r")
    ctx.scalars.append(result)
    body.append(ast.VarDecl(name=result,
                            init=ast.CallExpr(name=callee,
                                              args=[gen.gen_operand(ctx)])))
    body.append(ast.If(
        cond=ast.Binary(op="==", left=ast.VarRef(name=gen.flag_global),
                        right=ast.IntLit(value=1)),
        then_body=[ast.Print(value=ast.IntLit(value=-1))],
        else_body=[ast.Print(value=ast.VarRef(name=result))]))
    return True


def recursive_accumulate(gen: "_Generator", ctx: "_ProcContext",
                         body: List[ast.Stmt], caller_index: int) -> bool:
    """``r = lib_recur(small); if (r == 0) ...`` — the base case returns
    a constant, partially correlating the caller's test, and the query
    must traverse a recursive summary to see it."""
    callee = _library_of_kind(gen, "recur")
    if not callee:
        return False
    result = ctx.fresh_var("r")
    ctx.scalars.append(result)
    depth = ast.IntLit(value=gen.rng.randint(0, 5))
    body.append(ast.VarDecl(name=result,
                            init=ast.CallExpr(name=callee, args=[depth])))
    body.append(ast.If(
        cond=ast.Binary(op="==", left=ast.VarRef(name=result),
                        right=ast.IntLit(value=0)),
        then_body=[ast.Print(value=ast.IntLit(value=0))],
        else_body=[ast.Print(value=ast.VarRef(name=result))]))
    return True


def flag_loop(gen: "_Generator", ctx: "_ProcContext",
              body: List[ast.Stmt], caller_index: int) -> bool:
    """An intraprocedural flag correlation inside a counted loop: the
    flag is assigned constants and re-tested each iteration (the loop
    case of Mueller-Whalley that ICBE subsumes)."""
    flag = ctx.fresh_var("flag")
    counter = ctx.fresh_var("i")
    ctx.scalars.extend([flag, counter])
    ctx.counters.append(counter)
    bound = gen.rng.randint(2, gen.options.loop_bound + 1)
    threshold = gen.rng.randint(0, 3)
    loop_body: List[ast.Stmt] = [
        ast.If(cond=ast.Binary(op=">", left=gen.gen_operand(ctx),
                               right=ast.IntLit(value=threshold)),
               then_body=[ast.Assign(name=flag, value=ast.IntLit(value=1))],
               else_body=[ast.Assign(name=flag, value=ast.IntLit(value=0))]),
        ast.If(cond=ast.Binary(op="==", left=ast.VarRef(name=flag),
                               right=ast.IntLit(value=1)),
               then_body=[ast.Print(value=ast.VarRef(name=counter))],
               else_body=[]),
        ast.Assign(name=counter,
                   value=ast.Binary(op="+", left=ast.VarRef(name=counter),
                                    right=ast.IntLit(value=1))),
    ]
    body.append(ast.VarDecl(name=flag, init=ast.IntLit(value=0)))
    body.append(ast.VarDecl(name=counter, init=ast.IntLit(value=0)))
    body.append(ast.While(
        cond=ast.Binary(op="<", left=ast.VarRef(name=counter),
                        right=ast.IntLit(value=bound)),
        body=loop_body))
    return True
