"""The fixed benchmark suite (stand-in for the paper's SPEC95 set).

Six MiniC programs, one per benchmark personality in the paper's
Table 1.  Each embeds the correlation idioms the paper attributes to
modular programming — return-value re-checks, repeated parameter
validation, error-flag propagation, EOF loops — inside a realistic
control skeleton for its namesake:

- ``go_like``       board-scanning nested loops with guarded helpers
- ``m88ksim_like``  fetch/decode/execute dispatch loop
- ``compress_like`` run-length encoder over an input byte stream
- ``li_like``       cons-cell list building, traversal, and removal
- ``perl_like``     tokenizer with classifier helpers
- ``icc_like``      two-pass mini compiler over a heap-allocated IR

Every program terminates on any workload (loops are counted or consume
the input stream, which yields 0 after exhaustion) and never faults
(heap pointers are allocated with positive sizes or guarded).

Each entry pairs the source with a deterministic ``ref`` workload used
for dynamic profiles (the paper's "ref input set").
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List

from repro.interp.workload import Workload
from repro.lang import ast, parse_program
from repro.lang.pretty import count_source_lines


@dataclass
class BenchmarkProgram:
    """One suite entry: name, parsed program, and its ref workload."""

    name: str
    source: str
    program: ast.Program
    workload: Workload

    @property
    def source_lines(self) -> int:
        return count_source_lines(self.program)


GO_LIKE = """
// go_like: board evaluation with guarded helpers and flag propagation.
global err = 0;
global captures = 0;

proc cell_at(board, idx) {
    if (board == 0) { return -1; }
    if (idx < 0) { return -1; }
    return (unsigned) load(board + idx);
}

proc liberties(value) {
    if (value == -1) { err = 1; return 0; }
    err = 0;
    if (value == 0) { return 4; }
    if (value == 1) { return 2; }
    return 1;
}

proc score_cell(board, idx) {
    var v = cell_at(board, idx);
    if (v == -1) { return 0; }           // correlated with cell_at's guard
    var libs = liberties(v);
    if (err == 1) { return 0; }          // correlated with liberties' flag
    if (libs == 0) { captures = captures + 1; }
    return libs;
}

proc classify_move(v) {
    // Intraprocedural flag idiom: kind is assigned constants and then
    // re-tested, so the re-tests correlate without crossing calls.
    var kind = 0;
    if (v > 1) { kind = 2; } else { kind = 1; }
    if (kind == 1) { print 1; }
    if (kind == 2) { print 2; }
    return kind;
}

proc main() {
    var size = 5;
    var board = alloc(size * size);
    var i = 0;
    while (i < size * size) {
        store(board + i, input());
        i = i + 1;
    }
    var total = 0;
    var best = 0;
    var edges = 0;
    var swings = 0;
    var prev = 0;
    var row = 0;
    while (row < size) {
        var col = 0;
        while (col < size) {
            var s = score_cell(board, row * size + col);
            if (s > best) { best = s; }      // input-dependent noise
            if (s < prev) { swings = swings + 1; }      // unanalyzable
            if (row == col) { edges = edges + 1; }      // unanalyzable
            if (s * 2 > total) { total = total + 1; }   // unanalyzable
            total = total + s;
            prev = s;
            classify_move(s);
            col = col + 1;
        }
        row = row + 1;
    }
    print edges;
    print swings;
    print total;
    print best;
    print captures;
    return total;
}
"""

M88KSIM_LIKE = """
// m88ksim_like: fetch-decode-execute loop with operand validation.
global err = 0;
global cycles = 0;

proc fetch(mem, pc, limit) {
    if (pc < 0) { return -1; }
    if (pc >= limit) { return -1; }
    return (unsigned) load(mem + pc);
}

proc check_reg(r) {
    if (r < 0) { err = 1; return 0; }
    if (r > 7) { err = 1; return 0; }
    err = 0;
    return r;
}

proc alu(op, a, b) {
    if (op == 1) { return a + b; }
    if (op == 2) { return a - b; }
    if (op == 3) { return a * b; }
    return 0;
}

proc execute(regs, op, r1, r2) {
    var a = check_reg(r1);
    if (err == 1) { return -1; }          // correlated with check_reg
    var b = check_reg(r2);
    if (err == 1) { return -1; }
    var va = load(regs + a);
    var vb = load(regs + b);
    var res = alu(op, va, vb);
    store(regs + a, res);
    return res;
}

proc main() {
    var limit = 64;
    var mem = alloc(limit);
    var regs = alloc(8);
    var i = 0;
    while (i < limit) {
        store(mem + i, input());
        i = i + 1;
    }
    i = 0;
    while (i < 8) {
        store(regs + i, i + 1);
        i = i + 1;
    }
    var pc = 0;
    var running = 1;
    var halted = 0;
    var stalls = 0;
    while (running == 1) {
        var word = fetch(mem, pc, limit);
        if (word == -1) {                  // correlated with fetch's guards
            running = 0;
            halted = 1;
        } else {
            var op = word % 4;
            var r1 = word % 8;
            var r2 = (word / 8) % 8;
            var res = execute(regs, op, r1, r2);
            if (res == -1) {
                err = 0;
            } else {
                cycles = cycles + 1;
            }
            if (res > 100) { print res; }    // input-dependent noise
            if (r1 == r2) { cycles = cycles + 1; }      // unanalyzable
            if (res > word) { stalls = stalls + 1; }    // unanalyzable
            if (op % 2 == 1) { stalls = stalls + 1; }   // unanalyzable
            pc = pc + 1;
        }
        // Intraprocedural: running was just assigned constants above.
        if (running == 0) { print pc; }
    }
    if (halted == 1) { print -1; }         // intra flag correlation
    print stalls;
    print cycles;
    print load(regs);
    return cycles;
}
"""

COMPRESS_LIKE = """
// compress_like: run-length encoding over the input stream (EOF loop).
global err = 0;
global emitted = 0;

proc next_byte() {
    var c = input();
    if (c <= 0) { return -1; }             // EOF / invalid
    return (unsigned) c;
}

proc emit(code, count) {
    if (count <= 0) { err = 1; return 0; }
    err = 0;
    print code;
    print count;
    emitted = emitted + 2;
    return count;
}

proc main() {
    var current = next_byte();
    var total = 0;
    var long_runs = 0;
    var maxrun = 0;
    var evens = 0;
    while (current != -1) {                // correlated with next_byte
        var run = 1;
        var nxt = next_byte();
        while (nxt != -1 && nxt == current) {
            run = run + 1;
            nxt = next_byte();
        }
        var n = emit(current, run);
        if (err == 0) {                    // correlated with emit's flag
            total = total + n;
        }
        // Intraprocedural flag idiom on run length.
        var big = 0;
        if (run > 2) { big = 1; }
        if (big == 1) { long_runs = long_runs + 1; }
        // Input-dependent / unanalyzable noise.
        if (run > maxrun) { maxrun = run; }
        if (current % 2 == 0) { evens = evens + 1; }
        current = nxt;
    }
    print maxrun;
    print evens;
    print total;
    print long_runs;
    print emitted;
    return total;
}
"""

LI_LIKE = """
// li_like: cons cells, list building, lookup, removal (paper's intro idiom).
global err = 0;
global allocs = 0;

proc cons(value, tail) {
    var cell = alloc(2);
    store(cell, value);
    store(cell + 1, tail);
    // Defensive re-check after the stores: the dereference already
    // proved cell != 0 (paper correlation source #4).
    if (cell != 0) { allocs = allocs + 1; }
    return cell;
}

proc head(cell) {
    if (cell == 0) { err = 1; return 0; }  // empty-list guard
    err = 0;
    return load(cell);
}

proc tail(cell) {
    if (cell == 0) { err = 1; return 0; }
    err = 0;
    return load(cell + 1);
}

proc list_sum(list) {
    var total = 0;
    var biggest = 0;
    var node = list;
    while (node != 0) {
        var h = head(node);
        if (err == 1) { return total; }    // correlated: node != 0 held
        total = total + h;
        if (h > biggest) { biggest = h; }  // unanalyzable noise
        if (total > 9000) { total = 0; }   // input-dependent noise
        node = tail(node);
    }
    return total;
}

proc remove_first(list, value) {
    if (list == 0) { return 0; }
    var h = head(list);
    if (h == value) {
        return tail(list);                  // correlated: list != 0 held
    }
    var rest = remove_first(tail(list), value);
    return cons(h, rest);
}

proc main() {
    var list = 0;
    var n = input();
    if (n <= 0) { n = 0; }
    if (n > 40) { n = 40; }
    var i = 0;
    while (i < n) {
        list = cons((unsigned) input(), list);
        i = i + 1;
    }
    print list_sum(list);
    var target = input();
    list = remove_first(list, (unsigned) target);
    print list_sum(list);
    if (list != 0) {                        // correlated with remove_first
        print head(list);
    } else {
        print -1;
    }
    // Intraprocedural: empty was just assigned constants.
    var empty = 0;
    if (list == 0) { empty = 1; }
    if (empty == 1) { print 0; } else { print 1; }
    if (target > 20) { print target; }      // input-dependent noise
    print allocs;
    return 0;
}
"""

PERL_LIKE = """
// perl_like: tokenizer with classifier helpers re-checked by the caller.
global err = 0;
global tokens = 0;

proc classify(c) {
    if (c < 0) { return -1; }              // EOF class
    if (c >= 48 && c <= 57) { return 1; }  // digit
    if (c >= 97 && c <= 122) { return 2; } // letter
    if (c == 32) { return 3; }             // space
    return 4;                              // punct
}

proc read_char() {
    var c = input();
    if (c <= 0) { return -1; }
    return (unsigned) c;
}

proc digit_value(c) {
    if (c < 48) { err = 1; return 0; }
    if (c > 57) { err = 1; return 0; }
    err = 0;
    return c - 48;
}

proc main() {
    var numbers = 0;
    var words = 0;
    var value = 0;
    var caps = 0;
    var longest = 0;
    var prev = 0;
    var c = read_char();
    while (c != -1) {                       // correlated with read_char
        var kind = classify(c);
        if (kind == -1) {                   // correlated with classify
            c = -1;
        } else {
            if (kind == 1) {
                var d = digit_value(c);
                if (err == 0) {             // correlated with digit_value
                    value = value * 10 + d;
                }
                numbers = numbers + 1;
            }
            if (kind == 2) {
                words = words + 1;
            }
            // Input-dependent noise the analysis cannot resolve.
            if (c > 64) { caps = caps + 1; }
            if (c > prev) { longest = longest + 1; }   // not analyzable
            if (value > 100000) { value = 0; }
            prev = c;
            tokens = tokens + 1;
            c = read_char();
        }
    }
    print numbers;
    print words;
    print value;
    print caps;
    print longest;
    print tokens;
    return tokens;
}
"""

ICC_LIKE = """
// icc_like: two-pass mini compiler over a heap IR with error chains.
global err = 0;
global folded = 0;

proc read_op() {
    var o = input();
    if (o <= 0) { return -1; }
    return (unsigned) o % 5;
}

proc valid_slot(ir, idx, len) {
    if (ir == 0) { return -1; }
    if (idx < 0) { return -1; }
    if (idx >= len) { return -1; }
    return idx;
}

proc get_ir(ir, idx, len) {
    var s = valid_slot(ir, idx, len);
    if (s == -1) { err = 1; return 0; }     // correlated with valid_slot
    err = 0;
    return load(ir + s);
}

proc fold(a, b) {
    if (a == 0) { return b; }
    if (b == 0) { return a; }
    folded = folded + 1;
    return a + b;
}

proc main() {
    var len = 32;
    var ir = alloc(len);
    var count = 0;
    var op = read_op();
    while (op != -1 && count < len) {       // correlated with read_op
        store(ir + count, op);
        count = count + 1;
        op = read_op();
    }
    // pass 1: constant folding of adjacent slots
    var i = 0;
    var acc = 0;
    var peaks = 0;
    var prev = 0;
    while (i < count) {
        var v = get_ir(ir, i, len);
        if (err == 0) {                     // correlated with get_ir
            acc = fold(acc, v);
        }
        if (v > prev) { peaks = peaks + 1; }        // unanalyzable
        if (v * v > acc) { acc = acc + 1; }         // unanalyzable
        prev = v;
        i = i + 1;
    }
    print peaks;
    // pass 2: emit, with an intraprocedural state-flag idiom
    i = 0;
    var out = 0;
    var state = 0;
    while (i < count) {
        var w = get_ir(ir, i, len);
        if (err == 0) {
            if (w != 0) { out = out + 1; state = 1; } else { state = 2; }
        }
        if (state == 1) { print w; }       // intra: state just assigned
        if (state == 2) { print 0; }
        i = i + 1;
    }
    print acc;
    print out;
    print folded;
    return acc;
}
"""


def _ref_workload(name: str, length: int, low: int, high: int,
                  seed: int) -> Workload:
    rng = random.Random(seed)
    return Workload([rng.randint(low, high) for _ in range(length)],
                    name=f"{name}-ref")


_SOURCES = {
    "go_like": GO_LIKE,
    "m88ksim_like": M88KSIM_LIKE,
    "compress_like": COMPRESS_LIKE,
    "li_like": LI_LIKE,
    "perl_like": PERL_LIKE,
    "icc_like": ICC_LIKE,
}

_WORKLOADS = {
    # name: (length, low, high, seed)
    "go_like": (25, -1, 2, 11),
    "m88ksim_like": (64, 1, 200, 12),
    "compress_like": (400, 1, 4, 13),
    "li_like": (80, 1, 40, 14),
    "perl_like": (500, 0, 126, 15),
    "icc_like": (40, 0, 9, 16),
}


def benchmark_names() -> List[str]:
    """The suite's benchmark names, in canonical order."""
    return list(_SOURCES)


def _merge_filler(program: ast.Program, name: str, scale: int) -> None:
    """Graft deterministic generated modules onto a core program.

    The paper's benchmarks are thousands of lines; the handwritten cores
    are idiom-dense miniatures.  The ``scale`` tier appends generated
    procedure modules (same idiom mix plus noise) and a new ``main``
    that runs the core first and the filler after, so Table 1/2 can be
    regenerated at a SPEC-like program size.
    """
    from repro.benchgen.generator import GeneratorOptions, generate_program

    core_main = program.proc("main")
    core_main.name = f"{name}_core"

    filler_seed = sum(ord(c) for c in name)
    filler = generate_program(filler_seed, GeneratorOptions(
        procedures=4 * scale, statements_per_proc=10, max_depth=3))

    existing_globals = {g.name for g in program.globals}
    for decl in filler.globals:
        if decl.name not in existing_globals:
            program.globals.append(decl)
            existing_globals.add(decl.name)

    for proc in filler.procs:
        if proc.name == "main":
            proc.name = "filler_main"
        program.procs.append(proc)

    program.procs.append(ast.ProcDef(name="main", params=[], body=[
        ast.VarDecl(name="core_result",
                    init=ast.CallExpr(name=f"{name}_core", args=[])),
        ast.VarDecl(name="filler_result",
                    init=ast.CallExpr(name="filler_main", args=[])),
        ast.Return(value=ast.Binary(op="+",
                                    left=ast.VarRef(name="core_result"),
                                    right=ast.VarRef(name="filler_result"))),
    ]))


def load_benchmark(name: str, scale: int = 1) -> BenchmarkProgram:
    """Parse one suite benchmark and build its ref workload.

    ``scale > 1`` grafts generated filler modules onto the core (see
    :func:`_merge_filler`); the workload gets a matching random tail.
    """
    source = _SOURCES[name]
    length, low, high, seed = _WORKLOADS[name]
    program = parse_program(source)
    workload = _ref_workload(name, length, low, high, seed)
    if scale > 1:
        _merge_filler(program, name, scale)
        tail = Workload.random(60 * scale, low=-8, high=8, seed=seed + 1000)
        workload = Workload(workload.values + tail.values,
                            name=f"{name}-ref-x{scale}")
    return BenchmarkProgram(name=name, source=source, program=program,
                            workload=workload)


def benchmark_suite(scale: int = 1) -> Dict[str, BenchmarkProgram]:
    """The whole suite, freshly parsed (entries are independent)."""
    return {name: load_benchmark(name, scale) for name in _SOURCES}
