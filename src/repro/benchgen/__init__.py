"""Workload substrate: benchmark programs and random program generation.

The paper evaluates on SPEC95 integer codes, which we cannot ship; this
package provides the substitute described in DESIGN.md:

- :mod:`repro.benchgen.patterns` — source-level idiom builders for the
  correlation patterns the paper identifies (return-value re-checks,
  repeated parameter validation, error-flag propagation, EOF loops...);
- :mod:`repro.benchgen.suite` — six fixed benchmark programs assembled
  from those idioms plus realistic noise, standing in for the paper's
  go / m88ksim / compress / li / perl / ICC benchmarks;
- :mod:`repro.benchgen.generator` — a seeded random generator of valid,
  terminating MiniC programs (fuel for property-based testing).
"""

from repro.benchgen.generator import GeneratorOptions, generate_program
from repro.benchgen.suite import BenchmarkProgram, benchmark_suite

__all__ = ["BenchmarkProgram", "GeneratorOptions", "benchmark_suite",
           "generate_program"]
