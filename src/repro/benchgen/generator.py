"""Seeded random generator of valid, terminating MiniC programs.

Programs are correct by construction:

- the call graph is acyclic (a procedure only calls higher-numbered
  procedures), so there is no unbounded recursion;
- every loop is either counted (`i` from 0 to a small bound, with the
  counter never reassigned in the body) or fuel-bounded;
- heap accesses only happen through pointers that were allocated with a
  positive size or guarded by a null check, so generated programs never
  fault (faulting programs are still *handled* by the system — the
  differential tests compare fault behaviour — they are just not what
  this generator aims for);
- a fraction of the code comes from the correlation idiom templates in
  :mod:`repro.benchgen.patterns`, the rest is arithmetic/branch noise.

Generation is deterministic per seed, which is what the property-based
tests and the scalability benchmarks need.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.lang import ast


@dataclass
class GeneratorOptions:
    """Knobs for random program shape."""

    procedures: int = 4           # in addition to main
    globals: int = 2
    max_params: int = 3
    statements_per_proc: int = 8
    max_depth: int = 3
    loop_bound: int = 4
    idiom_probability: float = 0.35
    use_heap: bool = True
    use_input: bool = True


class _ProcContext:
    """Mutable state while generating one procedure body."""

    def __init__(self, name: str, params: List[str]) -> None:
        self.name = name
        self.params = params
        self.scalars: List[str] = list(params)
        self.pointers: List[str] = []       # vars proven non-null
        self.counters: List[str] = []       # reserved loop counters
        self.var_count = 0

    def fresh_var(self, prefix: str = "v") -> str:
        name = f"{prefix}{self.var_count}"
        self.var_count += 1
        return name


class _Generator:
    def __init__(self, options: GeneratorOptions, seed: int) -> None:
        self.options = options
        self.rng = random.Random(seed)
        self.flag_global = "err"
        self.global_names = [f"g{i}" for i in range(options.globals)]
        self.proc_names = [f"p{i}" for i in range(options.procedures)]
        self.proc_params: dict = {}
        self.library_names: List[str] = []

    # -- expressions ----------------------------------------------------------

    def _readable(self, ctx: _ProcContext) -> List[str]:
        names = [n for n in ctx.scalars if n not in ctx.counters]
        names.extend(self.global_names)
        return names

    def gen_operand(self, ctx: _ProcContext) -> ast.Expr:
        names = self._readable(ctx)
        if names and self.rng.random() < 0.6:
            return ast.VarRef(name=self.rng.choice(names))
        return ast.IntLit(value=self.rng.randint(-4, 9))

    def gen_expr(self, ctx: _ProcContext, depth: int = 0) -> ast.Expr:
        roll = self.rng.random()
        if depth >= 2 or roll < 0.35:
            return self.gen_operand(ctx)
        if roll < 0.85:
            op = self.rng.choice(["+", "-", "*", "+", "-"])
            return ast.Binary(op=op, left=self.gen_expr(ctx, depth + 1),
                              right=self.gen_expr(ctx, depth + 1))
        if roll < 0.92:
            operand = self.gen_expr(ctx, depth + 1)
            if isinstance(operand, ast.IntLit):
                # Match the parser's folding of unary minus on literals
                # so generated ASTs are in canonical (re-parsable) form.
                return ast.IntLit(value=-operand.value)
            return ast.Unary(op="-", operand=operand)
        return ast.UnsignedCast(operand=self.gen_expr(ctx, depth + 1))

    def gen_condition(self, ctx: _ProcContext) -> ast.Expr:
        relop = self.rng.choice(["==", "!=", "<", "<=", ">", ">="])
        left = self.gen_operand(ctx)
        # Bias towards the analyzable (var relop const) shape, like the
        # 45% of analyzable conditionals the paper reports.
        if self.rng.random() < 0.75:
            right: ast.Expr = ast.IntLit(value=self.rng.randint(-2, 4))
        else:
            right = self.gen_operand(ctx)
        cond: ast.Expr = ast.Binary(op=relop, left=left, right=right)
        if self.rng.random() < 0.15:
            other = ast.Binary(op=self.rng.choice(["==", "<", ">"]),
                               left=self.gen_operand(ctx),
                               right=ast.IntLit(value=self.rng.randint(0, 3)))
            cond = ast.Binary(op=self.rng.choice(["&&", "||"]),
                              left=cond, right=other)
        return cond

    # -- statements -----------------------------------------------------------

    def gen_call(self, ctx: _ProcContext, caller_index: int
                 ) -> Optional[ast.Expr]:
        callees = self.proc_names[caller_index + 1:]
        if not callees:
            return None
        callee = self.rng.choice(callees)
        args = [self.gen_operand(ctx)
                for _ in range(len(self.proc_params[callee]))]
        return ast.CallExpr(name=callee, args=args)

    def gen_assign_target(self, ctx: _ProcContext,
                          body: List[ast.Stmt]) -> str:
        candidates = [n for n in ctx.scalars if n not in ctx.counters
                      and n not in ctx.params]
        if candidates and self.rng.random() < 0.5:
            return self.rng.choice(candidates)
        if self.global_names and self.rng.random() < 0.3:
            return self.rng.choice(self.global_names)
        name = ctx.fresh_var()
        ctx.scalars.append(name)
        body.append(ast.VarDecl(name=name, init=ast.IntLit(value=0)))
        return name

    def gen_stmt(self, ctx: _ProcContext, body: List[ast.Stmt],
                 caller_index: int, depth: int) -> None:
        roll = self.rng.random()
        if roll < 0.32:
            target = self.gen_assign_target(ctx, body)
            body.append(ast.Assign(name=target, value=self.gen_expr(ctx)))
        elif roll < 0.42 and self.options.use_input:
            target = self.gen_assign_target(ctx, body)
            body.append(ast.Assign(name=target, value=ast.InputExpr()))
        elif roll < 0.55:
            call = self.gen_call(ctx, caller_index)
            if call is None:
                body.append(ast.Print(value=self.gen_operand(ctx)))
                return
            assert isinstance(call, ast.CallExpr)
            if self.rng.random() < 0.7:
                target = self.gen_assign_target(ctx, body)
                body.append(ast.Assign(name=target, value=call))
            else:
                body.append(ast.CallStmt(call=call))
        elif roll < 0.72 and depth < self.options.max_depth:
            then_body: List[ast.Stmt] = []
            else_body: List[ast.Stmt] = []
            self.gen_stmts(ctx, then_body, caller_index, depth + 1,
                           count=self.rng.randint(1, 3))
            if self.rng.random() < 0.5:
                self.gen_stmts(ctx, else_body, caller_index, depth + 1,
                               count=self.rng.randint(1, 2))
            body.append(ast.If(cond=self.gen_condition(ctx),
                               then_body=then_body, else_body=else_body))
        elif roll < 0.82 and depth < self.options.max_depth - 1:
            self.gen_counted_loop(ctx, body, caller_index, depth)
        elif roll < 0.9 and self.options.use_heap:
            self.gen_heap_block(ctx, body)
        else:
            body.append(ast.Print(value=self.gen_operand(ctx)))

    def gen_counted_loop(self, ctx: _ProcContext, body: List[ast.Stmt],
                         caller_index: int, depth: int) -> None:
        counter = ctx.fresh_var("i")
        ctx.scalars.append(counter)
        ctx.counters.append(counter)
        bound = self.rng.randint(1, self.options.loop_bound)
        body.append(ast.VarDecl(name=counter, init=ast.IntLit(value=0)))
        loop_body: List[ast.Stmt] = []
        self.gen_stmts(ctx, loop_body, caller_index, depth + 1,
                       count=self.rng.randint(1, 3))
        loop_body.append(ast.Assign(
            name=counter,
            value=ast.Binary(op="+", left=ast.VarRef(name=counter),
                             right=ast.IntLit(value=1))))
        body.append(ast.While(
            cond=ast.Binary(op="<", left=ast.VarRef(name=counter),
                            right=ast.IntLit(value=bound)),
            body=loop_body))

    def gen_heap_block(self, ctx: _ProcContext, body: List[ast.Stmt]) -> None:
        pointer = ctx.fresh_var("ptr")
        ctx.scalars.append(pointer)
        size = self.rng.randint(1, 3)
        body.append(ast.VarDecl(name=pointer,
                                init=ast.AllocExpr(size=ast.IntLit(value=size))))
        body.append(ast.StoreStmt(address=ast.VarRef(name=pointer),
                                  value=self.gen_operand(ctx)))
        target = ctx.fresh_var()
        ctx.scalars.append(target)
        body.append(ast.VarDecl(name=target,
                                init=ast.LoadExpr(
                                    address=ast.VarRef(name=pointer))))
        ctx.pointers.append(pointer)

    def gen_idiom(self, ctx: _ProcContext, body: List[ast.Stmt],
                  caller_index: int) -> bool:
        """Insert one correlation idiom; returns False if impossible here."""
        from repro.benchgen import patterns
        builders = [patterns.return_value_recheck,
                    patterns.parameter_revalidation,
                    patterns.error_flag_check,
                    patterns.flag_loop,
                    patterns.recursive_accumulate]
        builder = self.rng.choice(builders)
        return builder(self, ctx, body, caller_index)

    def gen_stmts(self, ctx: _ProcContext, body: List[ast.Stmt],
                  caller_index: int, depth: int, count: int) -> None:
        for _ in range(count):
            if (depth <= 1
                    and self.rng.random() < self.options.idiom_probability
                    and self.gen_idiom(ctx, body, caller_index)):
                continue
            self.gen_stmt(ctx, body, caller_index, depth)

    # -- procedures ---------------------------------------------------------------

    def gen_proc(self, index: int) -> ast.ProcDef:
        name = self.proc_names[index]
        params = self.proc_params[name]
        ctx = _ProcContext(name, params)
        body: List[ast.Stmt] = []
        self.gen_stmts(ctx, body, index, depth=0,
                       count=self.options.statements_per_proc)
        body.append(ast.Return(value=self.gen_operand(ctx)))
        return ast.ProcDef(name=name, params=list(params), body=body)

    def gen_main(self) -> ast.ProcDef:
        ctx = _ProcContext("main", [])
        body: List[ast.Stmt] = []
        self.gen_stmts(ctx, body, caller_index=-1, depth=0,
                       count=self.options.statements_per_proc)
        body.append(ast.Print(value=self.gen_operand(ctx)))
        body.append(ast.Return(value=ast.IntLit(value=0)))
        return ast.ProcDef(name="main", params=[], body=body)

    def generate(self) -> ast.Program:
        from repro.benchgen import patterns

        program = ast.Program()
        program.globals.append(ast.GlobalDecl(name=self.flag_global, init=0))
        for name in self.global_names:
            program.globals.append(
                ast.GlobalDecl(name=name, init=self.rng.randint(-2, 4)))
        library = patterns.build_library(self.rng, count=4,
                                         flag_global=self.flag_global)
        self.library_names = [p.name for p in library]
        for name in self.proc_names:
            arity = self.rng.randint(0, self.options.max_params)
            self.proc_params[name] = [f"a{j}" for j in range(arity)]
        program.procs.extend(library)
        for index in range(len(self.proc_names)):
            program.procs.append(self.gen_proc(index))
        program.procs.append(self.gen_main())
        return program


def generate_program(seed: int,
                     options: Optional[GeneratorOptions] = None) -> ast.Program:
    """Generate a deterministic random MiniC program for ``seed``."""
    opts = options if options is not None else GeneratorOptions()
    return _Generator(opts, seed).generate()
