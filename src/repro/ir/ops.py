"""Operator semantics shared by the interpreter and the analysis.

MiniC integers are unbounded Python ints with *total* arithmetic:
division/modulo by zero yield 0 (documented language rule), so that the
interpreter never faults on arithmetic and differential tests compare
values, not trap behaviour.  The only runtime fault is a null heap
access.

:class:`RelOp` is the shared vocabulary of relational operators used by
branch predicates and by analysis queries ``(v relop c)``.
"""

from __future__ import annotations

from enum import Enum, unique
from typing import Callable, Dict


@unique
class RelOp(Enum):
    """The six relational operators, with their concrete semantics."""

    EQ = "=="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="

    def evaluate(self, left: int, right: int) -> bool:
        return _RELOP_FUNCS[self](left, right)

    def negated(self) -> "RelOp":
        """The operator describing the complement: ``not (a op b)``."""
        return _NEGATED[self]

    def swapped(self) -> "RelOp":
        """The operator R' with ``a R b  <=>  b R' a`` (for const-on-left)."""
        return _SWAPPED[self]

    @staticmethod
    def from_symbol(symbol: str) -> "RelOp":
        return _BY_SYMBOL[symbol]

    def __str__(self) -> str:
        return self.value


_RELOP_FUNCS: Dict[RelOp, Callable[[int, int], bool]] = {
    RelOp.EQ: lambda a, b: a == b,
    RelOp.NE: lambda a, b: a != b,
    RelOp.LT: lambda a, b: a < b,
    RelOp.LE: lambda a, b: a <= b,
    RelOp.GT: lambda a, b: a > b,
    RelOp.GE: lambda a, b: a >= b,
}

_NEGATED = {
    RelOp.EQ: RelOp.NE,
    RelOp.NE: RelOp.EQ,
    RelOp.LT: RelOp.GE,
    RelOp.LE: RelOp.GT,
    RelOp.GT: RelOp.LE,
    RelOp.GE: RelOp.LT,
}

_SWAPPED = {
    RelOp.EQ: RelOp.EQ,
    RelOp.NE: RelOp.NE,
    RelOp.LT: RelOp.GT,
    RelOp.LE: RelOp.GE,
    RelOp.GT: RelOp.LT,
    RelOp.GE: RelOp.LE,
}

_BY_SYMBOL = {op.value: op for op in RelOp}

RELOP_SYMBOLS = tuple(_BY_SYMBOL)

UNSIGNED_MASK = 0xFF
"""``(unsigned) e`` keeps the low 8 bits — an unsigned-char fetch."""


def eval_binary(op: str, left: int, right: int) -> int:
    """Apply a MiniC binary operator; relationals/logicals yield 0/1."""
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        # Total semantics: x / 0 == 0; otherwise C-style truncation.
        if right == 0:
            return 0
        quotient = abs(left) // abs(right)
        return quotient if (left >= 0) == (right >= 0) else -quotient
    if op == "%":
        # Total semantics: x % 0 == 0; sign follows the dividend (C-style).
        if right == 0:
            return 0
        remainder = abs(left) % abs(right)
        return remainder if left >= 0 else -remainder
    if op == "&&":
        # Eager in expression context (branch context short-circuits via CFG).
        return 1 if (left != 0 and right != 0) else 0
    if op == "||":
        return 1 if (left != 0 or right != 0) else 0
    if op in _BY_SYMBOL:
        return 1 if RelOp.from_symbol(op).evaluate(left, right) else 0
    raise ValueError(f"unknown binary operator {op!r}")


def eval_unary(op: str, operand: int) -> int:
    """Apply a MiniC unary operator."""
    if op == "-":
        return -operand
    if op == "!":
        return 1 if operand == 0 else 0
    raise ValueError(f"unknown unary operator {op!r}")


def eval_convert(operand: int) -> int:
    """``(unsigned) e``: the low 8 bits, always in [0, 255]."""
    return operand & UNSIGNED_MASK
