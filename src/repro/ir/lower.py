"""Lowering: MiniC AST → interprocedural CFG.

Shape guarantees the rest of the system relies on:

- one operation per node; effectful expressions (calls, ``input``,
  ``alloc``, ``load``) are hoisted out of compound expressions into
  compiler temporaries, so branch predicates, call arguments, and store
  operands are pure;
- short-circuit ``&&``/``||``/``!`` in *condition position* lower to
  branch trees (each relational test becomes its own BranchNode, the
  unit the optimization eliminates);
- every call site lowers to ``CallNode → CallExitNode`` wired in
  call-site normal form, with the return value bound by the call-site
  exit node;
- ``return e`` lowers to ``$ret := e`` followed by an edge to the
  procedure exit; a body that falls off the end returns 0.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import LoweringError
from repro.ir import expr as ir
from repro.ir.icfg import EdgeKind, ICFG, ProcInfo
from repro.ir.nodes import (AssignNode, BranchNode, CallExitNode, CallNode,
                            EntryNode, ExitNode, Node, NopNode, PrintNode,
                            StoreNode)
from repro.lang import ast
from repro.lang.sema import check_program, collect_locals


class _ProcLowerer:
    """Lowers one procedure body into an already-scaffolded ICFG."""

    def __init__(self, icfg: ICFG, proc: ast.ProcDef,
                 global_names: frozenset, entry_id: int, exit_id: int) -> None:
        self.icfg = icfg
        self.proc = proc
        self.global_names = global_names
        self.info = icfg.procs[proc.name]
        self.entry_id = entry_id
        self.exit_id = exit_id
        self.local_names = set(proc.params) | set(collect_locals(proc))
        self.cursor: Optional[int] = None
        self.temp_count = 0
        # (continue_target, break_collector_nop) per enclosing loop.
        self.loop_stack: List[Tuple[int, int]] = []

    # -- plumbing ----------------------------------------------------------

    def resolve(self, name: str) -> ir.VarId:
        if name in self.local_names:
            return ir.VarId.local(self.proc.name, name)
        if name in self.global_names:
            return ir.VarId.global_(name)
        raise LoweringError(f"{self.proc.name}: unresolved name {name!r}")

    def new_temp(self) -> ir.VarId:
        temp = ir.VarId.local(self.proc.name, f"$t{self.temp_count}")
        self.temp_count += 1
        self.info.locals.append(temp)
        return temp

    def emit(self, node: Node) -> Node:
        """Register ``node`` and chain it after the current cursor."""
        self.icfg.add_node(node)
        if self.cursor is not None:
            self.icfg.add_edge(self.cursor, node.id, EdgeKind.NORMAL)
        self.cursor = node.id
        return node

    def fresh_nop(self, note: str) -> NopNode:
        node = NopNode(self.icfg.new_id(), self.proc.name, note)
        self.icfg.add_node(node)
        return node

    # -- expressions -------------------------------------------------------

    def lower_pure(self, expr: ast.Expr) -> ir.Expr:
        """Lower ``expr`` to a pure IR expression, hoisting effects."""
        if isinstance(expr, ast.IntLit):
            return ir.Const(expr.value)
        if isinstance(expr, ast.VarRef):
            return ir.VarExpr(self.resolve(expr.name))
        if isinstance(expr, ast.Unary):
            return ir.UnaryExpr(expr.op, self.lower_pure(expr.operand))
        if isinstance(expr, ast.Binary):
            left = self.lower_pure(expr.left)
            right = self.lower_pure(expr.right)
            return ir.BinaryExpr(expr.op, left, right)
        if isinstance(expr, ast.UnsignedCast):
            return ir.Convert(self.lower_pure(expr.operand))
        if isinstance(expr, ast.CallExpr):
            temp = self.new_temp()
            self.emit_call(expr, temp)
            return ir.VarExpr(temp)
        if isinstance(expr, ast.InputExpr):
            return ir.VarExpr(self.hoist(ir.InputRead()))
        if isinstance(expr, ast.AllocExpr):
            size = self.lower_pure(expr.size)
            return ir.VarExpr(self.hoist(ir.Alloc(size)))
        if isinstance(expr, ast.LoadExpr):
            address = self.lower_pure(expr.address)
            return ir.VarExpr(self.hoist(ir.Load(address)))
        raise LoweringError(f"unknown expression {type(expr).__name__}")

    def hoist(self, rhs: ir.Expr) -> ir.VarId:
        temp = self.new_temp()
        self.emit(AssignNode(self.icfg.new_id(), self.proc.name, temp, rhs))
        return temp

    def lower_assign_rhs(self, target: ir.VarId, expr: ast.Expr) -> None:
        """Lower ``target = expr`` avoiding a temp for a top-level effect."""
        if isinstance(expr, ast.CallExpr):
            self.emit_call(expr, target)
            return
        if isinstance(expr, ast.InputExpr):
            rhs: ir.Expr = ir.InputRead()
        elif isinstance(expr, ast.AllocExpr):
            rhs = ir.Alloc(self.lower_pure(expr.size))
        elif isinstance(expr, ast.LoadExpr):
            rhs = ir.Load(self.lower_pure(expr.address))
        else:
            rhs = self.lower_pure(expr)
        self.emit(AssignNode(self.icfg.new_id(), self.proc.name, target, rhs))

    def emit_call(self, call: ast.CallExpr, result: Optional[ir.VarId]) -> None:
        args = [self.lower_pure(a) for a in call.args]
        callee_info = self.icfg.procs.get(call.name)
        if callee_info is None:
            raise LoweringError(f"call to unknown procedure {call.name!r}")
        entry_id = callee_info.entries[0]
        exit_id = callee_info.exits[0]
        call_node = CallNode(self.icfg.new_id(), self.proc.name,
                             callee=call.name, args=args, entry_id=entry_id)
        self.emit(call_node)
        call_exit = CallExitNode(self.icfg.new_id(), self.proc.name, result)
        self.icfg.add_node(call_exit)
        self.icfg.add_edge(call_node.id, entry_id, EdgeKind.CALL)
        self.icfg.add_edge(call_node.id, call_exit.id, EdgeKind.LOCAL)
        self.icfg.add_edge(exit_id, call_exit.id, EdgeKind.RETURN)
        call_node.return_map[exit_id] = call_exit.id
        self.cursor = call_exit.id

    # -- conditions ----------------------------------------------------------

    def lower_cond(self, expr: ast.Expr) -> Tuple[Optional[int], Optional[int]]:
        """Lower ``expr`` in condition position from the current cursor.

        Returns attach points ``(true_point, false_point)`` — nop nodes
        whose pending NORMAL out-edge continues the corresponding arm.
        A ``None`` side is statically unreachable (constant condition).
        """
        if isinstance(expr, ast.Unary) and expr.op == "!":
            true_point, false_point = self.lower_cond(expr.operand)
            return false_point, true_point
        if isinstance(expr, ast.Binary) and expr.op in ("&&", "||"):
            return self._lower_shortcircuit(expr)
        if isinstance(expr, ast.IntLit):
            # Constant condition: fold, no branch node at all.
            point = self.cursor
            if expr.value != 0:
                return point, None
            return None, point

        predicate = self.lower_pure(expr)
        branch = BranchNode(self.icfg.new_id(), self.proc.name, predicate)
        self.emit(branch)
        true_nop = self.fresh_nop("then")
        false_nop = self.fresh_nop("else")
        self.icfg.add_edge(branch.id, true_nop.id, EdgeKind.TRUE)
        self.icfg.add_edge(branch.id, false_nop.id, EdgeKind.FALSE)
        self.cursor = None
        return true_nop.id, false_nop.id

    def _lower_shortcircuit(self, expr: ast.Binary) -> Tuple[Optional[int],
                                                             Optional[int]]:
        left_true, left_false = self.lower_cond(expr.left)
        if expr.op == "&&":
            self.cursor = left_true
            if left_true is None:
                return None, left_false
            right_true, right_false = self.lower_cond(expr.right)
            false_point = self._merge_points(left_false, right_false)
            return right_true, false_point
        # "||"
        self.cursor = left_false
        if left_false is None:
            return left_true, None
        right_true, right_false = self.lower_cond(expr.right)
        true_point = self._merge_points(left_true, right_true)
        return true_point, right_false

    def _merge_points(self, first: Optional[int],
                      second: Optional[int]) -> Optional[int]:
        if first is None:
            return second
        if second is None:
            return first
        join = self.fresh_nop("join")
        self.icfg.add_edge(first, join.id, EdgeKind.NORMAL)
        self.icfg.add_edge(second, join.id, EdgeKind.NORMAL)
        return join.id

    # -- statements ------------------------------------------------------------

    def lower_body(self) -> None:
        self.cursor = self.entry_id
        self.lower_stmts(self.proc.body)
        if self.cursor is not None:
            ret = AssignNode(self.icfg.new_id(), self.proc.name,
                             self.info.ret_var, ir.Const(0))
            self.emit(ret)
            self.icfg.add_edge(ret.id, self.exit_id, EdgeKind.NORMAL)
            self.cursor = None

    def lower_stmts(self, stmts: List[ast.Stmt]) -> None:
        for stmt in stmts:
            if self.cursor is None:
                return  # unreachable tail of the block; skip it
            self.lower_stmt(stmt)

    def lower_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.VarDecl):
            if stmt.init is not None:
                self.lower_assign_rhs(self.resolve(stmt.name), stmt.init)
            return
        if isinstance(stmt, ast.Assign):
            self.lower_assign_rhs(self.resolve(stmt.name), stmt.value)
            return
        if isinstance(stmt, ast.CallStmt):
            self.emit_call(stmt.call, result=None)
            return
        if isinstance(stmt, ast.If):
            self.lower_if(stmt)
            return
        if isinstance(stmt, ast.While):
            self.lower_while(stmt)
            return
        if isinstance(stmt, ast.Return):
            value = (self.lower_pure(stmt.value)
                     if stmt.value is not None else ir.Const(0))
            ret = AssignNode(self.icfg.new_id(), self.proc.name,
                             self.info.ret_var, value)
            self.emit(ret)
            self.icfg.add_edge(ret.id, self.exit_id, EdgeKind.NORMAL)
            self.cursor = None
            return
        if isinstance(stmt, ast.Print):
            value = self.lower_pure(stmt.value)
            self.emit(PrintNode(self.icfg.new_id(), self.proc.name, value))
            return
        if isinstance(stmt, ast.StoreStmt):
            address = self.lower_pure(stmt.address)
            value = self.lower_pure(stmt.value)
            self.emit(StoreNode(self.icfg.new_id(), self.proc.name,
                                address, value))
            return
        if isinstance(stmt, ast.Break):
            _, break_nop = self.loop_stack[-1]
            self.icfg.add_edge(self.cursor, break_nop, EdgeKind.NORMAL)
            self.cursor = None
            return
        if isinstance(stmt, ast.Continue):
            header, _ = self.loop_stack[-1]
            self.icfg.add_edge(self.cursor, header, EdgeKind.NORMAL)
            self.cursor = None
            return
        raise LoweringError(f"unknown statement {type(stmt).__name__}")

    def lower_if(self, stmt: ast.If) -> None:
        true_point, false_point = self.lower_cond(stmt.cond)

        self.cursor = true_point
        if true_point is not None:
            self.lower_stmts(stmt.then_body)
        then_end = self.cursor

        self.cursor = false_point
        if false_point is not None:
            self.lower_stmts(stmt.else_body)
        else_end = self.cursor

        self.cursor = self._merge_points(then_end, else_end)

    def lower_while(self, stmt: ast.While) -> None:
        header = self.fresh_nop("loop")
        if self.cursor is not None:
            self.icfg.add_edge(self.cursor, header.id, EdgeKind.NORMAL)
        self.cursor = header.id
        true_point, false_point = self.lower_cond(stmt.cond)

        break_nop = self.fresh_nop("break")
        self.loop_stack.append((header.id, break_nop.id))
        self.cursor = true_point
        if true_point is not None:
            self.lower_stmts(stmt.body)
            if self.cursor is not None:
                self.icfg.add_edge(self.cursor, header.id, EdgeKind.NORMAL)
        self.loop_stack.pop()

        exit_point = false_point
        if self.icfg.pred_edges(break_nop.id):
            if exit_point is not None:
                self.icfg.add_edge(exit_point, break_nop.id, EdgeKind.NORMAL)
            self.cursor = break_nop.id
        else:
            self.icfg.remove_node(break_nop.id)
            self.cursor = exit_point


def lower_program(program: ast.Program, check: bool = True) -> ICFG:
    """Lower a checked MiniC program to its ICFG."""
    from repro import obs
    with obs.span("ir.lower") as obs_span:
        icfg = _lower_program(program, check)
        obs_span.set(procs=len(icfg.procs), nodes=icfg.node_count())
    return icfg


def _lower_program(program: ast.Program, check: bool) -> ICFG:
    """The untraced body of :func:`lower_program`."""
    if check:
        check_program(program)

    icfg = ICFG(main="main")
    global_names = frozenset(g.name for g in program.globals)
    for decl in program.globals:
        icfg.globals[ir.VarId.global_(decl.name)] = decl.init

    # Pass 1: scaffold every procedure so call lowering can reference
    # entries/exits of procedures defined later in the file.
    scaffold: Dict[str, Tuple[int, int]] = {}
    for proc in program.procs:
        params = [ir.VarId.local(proc.name, p) for p in proc.params]
        locals_ = list(params)
        locals_.extend(ir.VarId.local(proc.name, v) for v in collect_locals(proc))
        locals_.append(ir.VarId.ret(proc.name))
        info = ProcInfo(proc.name, params=params, locals=locals_)
        icfg.add_proc(info)
        entry = EntryNode(icfg.new_id(), proc.name)
        exit_node = ExitNode(icfg.new_id(), proc.name)
        icfg.add_node(entry)
        icfg.add_node(exit_node)
        info.entries.append(entry.id)
        info.exits.append(exit_node.id)
        scaffold[proc.name] = (entry.id, exit_node.id)

    # Pass 2: lower bodies.
    for proc in program.procs:
        entry_id, exit_id = scaffold[proc.name]
        _ProcLowerer(icfg, proc, global_names, entry_id, exit_id).lower_body()

    return icfg
