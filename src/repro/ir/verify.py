"""Structural well-formedness checks for ICFGs.

The restructuring transformation is by far the most delicate part of the
system, so every optimized graph is re-verified.  The invariants checked
here are exactly the ones the interpreter relies on; a verifier-clean
graph cannot get the interpreter stuck (it can still loop forever, which
the step budget handles).

Checked invariants:

1.  Edge indices are symmetric and contain no duplicate edges.
2.  Every node belongs to a known procedure; intraprocedural edges stay
    inside it.
3.  Branch nodes have exactly one TRUE and one FALSE out-edge and
    nothing else; all other flow-through nodes have exactly one NORMAL
    out-edge.
4.  Call-site normal form: call nodes have one CALL edge (to an entry of
    their callee) and at least one LOCAL edge (each to a CallExit);
    every CallExit has exactly one LOCAL and one RETURN predecessor, and
    its RETURN predecessor is an exit of the called procedure.
5.  Return maps are consistent: values are exactly the call's LOCAL
    successors, keys are exits of the callee, and every callee exit
    reachable from the call's target entry has a mapping.
6.  Entry nodes have only CALL in-edges (main's start entry may have
    none) and one NORMAL out-edge; exit nodes have only RETURN out-edges
    and only intraprocedural in-edges.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from repro.errors import VerificationError
from repro.ir.icfg import EdgeKind, ICFG, INTRA_KINDS
from repro.ir.nodes import (BranchNode, CallExitNode, CallNode, EntryNode,
                            ExitNode, Node)


def _fail(message: str) -> None:
    raise VerificationError(message)


def _check_edge_symmetry(icfg: ICFG) -> None:
    forward = set()
    for node_id in icfg.nodes:
        edges = icfg.succ_edges(node_id)
        if len(set(edges)) != len(edges):
            _fail(f"duplicate out-edges at node {node_id}")
        for edge in edges:
            if edge.src != node_id:
                _fail(f"edge {edge} filed under wrong source {node_id}")
            if edge.dst not in icfg.nodes:
                _fail(f"edge {edge} targets unknown node")
            forward.add(edge)
    backward = set()
    for node_id in icfg.nodes:
        for edge in icfg.pred_edges(node_id):
            if edge.dst != node_id:
                _fail(f"edge {edge} filed under wrong destination {node_id}")
            backward.add(edge)
    if forward != backward:
        diff = forward.symmetric_difference(backward)
        _fail(f"succ/pred indices disagree on: {sorted(map(str, diff))}")


def _out_kinds(icfg: ICFG, node_id: int) -> Dict[EdgeKind, int]:
    counts: Dict[EdgeKind, int] = {}
    for edge in icfg.succ_edges(node_id):
        counts[edge.kind] = counts.get(edge.kind, 0) + 1
    return counts


def _in_kinds(icfg: ICFG, node_id: int) -> Dict[EdgeKind, int]:
    counts: Dict[EdgeKind, int] = {}
    for edge in icfg.pred_edges(node_id):
        counts[edge.kind] = counts.get(edge.kind, 0) + 1
    return counts


def _reachable_exits(icfg: ICFG, entry_id: int, proc: str) -> Set[int]:
    """Exit nodes of ``proc`` reachable from ``entry_id`` within the
    procedure.  LOCAL edges stand in for 'the call returns'."""
    seen: Set[int] = set()
    stack = [entry_id]
    exits: Set[int] = set()
    while stack:
        node_id = stack.pop()
        if node_id in seen:
            continue
        seen.add(node_id)
        node = icfg.nodes[node_id]
        if isinstance(node, ExitNode) and node.proc == proc:
            exits.add(node_id)
            continue
        for edge in icfg.succ_edges(node_id):
            if edge.kind in INTRA_KINDS or edge.kind is EdgeKind.LOCAL:
                stack.append(edge.dst)
    return exits


def _check_node(icfg: ICFG, node: Node) -> None:
    out = _out_kinds(icfg, node.id)
    inn = _in_kinds(icfg, node.id)
    info = icfg.procs.get(node.proc)
    if info is None:
        _fail(f"node {node.id} belongs to unknown procedure {node.proc!r}")

    for edge in icfg.succ_edges(node.id):
        if edge.kind in INTRA_KINDS or edge.kind is EdgeKind.LOCAL:
            if icfg.nodes[edge.dst].proc != node.proc:
                _fail(f"intraprocedural edge {edge} crosses procedures")

    if isinstance(node, BranchNode):
        if out != {EdgeKind.TRUE: 1, EdgeKind.FALSE: 1}:
            _fail(f"branch {node.id} has out-edges {out}")
        return

    if isinstance(node, CallNode):
        if out.get(EdgeKind.CALL, 0) != 1:
            _fail(f"call {node.id} must have exactly one CALL edge, has {out}")
        if out.get(EdgeKind.LOCAL, 0) < 1:
            _fail(f"call {node.id} has no call-site exit")
        if set(out) - {EdgeKind.CALL, EdgeKind.LOCAL}:
            _fail(f"call {node.id} has stray out-edges {out}")
        callee = icfg.procs.get(node.callee)
        if callee is None:
            _fail(f"call {node.id} targets unknown procedure {node.callee!r}")
        if node.entry_id not in callee.entries:
            _fail(f"call {node.id} CALL target {node.entry_id} is not an "
                  f"entry of {node.callee!r}")
        call_edge_dst = [e.dst for e in icfg.succ_edges(node.id)
                         if e.kind is EdgeKind.CALL][0]
        if call_edge_dst != node.entry_id:
            _fail(f"call {node.id} CALL edge disagrees with entry_id")
        local_dsts = {e.dst for e in icfg.succ_edges(node.id)
                      if e.kind is EdgeKind.LOCAL}
        if set(node.return_map.values()) != local_dsts:
            _fail(f"call {node.id} return_map values {node.return_map} "
                  f"!= LOCAL successors {local_dsts}")
        for exit_id in node.return_map:
            if exit_id not in callee.exits:
                _fail(f"call {node.id} return_map key {exit_id} is not an "
                      f"exit of {node.callee!r}")
        needed = _reachable_exits(icfg, node.entry_id, node.callee)
        missing = needed - set(node.return_map)
        if missing:
            _fail(f"call {node.id} lacks return addresses for reachable "
                  f"exits {sorted(missing)} of {node.callee!r}")
        return

    if isinstance(node, CallExitNode):
        if inn.get(EdgeKind.LOCAL, 0) != 1 or inn.get(EdgeKind.RETURN, 0) != 1:
            _fail(f"call-exit {node.id} has in-edges {inn}; call-site normal "
                  f"form requires exactly one LOCAL and one RETURN")
        if set(inn) - {EdgeKind.LOCAL, EdgeKind.RETURN}:
            _fail(f"call-exit {node.id} has stray in-edges {inn}")
        call_id = icfg.call_pred_of_call_exit(node.id)
        exit_id = icfg.exit_pred_of_call_exit(node.id)
        call = icfg.nodes[call_id]
        if not isinstance(call, CallNode):
            _fail(f"call-exit {node.id} LOCAL pred {call_id} is not a call")
        exit_node = icfg.nodes[exit_id]
        if not isinstance(exit_node, ExitNode):
            _fail(f"call-exit {node.id} RETURN pred {exit_id} is not an exit")
        if isinstance(call, CallNode) and exit_node.proc != call.callee:
            _fail(f"call-exit {node.id} returns from {exit_node.proc!r} but "
                  f"its call targets {call.callee!r}")
        if out != {EdgeKind.NORMAL: 1}:
            _fail(f"call-exit {node.id} has out-edges {out}")
        return

    if isinstance(node, EntryNode):
        if node.id not in info.entries:
            _fail(f"entry node {node.id} missing from {node.proc!r} entries")
        if set(inn) - {EdgeKind.CALL}:
            _fail(f"entry {node.id} has non-CALL in-edges {inn}")
        if out != {EdgeKind.NORMAL: 1}:
            _fail(f"entry {node.id} has out-edges {out}")
        return

    if isinstance(node, ExitNode):
        if node.id not in info.exits:
            _fail(f"exit node {node.id} missing from {node.proc!r} exits")
        if set(out) - {EdgeKind.RETURN}:
            _fail(f"exit {node.id} has non-RETURN out-edges {out}")
        for kind in inn:
            if kind not in INTRA_KINDS:
                _fail(f"exit {node.id} has in-edge of kind {kind}")
        return

    # Plain flow-through nodes (Assign, Store, Print, Nop).
    if out != {EdgeKind.NORMAL: 1}:
        _fail(f"node {node.id} ({node.label()}) has out-edges {out}; "
              f"expected exactly one NORMAL")
    for kind in inn:
        if kind not in INTRA_KINDS:
            _fail(f"node {node.id} has in-edge of kind {kind}")


def _check_edge_symmetry_scoped(icfg: ICFG, node_ids: Iterable[int]) -> None:
    """Edge-index symmetry restricted to edges incident to ``node_ids``.

    Sufficient when every edge mutation touches both endpoint
    procedures (which :class:`~repro.ir.icfg.ICFG`'s mutators
    guarantee): an edge between two clean procedures cannot have
    changed, so only scope-incident edges need re-checking.
    """
    for node_id in node_ids:
        edges = icfg.succ_edges(node_id)
        if len(set(edges)) != len(edges):
            _fail(f"duplicate out-edges at node {node_id}")
        for edge in edges:
            if edge.src != node_id:
                _fail(f"edge {edge} filed under wrong source {node_id}")
            if edge.dst not in icfg.nodes:
                _fail(f"edge {edge} targets unknown node")
            if edge not in icfg.pred_edges(edge.dst):
                _fail(f"edge {edge} missing from predecessor index")
        for edge in icfg.pred_edges(node_id):
            if edge.dst != node_id:
                _fail(f"edge {edge} filed under wrong destination {node_id}")
            if edge.src not in icfg.nodes:
                _fail(f"edge {edge} comes from unknown node")
            if edge not in icfg.succ_edges(edge.src):
                _fail(f"edge {edge} missing from successor index")


def _check_proc_lists(icfg: ICFG,
                      scope: Optional[Set[str]] = None) -> None:
    listed: List[int] = []
    for info in icfg.procs.values():
        if scope is not None and info.name not in scope:
            continue
        if not info.entries:
            _fail(f"procedure {info.name!r} has no entry")
        if not info.exits:
            _fail(f"procedure {info.name!r} has no exit")
        listed.extend(info.entries)
        listed.extend(info.exits)
        for node_id in info.entries:
            node = icfg.nodes.get(node_id)
            if not isinstance(node, EntryNode) or node.proc != info.name:
                _fail(f"{info.name!r} entry list contains non-entry {node_id}")
        for node_id in info.exits:
            node = icfg.nodes.get(node_id)
            if not isinstance(node, ExitNode) or node.proc != info.name:
                _fail(f"{info.name!r} exit list contains non-exit {node_id}")
    if len(listed) != len(set(listed)):
        _fail("a node appears twice in entry/exit lists")


def verify_icfg(icfg: ICFG, procs: Optional[Iterable[str]] = None) -> None:
    """Raise :class:`VerificationError` on the first broken invariant.

    With ``procs`` the check is *scoped*: only nodes, lists, and
    incident edges of the named procedures are re-checked.  That is
    sound for incremental re-verification exactly when ``procs`` covers
    every procedure structurally changed since the graph was last known
    clean (the ICFG's dirty-set tracking provides that set, and
    out-of-band mutation marks everything dirty).  ``procs=None`` is
    the full check.
    """
    from repro import obs
    with obs.span("ir.verify", scoped=procs is not None):
        _verify(icfg, procs)


def _verify(icfg: ICFG, procs: Optional[Iterable[str]]) -> None:
    """The untraced body of :func:`verify_icfg`."""
    if icfg.main not in icfg.procs:
        _fail(f"main procedure {icfg.main!r} missing")
    if procs is None:
        _check_edge_symmetry(icfg)
        _check_proc_lists(icfg)
        for node in icfg.iter_nodes():
            _check_node(icfg, node)
        return
    scope = set(procs)
    if not scope:
        return
    scoped_nodes = [node for node in icfg.iter_nodes()
                    if node.proc in scope]
    _check_edge_symmetry_scoped(icfg, [node.id for node in scoped_nodes])
    _check_proc_lists(icfg, scope={name for name in scope
                                   if name in icfg.procs})
    for node in scoped_nodes:
        _check_node(icfg, node)
