"""Graph simplification: remove needless dummy nodes.

Restructuring leaves behind empty nodes: eliminated branch copies, join
nops whose merge collapsed to one predecessor, chains of forwarding
nops.  They cost nothing at run time conceptually (they are not
operations), but they bloat node counts and interpreter step counts, so
the pipeline compacts them after optimization.

A nop is removable when bypassing it cannot change semantics or break
call-site normal form:

- it has exactly one NORMAL out-edge (always true for nops), and
- every in-edge can be redirected to its successor without creating a
  duplicate edge, and
- it is not the last node keeping a procedure's entry wired (entries,
  exits, and call-site exits are never removed here).

The pass iterates to a fixpoint and preserves the verifier invariants
(checked by tests and re-verified by the pipeline).
"""

from __future__ import annotations

from repro.ir.icfg import EdgeKind, ICFG
from repro.ir.nodes import NopNode


def _try_bypass(icfg: ICFG, node_id: int) -> bool:
    """Redirect all in-edges of a nop to its successor; False if unsafe."""
    out_edges = icfg.succ_edges(node_id)
    if len(out_edges) != 1 or out_edges[0].kind is not EdgeKind.NORMAL:
        return False
    successor = out_edges[0].dst
    if successor == node_id:
        return False  # degenerate self-loop; leave it to reachability
    in_edges = icfg.pred_edges(node_id)
    # Redirecting must not create duplicate (src, dst, kind) edges; this
    # arises when a branch reaches the same join through both arms.
    for edge in in_edges:
        if icfg.has_edge(edge.src, successor, edge.kind):
            return False
    for edge in list(in_edges):
        icfg.remove_edge(edge)
        icfg.add_edge(edge.src, successor, edge.kind)
    icfg.remove_node(node_id)
    return True


def simplify_nops(icfg: ICFG) -> int:
    """Remove bypassable nop nodes; returns how many were removed.

    Unreachable nops (no predecessors) are removed outright, except the
    start node of main which has no predecessors by design (main's entry
    is an EntryNode, never a nop, so this cannot trigger on it).
    """
    removed = 0
    changed = True
    while changed:
        changed = False
        for node in list(icfg.iter_nodes()):
            if not isinstance(node, NopNode):
                continue
            if node.id not in icfg.nodes:
                continue
            if not icfg.pred_edges(node.id):
                icfg.remove_node(node.id)
                removed += 1
                changed = True
                continue
            if _try_bypass(icfg, node.id):
                removed += 1
                changed = True
    return removed
