"""Textual and DOT dumps of an ICFG (for debugging and golden tests)."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.ir.icfg import EdgeKind, ICFG
from repro.ir.nodes import BranchNode


def dump_icfg(icfg: ICFG) -> str:
    """Deterministic one-line-per-node dump, grouped by procedure."""
    lines: List[str] = []
    for proc_name in sorted(icfg.procs):
        info = icfg.procs[proc_name]
        params = ", ".join(str(p) for p in info.params)
        lines.append(f"proc {proc_name}({params}) "
                     f"entries={info.entries} exits={info.exits}")
        for node in icfg.iter_nodes():
            if node.proc != proc_name:
                continue
            succ_text = ", ".join(
                f"{e.kind.value}->{e.dst}" for e in icfg.succ_edges(node.id))
            lines.append(f"  [{node.id}] {node.label()}"
                         + (f"  ({succ_text})" if succ_text else ""))
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


_EDGE_STYLE = {
    EdgeKind.NORMAL: "",
    EdgeKind.TRUE: ' [label="T",color=darkgreen]',
    EdgeKind.FALSE: ' [label="F",color=red]',
    EdgeKind.CALL: ' [style=dashed,color=blue]',
    EdgeKind.LOCAL: ' [style=dotted]',
    EdgeKind.RETURN: ' [style=dashed,color=purple]',
}


def to_dot(icfg: ICFG, fills: Optional[Dict[int, str]] = None) -> str:
    """Graphviz rendering with one cluster per procedure.

    ``fills`` maps node ids to fill colors — the analysis overlay
    (``icbe analyze --dot``) uses it to color conditionals by their
    correlation status.
    """
    lines = ["digraph icfg {", "  node [shape=box,fontname=monospace];"]
    for index, proc_name in enumerate(sorted(icfg.procs)):
        lines.append(f"  subgraph cluster_{index} {{")
        lines.append(f'    label="{proc_name}";')
        for node in icfg.iter_nodes():
            if node.proc != proc_name:
                continue
            attrs = ""
            if isinstance(node, BranchNode):
                attrs += ",shape=diamond"
            if fills and node.id in fills:
                attrs += f',style=filled,fillcolor="{fills[node.id]}"'
            text = node.label().replace('"', "'")
            lines.append(f'    n{node.id} [label="{node.id}: {text}"{attrs}];')
        lines.append("  }")
    for node in icfg.iter_nodes():
        for edge in icfg.succ_edges(node.id):
            lines.append(
                f"  n{edge.src} -> n{edge.dst}{_EDGE_STYLE[edge.kind]};")
    lines.append("}")
    return "\n".join(lines) + "\n"


#: Overlay colors for `correlation_fills`.
FILL_FULL = "palegreen"
FILL_PARTIAL = "khaki"
FILL_NONE = "lightgray"


def correlation_fills(icfg: ICFG, results) -> Dict[int, str]:
    """Fill colors for an analysis overlay: one entry per conditional.

    ``results`` maps branch id -> :class:`CorrelationResult`; fully
    correlated branches render green, partially correlated yellow, the
    rest gray.
    """
    fills: Dict[int, str] = {}
    for branch_id, result in results.items():
        if result.fully_correlated:
            fills[branch_id] = FILL_FULL
        elif result.has_correlation:
            fills[branch_id] = FILL_PARTIAL
        else:
            fills[branch_id] = FILL_NONE
    return fills
