"""The interprocedural control flow graph (ICFG).

The ICFG combines every procedure's CFG and connects call sites with
procedure entries and exits (paper Fig. 3).  It is kept in *call-site
normal form*:

- each call node has exactly one procedure-entry successor (CALL edge)
  plus one LOCAL edge per associated call-site exit node;
- each call-site exit node has exactly one call-node predecessor (LOCAL)
  and one procedure-exit predecessor (RETURN).

Procedures may own multiple entry and exit nodes — that is the whole
point of entry/exit splitting — so :class:`ProcInfo` tracks lists.

The graph owns all mutation: nodes never hold edges, and the successor
and predecessor indices are updated together.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, unique
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.errors import LoweringError
from repro.ir.expr import VarId
from repro.ir.nodes import (AssignNode, BranchNode, CallExitNode, CallNode,
                            EntryNode, ExitNode, Node, NopNode)
from repro.utils.ids import IdAllocator


@unique
class EdgeKind(Enum):
    """How control (or analysis information) flows along an edge."""

    NORMAL = "normal"    # ordinary intraprocedural fallthrough
    TRUE = "true"        # branch taken
    FALSE = "false"      # branch not taken
    CALL = "call"        # call node -> procedure entry
    LOCAL = "local"      # call node -> call-site exit (bypass bookkeeping)
    RETURN = "return"    # procedure exit -> call-site exit

    def __str__(self) -> str:
        return self.value


#: Edge kinds a walker follows for *intraprocedural* control flow.
INTRA_KINDS = (EdgeKind.NORMAL, EdgeKind.TRUE, EdgeKind.FALSE)

#: Process-wide source of lineage-epoch tokens (see ICFG.restore_token).
#: Zero is reserved for "never restored".
_restore_tokens = 0


def next_restore_token() -> int:
    """A fresh, process-unique lineage token for a snapshot restore."""
    global _restore_tokens
    _restore_tokens += 1
    return _restore_tokens


@dataclass(frozen=True)
class Edge:
    """A directed edge; identity is the full (src, dst, kind) triple."""

    src: int
    dst: int
    kind: EdgeKind

    def __str__(self) -> str:
        return f"{self.src} -{self.kind}-> {self.dst}"


@dataclass
class ProcInfo:
    """Per-procedure bookkeeping the graph structure does not encode."""

    name: str
    params: List[VarId] = field(default_factory=list)
    locals: List[VarId] = field(default_factory=list)
    entries: List[int] = field(default_factory=list)
    exits: List[int] = field(default_factory=list)

    @property
    def ret_var(self) -> VarId:
        return VarId.ret(self.name)

    def copy(self) -> "ProcInfo":
        return ProcInfo(self.name, list(self.params), list(self.locals),
                        list(self.entries), list(self.exits))


class ICFG:
    """Whole-program interprocedural CFG in call-site normal form."""

    def __init__(self, main: str = "main") -> None:
        self.main = main
        self.nodes: Dict[int, Node] = {}
        self.procs: Dict[str, ProcInfo] = {}
        self.globals: Dict[VarId, int] = {}
        self._succs: Dict[int, List[Edge]] = {}
        self._preds: Dict[int, List[Edge]] = {}
        self._ids = IdAllocator()
        #: Monotonically-increasing mutation counter.  Every structural
        #: mutation bumps it, so ``generation`` equality between two
        #: points in time proves the graph was not touched in between —
        #: the validity token for every cached analysis.
        self.generation: int = 0
        #: proc name -> generation of its last structural change.  A
        #: name may outlive its procedure (``remove_unreachable`` can
        #: delete procs); staleness queries must tolerate that.
        self._proc_touched: Dict[str, int] = {}
        #: Lineage epoch.  The generation counter identifies a state
        #: *within* one mutation history, but a snapshot restore can
        #: rewind it — after which new mutations re-use generation
        #: numbers an earlier history already spent, and two different
        #: graph states share one generation.  Every restore therefore
        #: stamps a fresh, process-unique token here; equal tokens prove
        #: equal history, so (token, generation) identifies a state
        #: outright.  See :meth:`restored_state_matches`.
        self.restore_token: int = 0
        #: Where the last restore landed: the generation the snapshot
        #: captured, and the token of the history it was taken from.
        #: None until the graph has ever been restored into.
        self.restored_generation: Optional[int] = None
        self.restored_from_token: Optional[int] = None

    # -- mutation tracking ---------------------------------------------------

    def _touch(self, *procs: str) -> None:
        """Record a structural mutation affecting ``procs``."""
        self.generation += 1
        for proc in procs:
            self._proc_touched[proc] = self.generation

    def mark_all_dirty(self) -> None:
        """Declare out-of-band mutation of unknown extent (e.g. fault
        injection that bypasses the mutator methods): every procedure is
        considered touched and the generation advances."""
        self.generation += 1
        for name in self.procs:
            self._proc_touched[name] = self.generation
        for name in self._proc_touched:
            self._proc_touched[name] = self.generation

    def dirty_procs_since(self, generation: int) -> Set[str]:
        """Names of procedures structurally changed after ``generation``
        (including procedures deleted since then)."""
        return {name for name, gen in self._proc_touched.items()
                if gen > generation}

    def restored_state_matches(self, token: int, generation: int) -> bool:
        """Did the last restore land exactly on state
        ``(token, generation)``?

        True when the restored snapshot was taken from the history whose
        epoch was ``token``, at exactly ``generation`` — i.e. the graph
        right after the restore was byte-for-byte the state a cache
        synced at that (token, generation) pair describes, so the cache
        may adopt the new epoch instead of discarding everything."""
        return (self.restored_from_token == token
                and self.restored_generation == generation)

    # -- construction -------------------------------------------------------

    def add_proc(self, info: ProcInfo) -> None:
        if info.name in self.procs:
            raise LoweringError(f"duplicate procedure {info.name!r}")
        self.procs[info.name] = info

    def add_node(self, node: Node) -> Node:
        if node.id in self.nodes:
            raise LoweringError(f"duplicate node id {node.id}")
        self.nodes[node.id] = node
        self._succs[node.id] = []
        self._preds[node.id] = []
        self._ids.reserve_through(node.id)
        self._touch(node.proc)
        return node

    def new_id(self) -> int:
        return self._ids.allocate()

    def add_edge(self, src: int, dst: int, kind: EdgeKind) -> Edge:
        edge = Edge(src, dst, kind)
        if edge in self._succs[src]:
            raise LoweringError(f"duplicate edge {edge}")
        self._succs[src].append(edge)
        self._preds[dst].append(edge)
        self._touch(self.nodes[src].proc, self.nodes[dst].proc)
        return edge

    def remove_edge(self, edge: Edge) -> None:
        self._succs[edge.src].remove(edge)
        self._preds[edge.dst].remove(edge)
        self._touch(self.nodes[edge.src].proc, self.nodes[edge.dst].proc)

    def has_edge(self, src: int, dst: int, kind: EdgeKind) -> bool:
        return Edge(src, dst, kind) in self._succs[src]

    def remove_node(self, node_id: int) -> None:
        """Remove a node and every incident edge."""
        for edge in list(self._succs[node_id]):
            self.remove_edge(edge)
        for edge in list(self._preds[node_id]):
            self.remove_edge(edge)
        node = self.nodes.pop(node_id)
        del self._succs[node_id]
        del self._preds[node_id]
        self._touch(node.proc)
        info = self.procs.get(node.proc)
        if info is not None:
            if node_id in info.entries:
                info.entries.remove(node_id)
            if node_id in info.exits:
                info.exits.remove(node_id)

    def duplicate_node(self, node: Node) -> Node:
        """Register a copy of ``node`` under a fresh id (no edges).

        Entry/exit copies are appended to their procedure's entry/exit
        lists — duplication of those nodes *is* entry/exit splitting.
        """
        copy = node.copy_with_id(self.new_id())
        self.add_node(copy)
        info = self.procs[node.proc]
        if isinstance(node, EntryNode):
            info.entries.append(copy.id)
        elif isinstance(node, ExitNode):
            info.exits.append(copy.id)
        return copy

    # -- queries ---------------------------------------------------------

    def node(self, node_id: int) -> Node:
        return self.nodes[node_id]

    def succ_edges(self, node_id: int) -> Tuple[Edge, ...]:
        return tuple(self._succs[node_id])

    def pred_edges(self, node_id: int) -> Tuple[Edge, ...]:
        return tuple(self._preds[node_id])

    def successors(self, node_id: int) -> Tuple[int, ...]:
        return tuple(e.dst for e in self._succs[node_id])

    def predecessors(self, node_id: int) -> Tuple[int, ...]:
        return tuple(e.src for e in self._preds[node_id])

    def only_succ(self, node_id: int, kind: Optional[EdgeKind] = None) -> int:
        """The unique successor (optionally restricted to one edge kind)."""
        edges = [e for e in self._succs[node_id]
                 if kind is None or e.kind is kind]
        if len(edges) != 1:
            raise LoweringError(
                f"node {node_id} has {len(edges)} successors of kind {kind}")
        return edges[0].dst

    def branch_targets(self, node_id: int) -> Tuple[int, int]:
        """(true_successor, false_successor) of a branch node."""
        true_dst = false_dst = None
        for edge in self._succs[node_id]:
            if edge.kind is EdgeKind.TRUE:
                true_dst = edge.dst
            elif edge.kind is EdgeKind.FALSE:
                false_dst = edge.dst
        if true_dst is None or false_dst is None:
            raise LoweringError(f"branch {node_id} lacks true/false successors")
        return true_dst, false_dst

    def call_exits_of(self, call_id: int) -> Tuple[int, ...]:
        return tuple(e.dst for e in self._succs[call_id]
                     if e.kind is EdgeKind.LOCAL)

    def call_pred_of_call_exit(self, call_exit_id: int) -> int:
        for edge in self._preds[call_exit_id]:
            if edge.kind is EdgeKind.LOCAL:
                return edge.src
        raise LoweringError(f"call-exit {call_exit_id} has no call predecessor")

    def exit_pred_of_call_exit(self, call_exit_id: int) -> int:
        for edge in self._preds[call_exit_id]:
            if edge.kind is EdgeKind.RETURN:
                return edge.src
        raise LoweringError(f"call-exit {call_exit_id} has no exit predecessor")

    def iter_nodes(self) -> Iterator[Node]:
        """All nodes in ascending id order (deterministic)."""
        for node_id in sorted(self.nodes):
            yield self.nodes[node_id]

    def proc_nodes(self, proc: str) -> Iterator[Node]:
        for node in self.iter_nodes():
            if node.proc == proc:
                yield node

    def branch_nodes(self) -> List[BranchNode]:
        return [n for n in self.iter_nodes() if isinstance(n, BranchNode)]

    def call_nodes(self) -> List[CallNode]:
        return [n for n in self.iter_nodes() if isinstance(n, CallNode)]

    def main_entry(self) -> int:
        """The original entry of ``main`` (splitting never retargets it:
        the program always starts at entry 0 of main)."""
        return self.procs[self.main].entries[0]

    # -- metrics -------------------------------------------------------------

    def executable_node_count(self) -> int:
        return sum(1 for n in self.nodes.values() if n.is_executable)

    def conditional_node_count(self) -> int:
        return sum(1 for n in self.nodes.values() if isinstance(n, BranchNode))

    def node_count(self) -> int:
        return len(self.nodes)

    # -- maintenance -----------------------------------------------------------

    def remove_unreachable(self) -> int:
        """Drop nodes unreachable from main's entries; return count removed.

        Reachability follows control semantics: intraprocedural edges,
        CALL edges, LOCAL edges (a call's return points are reachable if
        the call is).  RETURN edges are *not* followed — a call-site exit
        is justified by its call, not by the callee's exit — but exits
        reachable inside a callee keep their RETURN edges meaningful.
        """
        reachable = set()
        stack = list(self.procs[self.main].entries[:1])
        while stack:
            node_id = stack.pop()
            if node_id in reachable:
                continue
            reachable.add(node_id)
            for edge in self._succs[node_id]:
                if edge.kind is EdgeKind.RETURN:
                    continue
                if edge.dst not in reachable:
                    stack.append(edge.dst)
        doomed = [nid for nid in self.nodes if nid not in reachable]
        for node_id in doomed:
            self.remove_node(node_id)
        # Prune return maps of entries/exits that vanished.
        for node in self.nodes.values():
            if isinstance(node, CallNode):
                node.return_map = {ex: ce for ex, ce in node.return_map.items()
                                   if ex in self.nodes and ce in self.nodes}
        # Procedures whose every node vanished (fully inlined or never
        # called) no longer exist.
        populated = {node.proc for node in self.nodes.values()}
        for name in list(self.procs):
            if name not in populated and name != self.main:
                del self.procs[name]
                self._touch(name)
        return len(doomed)

    def clone(self) -> "ICFG":
        """Deep structural copy preserving every node id."""
        other = ICFG(self.main)
        other.globals = dict(self.globals)
        for name, info in self.procs.items():
            other.procs[name] = info.copy()
        for node_id, node in self.nodes.items():
            copy = node.copy_with_id(node_id)
            other.nodes[node_id] = copy
            other._succs[node_id] = []
            other._preds[node_id] = []
        for edges in self._succs.values():
            for edge in edges:
                other._succs[edge.src].append(edge)
                other._preds[edge.dst].append(edge)
        other._ids = self._ids.clone()
        other.generation = self.generation
        other._proc_touched = dict(self._proc_touched)
        other.restore_token = self.restore_token
        other.restored_generation = self.restored_generation
        other.restored_from_token = self.restored_from_token
        return other
