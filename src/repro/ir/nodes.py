"""ICFG node kinds.

One node per operation (the paper's nodes are DAGs of a few operations;
single statements are the same granularity class).  Node identity is an
integer id owned by the enclosing :class:`~repro.ir.icfg.ICFG`; edges
live in the graph, not on nodes, so splitting a node never mutates
neighbours behind the graph's back.

Executable ("operation") nodes — the ones the safety theorem counts —
are Assign, Branch, Store, Print, and Call.  Entry, Exit, CallExit and
Nop are dummy nodes: they carry control (and, for CallExit, the
return-value binding) but are free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.ir.expr import Const, Expr, VarExpr, VarId
from repro.ir.ops import RelOp


@dataclass
class Node:
    """Base class: an ICFG vertex owned by procedure ``proc``."""

    id: int
    proc: str

    #: Executable nodes count as operations for path-length purposes.
    is_executable = False

    def defined_var(self) -> Optional[VarId]:
        """The variable this node assigns, if any."""
        return None

    def used_exprs(self) -> List[Expr]:
        """Every expression the node evaluates (for deref fact scanning)."""
        return []

    def label(self) -> str:
        """Short human-readable description for dumps."""
        return type(self).__name__

    def copy_with_id(self, new_id: int) -> "Node":
        """A duplicate of this node under a fresh id (edges not copied)."""
        raise NotImplementedError


@dataclass
class EntryNode(Node):
    """Procedure entry.  Procedures may own several after entry splitting."""

    def label(self) -> str:
        return f"entry {self.proc}"

    def copy_with_id(self, new_id: int) -> "EntryNode":
        return EntryNode(new_id, self.proc)


@dataclass
class ExitNode(Node):
    """Procedure exit.  Procedures may own several after exit splitting."""

    def label(self) -> str:
        return f"exit {self.proc}"

    def copy_with_id(self, new_id: int) -> "ExitNode":
        return ExitNode(new_id, self.proc)


@dataclass
class NopNode(Node):
    """Dummy control node (join points, loop headers, eliminated branches)."""

    note: str = ""

    def label(self) -> str:
        return f"nop {self.note}".rstrip()

    def copy_with_id(self, new_id: int) -> "NopNode":
        return NopNode(new_id, self.proc, self.note)


@dataclass
class AssignNode(Node):
    """``target := rhs``.  The rhs may be effectful only at its top level
    (Input/Alloc/Load), which lowering guarantees."""

    target: VarId = field(default_factory=lambda: VarId(None, "?"))
    rhs: Expr = field(default_factory=Const)

    is_executable = True

    def defined_var(self) -> Optional[VarId]:
        return self.target

    def used_exprs(self) -> List[Expr]:
        return [self.rhs]

    def label(self) -> str:
        return f"{self.target} := {self.rhs}"

    def copy_with_id(self, new_id: int) -> "AssignNode":
        return AssignNode(new_id, self.proc, self.target, self.rhs)


@dataclass
class BranchNode(Node):
    """Two-way conditional on a pure predicate expression.

    Out-edges carry TRUE/FALSE kinds.  :meth:`correlation_pattern` gives
    the ``(v relop c)`` shape the analysis understands, when the
    predicate has it.
    """

    predicate: Expr = field(default_factory=Const)

    is_executable = True

    def used_exprs(self) -> List[Expr]:
        return [self.predicate]

    def correlation_pattern(self) -> Optional[Tuple[VarId, RelOp, int]]:
        """Match ``v relop c`` / ``c relop v`` / bare ``v`` (== v != 0)."""
        pred = self.predicate
        if isinstance(pred, VarExpr):
            return pred.var, RelOp.NE, 0
        # BinaryExpr with relational operator and a var/const pair.
        from repro.ir.expr import BinaryExpr, as_const, as_var  # local import: cycle
        if isinstance(pred, BinaryExpr) and pred.op in {r.value for r in RelOp}:
            relop = RelOp.from_symbol(pred.op)
            left_var, right_const = as_var(pred.left), as_const(pred.right)
            if left_var is not None and right_const is not None:
                return left_var, relop, right_const
            left_const, right_var = as_const(pred.left), as_var(pred.right)
            if left_const is not None and right_var is not None:
                return right_var, relop.swapped(), left_const
        return None

    def label(self) -> str:
        return f"if {self.predicate}"

    def copy_with_id(self, new_id: int) -> "BranchNode":
        return BranchNode(new_id, self.proc, self.predicate)


@dataclass
class StoreNode(Node):
    """``store(address, value)`` — heap write; faults on NULL address."""

    address: Expr = field(default_factory=Const)
    value: Expr = field(default_factory=Const)

    is_executable = True

    def used_exprs(self) -> List[Expr]:
        return [self.address, self.value]

    def label(self) -> str:
        return f"store({self.address}, {self.value})"

    def copy_with_id(self, new_id: int) -> "StoreNode":
        return StoreNode(new_id, self.proc, self.address, self.value)


@dataclass
class PrintNode(Node):
    """``print value`` — appends to the observable output stream."""

    value: Expr = field(default_factory=Const)

    is_executable = True

    def used_exprs(self) -> List[Expr]:
        return [self.value]

    def label(self) -> str:
        return f"print {self.value}"

    def copy_with_id(self, new_id: int) -> "PrintNode":
        return PrintNode(new_id, self.proc, self.value)


@dataclass
class CallNode(Node):
    """Call site.  Successors: one CALL edge to an entry of ``callee`` and
    one LOCAL edge per associated call-site exit node.

    ``return_map`` realises exit splitting at run time: it maps each
    reachable exit node of the callee to the call-site exit node control
    resumes at — exactly the paper's "additional return addresses".
    """

    callee: str = ""
    args: List[Expr] = field(default_factory=list)
    entry_id: int = -1
    return_map: Dict[int, int] = field(default_factory=dict)

    is_executable = True

    def used_exprs(self) -> List[Expr]:
        return list(self.args)

    def label(self) -> str:
        rendered = ", ".join(str(a) for a in self.args)
        return f"call {self.callee}({rendered})"

    def copy_with_id(self, new_id: int) -> "CallNode":
        return CallNode(new_id, self.proc, self.callee, list(self.args),
                        self.entry_id, dict(self.return_map))


@dataclass
class CallExitNode(Node):
    """Call-site exit (paper Fig. 3): the return point of one call site.

    Predecessors: exactly one call node (LOCAL) and one procedure exit
    (RETURN).  If ``result`` is set, the callee's return value is bound
    to it when control resumes here.
    """

    result: Optional[VarId] = None

    def defined_var(self) -> Optional[VarId]:
        return self.result

    def label(self) -> str:
        if self.result is None:
            return "call-exit"
        return f"call-exit {self.result} := $ret"

    def copy_with_id(self, new_id: int) -> "CallExitNode":
        return CallExitNode(new_id, self.proc, self.result)
