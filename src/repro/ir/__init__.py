"""The interprocedural control-flow-graph (ICFG) substrate.

This package is the IR the whole reproduction runs on: MiniC programs
are lowered to one statement-level node per operation, procedures are
stitched together in the *call-site normal form* of paper Fig. 3, and
both the correlation analysis and the restructuring operate directly on
this graph.

Key concepts:

- :class:`~repro.ir.icfg.ICFG` — the whole-program graph; procedures may
  have multiple entries/exits (the result of entry/exit splitting).
- :class:`~repro.ir.nodes.Node` subclasses — Entry, Exit, Call, CallExit,
  Assign, Branch, Store, Print, Nop.
- :class:`~repro.ir.expr.VarId` — scoped variable identity (globals vs
  per-procedure locals vs the per-procedure return slot ``$ret``).
- :func:`~repro.ir.lower.lower_program` — AST → ICFG.
- :func:`~repro.ir.verify.verify_icfg` — structural invariants, run
  after every transformation.
"""

from repro.ir.expr import (Alloc, BinaryExpr, Const, Convert, Expr, InputRead,
                           Load, UnaryExpr, VarExpr, VarId)
from repro.ir.icfg import Edge, EdgeKind, ICFG, ProcInfo
from repro.ir.lower import lower_program
from repro.ir.nodes import (AssignNode, BranchNode, CallExitNode, CallNode,
                            EntryNode, ExitNode, Node, NopNode, PrintNode,
                            StoreNode)
from repro.ir.ops import RelOp
from repro.ir.printer import dump_icfg
from repro.ir.verify import verify_icfg

__all__ = [
    "Alloc", "AssignNode", "BinaryExpr", "BranchNode", "CallExitNode",
    "CallNode", "Const", "Convert", "Edge", "EdgeKind", "EntryNode",
    "ExitNode", "Expr", "ICFG", "InputRead", "Load", "Node", "NopNode",
    "PrintNode", "ProcInfo", "RelOp", "StoreNode", "UnaryExpr", "VarExpr",
    "VarId", "dump_icfg", "lower_program", "verify_icfg",
]
