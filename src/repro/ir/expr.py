"""IR expressions and scoped variable identities.

IR expressions are *pure* except for three effectful leaf forms that
lowering only ever places at the top of an assignment right-hand side:
:class:`InputRead` (consumes the workload stream), :class:`Alloc`
(allocates, may yield NULL), and :class:`Load` (faults on NULL).  Every
other position — branch predicates, call arguments, store operands,
nested operands — contains only pure expressions, which is what makes
branch elimination safe: deleting a conditional deletes no side effect.

Variables are :class:`VarId` values: globals have ``scope=None``; locals,
parameters, and compiler temporaries are scoped to their procedure; each
procedure has a distinguished return slot ``VarId(proc, "$ret")``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

RET_NAME = "$ret"


@dataclass(frozen=True)
class VarId:
    """Identity of a variable: global (scope None) or procedure-local."""

    scope: Optional[str]
    name: str

    @property
    def is_global(self) -> bool:
        return self.scope is None

    @property
    def is_ret(self) -> bool:
        return self.name == RET_NAME

    @staticmethod
    def global_(name: str) -> "VarId":
        return VarId(None, name)

    @staticmethod
    def local(proc: str, name: str) -> "VarId":
        return VarId(proc, name)

    @staticmethod
    def ret(proc: str) -> "VarId":
        return VarId(proc, RET_NAME)

    def __str__(self) -> str:
        if self.scope is None:
            return self.name
        return f"{self.scope}::{self.name}"


# --------------------------------------------------------------------------
# Expression classes
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Expr:
    """Base class for IR expressions."""

    def free_vars(self) -> Tuple[VarId, ...]:
        return tuple(self._walk_vars())

    def _walk_vars(self) -> Iterator[VarId]:
        return iter(())

    @property
    def is_pure(self) -> bool:
        """True if evaluation has no effect and cannot fault."""
        return True


@dataclass(frozen=True)
class Const(Expr):
    value: int = 0

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class VarExpr(Expr):
    var: VarId = field(default_factory=lambda: VarId(None, "?"))

    def _walk_vars(self) -> Iterator[VarId]:
        yield self.var

    def __str__(self) -> str:
        return str(self.var)


@dataclass(frozen=True)
class UnaryExpr(Expr):
    op: str = "-"
    operand: Expr = field(default_factory=Const)

    def _walk_vars(self) -> Iterator[VarId]:
        return self.operand._walk_vars()

    def __str__(self) -> str:
        return f"{self.op}({self.operand})"


@dataclass(frozen=True)
class BinaryExpr(Expr):
    op: str = "+"
    left: Expr = field(default_factory=Const)
    right: Expr = field(default_factory=Const)

    def _walk_vars(self) -> Iterator[VarId]:
        yield from self.left._walk_vars()
        yield from self.right._walk_vars()

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class Convert(Expr):
    """``(unsigned) e`` — pure; result always in [0, 255]."""

    operand: Expr = field(default_factory=Const)

    def _walk_vars(self) -> Iterator[VarId]:
        return self.operand._walk_vars()

    def __str__(self) -> str:
        return f"(unsigned){self.operand}"


@dataclass(frozen=True)
class InputRead(Expr):
    """``input()`` — effectful: consumes one value from the workload."""

    @property
    def is_pure(self) -> bool:
        return False

    def __str__(self) -> str:
        return "input()"


@dataclass(frozen=True)
class Alloc(Expr):
    """``alloc(n)`` — effectful: allocates; may yield 0 (NULL)."""

    size: Expr = field(default_factory=Const)

    def _walk_vars(self) -> Iterator[VarId]:
        return self.size._walk_vars()

    @property
    def is_pure(self) -> bool:
        return False

    def __str__(self) -> str:
        return f"alloc({self.size})"


@dataclass(frozen=True)
class Load(Expr):
    """``load(p)`` — effectful: faults when ``p`` is 0; implies p != 0."""

    address: Expr = field(default_factory=Const)

    def _walk_vars(self) -> Iterator[VarId]:
        return self.address._walk_vars()

    @property
    def is_pure(self) -> bool:
        return False

    def __str__(self) -> str:
        return f"load({self.address})"


# --------------------------------------------------------------------------
# Shape helpers used by the correlation resolver
# --------------------------------------------------------------------------


def as_var(expr: Expr) -> Optional[VarId]:
    """The variable if ``expr`` is exactly a variable reference."""
    if isinstance(expr, VarExpr):
        return expr.var
    return None


def as_const(expr: Expr) -> Optional[int]:
    """The value if ``expr`` is exactly a constant."""
    if isinstance(expr, Const):
        return expr.value
    return None


def as_var_plus_const(expr: Expr) -> Optional[Tuple[VarId, int]]:
    """Match ``w``, ``w + c``, ``w - c``, ``c + w`` → ``(w, offset)``.

    This powers the generalised copy back-substitution (paper §3.1 allows
    "more general symbolic back-substitution"); plain copies are the
    ``offset == 0`` case.
    """
    if isinstance(expr, VarExpr):
        return expr.var, 0
    if isinstance(expr, BinaryExpr) and expr.op in ("+", "-"):
        left_var = as_var(expr.left)
        right_const = as_const(expr.right)
        if left_var is not None and right_const is not None:
            offset = right_const if expr.op == "+" else -right_const
            return left_var, offset
        if expr.op == "+":
            left_const = as_const(expr.left)
            right_var = as_var(expr.right)
            if left_const is not None and right_var is not None:
                return right_var, left_const
    return None


def direct_deref_vars(exprs: List[Expr]) -> Tuple[VarId, ...]:
    """Variables that are dereferenced *directly* (``load(p)`` with p a var).

    A completed execution of a node containing such a load guarantees
    ``p != 0`` on the outgoing paths (paper correlation source #4).
    """
    found: List[VarId] = []

    def walk(expr: Expr) -> None:
        if isinstance(expr, Load):
            var = as_var(expr.address)
            if var is not None:
                found.append(var)
            walk(expr.address)
        elif isinstance(expr, UnaryExpr):
            walk(expr.operand)
        elif isinstance(expr, BinaryExpr):
            walk(expr.left)
            walk(expr.right)
        elif isinstance(expr, Convert):
            walk(expr.operand)
        elif isinstance(expr, Alloc):
            walk(expr.size)

    for expr in exprs:
        walk(expr)
    return tuple(found)
