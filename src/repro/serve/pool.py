"""The resident worker pool (parent side): spawn, talk, watch, kill.

This module is deliberately mechanical — it owns subprocess lifecycles
and the newline-delimited JSON protocol of
:mod:`~repro.serve.workerproc`, and reports everything that happens to
callbacks.  *Policy* (which job runs where, when a worker is killed
for a timeout, when it is recycled for age or RSS, how a death maps
onto the degradation ladder) lives in
:mod:`~repro.serve.service`.

One :class:`WorkerHandle` per live subprocess, with one asyncio reader
task draining its stdout: ``ready`` flips it idle, ``heartbeat``
refreshes its liveness stamp and peak RSS, ``result`` hands the
finished attempt payload up, and EOF — however the process died —
reports the worker (and whatever job it held) to ``on_exit``.  The
pool never restarts anything by itself; the service's monitor loop
calls :meth:`WorkerPool.ensure` to bring the population back to
target, which keeps respawn policy (not during drain, backoff after
spawn storms) out of the IO layer.
"""

from __future__ import annotations

import asyncio
import json
import os
import sys
from typing import Callable, Dict, List, Optional

from repro import obs
from repro.serve.config import ServeOptions
from repro.serve.models import JobRecord

W_STARTING = "starting"
W_IDLE = "idle"
W_BUSY = "busy"
W_STOPPING = "stopping"
W_DEAD = "dead"


class WorkerHandle:
    """One resident worker subprocess, as the daemon sees it."""

    def __init__(self, wid: str, process: asyncio.subprocess.Process,
                 now: float) -> None:
        self.wid = wid
        self.process = process
        self.state = W_STARTING
        self.job: Optional[JobRecord] = None
        #: Event-loop instant the current attempt must finish by.
        self.attempt_deadline: float = 0.0
        self.jobs_served = 0
        self.peak_rss_kb = 0
        self.last_heartbeat = now
        #: Why the pool killed it ("" = it died on its own).
        self.kill_reason = ""
        self.reader: Optional[asyncio.Task] = None

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid

    def describe(self) -> dict:
        return {"id": self.wid, "pid": self.pid, "state": self.state,
                "jobs_served": self.jobs_served,
                "peak_rss_kb": self.peak_rss_kb,
                "job": self.job.id if self.job else None}


class WorkerPool:
    """Spawns and supervises the resident workers."""

    def __init__(self, options: ServeOptions,
                 on_idle: Callable[[WorkerHandle], None],
                 on_result: Callable[[WorkerHandle, Optional[JobRecord],
                                      dict], None],
                 on_exit: Callable[[WorkerHandle, Optional[JobRecord],
                                    str], None]) -> None:
        self.options = options
        self.on_idle = on_idle
        self.on_result = on_result
        self.on_exit = on_exit
        self.workers: List[WorkerHandle] = []
        self._spawned = 0
        self._closed = False

    # -- population --------------------------------------------------------

    async def start(self) -> None:
        await self.ensure()

    async def ensure(self) -> int:
        """Spawn workers until the live population meets the target;
        returns how many were spawned.  No-op once closed."""
        if self._closed:
            return 0
        self.workers = [w for w in self.workers if w.state != W_DEAD]
        spawned = 0
        while len(self.workers) < self.options.workers:
            await self._spawn()
            spawned += 1
        return spawned

    async def _spawn(self) -> WorkerHandle:
        self._spawned += 1
        wid = f"w{self._spawned}"
        config = {"worker": wid,
                  "memory_mb": self.options.memory_mb,
                  "heartbeat_interval_s": self.options.heartbeat_interval_s}
        env = dict(os.environ)
        package_root = os.path.dirname(
            os.path.dirname(os.path.abspath(__file__)))
        existing = env.get("PYTHONPATH", "")
        if package_root not in existing.split(os.pathsep):
            env["PYTHONPATH"] = (package_root + os.pathsep + existing
                                 if existing else package_root)
        process = await asyncio.create_subprocess_exec(
            sys.executable, "-m", "repro.serve.workerproc",
            json.dumps(config),
            stdin=asyncio.subprocess.PIPE,
            stdout=asyncio.subprocess.PIPE,
            env=env)
        worker = WorkerHandle(wid, process,
                              asyncio.get_running_loop().time())
        worker.reader = asyncio.create_task(self._read_loop(worker),
                                            name=f"pool-read-{wid}")
        self.workers.append(worker)
        obs.add("serve.worker.spawned")
        return worker

    # -- protocol ----------------------------------------------------------

    async def send_job(self, worker: WorkerHandle, job: JobRecord,
                       spec: dict) -> None:
        """Hand one attempt to an idle worker."""
        assert worker.state == W_IDLE and worker.job is None
        worker.state = W_BUSY
        worker.job = job
        worker.attempt_deadline = (asyncio.get_running_loop().time()
                                   + self.options.timeout_s)
        line = json.dumps({"type": "job", "id": job.id, "spec": spec},
                         sort_keys=True) + "\n"
        try:
            worker.process.stdin.write(line.encode("utf-8"))
            await worker.process.stdin.drain()
        except (ConnectionResetError, BrokenPipeError, OSError):
            # The worker died between dispatch decision and write; the
            # reader's EOF path will hand the job back for retry.
            pass

    def request_shutdown(self, worker: WorkerHandle, reason: str) -> None:
        """Ask a worker to exit after its current state (graceful)."""
        worker.state = W_STOPPING
        worker.kill_reason = reason
        try:
            worker.process.stdin.write(b'{"type": "shutdown"}\n')
        except (ConnectionResetError, BrokenPipeError, OSError, ValueError):
            self.kill(worker, reason)

    def kill(self, worker: WorkerHandle, reason: str) -> None:
        """SIGKILL a worker; the reader's EOF path does the accounting."""
        worker.kill_reason = reason
        try:
            worker.process.kill()
        except ProcessLookupError:
            pass
        obs.add("serve.worker.killed")

    # -- the reader --------------------------------------------------------

    async def _read_loop(self, worker: WorkerHandle) -> None:
        loop = asyncio.get_running_loop()
        try:
            while True:
                line = await worker.process.stdout.readline()
                if not line:
                    break
                try:
                    message = json.loads(line)
                except ValueError:
                    self.kill(worker, "garbled-protocol")
                    break
                kind = message.get("type")
                worker.last_heartbeat = loop.time()
                if kind == "ready":
                    if worker.state == W_STARTING:
                        worker.state = W_IDLE
                        self.on_idle(worker)
                elif kind == "heartbeat":
                    worker.peak_rss_kb = max(worker.peak_rss_kb,
                                             int(message.get("rss_kb", 0)))
                elif kind == "result":
                    job, worker.job = worker.job, None
                    worker.jobs_served += 1
                    if worker.state == W_BUSY:
                        worker.state = W_IDLE
                    self.on_result(worker, job, message.get("payload") or {})
                    if worker.state == W_IDLE:
                        self.on_idle(worker)
        finally:
            job, worker.job = worker.job, None
            was = worker.state
            worker.state = W_DEAD
            try:
                await worker.process.wait()
            except ProcessLookupError:
                pass
            obs.add("serve.worker.exited")
            if was != W_DEAD:
                self.on_exit(worker, job, worker.kill_reason)

    # -- teardown ----------------------------------------------------------

    async def stop(self, grace_s: float = 2.0) -> None:
        """Shut every worker down: polite first, SIGKILL after grace."""
        self._closed = True
        for worker in self.workers:
            if worker.state in (W_IDLE, W_STARTING):
                self.request_shutdown(worker, "drain")
        deadline = asyncio.get_running_loop().time() + grace_s
        while (any(w.state != W_DEAD for w in self.workers)
               and asyncio.get_running_loop().time() < deadline):
            await asyncio.sleep(0.02)
        for worker in self.workers:
            if worker.state != W_DEAD:
                self.kill(worker, "drain")
        for worker in self.workers:
            if worker.reader is not None:
                try:
                    await asyncio.wait_for(worker.reader, 5.0)
                except asyncio.TimeoutError:
                    worker.reader.cancel()

    # -- introspection -----------------------------------------------------

    def idle_workers(self) -> List[WorkerHandle]:
        return [w for w in self.workers if w.state == W_IDLE]

    def busy_workers(self) -> List[WorkerHandle]:
        return [w for w in self.workers if w.state == W_BUSY]

    def live_count(self) -> int:
        return sum(1 for w in self.workers if w.state != W_DEAD)

    def by_job(self, job_id: str) -> Optional[WorkerHandle]:
        for worker in self.workers:
            if worker.job is not None and worker.job.id == job_id:
                return worker
        return None

    def describe(self) -> List[Dict]:
        return [w.describe() for w in self.workers]
