"""``icbe serve``: a fault-tolerant, long-lived optimization service.

This package wraps the crash-isolated optimization machinery
(:mod:`repro.robustness`) in an asyncio daemon with an HTTP/JSON API:
submit a MiniC program or ``suite:<name>@<scale>`` reference, get a job
id, poll or stream the result.  Everything is standard library — no
web framework, no external queue, no external cache.

The layers, outermost first:

- :mod:`~repro.serve.http` — a minimal HTTP/1.1 front end over
  ``asyncio.start_server`` (submit / poll / stream / health / metrics);
- :mod:`~repro.serve.service` — admission control, the bounded
  priority queue, per-client rate limits, per-request deadlines, the
  degradation ladder + per-class circuit breakers, the result cache,
  the write-ahead journal, and graceful drain;
- :mod:`~repro.serve.pool` — a resident pool of K worker subprocesses
  reused across jobs (amortizing interpreter + import warmup), with
  heartbeat health checks and automatic recycling;
- :mod:`~repro.serve.workerproc` — the worker child process: a loop
  over newline-delimited JSON job requests, executing each via the
  batch worker's :func:`~repro.robustness.worker.run_attempt`.

Robustness invariants the tests and chaos drills enforce:

- **No job is ever lost.**  Every admitted job is fsynced into the
  serve journal before its 202 response is written; a SIGKILLed daemon
  restarted on the same run directory re-runs every journaled job that
  has no completion record.
- **No worker death loses a job.**  A killed, crashed, hung, or OOMed
  worker costs one attempt; the job descends the degradation ladder
  and is re-queued, and the pool respawns the worker.
- **Identical resubmission is a cache hit**, never a re-optimization:
  results are content-addressed by the canonical-IR hash of the
  submitted program plus the daemon's option fingerprint
  (:mod:`~repro.serve.cache`), in memory and on disk.
- **Drain is graceful.**  SIGTERM/SIGINT stop admission (503 on
  submit, ``/readyz`` goes red), let in-flight attempts finish within
  a grace period, checkpoint everything else in the journal, and exit
  cleanly.

See docs/SERVING.md for the API reference, admission and drain
semantics, and the capacity-tuning guide.
"""

from repro.serve.cache import ResultCache, canonical_key
from repro.serve.config import ServeOptions
from repro.serve.models import (JOB_DONE, JOB_QUEUED, JOB_RUNNING,
                                JobRecord)
from repro.serve.queue import Admission, BoundedJobQueue
from repro.serve.ratelimit import RateLimiter, TokenBucket

__all__ = [
    "Admission", "BoundedJobQueue", "JOB_DONE", "JOB_QUEUED",
    "JOB_RUNNING", "JobRecord", "RateLimiter", "ResultCache",
    "ServeOptions", "TokenBucket", "canonical_key",
]
