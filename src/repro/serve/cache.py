"""Content-addressed result cache keyed by canonical-IR hash.

The paper's optimization is expensive, deterministic, and idempotent
per input — the textbook cacheable workload.  The daemon therefore
addresses results by **what the program is**, not what the request
said: a submission is parsed, lowered, and verified, its ICFG is
printed to the canonical text form (:func:`~repro.ir.printer.
dump_icfg`, a normalized rendering stable across whitespace, comment,
and formatting differences in the source), and the SHA-256 of that
dump plus the daemon's option fingerprint is the cache key.  Two
textually different sources that lower to the same graph share one
entry; the same source submitted to a daemon with a different budget
does not.

The cache is two-level:

- an in-memory dict (hot path, no IO);
- a ``<run_dir>/cache/<key>.json`` file per entry, written atomically,
  so a restarted daemon — including one that was SIGKILLed — serves
  cache hits for everything it ever finished.

Only ``OK`` (tier-0) outcomes are cached.  A DEGRADED result records
that *some attempt failed*, which may have been transient (a killed
worker, a timeout under load); pinning it would make degradation
sticky.  Resubmission of a degraded program simply re-optimizes.

Front-door validation rides along for free: hashing requires the
program to parse, lower, and verify, so a malformed submission is
refused at admission with a structured 400 — it never occupies a
queue slot or a worker.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from typing import Optional

from repro import obs
from repro.errors import ServeError
from repro.utils import durafs

CACHE_DIR = "cache"
PROGRAM_DIR = "programs"

#: durafs fault sites of the two write paths.
SITE_CACHE = "serve.cache"
SITE_SPOOL = "serve.spool"

#: On-disk entry schema version.  Bump whenever the shape of a cached
#: result payload changes: a restarted daemon must treat entries a
#: previous build wrote in an old shape as misses, not serve them
#: verbatim to clients expecting the new shape.
CACHE_FORMAT = 1


def normalize_fingerprint(fingerprint: dict, path: str = "fingerprint"):
    """A canonical, hash-stable copy of an option fingerprint.

    ``canonical_key`` feeds the fingerprint through ``json.dumps``, so
    every value must serialize to exactly the same bytes in every
    process, forever.  That rules out anything JSON cannot round-trip
    canonically: NaN and the infinities (non-standard JSON, and NaN
    breaks equality), and non-string dict keys (sort order across
    types is a TypeError).  Tuples become lists, integral floats become
    the integer they equal (``60`` and ``60.0`` are the same option),
    and any other type is rejected loudly rather than hashed
    ambiguously.
    """
    if isinstance(fingerprint, dict):
        out = {}
        for key in sorted(fingerprint, key=str):
            if not isinstance(key, str):
                raise ValueError(f"{path}: non-string key {key!r}")
            out[key] = normalize_fingerprint(fingerprint[key],
                                             f"{path}.{key}")
        return out
    if isinstance(fingerprint, (list, tuple)):
        return [normalize_fingerprint(v, f"{path}[{i}]")
                for i, v in enumerate(fingerprint)]
    if isinstance(fingerprint, float):
        if fingerprint != fingerprint or fingerprint in (float("inf"),
                                                         float("-inf")):
            raise ValueError(f"{path}: non-finite float {fingerprint!r}")
        if fingerprint.is_integer():
            return int(fingerprint)
        return fingerprint
    if fingerprint is None or isinstance(fingerprint, (bool, int, str)):
        return fingerprint
    raise ValueError(f"{path}: unhashable option value "
                     f"{type(fingerprint).__name__}({fingerprint!r})")


@dataclass
class Submission:
    """A validated, canonicalized submission, ready to queue."""

    #: What the worker will load: spooled ``.mc`` path or ``suite:`` ref.
    job_source: str
    name: str
    job_class: str
    key: str


def canonical_key(dump_text: str, fingerprint: dict) -> str:
    """The content address of one (program, option-set) pair.

    The fingerprint is normalized first (see
    :func:`normalize_fingerprint`): equal option sets must produce
    equal keys in every process, and option sets that cannot be hashed
    stably raise instead of silently colliding or diverging.
    """
    digest = hashlib.sha256()
    digest.update(dump_text.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(json.dumps(normalize_fingerprint(fingerprint),
                             sort_keys=True, allow_nan=False,
                             separators=(",", ":")).encode("utf-8"))
    return digest.hexdigest()


def resolve_submission(body: dict, run_dir: str,
                       fingerprint: dict) -> Submission:
    """Validate one submission body and compute its content address.

    Accepted shapes (exactly one of):

    - ``{"source": "<MiniC text>"}`` — the text is parsed/lowered/
      verified, then spooled content-addressed into
      ``<run_dir>/programs/<key>.mc`` (so a restarted daemon can re-run
      journaled jobs without the client);
    - ``{"suite": "<name>@<scale>"}`` or ``{"suite": "suite:..."}`` —
      a benchmark-registry reference, resolved by the worker.

    Raises :class:`~repro.errors.ServeError` (HTTP 400) for malformed
    bodies; frontend errors (:class:`~repro.errors.ReproError`
    subclasses) propagate for the caller to map to 400 with context.

    This does real parsing work and is called via a thread executor —
    never directly on the event loop.
    """
    source = body.get("source")
    suite = body.get("suite")
    if (source is None) == (suite is None):
        raise ServeError("submission must carry exactly one of "
                         "'source' or 'suite'")
    from repro.ir import dump_icfg, lower_program, verify_icfg
    if suite is not None:
        ref = suite if suite.startswith("suite:") else f"suite:{suite}"
        from repro.robustness.worker import load_job_icfg, parse_job_source
        try:
            parsed = parse_job_source(ref)
        except ValueError:
            parsed = None
        if parsed is None:
            raise ServeError(f"bad suite reference {suite!r}", suite=suite)
        try:
            icfg, _ = load_job_icfg(ref)
        except (LookupError, ValueError) as unknown:
            raise ServeError(f"unknown suite benchmark {suite!r}",
                             suite=suite) from unknown
        key = canonical_key(dump_icfg(icfg), fingerprint)
        return Submission(job_source=ref, name=parsed[0],
                          job_class=parsed[0], key=key)
    if not isinstance(source, str) or not source.strip():
        raise ServeError("'source' must be non-empty MiniC text")
    from repro.lang import parse_program
    icfg = lower_program(parse_program(source))
    verify_icfg(icfg)
    key = canonical_key(dump_icfg(icfg), fingerprint)
    path = _spool_program(run_dir, key, source)
    job_class = str(body.get("class") or "adhoc")
    return Submission(job_source=path, name=f"adhoc:{key[:12]}",
                      job_class=job_class, key=key)


def _spool_program(run_dir: str, key: str, source: str,
                   fs: Optional["durafs.Filesystem"] = None) -> str:
    """Write the submitted text content-addressed next to the journal.

    Idempotent by construction (same key == same canonical program; the
    first spooled text is as good as any other that hashes to it).  A
    write failure — disk full, read-only remount — must be *definite*:
    the daemon journals only spooled sources, so a half-admitted job
    would be unrecoverable.  It is counted (``serve.cache.io_errors``)
    and surfaces as a structured :class:`~repro.errors.ServeError`
    carrying errno and path.
    """
    spool = os.path.join(run_dir, PROGRAM_DIR)
    path = os.path.join(spool, f"{key}.mc")
    if not os.path.exists(path):
        try:
            durafs.atomic_write_text(path, source, site=SITE_SPOOL,
                                     fs=fs, must=True)
        except OSError as failure:
            obs.add("serve.cache.io_errors")
            raise ServeError(
                f"cannot spool submission {key[:12]}: {failure}",
                errno=int(failure.errno or 0), path=path) from failure
    return path


class ResultCache:
    """Two-level (memory + disk) store of finished OK results.

    Disk entries are wrapped in a versioned envelope —
    ``{"format": CACHE_FORMAT, "fingerprint": ..., "result": ...}`` —
    so a daemon restarted after an upgrade never serves a stale-shaped
    report verbatim: an entry whose format stamp or fingerprint echo
    disagrees with this daemon is a miss (and counted as a rejection).
    The fingerprint echo is defence in depth on top of the key: the key
    already folds the fingerprint in, but the echo survives even if the
    keying scheme itself changes between builds.
    """

    def __init__(self, run_dir: str, persist: bool = True,
                 fingerprint: Optional[dict] = None,
                 fs: Optional["durafs.Filesystem"] = None) -> None:
        self.run_dir = run_dir
        self.persist = persist
        self.fs = durafs.resolve_fs(fs)
        self.fingerprint = (normalize_fingerprint(fingerprint)
                            if fingerprint is not None else None)
        self._memory: dict = {}
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.rejects = 0
        #: Write-side OSErrors on ``put`` — the result stays served
        #: from memory, the disk entry is simply not written.
        self.io_errors = 0
        self.orphans_swept = 0
        if persist:
            # Reclaim crashed writers' debris from both write surfaces.
            for sub in (CACHE_DIR, PROGRAM_DIR):
                self.orphans_swept += durafs.sweep_orphans(
                    os.path.join(run_dir, sub), site=SITE_CACHE, fs=self.fs)

    def _path(self, key: str) -> str:
        return os.path.join(self.run_dir, CACHE_DIR, f"{key}.json")

    def _accept(self, envelope) -> Optional[dict]:
        """Unwrap a disk envelope, or None if this daemon must not
        serve it (wrong shape, format version, or option echo)."""
        if (not isinstance(envelope, dict)
                or envelope.get("format") != CACHE_FORMAT
                or not isinstance(envelope.get("result"), dict)):
            return None
        if (self.fingerprint is not None
                and envelope.get("fingerprint") != self.fingerprint):
            return None
        return envelope["result"]

    def get(self, key: str) -> Optional[dict]:
        """The cached result payload for ``key``, or None."""
        entry = self._memory.get(key)
        if entry is None and self.persist:
            path = self._path(key)
            if os.path.exists(path):
                try:
                    with open(path, "r", encoding="utf-8") as handle:
                        envelope = json.load(handle)
                except (ValueError, OSError):
                    envelope = None  # torn/corrupt entry == miss
                entry = self._accept(envelope)
                if entry is None and envelope is not None:
                    self.rejects += 1
                    obs.add("serve.cache.reject")
                if entry is not None:
                    self._memory[key] = entry
        if entry is None:
            self.misses += 1
            obs.add("serve.cache.miss")
            return None
        self.hits += 1
        obs.add("serve.cache.hit")
        return dict(entry)

    def put(self, key: str, result: dict) -> None:
        """Store one OK result (atomic on disk; last writer wins).

        The disk write is best-effort: a full disk costs future
        restarts their warm start, never the running daemon a result.
        Failures are counted (``io_errors``, ``serve.cache.io_errors``)
        instead of being swallowed without trace.
        """
        entry = dict(result)
        self._memory[key] = entry
        self.stores += 1
        obs.add("serve.cache.store")
        if not self.persist:
            return
        envelope = {"format": CACHE_FORMAT,
                    "fingerprint": self.fingerprint,
                    "result": entry}
        if not durafs.atomic_write_json(self._path(key), envelope,
                                        site=SITE_CACHE, fs=self.fs):
            self.io_errors += 1
            obs.add("serve.cache.io_errors")

    def stats(self) -> dict:
        return {"entries": len(self._memory), "hits": self.hits,
                "misses": self.misses, "stores": self.stores,
                "rejects": self.rejects, "io_errors": self.io_errors,
                "orphans_swept": self.orphans_swept}
