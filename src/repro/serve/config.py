"""Configuration for the ``icbe serve`` daemon.

One dataclass, :class:`ServeOptions`, carries every knob: the listen
address, the worker pool geometry and recycling thresholds, admission
limits (queue bound, per-client token buckets), per-attempt and
per-request time budgets, and the optimizer options every job runs
under.

The optimizer-shaping subset is exposed as :meth:`ServeOptions.
fingerprint`; it is folded into the content-addressed result-cache key
(two daemons with different budgets must never share cache entries)
and journaled in the serve journal's meta record so a restart on the
same run directory refuses to mix configurations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class ServeOptions:
    """Every knob of one ``icbe serve`` daemon."""

    # -- listen address ----------------------------------------------------
    host: str = "127.0.0.1"
    #: Port 0 binds an ephemeral port; the bound port is published in
    #: ``<run_dir>/serve.json`` either way.
    port: int = 8420

    # -- state on disk -----------------------------------------------------
    #: Journal, result cache, program spool, and the ``serve.json``
    #: discovery file all live here.  Restarting on the same directory
    #: recovers journaled jobs and reuses the disk cache.
    run_dir: str = "icbe-serve"

    # -- worker pool -------------------------------------------------------
    workers: int = 2
    #: Recycle a worker after it has served this many jobs (bounds the
    #: blast radius of slow interpreter-state leaks).
    max_jobs_per_worker: int = 64
    #: Recycle a worker whose peak RSS crossed this watermark, in KiB.
    rss_watermark_kb: int = 1_048_576
    #: How often each worker reports a heartbeat (and its peak RSS).
    heartbeat_interval_s: float = 0.5
    #: An *idle* worker silent for this long is presumed wedged and is
    #: killed + respawned.  (Busy workers are governed by ``timeout_s``.)
    heartbeat_timeout_s: float = 10.0

    # -- admission ---------------------------------------------------------
    #: Submissions beyond this queue depth are refused with HTTP 429 +
    #: Retry-After (explicit backpressure; ladder retries are exempt —
    #: an admitted job is never dropped for queue pressure).
    queue_limit: int = 64
    #: Per-client token bucket: burst capacity and sustained rate.
    rate_capacity: float = 30.0
    rate_refill_per_s: float = 10.0
    #: Largest accepted request body, in bytes.
    max_body_bytes: int = 2 * 1024 * 1024

    # -- time budgets ------------------------------------------------------
    #: Per-attempt wall clock: a worker busy longer than this on one
    #: attempt is SIGKILLed and the job descends the ladder.
    timeout_s: float = 60.0
    #: Per-request deadline when the submission names none; the whole
    #: job (queue wait + every attempt) must finish inside it.
    default_deadline_s: float = 300.0
    #: Hard ceiling on client-requested deadlines.
    max_deadline_s: float = 3600.0
    #: Graceful drain: how long in-flight attempts may keep running
    #: after SIGTERM/SIGINT before their workers are killed and the
    #: jobs are left checkpointed in the journal.
    drain_grace_s: float = 10.0

    # -- retry / breaker ---------------------------------------------------
    seed: int = 0
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_jitter: float = 0.5
    backoff_max_s: float = 2.0
    #: Open a job class's circuit breaker after K consecutive hard
    #: worker deaths in that class.
    breaker_threshold: int = 5

    # -- per-job optimizer options (fixed per daemon) ----------------------
    budget: int = 1000
    duplication_limit: Optional[int] = 100
    diff_check: bool = True
    memory_mb: Optional[int] = 512
    #: Per-conditional cooperative deadline inside the worker.
    conditional_deadline_s: Optional[float] = None
    #: Sharded analysis prewarm inside each worker attempt (see
    #: :mod:`repro.analysis.parallel`).  Outcome-neutral, so it stays
    #: out of the fingerprint: two daemons differing only here must
    #: share cache entries.
    analysis_jobs: int = 1
    #: Persistent cross-run summary store directory (see
    #: :mod:`repro.analysis.store`); None disables persistence.
    #: Outcome-neutral, excluded from the fingerprint.
    summary_store: Optional[str] = None
    #: Store size cap in bytes (None = unbounded).  Eviction costs
    #: misses, never results — outcome-neutral, not fingerprinted.
    summary_store_quota: Optional[int] = None

    def fingerprint(self) -> dict:
        """The result-shaping option subset.

        Folded into every cache key and journaled in the meta record:
        anything that can change an optimization *outcome* must appear
        here, anything that only changes scheduling must not.
        """
        return {"budget": self.budget,
                "duplication_limit": self.duplication_limit,
                "diff_check": self.diff_check,
                "conditional_deadline_s": self.conditional_deadline_s}

    def deadline_for(self, requested_s: Optional[float]) -> float:
        """Clamp a client-requested deadline into the allowed range."""
        if requested_s is None:
            return self.default_deadline_s
        return max(0.001, min(float(requested_s), self.max_deadline_s))
