"""Job records and wire shapes for the serving layer.

A :class:`JobRecord` is the daemon's in-memory account of one admitted
submission, from admission through queueing, attempts down the
degradation ladder, to a definite terminal result — the serve-side
analogue of the batch supervisor's ``_JobState`` + ``JobOutcome`` pair,
with asyncio wakeups bolted on for pollers and streamers.

States are deliberately few::

    queued --> running --> done        (result.status: OK|DEGRADED|FAILED)
       \\------------------^  (deadline expiry, non-retryable input)

A job is *done* exactly once, with a definite status; ``running`` jobs
whose attempt fails re-enter ``queued`` one ladder tier down.  Every
transition notifies waiters (long-poll) and subscribers (streaming).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

JOB_QUEUED = "queued"
JOB_RUNNING = "running"
JOB_DONE = "done"


@dataclass
class JobRecord:
    """One admitted job, submission to terminal result."""

    id: str
    #: What the worker loads: a spooled ``.mc`` path or a ``suite:`` ref.
    job_source: str
    #: Human-facing name (suite name, or the spool key for ad-hoc text).
    name: str
    #: Circuit-breaker / degradation class.
    job_class: str
    #: Content-addressed result key (canonical-IR hash + fingerprint).
    key: str
    priority: int = 5
    deadline_s: float = 300.0
    client: str = ""
    #: Chaos-drill passthrough (``{"kind": ..., "tiers": [...]}``).
    inject: Optional[dict] = None

    state: str = JOB_QUEUED
    tier: int = 0
    #: One entry per finished attempt: {tier, tier_name, result, detail}.
    attempts: List[dict] = field(default_factory=list)
    #: The definite terminal payload (status/tier/reason/counts/cached).
    result: Optional[dict] = None
    #: Jobs with the same key admitted while this one was in flight;
    #: they complete when it does, without their own worker attempts.
    followers: List["JobRecord"] = field(default_factory=list)

    #: Event-loop instants (``loop.time``), service-internal only.
    deadline_at: float = 0.0
    submitted_at: float = 0.0

    _done_event: Optional[asyncio.Event] = field(default=None, repr=False)
    _subscribers: List[asyncio.Queue] = field(default_factory=list,
                                              repr=False)

    # -- wakeups -----------------------------------------------------------

    def done_event(self) -> asyncio.Event:
        """The (lazily created) event long-pollers wait on."""
        if self._done_event is None:
            self._done_event = asyncio.Event()
            if self.state == JOB_DONE:
                self._done_event.set()
        return self._done_event

    def subscribe(self) -> asyncio.Queue:
        """A queue of state-snapshot dicts; ``None`` terminates it."""
        queue: asyncio.Queue = asyncio.Queue()
        self._subscribers.append(queue)
        queue.put_nowait(self.to_json())
        if self.state == JOB_DONE:
            queue.put_nowait(None)
        return queue

    def unsubscribe(self, queue: asyncio.Queue) -> None:
        if queue in self._subscribers:
            self._subscribers.remove(queue)

    def notify(self) -> None:
        """Push the current snapshot to every subscriber (and release
        long-pollers if the job just became terminal)."""
        snapshot = self.to_json()
        for queue in self._subscribers:
            queue.put_nowait(snapshot)
            if self.state == JOB_DONE:
                queue.put_nowait(None)
        if self.state == JOB_DONE and self._done_event is not None:
            self._done_event.set()

    # -- state -------------------------------------------------------------

    @property
    def terminal(self) -> bool:
        return self.state == JOB_DONE

    def finish(self, result: dict) -> None:
        """Move to the terminal state exactly once."""
        assert not self.terminal, f"job {self.id} finished twice"
        self.result = result
        self.state = JOB_DONE
        self.notify()

    def to_json(self) -> Dict[str, Any]:
        """The poll/stream wire shape (stable, documented in SERVING.md)."""
        record: Dict[str, Any] = {
            "id": self.id, "name": self.name, "class": self.job_class,
            "key": self.key, "state": self.state, "tier": self.tier,
            "priority": self.priority, "attempts": list(self.attempts),
        }
        if self.result is not None:
            record["result"] = dict(self.result)
        return record
