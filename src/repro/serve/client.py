"""A minimal blocking client for the ``icbe serve`` HTTP API.

Stdlib-only (``http.client``), synchronous, one connection per call —
deliberately boring, because its consumers are load generators, CI
chaos drills, and shell-adjacent scripts, all of which want obvious
failure modes over throughput.  Discovery mirrors the daemon: point
:meth:`ServeClient.from_run_dir` at the run directory and the client
reads ``serve.json`` for the bound host/port.

Every call returns ``(status, payload, headers)`` where ``payload`` is
the parsed JSON body (``{}`` when empty); connection-level failures
raise ``OSError`` so callers can distinguish "the daemon said no"
from "there is no daemon".
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Optional, Tuple

from repro.errors import ServeError
from repro.serve.app import read_discovery

Response = Tuple[int, dict, dict]


class ServeClient:
    """Blocking JSON-over-HTTP client for one ``icbe serve`` daemon."""

    def __init__(self, host: str, port: int,
                 timeout_s: float = 60.0) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s

    @classmethod
    def from_run_dir(cls, run_dir: str,
                     timeout_s: float = 60.0) -> "ServeClient":
        info = read_discovery(run_dir)
        if info is None:
            raise ServeError(f"no serve.json in {run_dir!r}: daemon "
                             f"not started (or not yet bound)",
                             run_dir=run_dir)
        return cls(info["host"], info["port"], timeout_s=timeout_s)

    # -- transport ---------------------------------------------------------

    def request(self, method: str, path: str,
                body: Optional[dict] = None) -> Response:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s)
        try:
            payload = None if body is None else json.dumps(body)
            connection.request(method, path, body=payload,
                               headers={"Content-Type":
                                        "application/json"})
            response = connection.getresponse()
            raw = response.read()
            parsed = json.loads(raw) if raw else {}
            return response.status, parsed, dict(response.getheaders())
        finally:
            connection.close()

    # -- the API -----------------------------------------------------------

    def submit(self, **body) -> Response:
        """POST /v1/jobs with ``source=``/``suite=`` plus options."""
        return self.request("POST", "/v1/jobs", body)

    def job(self, job_id: str, wait_s: Optional[float] = None) -> Response:
        path = f"/v1/jobs/{job_id}"
        if wait_s is not None:
            path += f"?wait={wait_s:g}"
        return self.request("GET", path)

    def wait(self, job_id: str, timeout_s: float = 300.0) -> dict:
        """Long-poll one job to its terminal state; returns the job
        JSON.  Raises :class:`~repro.errors.ServeError` on timeout."""
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            remaining = min(30.0, max(0.5, deadline - time.monotonic()))
            status, payload, _ = self.job(job_id, wait_s=remaining)
            if status != 200:
                raise ServeError(f"poll of {job_id} got HTTP {status}: "
                                 f"{payload}", job_id=job_id,
                                 status=status)
            if payload.get("state") == "done":
                return payload
        raise ServeError(f"job {job_id} not done after {timeout_s:g}s",
                         job_id=job_id)

    def healthz(self) -> Response:
        return self.request("GET", "/healthz")

    def readyz(self) -> Response:
        return self.request("GET", "/readyz")

    def stats(self) -> dict:
        status, payload, _ = self.request("GET", "/v1/stats")
        if status != 200:
            raise ServeError(f"/v1/stats got HTTP {status}", status=status)
        return payload

    def drain(self) -> Response:
        return self.request("POST", "/v1/drain")

    def wait_ready(self, timeout_s: float = 60.0) -> None:
        """Block until /readyz answers 200 (daemon bound and healthy)."""
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            try:
                if self.readyz()[0] == 200:
                    return
            except OSError:
                pass
            time.sleep(0.05)
        raise ServeError(f"daemon at {self.host}:{self.port} not ready "
                         f"after {timeout_s:g}s")
