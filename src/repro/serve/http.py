"""A minimal, dependency-free HTTP/1.1 front end for the daemon.

Just enough HTTP for a control-plane API, written directly against
``asyncio.start_server``: one request per connection
(``Connection: close``), JSON bodies bounded by
``ServeOptions.max_body_bytes``, chunked transfer-encoding only for
the one streaming endpoint.  No routing framework, no regexes — the
URL space is five endpoints and a dispatch ladder reads better than a
table at this size.

Endpoints (documented for clients in ``docs/SERVING.md``)::

    GET  /healthz              liveness  (200 while the process runs)
    GET  /readyz               readiness (503 when draining/workerless)
    GET  /v1/stats             queue/worker/cache/breaker introspection
    POST /v1/jobs              submit    {"source": ...}|{"suite": ...}
    GET  /v1/jobs/<id>         poll      (?wait=SECONDS long-polls)
    GET  /v1/jobs/<id>/stream  NDJSON state snapshots until terminal
    POST /v1/drain             begin graceful drain (also SIGTERM)

Every admission-control refusal is an *explicit* HTTP status the
client can act on: 429 with Retry-After (rate limit, queue full), 503
(draining), 413 (body too large) — never a hang, never a dropped
connection.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro import obs
from repro.serve.config import ServeOptions
from repro.serve.service import OptimizationService

_MAX_HEADER_BYTES = 32 * 1024
_STREAM_IDLE_S = 30.0


class _BadRequest(Exception):
    """Maps straight onto a 400 (or the carried status)."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


class HttpFrontend:
    """Translates HTTP requests into :class:`OptimizationService` calls."""

    def __init__(self, service: OptimizationService,
                 options: ServeOptions) -> None:
        self.service = service
        self.options = options
        self._server: Optional[asyncio.base_events.Server] = None

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> int:
        """Bind and listen; returns the actual port (resolves port 0)."""
        self._server = await asyncio.start_server(
            self._handle, host=self.options.host, port=self.options.port)
        return self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- one connection ----------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            try:
                method, target, headers = await self._read_head(reader)
                body = await self._read_body(reader, headers)
            except _BadRequest as refusal:
                await self._send_json(writer, refusal.status,
                                      {"error": "bad-request",
                                       "message": str(refusal)})
                return
            except (asyncio.IncompleteReadError, ConnectionError,
                    asyncio.LimitOverrunError):
                return
            client = headers.get("x-client") or self._peer(writer)
            try:
                await self._dispatch(writer, method, target, headers,
                                     body, client)
            except (ConnectionError, BrokenPipeError):
                raise
            except Exception as surprise:   # a 500 beats a dead socket
                obs.add("serve.errors.internal")
                await self._send_json(
                    writer, 500,
                    {"error": type(surprise).__name__,
                     "message": str(surprise)})
        except (ConnectionError, BrokenPipeError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError, OSError):
                pass

    @staticmethod
    def _peer(writer: asyncio.StreamWriter) -> str:
        peer = writer.get_extra_info("peername")
        return peer[0] if isinstance(peer, tuple) else "unknown"

    async def _read_head(self, reader: asyncio.StreamReader
                         ) -> Tuple[str, str, Dict[str, str]]:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.LimitOverrunError:
            raise _BadRequest("request head too large", status=431)
        if len(head) > _MAX_HEADER_BYTES:
            raise _BadRequest("request head too large", status=431)
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3:
            raise _BadRequest(f"malformed request line: {lines[0]!r}")
        method, target, _version = parts
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if not sep:
                raise _BadRequest(f"malformed header line: {line!r}")
            headers[name.strip().lower()] = value.strip()
        return method.upper(), target, headers

    async def _read_body(self, reader: asyncio.StreamReader,
                         headers: Dict[str, str]) -> bytes:
        raw_length = headers.get("content-length", "0")
        try:
            length = int(raw_length)
        except ValueError:
            raise _BadRequest(f"bad Content-Length: {raw_length!r}")
        if length < 0:
            raise _BadRequest(f"bad Content-Length: {raw_length!r}")
        if length > self.options.max_body_bytes:
            raise _BadRequest(
                f"body of {length} bytes exceeds the "
                f"{self.options.max_body_bytes}-byte limit", status=413)
        if length == 0:
            return b""
        return await reader.readexactly(length)

    # -- routing -----------------------------------------------------------

    async def _dispatch(self, writer: asyncio.StreamWriter, method: str,
                        target: str, headers: Dict[str, str],
                        body: bytes, client: str) -> None:
        split = urlsplit(target)
        path = split.path.rstrip("/") or "/"
        query = parse_qs(split.query)
        if path == "/healthz" and method == "GET":
            health = {"ok": True}
            if self.options.summary_store:
                health["store"] = self.service.store_status()
            await self._send_json(writer, 200, health)
        elif path == "/readyz" and method == "GET":
            ready = self.service.ready
            await self._send_json(
                writer, 200 if ready else 503,
                {"ready": ready, "draining": self.service.draining})
        elif path == "/v1/stats" and method == "GET":
            await self._send_json(writer, 200, self.service.describe())
        elif path == "/v1/jobs" and method == "POST":
            await self._submit(writer, body, client)
        elif path == "/v1/drain" and method == "POST":
            asyncio.get_running_loop().create_task(self.service.stop())
            await self._send_json(writer, 202, {"draining": True})
        elif path.startswith("/v1/jobs/") and method == "GET":
            job_id = path[len("/v1/jobs/"):]
            if job_id.endswith("/stream"):
                await self._stream(writer, job_id[:-len("/stream")])
            else:
                await self._poll(writer, job_id, query)
        else:
            await self._send_json(writer, 404,
                                  {"error": "not-found", "path": path})

    # -- endpoints ---------------------------------------------------------

    async def _submit(self, writer: asyncio.StreamWriter, body: bytes,
                      client: str) -> None:
        try:
            parsed = json.loads(body.decode("utf-8")) if body else {}
        except (ValueError, UnicodeDecodeError):
            await self._send_json(writer, 400,
                                  {"error": "bad-json",
                                   "message": "body must be a JSON object"})
            return
        if not isinstance(parsed, dict):
            await self._send_json(writer, 400,
                                  {"error": "bad-json",
                                   "message": "body must be a JSON object"})
            return
        status, payload, extra = await self.service.submit(parsed, client)
        await self._send_json(writer, status, payload, extra)

    async def _poll(self, writer: asyncio.StreamWriter, job_id: str,
                    query: Dict[str, list]) -> None:
        job = self.service.job_info(job_id)
        if job is None:
            await self._send_json(writer, 404,
                                  {"error": "unknown-job", "id": job_id})
            return
        wait_s = 0.0
        if "wait" in query:
            try:
                wait_s = min(60.0, max(0.0, float(query["wait"][0])))
            except ValueError:
                await self._send_json(
                    writer, 400, {"error": "bad-request",
                                  "message": "wait must be a number"})
                return
        if wait_s > 0 and not job.terminal:
            try:
                await asyncio.wait_for(job.done_event().wait(), wait_s)
            except asyncio.TimeoutError:
                pass
        await self._send_json(writer, 200, job.to_json())

    async def _stream(self, writer: asyncio.StreamWriter,
                      job_id: str) -> None:
        job = self.service.job_info(job_id)
        if job is None:
            await self._send_json(writer, 404,
                                  {"error": "unknown-job", "id": job_id})
            return
        obs.add("serve.streams")
        queue = job.subscribe()
        try:
            writer.write(b"HTTP/1.1 200 OK\r\n"
                         b"Content-Type: application/x-ndjson\r\n"
                         b"Transfer-Encoding: chunked\r\n"
                         b"Connection: close\r\n\r\n")
            await writer.drain()
            while True:
                try:
                    snapshot = await asyncio.wait_for(queue.get(),
                                                      _STREAM_IDLE_S)
                except asyncio.TimeoutError:
                    snapshot = job.to_json()    # keep-alive snapshot
                if snapshot is None:
                    break
                chunk = (json.dumps(snapshot, sort_keys=True) + "\n"
                         ).encode("utf-8")
                writer.write(b"%x\r\n%s\r\n" % (len(chunk), chunk))
                await writer.drain()
                if snapshot.get("state") == "done":
                    break
            writer.write(b"0\r\n\r\n")
            await writer.drain()
        finally:
            job.unsubscribe(queue)

    # -- responses ---------------------------------------------------------

    _REASONS = {200: "OK", 202: "Accepted", 400: "Bad Request",
                404: "Not Found", 413: "Payload Too Large",
                429: "Too Many Requests", 431: "Request Header Fields "
                "Too Large", 500: "Internal Server Error",
                503: "Service Unavailable"}

    async def _send_json(self, writer: asyncio.StreamWriter, status: int,
                         payload: dict,
                         extra_headers: Optional[Dict[str, str]] = None
                         ) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        reason = self._REASONS.get(status, "Unknown")
        head = [f"HTTP/1.1 {status} {reason}",
                "Content-Type: application/json",
                f"Content-Length: {len(body)}",
                "Connection: close"]
        for name, value in (extra_headers or {}).items():
            head.append(f"{name}: {value}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1")
                     + body)
        await writer.drain()
