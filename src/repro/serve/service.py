"""The optimization service: admission, dispatch, healing, drain.

This is the daemon's brain.  The HTTP layer translates requests into
calls on :class:`OptimizationService`; the worker pool reports IO
events back into it; everything in between — the bounded priority
queue, per-client rate limits, per-request deadlines, the degradation
ladder with per-class circuit breakers, the content-addressed result
cache, the write-ahead journal, worker recycling, and graceful drain —
is decided here, on the event loop, with no locks.

The lifecycle of one submission::

    POST /v1/jobs
      -> draining?           503
      -> rate limited?       429 + Retry-After
      -> parse/lower/verify  400 on frontend errors (off-loop executor)
      -> cache lookup        200 {"cached": true, result}
      -> in-flight twin?     202 follower (coalesced, no new work)
      -> queue full?         429 + Retry-After
      -> journal submit (fsync)  <- the durability point
      -> 202 {"id": ...}
    dispatcher: queue -> idle resident worker -> run_attempt
      ok            -> OK/DEGRADED result, cache if OK, journal done
      structured    -> non-retryable => FAILED; else ladder descent
      worker death  -> breaker accounting, ladder descent, respawn
      deadline hit  -> FAILED (queued: dequeued; running: worker killed)

Failure semantics deliberately mirror the batch supervisor
(:mod:`repro.robustness.supervisor`): the same ladder
(:data:`repro.robustness.degrade.LADDER`), the same hard-result set
feeding the same per-class breaker, the same seeded jittered backoff —
so a program that degrades to tier 2 under ``icbe batch`` degrades to
tier 2 under ``icbe serve``.
"""

from __future__ import annotations

import asyncio
import os
import random
import zlib
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.errors import ReproError, ServeError, error_context
from repro.robustness import degrade
from repro.robustness.degrade import (HARD_RESULTS, NON_RETRYABLE_ERRORS,
                                      STATUS_DEGRADED, STATUS_FAILED,
                                      STATUS_OK)
from repro.serve.cache import ResultCache, resolve_submission
from repro.serve.config import ServeOptions
from repro.serve.journal import ServeJournal
from repro.serve.models import (JOB_DONE, JOB_QUEUED, JOB_RUNNING,
                                JobRecord)
from repro.serve.pool import WorkerHandle, WorkerPool
from repro.serve.queue import BoundedJobQueue
from repro.serve.ratelimit import RateLimiter


class OptimizationService:
    """One daemon's worth of serving state, all on one event loop."""

    def __init__(self, options: ServeOptions) -> None:
        self.options = options
        self.journal = ServeJournal(options.run_dir)
        self.cache = ResultCache(options.run_dir,
                                 fingerprint=options.fingerprint())
        self.queue = BoundedJobQueue(options.queue_limit,
                                     workers=max(1, options.workers))
        self.limiter = RateLimiter(options.rate_capacity,
                                   options.rate_refill_per_s)
        self.pool = WorkerPool(options,
                               on_idle=self._on_worker_idle,
                               on_result=self._on_result,
                               on_exit=self._on_worker_exit)
        self.jobs: Dict[str, JobRecord] = {}
        self.draining = False
        self.drained = asyncio.Event()
        self._work = asyncio.Event()
        self._job_seq = 0
        self._breaker: Dict[str, int] = {}
        self._breaker_open: Dict[str, str] = {}
        self._recovered_jobs = 0
        self._completed = 0
        self._tasks: List[asyncio.Task] = []
        #: What store lifecycle maintenance did at startup (see
        #: :func:`repro.analysis.store.lifecycle_maintenance`); empty
        #: when no summary store is configured.
        self.store_maintenance: dict = {}

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        os.makedirs(self.options.run_dir, exist_ok=True)
        if self.options.summary_store:
            # The daemon owns store lifecycle: sweep crashed writers'
            # debris, finish interrupted evictions, and enforce the
            # quota once up front (workers attach with maintain=False).
            from repro.analysis.store import lifecycle_maintenance
            self.store_maintenance = lifecycle_maintenance(
                self.options.summary_store,
                quota_bytes=self.options.summary_store_quota)
        meta = {"seed": self.options.seed,
                "fingerprint": self.options.fingerprint()}
        recovered = ServeJournal.recover(self.options.run_dir)
        if recovered is None:
            self.journal.open_fresh(meta)
        else:
            self.journal.open_recovered(recovered, meta)
            self._restore(recovered)
        await self.pool.start()
        self._tasks.append(asyncio.create_task(self._dispatch_loop(),
                                               name="serve-dispatch"))
        self._tasks.append(asyncio.create_task(self._monitor_loop(),
                                               name="serve-monitor"))
        self._work.set()

    def _restore(self, recovered) -> None:
        """Rebuild state from a prior daemon's journal: finished jobs
        become poll-able terminal records, interrupted jobs re-queue
        (coalesced by key, so N interrupted twins cost one re-run)."""
        loop = asyncio.get_event_loop()
        for record in recovered.submits:
            job = JobRecord(
                id=record["id"], job_source=record["job"],
                name=record.get("name", record["id"]),
                job_class=record.get("job_class", "adhoc"),
                key=record.get("key", ""),
                priority=int(record.get("priority", 5)),
                deadline_s=float(record.get("deadline_s",
                                            self.options.default_deadline_s)),
                inject=record.get("inject"))
            self.jobs[job.id] = job
            number = _id_number(job.id)
            self._job_seq = max(self._job_seq, number)
            done = recovered.done.get(job.id)
            if done is not None:
                job.state = JOB_DONE
                job.result = dict(done)
                job.tier = int(done.get("tier", 0))
                self._completed += 1
                continue
            # Interrupted: the deadline restarts — the client's original
            # budget is unknowable across a daemon death.
            job.deadline_at = loop.time() + job.deadline_s
            job.submitted_at = loop.time()
            primary = (None if job.inject is not None
                       else self._inflight_primary(job.key))
            if primary is not None and primary is not job:
                primary.followers.append(job)
            else:
                self.queue.requeue(job)
            self._recovered_jobs += 1
            obs.add("serve.recovered")

    async def stop(self, grace_s: Optional[float] = None) -> None:
        """Graceful drain: stop admitting, let in-flight attempts
        finish within the grace period, checkpoint the rest, reap."""
        if self.draining:
            await self.drained.wait()
            return
        self.draining = True
        obs.add("serve.drains")
        grace = self.options.drain_grace_s if grace_s is None else grace_s
        loop = asyncio.get_running_loop()
        deadline = loop.time() + grace
        while self.pool.busy_workers() and loop.time() < deadline:
            await asyncio.sleep(0.02)
        await self.pool.stop()
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        # Everything still queued or running stays journaled as a
        # submit without a done — the checkpoint a restart picks up.
        self.journal.close()
        self.drained.set()

    # -- admission ---------------------------------------------------------

    async def submit(self, body: dict,
                     client: str) -> Tuple[int, dict, Dict[str, str]]:
        """One POST /v1/jobs: returns (http status, payload, headers)."""
        obs.add("serve.submitted")
        if self.draining:
            obs.add("serve.rejected.draining")
            return 503, {"error": "draining",
                         "message": "daemon is draining; resubmit "
                                    "elsewhere or later"}, {}
        allowed, retry_after = self.limiter.allow(client)
        if not allowed:
            return 429, {"error": "rate-limited", "client": client}, \
                {"Retry-After": str(retry_after)}
        loop = asyncio.get_running_loop()
        try:
            submission = await loop.run_in_executor(
                None, resolve_submission, body, self.options.run_dir,
                self.options.fingerprint())
        except ReproError as failure:
            obs.add("serve.rejected.invalid")
            return 400, {"error": type(failure).__name__,
                         "message": str(failure),
                         "context": error_context(failure)}, {}
        # Chaos drills (an ``inject`` plan) must actually run: they
        # bypass the cache and never coalesce, in either direction.
        injected = body.get("inject") is not None
        cached = None if injected else self.cache.get(submission.key)
        if cached is not None:
            return 200, {"cached": True, "key": submission.key,
                         "result": dict(cached)}, {}
        primary = (None if injected
                   else self._inflight_primary(submission.key))
        if primary is not None:
            job = self._make_record(submission, body, client)
            primary.followers.append(job)
            self.jobs[job.id] = job
            self._journal_submit(job)
            obs.add("serve.coalesced")
            return 202, {"id": job.id, "state": job.state,
                         "key": job.key, "coalesced_with": primary.id}, {}
        job = self._make_record(submission, body, client)
        admission = self.queue.offer(job)
        if not admission.admitted:
            return 429, {"error": admission.reason,
                         "queue_depth": self.queue.depth,
                         "queue_limit": self.queue.limit}, \
                {"Retry-After": str(admission.retry_after_s)}
        self.jobs[job.id] = job
        self._journal_submit(job)
        self._work.set()
        return 202, {"id": job.id, "state": job.state, "key": job.key,
                     "position": self.queue.depth}, {}

    def _make_record(self, submission, body: dict,
                     client: str) -> JobRecord:
        self._job_seq += 1
        loop = asyncio.get_event_loop()
        deadline_s = self.options.deadline_for(body.get("deadline_s"))
        job = JobRecord(
            id=f"j-{self._job_seq:08d}",
            job_source=submission.job_source,
            name=submission.name,
            job_class=str(body.get("class") or submission.job_class),
            key=submission.key,
            priority=int(body.get("priority", 5)),
            deadline_s=deadline_s,
            client=client,
            inject=body.get("inject"))
        job.deadline_at = loop.time() + deadline_s
        job.submitted_at = loop.time()
        return job

    def _journal_submit(self, job: JobRecord) -> None:
        self.journal.append_submit({
            "id": job.id, "job": job.job_source, "name": job.name,
            "job_class": job.job_class, "key": job.key,
            "priority": job.priority, "deadline_s": job.deadline_s,
            "inject": job.inject})

    def _inflight_primary(self, key: str) -> Optional[JobRecord]:
        for job in self.jobs.values():
            if job.key == key and not job.terminal and job.inject is None:
                return job
        return None

    # -- dispatch ----------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        while True:
            await self._work.wait()
            self._work.clear()
            while not self.draining and len(self.queue):
                idle = self.pool.idle_workers()
                if not idle:
                    break
                job = self.queue.take()
                if job is None or job.terminal:
                    continue
                await self._assign(idle[0], job)

    async def _assign(self, worker: WorkerHandle, job: JobRecord) -> None:
        job.state = JOB_RUNNING
        job.notify()
        obs.add("serve.attempts")
        await self.pool.send_job(worker, job, self._attempt_spec(job))

    def _attempt_spec(self, job: JobRecord) -> dict:
        opts = self.options
        return {"job": job.job_source,
                "tier": job.tier,
                "budget": opts.budget,
                "duplication_limit": opts.duplication_limit,
                "diff_check": opts.diff_check,
                "diff_seed": self._derived_seed(job.key, "diff"),
                "conditional_deadline_s": opts.conditional_deadline_s,
                "timeout_s": opts.timeout_s,
                "memory_mb": opts.memory_mb,
                "inject": job.inject,
                "faults": [],
                "strict": False,
                "analysis_jobs": opts.analysis_jobs,
                "summary_store": opts.summary_store,
                "summary_store_quota": opts.summary_store_quota,
                "trace": obs.enabled()}

    def _derived_seed(self, key: str, purpose: str) -> int:
        return (zlib.crc32(f"{purpose}:{key}".encode())
                ^ self.options.seed) & 0x7FFFFFFF

    # -- pool callbacks ----------------------------------------------------

    def _on_worker_idle(self, worker: WorkerHandle) -> None:
        self._work.set()

    def _on_result(self, worker: WorkerHandle, job: Optional[JobRecord],
                   payload: dict) -> None:
        telemetry = payload.pop("telemetry", None) or {}
        spans = payload.pop("spans", None)
        metrics = payload.pop("metrics", None)
        if job is None or job.terminal:
            obs.add("serve.result.late")
        else:
            self._classify(job, payload)
            self._record_attempt_span(job, telemetry, spans, metrics)
        self._maybe_recycle(worker)

    def _classify(self, job: JobRecord, payload: dict) -> None:
        tier = degrade.tier(job.tier)
        if payload.get("ok"):
            job.attempts.append({"tier": tier.index,
                                 "tier_name": tier.name, "result": "ok"})
            self._breaker[job.job_class] = 0
            self._finish_success(job, payload.get("counts") or {})
            return
        detail = f"{payload.get('error')}: {payload.get('message')}"
        if (payload.get("kind") == "load-error"
                or payload.get("error") in NON_RETRYABLE_ERRORS):
            job.attempts.append({"tier": tier.index,
                                 "tier_name": tier.name, "result": "error",
                                 "detail": detail})
            self._finish_failed(job, f"non-retryable: {detail}",
                                context=payload.get("context") or {})
            return
        self._attempt_failed(job, payload.get("kind", "error"), detail)

    def _on_worker_exit(self, worker: WorkerHandle,
                        job: Optional[JobRecord], reason: str) -> None:
        if job is not None and not job.terminal:
            if reason == "timeout":
                result = "timeout"
                detail = (f"no result within {self.options.timeout_s:g}s; "
                          f"worker {worker.wid} killed")
            elif reason in ("heartbeat", "garbled-protocol"):
                result = "killed"
                detail = f"worker {worker.wid} killed ({reason})"
            else:
                code = worker.process.returncode
                if code is not None and code < 0:
                    result, detail = "killed", (f"worker {worker.wid} died "
                                                f"on signal {-code}")
                else:
                    result, detail = "crash", (f"worker {worker.wid} exited "
                                               f"with code {code}")
            self._attempt_failed(job, result, detail)
        if not self.draining:
            asyncio.get_event_loop().create_task(self._replenish())

    async def _replenish(self) -> None:
        if not self.draining:
            await self.pool.ensure()
            self._work.set()

    def _maybe_recycle(self, worker: WorkerHandle) -> None:
        """Post-job health policy: retire old or bloated workers."""
        opts = self.options
        if worker.state != "idle":
            return
        if worker.jobs_served >= opts.max_jobs_per_worker:
            reason = "max-jobs"
        elif worker.peak_rss_kb >= opts.rss_watermark_kb:
            reason = "rss-watermark"
        else:
            return
        obs.add("serve.worker.recycled")
        self.pool.request_shutdown(worker, f"recycle:{reason}")

    # -- ladder / breaker / backoff ----------------------------------------

    def _attempt_failed(self, job: JobRecord, result: str,
                        detail: str) -> None:
        tier = degrade.tier(job.tier)
        job.attempts.append({"tier": tier.index, "tier_name": tier.name,
                             "result": result, "detail": detail})
        if result in HARD_RESULTS:
            count = self._breaker.get(job.job_class, 0) + 1
            self._breaker[job.job_class] = count
            if (job.job_class not in self._breaker_open
                    and count >= self.options.breaker_threshold):
                self._breaker_open[job.job_class] = detail
                obs.add("serve.breaker.opened")
        if job.job_class in self._breaker_open:
            job.attempts.append({"tier": tier.index,
                                 "tier_name": tier.name,
                                 "result": "circuit-open",
                                 "detail": f"class {job.job_class!r} "
                                           f"breaker open"})
            self._finish_failed(
                job, f"circuit breaker open for class {job.job_class!r}; "
                     f"last: {detail}")
            return
        if job.tier >= degrade.FLOOR_TIER:
            self._finish_failed(
                job, f"failed at floor tier {tier.name}: {detail}")
            return
        job.tier += 1
        job.state = JOB_QUEUED
        job.notify()
        delay = self._backoff_delay(job)
        loop = asyncio.get_event_loop()
        loop.call_later(delay, self._requeue, job)

    def _requeue(self, job: JobRecord) -> None:
        if job.terminal or self.drained.is_set():
            return
        self.queue.requeue(job)
        self._work.set()

    def _backoff_delay(self, job: JobRecord) -> float:
        opts = self.options
        failures = len(job.attempts)
        rng = random.Random((zlib.crc32(job.key.encode()) << 17)
                            ^ (failures * 7919) ^ opts.seed)
        delay = opts.backoff_base_s * (opts.backoff_factor
                                       ** max(0, failures - 1))
        delay *= 1.0 + opts.backoff_jitter * rng.random()
        return min(delay, opts.backoff_max_s)

    # -- outcomes ----------------------------------------------------------

    def _finish_success(self, job: JobRecord, counts: dict) -> None:
        tier = degrade.tier(job.tier)
        if tier.index == 0:
            status, reason = STATUS_OK, ""
        else:
            status = STATUS_DEGRADED
            first = next((a for a in job.attempts
                          if a["result"] != "ok"), None)
            reason = (f"{first['result']}: {first.get('detail', '')}"
                      if first else "degraded")
        result = {"status": status, "tier": tier.index,
                  "tier_name": tier.name, "reason": reason,
                  "counts": dict(counts), "key": job.key}
        if status == STATUS_OK and job.inject is None:
            self.cache.put(job.key, result)
        self._finish(job, result)

    def _finish_failed(self, job: JobRecord, reason: str,
                       context: Optional[dict] = None) -> None:
        tier = degrade.tier(job.tier)
        result = {"status": STATUS_FAILED, "tier": tier.index,
                  "tier_name": tier.name, "reason": reason,
                  "counts": {}, "key": job.key}
        if context:
            result["context"] = dict(context)
        self._finish(job, result)

    def _finish(self, job: JobRecord, result: dict) -> None:
        self._completed += 1
        obs.add(f"serve.jobs.{result['status'].lower()}")
        self.journal.append_done(job.id, result)
        job.finish(result)
        for follower in job.followers:
            if follower.terminal:
                continue
            follower.tier = job.tier
            coalesced = dict(result, coalesced=True)
            self._completed += 1
            obs.add(f"serve.jobs.{result['status'].lower()}")
            self.journal.append_done(follower.id, coalesced)
            follower.finish(coalesced)
        job.followers = []

    # -- the monitor (deadlines, health, population) -----------------------

    async def _monitor_loop(self) -> None:
        opts = self.options
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(max(0.05, opts.heartbeat_interval_s / 2))
            now = loop.time()
            # Per-request deadlines: queued jobs die quietly, running
            # jobs take their worker with them (cancel + reclaim).
            for job in list(self.jobs.values()):
                if job.terminal or now < job.deadline_at:
                    continue
                if job.state == JOB_QUEUED:
                    self.queue.remove(job)
                    obs.add("serve.deadline.queued")
                    self._finish_failed(job, f"deadline exceeded after "
                                             f"{job.deadline_s:g}s in queue")
                elif job.state == JOB_RUNNING:
                    worker = self.pool.by_job(job.id)
                    obs.add("serve.deadline.running")
                    self._finish_failed(job, f"deadline exceeded after "
                                             f"{job.deadline_s:g}s; attempt "
                                             f"cancelled")
                    if worker is not None:
                        self.pool.kill(worker, "deadline")
            if self.draining:
                continue
            # Attempt timeouts and wedged workers.
            for worker in list(self.pool.workers):
                if worker.state == "busy" and now > worker.attempt_deadline:
                    self.pool.kill(worker, "timeout")
                elif (worker.state in ("idle", "busy", "starting")
                        and now - worker.last_heartbeat
                        > opts.heartbeat_timeout_s):
                    self.pool.kill(worker, "heartbeat")
            if self.pool.live_count() < opts.workers:
                await self.pool.ensure()
                self._work.set()

    # -- observability -----------------------------------------------------

    def _record_attempt_span(self, job: JobRecord, telemetry: dict,
                             spans, metrics) -> None:
        session = obs.current()
        if session is None:
            return
        tracer = session.tracer
        end_s = tracer.now()
        wall_s = float(telemetry.get("wall_s", 0.0))
        start_s = end_s - max(0.0, wall_s)
        last = job.attempts[-1] if job.attempts else {}
        span = tracer.record("serve.attempt", start_s, end_s,
                             job=job.name, id=job.id,
                             tier=last.get("tier", job.tier),
                             result=last.get("result", "?"))
        if spans:
            offset = start_s - min(r["start_s"] for r in spans)
            tracer.adopt(spans, parent_id=span.span_id,
                         clock_offset_s=offset,
                         origin=f"worker:{job.id}")
        if metrics:
            session.metrics.merge(metrics)

    # -- introspection -----------------------------------------------------

    def job_info(self, job_id: str) -> Optional[JobRecord]:
        return self.jobs.get(job_id)

    @property
    def ready(self) -> bool:
        """Admitting and able to make progress."""
        return not self.draining and self.pool.live_count() > 0

    def describe(self) -> dict:
        info = {
            "ready": self.ready,
            "draining": self.draining,
            "queue": {"depth": self.queue.depth,
                      "limit": self.queue.limit},
            "jobs": {"total": len(self.jobs),
                     "completed": self._completed,
                     "recovered": self._recovered_jobs},
            "workers": self.pool.describe(),
            "cache": self.cache.stats(),
            "breaker": {"open": dict(self._breaker_open),
                        "counts": dict(self._breaker)},
        }
        if self.options.summary_store:
            info["store"] = self.store_status()
        return info

    def store_status(self) -> dict:
        """The summary store's current footprint and startup
        maintenance counts (also surfaced on ``/healthz``)."""
        from repro.analysis.store import disk_usage
        entries, size = disk_usage(self.options.summary_store)
        return {"dir": self.options.summary_store,
                "quota_bytes": self.options.summary_store_quota,
                "entries": entries, "bytes": size,
                "maintenance": dict(self.store_maintenance)}


def _id_number(job_id: str) -> int:
    """The numeric tail of a ``j-%08d`` id (0 for foreign ids)."""
    _, _, tail = job_id.partition("-")
    try:
        return int(tail)
    except ValueError:
        return 0
