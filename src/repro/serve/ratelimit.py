"""Per-client token-bucket rate limiting.

Classic token bucket: each client key owns a bucket of ``capacity``
tokens refilled continuously at ``refill_per_s``; a request spends one
token, an empty bucket means HTTP 429 with a Retry-After that says
exactly when the next token lands.  The clock is injectable so tests
are instant and deterministic.

Client identity is whatever the HTTP layer passes in — the ``X-Client``
header when present, else the peer address — which is honest about what
a stdlib daemon can know.  The table is bounded: least-recently-seen
buckets are evicted past ``max_clients``, which caps memory under
hostile client-id churn (an evicted client restarts with a full
bucket, i.e. eviction can only ever be too generous, never unfair).
"""

from __future__ import annotations

import math
import time
from collections import OrderedDict
from typing import Callable, Tuple

from repro import obs


class TokenBucket:
    """One client's bucket."""

    __slots__ = ("capacity", "refill_per_s", "tokens", "stamp")

    def __init__(self, capacity: float, refill_per_s: float,
                 now: float) -> None:
        self.capacity = capacity
        self.refill_per_s = refill_per_s
        self.tokens = capacity
        self.stamp = now

    def allow(self, now: float) -> Tuple[bool, float]:
        """Spend one token if available; else (False, seconds-to-token)."""
        elapsed = max(0.0, now - self.stamp)
        self.stamp = now
        self.tokens = min(self.capacity,
                          self.tokens + elapsed * self.refill_per_s)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True, 0.0
        if self.refill_per_s <= 0.0:
            return False, float("inf")
        return False, (1.0 - self.tokens) / self.refill_per_s


class RateLimiter:
    """A bounded table of per-client token buckets."""

    def __init__(self, capacity: float, refill_per_s: float,
                 max_clients: int = 1024,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.capacity = capacity
        self.refill_per_s = refill_per_s
        self.max_clients = max(1, max_clients)
        self._clock = clock
        self._buckets: "OrderedDict[str, TokenBucket]" = OrderedDict()

    def allow(self, client: str) -> Tuple[bool, int]:
        """(allowed, retry_after_s) for one request from ``client``."""
        now = self._clock()
        bucket = self._buckets.get(client)
        if bucket is None:
            bucket = TokenBucket(self.capacity, self.refill_per_s, now)
            self._buckets[client] = bucket
            while len(self._buckets) > self.max_clients:
                self._buckets.popitem(last=False)
        else:
            self._buckets.move_to_end(client)
        allowed, wait_s = bucket.allow(now)
        if allowed:
            return True, 0
        obs.add("serve.rejected.rate_limited")
        if math.isinf(wait_s):
            return False, 3600
        return False, max(1, int(math.ceil(wait_s)))

    def __len__(self) -> int:
        return len(self._buckets)
