"""The bounded priority job queue with explicit admission verdicts.

Backpressure is a feature, not a failure mode: when the queue is full
the daemon says so immediately (HTTP 429 with a Retry-After estimate)
instead of accepting work it cannot finish inside anyone's deadline.
Two classes of entry exist and only one is bounded:

- **new submissions** go through :meth:`BoundedJobQueue.offer`, which
  refuses them beyond ``limit``;
- **ladder retries** of already-admitted jobs go through
  :meth:`BoundedJobQueue.requeue`, which always succeeds — an admitted
  job was journaled and promised a definite outcome, so queue pressure
  may delay it but never drop it.

Ordering is (priority, admission sequence): lower priority numbers run
sooner, FIFO within a priority level, and a retried job keeps its
original sequence number so a descending job is not starved by newer
submissions at the same priority.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import List, Optional

from repro import obs
from repro.serve.models import JobRecord


@dataclass
class Admission:
    """The verdict on one submission attempt."""

    admitted: bool
    #: Refusal category (``queue-full``) when not admitted.
    reason: str = ""
    #: Client guidance for the Retry-After header, in seconds.
    retry_after_s: int = 0


class BoundedJobQueue:
    """Priority queue with a bound on *new* admissions only."""

    def __init__(self, limit: int, nominal_job_s: float = 2.0,
                 workers: int = 1) -> None:
        self.limit = max(1, limit)
        #: Back-of-envelope seconds per job, used only to phrase
        #: Retry-After; measured nowhere, promised nowhere.
        self.nominal_job_s = nominal_job_s
        self.workers = max(1, workers)
        self._heap: List[tuple] = []
        self._seq = 0

    # -- admission ---------------------------------------------------------

    def offer(self, job: JobRecord) -> Admission:
        """Admit a new submission, or refuse it with guidance."""
        if len(self._heap) >= self.limit:
            obs.add("serve.rejected.queue_full")
            return Admission(admitted=False, reason="queue-full",
                             retry_after_s=self.retry_after_s())
        self._push(job, self._next_seq())
        obs.add("serve.admitted")
        return Admission(admitted=True)

    def requeue(self, job: JobRecord, seq: Optional[int] = None) -> None:
        """Re-enter an admitted job (ladder retry); never refused.

        Callers that remember the job's original admission sequence pass
        it to preserve FIFO standing; otherwise a fresh sequence keeps
        heap entries totally ordered (JobRecords are not comparable).
        """
        self._push(job, self._next_seq() if seq is None else seq)

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _push(self, job: JobRecord, seq: int) -> None:
        heapq.heappush(self._heap, (job.priority, seq, job))
        obs.gauge("serve.queue.depth", len(self._heap))

    # -- consumption -------------------------------------------------------

    def take(self) -> Optional[JobRecord]:
        """The next runnable job, or None when empty."""
        if not self._heap:
            return None
        _, _, job = heapq.heappop(self._heap)
        obs.gauge("serve.queue.depth", len(self._heap))
        return job

    def remove(self, job: JobRecord) -> bool:
        """Drop one queued job (deadline expiry, cancellation)."""
        for index, (_, _, queued) in enumerate(self._heap):
            if queued is job:
                self._heap[index] = self._heap[-1]
                self._heap.pop()
                heapq.heapify(self._heap)
                obs.gauge("serve.queue.depth", len(self._heap))
                return True
        return False

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def depth(self) -> int:
        return len(self._heap)

    def retry_after_s(self) -> int:
        """A polite, integral Retry-After guess from queue depth."""
        backlog_s = (len(self._heap) * self.nominal_job_s) / self.workers
        return max(1, int(math.ceil(backlog_s)))
