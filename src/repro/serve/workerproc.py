"""The resident optimization worker (child-process side).

Where the batch supervisor forks one subprocess per attempt, the serve
daemon keeps **K resident workers** and streams jobs to them, so the
per-job cost is one optimization, not one interpreter start-up plus a
few hundred module imports.  Each worker is a plain blocking loop:

- stdin: newline-delimited JSON requests —
  ``{"type": "job", "id": ..., "spec": {...}}`` (the *same* attempt
  spec the batch worker runs; execution is literally
  :func:`repro.robustness.worker.run_attempt`) and
  ``{"type": "shutdown"}``;
- stdout: newline-delimited JSON events — ``ready`` once at start,
  ``result`` per job, and ``heartbeat`` (with the process's peak RSS
  and a busy flag) every ``heartbeat_interval_s`` from a daemon
  thread, so the parent can tell a slow job from a wedged process.

Dying well is inherited from the batch worker's design:

- the address-space rlimit is applied before any job runs, so an OOM
  becomes a structured ``MemoryError`` failure, not a box-killer;
- a SIGALRM backstop is armed around every job at a comfortable
  multiple of the attempt timeout — it only ever fires when the
  *daemon* died and can no longer kill us, so a hung job cannot leak
  a spinning orphan;
- fd 1 is re-pointed at stderr right after the protocol stream is
  duplicated, so a stray ``print`` anywhere in the optimizer can never
  corrupt the framing;
- anything that escapes :func:`run_attempt` (a hard crash, the chaos
  ``crash`` injection's ``os._exit``) ends the process, which the
  parent observes as EOF and classifies as a hard attempt failure.
"""

from __future__ import annotations

import json
import os
import signal
import sys
import threading

from repro import obs
from repro.robustness.worker import (ORPHAN_GRACE_FACTOR,
                                     EXIT_ORPHAN_BACKSTOP, _apply_rlimits,
                                     _peak_rss_kb, run_attempt)


class _Protocol:
    """Locked, line-framed JSON writes shared by both threads."""

    def __init__(self, handle) -> None:
        self._handle = handle
        self._lock = threading.Lock()

    def send(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True) + "\n"
        with self._lock:
            self._handle.write(line)
            self._handle.flush()


def _heartbeat_loop(proto: _Protocol, interval_s: float,
                    busy: dict) -> None:
    stop = busy["stop"]
    while not stop.wait(interval_s):
        try:
            proto.send({"type": "heartbeat",
                        "rss_kb": _peak_rss_kb(),
                        "busy": bool(busy["job"])})
        except (OSError, ValueError):
            return               # parent is gone; the main loop will
                                 # notice EOF and exit


def _arm_job_backstop(timeout_s) -> None:
    """Self-destruct long after the daemon would have killed us."""
    if not timeout_s or not hasattr(signal, "SIGALRM"):
        return
    signal.signal(signal.SIGALRM,
                  lambda signum, frame: os._exit(EXIT_ORPHAN_BACKSTOP))
    signal.alarm(max(1, int(timeout_s * ORPHAN_GRACE_FACTOR) + 5))


def _disarm_job_backstop() -> None:
    if hasattr(signal, "SIGALRM"):
        signal.alarm(0)


def main(argv=None) -> int:
    """Worker entry point: serve jobs over the NDJSON pipe protocol.

    ``argv[1]`` is the JSON worker config (rlimits, heartbeat cadence).
    Loops reading ``job`` frames and writing ``result`` frames until a
    ``shutdown`` frame or EOF; returns the process exit code.
    """
    config = json.loads((argv or sys.argv)[1])
    obs.reset()                  # never inherit a parent session
    # Claim the protocol stream, then point fd 1 at stderr so stray
    # prints cannot corrupt the framing.
    proto = _Protocol(os.fdopen(os.dup(1), "w", encoding="utf-8"))
    os.dup2(2, 1)
    _apply_rlimits(config.get("memory_mb"))
    busy = {"job": None, "stop": threading.Event()}
    thread = threading.Thread(
        target=_heartbeat_loop,
        args=(proto, float(config.get("heartbeat_interval_s", 0.5)), busy),
        daemon=True)
    thread.start()
    proto.send({"type": "ready", "pid": os.getpid(),
                "worker": config.get("worker", "")})
    for raw in sys.stdin:
        raw = raw.strip()
        if not raw:
            continue
        message = json.loads(raw)
        kind = message.get("type")
        if kind == "shutdown":
            break
        if kind != "job":
            continue
        spec = message["spec"]
        busy["job"] = message.get("id")
        _arm_job_backstop(spec.get("timeout_s"))
        try:
            payload = run_attempt(spec)
        finally:
            _disarm_job_backstop()
            busy["job"] = None
        proto.send({"type": "result", "id": message.get("id"),
                    "payload": payload})
    busy["stop"].set()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
