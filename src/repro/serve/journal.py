"""The serve daemon's write-ahead job journal.

Same discipline as the batch supervisor's journal (one line of
canonical JSON per event, fsynced before anyone depends on it), but
shaped for a long-lived stream instead of a fixed batch:

- ``meta`` — first line: schema version, seed, and the daemon's option
  fingerprint.  A restart on the same run directory refuses a journal
  whose fingerprint differs (results keyed under another option set
  must not be mixed).
- ``submit`` — one per *admitted* job, fsynced **before** the 202
  response is written.  This is the durability contract: once a client
  has a job id, the job survives any daemon death.
- ``done`` — one per finished job: the definite terminal result.

Recovery pairs submits with dones: a submit without a done is an
interrupted job, re-queued by the restarted daemon.  A torn final line
(SIGKILL mid-write) is truncated away, exactly as in
:mod:`repro.robustness.journal`.

Timings never enter the journal; the serialized fields are pure
functions of the submissions and the daemon's options, so tests can
compare journals structurally.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro import obs
from repro.errors import ServeError
from repro.utils import durafs

JOURNAL_NAME = "serve-journal.jsonl"
SCHEMA_VERSION = 1
#: The durafs fault site of every serve-journal write.
SITE = "serve.journal"


def _canonical(record: dict) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


@dataclass
class RecoveredServeJournal:
    """What :meth:`ServeJournal.recover` found on disk."""

    meta: Optional[dict] = None
    #: Every ``submit`` record, in admission order.
    submits: List[dict] = field(default_factory=list)
    #: job id -> terminal result payload.
    done: Dict[str, dict] = field(default_factory=dict)
    valid_bytes: int = 0
    torn_tail: bool = False

    @property
    def pending(self) -> List[dict]:
        """Admitted-but-unfinished submits, in admission order."""
        return [record for record in self.submits
                if record["id"] not in self.done]


class ServeJournal:
    """Append-only, fsynced journal of one daemon's job stream.

    All writes route through :mod:`repro.utils.durafs` (site
    ``serve.journal``).  A failed append or fsync voids the durability
    contract — the daemon must not hand out a 202 it cannot honor — so
    write-side OSErrors surface as :class:`~repro.errors.ServeError`
    with structured errno/path context.
    """

    def __init__(self, run_dir: str,
                 fs: Optional["durafs.Filesystem"] = None) -> None:
        self.run_dir = run_dir
        self.path = os.path.join(run_dir, JOURNAL_NAME)
        self.fs = durafs.resolve_fs(fs)
        self._handle: Optional[durafs.AppendFile] = None

    # -- writing -----------------------------------------------------------

    def open_fresh(self, meta: dict) -> None:
        os.makedirs(self.run_dir, exist_ok=True)
        self._handle = durafs.AppendFile(self.path, site=SITE, fs=self.fs,
                                         fresh=True)
        self._append({"type": "meta", "version": SCHEMA_VERSION, **meta})

    def open_recovered(self, recovered: RecoveredServeJournal,
                       meta: dict) -> None:
        """Resume appending after :meth:`recover`, dropping a torn tail
        and refusing a journal from a differently-configured daemon."""
        assert recovered.meta is not None
        for key in ("fingerprint", "seed"):
            if recovered.meta.get(key) != meta.get(key):
                raise ServeError(
                    f"cannot reuse run dir: journal {key} mismatch "
                    f"({recovered.meta.get(key)!r} on disk vs "
                    f"{meta.get(key)!r} configured)",
                    key=key)
        if recovered.meta.get("version") != SCHEMA_VERSION:
            raise ServeError(
                f"cannot reuse run dir: journal schema "
                f"v{recovered.meta.get('version')} != v{SCHEMA_VERSION}")
        if recovered.torn_tail:
            self.fs.truncate_file(self.path, recovered.valid_bytes, SITE)
        self._handle = durafs.AppendFile(self.path, site=SITE, fs=self.fs)

    def append_submit(self, record: dict) -> None:
        """Journal one admission (fsynced before the 202 goes out)."""
        self._append({"type": "submit", **record})

    def append_done(self, job_id: str, result: dict) -> None:
        """Journal one definite terminal result."""
        self._append({"type": "done", "id": job_id, "result": result})

    def _append(self, record: dict) -> None:
        assert self._handle is not None, "serve journal is not open"
        try:
            self._handle.append(_canonical(record) + "\n")
        except OSError as failure:
            raise ServeError(
                f"serve journal write failed: {failure} "
                f"(jobs are only admitted once journaled; free space or "
                f"restart with another --run-dir)",
                errno=int(failure.errno or 0), path=self.path,
                record_type=str(record.get("type"))) from failure
        obs.add("journal.fsyncs")

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # -- recovery ----------------------------------------------------------

    @classmethod
    def recover(cls, run_dir: str) -> Optional[RecoveredServeJournal]:
        """Read back the journal, or None when the directory is fresh.

        Tolerates a torn final line; an unparseable line *followed by
        more data* is real corruption and raises
        :class:`~repro.errors.ServeError`.
        """
        path = os.path.join(run_dir, JOURNAL_NAME)
        if not os.path.exists(path):
            return None
        recovered = RecoveredServeJournal()
        with open(path, "rb") as handle:
            raw = handle.read()
        offset = 0
        lines = raw.split(b"\n")
        for position, line in enumerate(lines):
            if line == b"":
                offset += 1
                continue
            try:
                record = json.loads(line.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                if any(rest.strip() for rest in lines[position + 1:]):
                    raise ServeError(
                        f"corrupt serve journal at byte {offset} of {path}",
                        path=path, offset=offset)
                recovered.torn_tail = True
                break
            recovered.valid_bytes = offset + len(line) + 1
            offset = recovered.valid_bytes
            kind = record.get("type")
            if kind == "meta":
                if recovered.meta is not None:
                    raise ServeError(f"duplicate meta record in {path}",
                                     path=path)
                recovered.meta = record
            elif kind == "submit":
                recovered.submits.append(record)
            elif kind == "done":
                recovered.done[record["id"]] = record.get("result", {})
            else:
                raise ServeError(
                    f"unknown serve journal record type {kind!r}",
                    path=path, record_type=str(kind))
        if recovered.meta is None:
            raise ServeError(f"serve journal {path} has no meta record",
                             path=path)
        return recovered
