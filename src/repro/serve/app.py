"""Daemon assembly and lifecycle: ``icbe serve`` lands here.

:func:`run_daemon` wires the pieces together on one event loop —
journal recovery, worker pool, dispatcher, HTTP front end — publishes
a discovery file, installs signal handlers, and then waits for a
drain.  The shutdown story:

- SIGTERM or SIGINT (or ``POST /v1/drain``) starts a graceful drain:
  the listener keeps answering (``/readyz`` goes 503, submissions get
  503) while in-flight attempts run out their grace period; queued and
  unfinished jobs remain checkpointed in the journal; workers are
  reaped; the process exits ``128 + signum`` (143 for SIGTERM, 130 for
  SIGINT) so process managers see a conventional signal exit.
- A second signal during drain skips the grace period.

The **discovery file** ``<run_dir>/serve.json`` records the bound host,
port, and pid once the daemon is actually accepting connections —
that is what makes ``--port 0`` (ephemeral, races impossible) usable
by tests, the bench load generator, and shell scripts alike::

    port=$(python -c "import json; print(json.load(open('run/serve.json'))['port'])")
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import sys
from typing import Optional

from repro import obs
from repro.serve.config import ServeOptions
from repro.serve.http import HttpFrontend
from repro.serve.service import OptimizationService
from repro.utils import durafs

DISCOVERY_NAME = "serve.json"
#: durafs fault site of the discovery-file write.
SITE_DISCOVERY = "serve.discovery"


def _write_discovery(options: ServeOptions, port: int) -> str:
    path = os.path.join(options.run_dir, DISCOVERY_NAME)
    payload = {"host": options.host, "port": port, "pid": os.getpid()}
    durafs.atomic_write_text(path,
                             json.dumps(payload, sort_keys=True) + "\n",
                             site=SITE_DISCOVERY, must=True)
    return path


async def _main(options: ServeOptions, log) -> int:
    service = OptimizationService(options)
    frontend = HttpFrontend(service, options)
    await service.start()
    port = await frontend.start()
    _write_discovery(options, port)
    log(f"icbe serve: listening on {options.host}:{port} "
        f"({options.workers} workers, run dir {options.run_dir})")
    if service._recovered_jobs:
        log(f"icbe serve: recovered {service._recovered_jobs} "
            f"interrupted job(s) from the journal")

    loop = asyncio.get_running_loop()
    received: dict = {"signum": 0}

    def _on_signal(signum: int) -> None:
        if received["signum"]:
            # Second signal: the operator is impatient — drop the grace
            # period for whatever is still running.
            loop.create_task(service.stop(grace_s=0.0))
            return
        received["signum"] = signum
        log(f"icbe serve: caught {signal.Signals(signum).name}, "
            f"draining (grace {options.drain_grace_s:g}s)")
        loop.create_task(service.stop())

    installed = []
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, _on_signal, signum)
            installed.append(signum)
        except (ValueError, NotImplementedError, RuntimeError):
            pass                 # not the main thread (tests), or an
                                 # event loop that can't do signals

    try:
        await service.drained.wait()
    finally:
        for signum in installed:
            loop.remove_signal_handler(signum)
        await frontend.stop()
    pending = [job for job in service.jobs.values() if not job.terminal]
    log(f"icbe serve: drained ({service._completed} completed, "
        f"{len(pending)} checkpointed)")
    if received["signum"]:
        return 128 + received["signum"]
    return 0


def run_daemon(options: ServeOptions, log=None) -> int:
    """Run the daemon until drained; returns the process exit code."""
    if log is None:
        def log(message: str) -> None:
            print(message, file=sys.stderr, flush=True)
    obs.gauge("serve.workers.target", options.workers)
    return asyncio.run(_main(options, log))


def read_discovery(run_dir: str) -> Optional[dict]:
    """The published ``{"host", "port", "pid"}``, or None before bind."""
    path = os.path.join(run_dir, DISCOVERY_NAME)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None
