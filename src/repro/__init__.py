"""ICBE: Interprocedural Conditional Branch Elimination.

A from-scratch Python reproduction of Bodik, Gupta & Soffa,
*Interprocedural Conditional Branch Elimination*, PLDI 1997: a MiniC
front end, a statement-level interprocedural CFG, an executing profiler,
the paper's demand-driven correlation analysis, and the restructuring
optimization built on procedure entry/exit splitting.

Quickstart::

    from repro import (parse_program, lower_program, run_icfg, Workload,
                       ICBEOptimizer, OptimizerOptions, AnalysisConfig)

    icfg = lower_program(parse_program(source_text))
    before = run_icfg(icfg, Workload([1, 2, 3]))

    optimizer = ICBEOptimizer(OptimizerOptions(
        config=AnalysisConfig(interprocedural=True),
        duplication_limit=100))
    report = optimizer.optimize(icfg)
    after = run_icfg(report.optimized, Workload([1, 2, 3]))

    assert after.observable == before.observable
    assert (after.profile.executed_conditionals
            <= before.profile.executed_conditionals)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
reproduction of every table and figure in the paper.
"""

from repro.analysis import (AnalysisConfig, Answer, CorrelationResult,
                            CorrelationSource, Query, analyze_branch,
                            duplication_upper_bound,
                            eliminated_executions_estimate)
from repro.interp import ExecutionResult, Machine, Profile, Workload, run_icfg
from repro.ir import ICFG, dump_icfg, lower_program, verify_icfg
from repro.lang import parse_program, pretty_print
from repro.transform import (BranchOutcome, ICBEOptimizer,
                             OptimizationReport, OptimizerOptions,
                             restructure_branch)

__version__ = "1.0.0"

__all__ = [
    "AnalysisConfig", "Answer", "BranchOutcome", "CorrelationResult",
    "CorrelationSource", "ExecutionResult", "ICBEOptimizer", "ICFG",
    "Machine", "OptimizationReport", "OptimizerOptions", "Profile", "Query",
    "Workload", "analyze_branch", "dump_icfg", "duplication_upper_bound",
    "eliminated_executions_estimate", "lower_program", "parse_program",
    "pretty_print", "restructure_branch", "run_icfg", "verify_icfg",
    "__version__",
]
