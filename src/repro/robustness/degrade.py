"""The graceful-degradation ladder for batch optimization jobs.

A job that cannot complete under the full optimizer does not take the
batch down and does not simply vanish: it descends the ladder one tier
per failure until it lands on a tier that terminates, and its outcome
records exactly how far it fell and why.  The tiers, strongest first:

====  ================  ===================================================
tier  name              what still runs
====  ================  ===================================================
0     full              interprocedural ICBE, shared analysis context
1     no-cache          interprocedural ICBE, per-conditional re-derivation
                        (the ``--no-analysis-cache`` A/B baseline — rules
                        out cache machinery as the failure source)
2     intra             intraprocedural-only elimination (Mueller &
                        Whalley's safe subset: no cross-call queries, so
                        the demand-driven engine's input-dependent cost
                        disappears)
3     parse-through     no optimization at all: parse, lower, verify,
                        emit the program unchanged (always semantically
                        correct by construction)
====  ================  ===================================================

Every tier's output must still pass :func:`~repro.ir.verify.verify_icfg`
and (when enabled) differential validation — degradation trades
*optimization strength*, never correctness.

The ladder descends exactly one tier per failed attempt ("no job
downgrades more than one tier beyond necessity"); the supervisor's
circuit breaker (see :mod:`~repro.robustness.supervisor`) is the only
thing that short-circuits it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple


@dataclass(frozen=True)
class Tier:
    """One rung of the ladder."""

    index: int
    name: str
    #: False for parse-through: the optimizer is not invoked at all.
    optimize: bool = True
    #: Share the cross-conditional analysis context?
    analysis_cache: bool = True
    #: Ask interprocedural questions at all?
    interprocedural: bool = True

    def options(self, budget: int = 1000,
                duplication_limit: Optional[int] = None,
                deadline_s: Optional[float] = None,
                diff_check: bool = False,
                diff_seed: int = 0,
                fault_plan=None):
        """The :class:`~repro.transform.pipeline.OptimizerOptions` this
        tier runs under.

        Raises :class:`ValueError` for the parse-through tier, which by
        definition has no optimizer run to configure.  (The transform
        import is deferred: ``repro.transform`` itself imports
        robustness modules, and this module is part of the robustness
        package's public surface.)
        """
        from repro.analysis.config import AnalysisConfig
        from repro.transform.pipeline import OptimizerOptions

        if not self.optimize:
            raise ValueError(f"tier {self.name!r} does not run the optimizer")
        return OptimizerOptions(
            config=AnalysisConfig(interprocedural=self.interprocedural,
                                  budget=budget),
            duplication_limit=duplication_limit,
            deadline_s=deadline_s,
            diff_check=diff_check,
            diff_seed=diff_seed,
            fault_plan=fault_plan,
            analysis_cache=self.analysis_cache,
            tier=self.index,
            tier_name=self.name)


#: The ladder, strongest tier first.  Index i is always LADDER[i].
LADDER: Tuple[Tier, ...] = (
    Tier(0, "full"),
    Tier(1, "no-cache", analysis_cache=False),
    Tier(2, "intra", analysis_cache=False, interprocedural=False),
    Tier(3, "parse-through", optimize=False),
)

#: The weakest (always-terminating) tier's index.
FLOOR_TIER = LADDER[-1].index


def tier(index: int) -> Tier:
    """The ladder rung at ``index`` (clamped into range)."""
    return LADDER[max(0, min(index, len(LADDER) - 1))]


def tier_names() -> Tuple[str, ...]:
    """Ladder tier names, strongest first."""
    return tuple(t.name for t in LADDER)


# ---------------------------------------------------------------------------
# Job outcomes.
# ---------------------------------------------------------------------------

#: The three definite job statuses.  Every job the supervisor accepts
#: terminates in exactly one of these; there is no fourth state.
STATUS_OK = "OK"
STATUS_DEGRADED = "DEGRADED"
STATUS_FAILED = "FAILED"


@dataclass
class Attempt:
    """One try of one job at one tier."""

    tier: int
    tier_name: str
    #: ok | timeout | killed | oom | crash | error | verify-fail |
    #: diff-mismatch | circuit-open | no-result
    result: str
    detail: str = ""
    #: Backoff applied *before* this attempt, in seconds (deterministic
    #: given the batch seed; recorded so journals are self-describing).
    backoff_s: float = 0.0
    #: Measured attempt telemetry (wall seconds, worker peak RSS in
    #: KiB).  In-memory only: deliberately excluded from
    #: :meth:`to_json` — so journal and report bytes stay a pure
    #: function of the batch definition and seed — and from equality,
    #: so a live attempt still compares equal to its journal
    #: round-trip.  Telemetry is persisted to the run directory's
    #: ``telemetry.jsonl`` sidecar instead.
    wall_s: float = field(default=0.0, compare=False)
    peak_rss_kb: int = field(default=0, compare=False)
    #: Structured failure context (e.g. the unloadable path and errno
    #: of a vanished input file).  Serialized only when non-empty, so
    #: journals without context keep their exact historical bytes.
    context: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        record = {"tier": self.tier, "tier_name": self.tier_name,
                  "result": self.result, "detail": self.detail,
                  "backoff_s": round(self.backoff_s, 6)}
        if self.context:
            record["context"] = dict(self.context)
        return record

    @classmethod
    def from_json(cls, data: dict) -> "Attempt":
        return cls(tier=data["tier"], tier_name=data["tier_name"],
                   result=data["result"], detail=data.get("detail", ""),
                   backoff_s=data.get("backoff_s", 0.0),
                   context=dict(data.get("context", {})))


#: Attempt results that mean the worker *process* died rather than
#: reporting a structured failure — these feed the circuit breaker.
HARD_RESULTS = frozenset({"timeout", "killed", "oom", "crash", "no-result"})

#: Structured error kinds no amount of degradation can fix: the input
#: itself is invalid, so the ladder is skipped and the job fails fast.
#: (``KeyError``/``LookupError``/``ValueError`` arrive from the load
#: phase — an unknown ``suite:`` benchmark or a malformed scale — and
#: are exactly as permanent as a missing file.)
NON_RETRYABLE_ERRORS = frozenset({"LexError", "ParseError", "SemanticError",
                                  "LoweringError", "SupervisorError",
                                  "FileNotFoundError", "IsADirectoryError",
                                  "NotADirectoryError", "PermissionError",
                                  "KeyError", "LookupError", "ValueError",
                                  "UnicodeDecodeError"})


@dataclass
class JobOutcome:
    """The definite, structured verdict on one batch job.

    ``status`` is one of :data:`STATUS_OK` (succeeded at tier 0),
    :data:`STATUS_DEGRADED` (succeeded at a lower tier; ``tier`` and
    ``reason`` say where and why) or :data:`STATUS_FAILED` (no tier
    succeeded; ``reason`` is the last failure).
    """

    job: str
    status: str
    tier: int
    tier_name: str
    reason: str = ""
    attempts: Tuple[Attempt, ...] = ()
    #: Deterministic result counters from the successful attempt
    #: (empty for FAILED): optimized/conditionals/nodes counts.
    counts: dict = None  # type: ignore[assignment]
    #: Structured context of the definitive failure (empty for OK and
    #: DEGRADED, and for failures that carry none); serialized only
    #: when non-empty so historical journal bytes are unchanged.
    context: dict = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.counts is None:
            self.counts = {}
        if self.context is None:
            self.context = {}

    @property
    def definite(self) -> bool:
        """Every outcome the supervisor emits must satisfy this."""
        return self.status in (STATUS_OK, STATUS_DEGRADED, STATUS_FAILED)

    @property
    def retries(self) -> int:
        return max(0, len(self.attempts) - 1)

    @property
    def kills(self) -> int:
        """Attempts that ended with the supervisor killing the worker."""
        return sum(1 for a in self.attempts
                   if a.result in ("timeout", "killed"))

    def describe(self) -> str:
        line = f"{self.job}: {self.status}"
        if self.status == STATUS_DEGRADED:
            line += f"(tier={self.tier}/{self.tier_name}, reason={self.reason})"
        elif self.status == STATUS_FAILED:
            line += f" ({self.reason})"
        if self.retries:
            line += f" [{self.retries} retries]"
        return line

    def to_json(self) -> dict:
        record = {"job": self.job, "status": self.status, "tier": self.tier,
                  "tier_name": self.tier_name, "reason": self.reason,
                  "attempts": [a.to_json() for a in self.attempts],
                  "counts": dict(self.counts)}
        if self.context:
            record["context"] = dict(self.context)
        return record

    @classmethod
    def from_json(cls, data: dict) -> "JobOutcome":
        return cls(job=data["job"], status=data["status"],
                   tier=data["tier"], tier_name=data["tier_name"],
                   reason=data.get("reason", ""),
                   attempts=tuple(Attempt.from_json(a)
                                  for a in data.get("attempts", ())),
                   counts=dict(data.get("counts", {})),
                   context=dict(data.get("context", {})))
