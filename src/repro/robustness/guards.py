"""Per-conditional resource guards: deadline and node-growth budgets.

A :class:`ResourceGuard` bounds how much one conditional's analysis and
restructuring may cost.  Enforcement is cooperative: the instrumented
hot loops call :func:`~repro.robustness.runtime.checkpoint`, which
routes to :meth:`ResourceGuard.check`, which raises
:class:`~repro.errors.BudgetExceeded` — an ordinary
:class:`~repro.errors.ReproError` the transactional optimizer catches
and converts into a per-conditional rollback.  Nothing hangs, nothing
OOMs, and the remaining conditionals still get their turn.

Timing discipline (audited): every deadline in this module is computed
from ``time.monotonic()``, never ``time.time()``.  Wall-clock time can
jump (NTP steps, suspend/resume), which would make a ``time.time()``
deadline fire early, late, or never.  :class:`DeadlineGuard` is the one
deadline implementation everything shares; it additionally survives the
two clock pathologies a batch supervisor exposes it to:

- **cross-process values** — monotonic clocks are only comparable
  within one process, so a deadline is serialized as *remaining budget*
  (:meth:`DeadlineGuard.to_wire`) and re-armed against the receiving
  process's own clock, never as an absolute timestamp;
- **non-monotonic injected clocks** — a clock that steps backwards
  (tests inject these; a subprocess re-arming from a parent snapshot is
  the production analogue) re-arms the origin instead of silently
  extending the budget, so the guard can fire late by at most the step,
  and never hangs forever.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional

from repro.errors import BudgetExceeded
from repro.ir.icfg import ICFG


class DeadlineGuard:
    """A monotonic wall-clock budget, safe to ship across processes.

    ``budget_s`` is the allowed elapsed time from :meth:`start`.
    ``clock`` is injectable so tests can trip the deadline without
    sleeping.  The guard never stores an absolute wall-clock timestamp:
    :meth:`to_wire` emits the *remaining* budget and
    :meth:`from_wire` re-arms it against the local clock, which is the
    only sound way to hand a deadline to a worker subprocess (each
    process's ``time.monotonic()`` has its own arbitrary epoch).
    """

    def __init__(self, budget_s: Optional[float],
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.budget_s = budget_s
        self.clock = clock
        self._origin: Optional[float] = None

    def start(self) -> "DeadlineGuard":
        """Arm the budget relative to now; returns self."""
        if self.budget_s is not None:
            self._origin = self.clock()
        return self

    @property
    def armed(self) -> bool:
        return self._origin is not None

    def elapsed(self) -> float:
        """Seconds consumed since :meth:`start` (0.0 if unarmed).

        A clock observed *behind* the armed origin — an injected
        non-monotonic clock, or a wire value that leaked across a
        process boundary — re-arms the origin at the observed value
        rather than crediting the guard with negative elapsed time.
        """
        if self._origin is None:
            return 0.0
        now = self.clock()
        if now < self._origin:
            self._origin = now
        return now - self._origin

    def remaining(self) -> Optional[float]:
        """Budget left, clamped at 0.0; None when unlimited."""
        if self.budget_s is None:
            return None
        if self._origin is None:
            return self.budget_s
        return max(0.0, self.budget_s - self.elapsed())

    def expired(self) -> bool:
        """True when an armed budget has been fully consumed."""
        return (self.budget_s is not None and self._origin is not None
                and self.elapsed() > self.budget_s)

    def to_wire(self) -> Dict[str, Optional[float]]:
        """Serialize for a subprocess: remaining budget, no timestamps."""
        return {"budget_s": self.remaining()}

    @classmethod
    def from_wire(cls, wire: Dict[str, Optional[float]],
                  clock: Callable[[], float] = time.monotonic
                  ) -> "DeadlineGuard":
        """Rebuild and re-arm a guard shipped from another process."""
        return cls(wire.get("budget_s"), clock=clock).start()


class ResourceGuard:
    """Context manager enforcing a wall-clock deadline and a node cap.

    ``deadline_s`` bounds elapsed time from :meth:`start` (entering the
    ``with`` block); ``max_nodes`` bounds the node count of whatever
    graph the checkpoints hand in (the working clone, mid-split).
    Either may be None for "unlimited".  ``clock`` is injectable so
    tests can trip the deadline without sleeping.
    """

    def __init__(self, deadline_s: Optional[float] = None,
                 max_nodes: Optional[int] = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.deadline_s = deadline_s
        self.max_nodes = max_nodes
        self.clock = clock
        self.checks = 0
        self._deadline = DeadlineGuard(deadline_s, clock=clock)

    def start(self) -> "ResourceGuard":
        """Arm the deadline relative to now; returns self."""
        self._deadline.start()
        return self

    def __enter__(self) -> "ResourceGuard":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def check(self, icfg: Optional[ICFG] = None) -> None:
        """Raise :class:`BudgetExceeded` if any armed budget is blown."""
        self.checks += 1
        if self._deadline.expired():
            raise BudgetExceeded(
                f"per-conditional deadline of {self.deadline_s:g}s exceeded "
                f"after {self.checks} checkpoints",
                deadline_s=self.deadline_s, checkpoints=self.checks)
        if (self.max_nodes is not None and icfg is not None
                and icfg.node_count() > self.max_nodes):
            raise BudgetExceeded(
                f"node budget exceeded: {icfg.node_count()} nodes > "
                f"cap {self.max_nodes}",
                nodes=icfg.node_count(), max_nodes=self.max_nodes)
