"""Per-conditional resource guards: deadline and node-growth budgets.

A :class:`ResourceGuard` bounds how much one conditional's analysis and
restructuring may cost.  Enforcement is cooperative: the instrumented
hot loops call :func:`~repro.robustness.runtime.checkpoint`, which
routes to :meth:`ResourceGuard.check`, which raises
:class:`~repro.errors.BudgetExceeded` — an ordinary
:class:`~repro.errors.ReproError` the transactional optimizer catches
and converts into a per-conditional rollback.  Nothing hangs, nothing
OOMs, and the remaining conditionals still get their turn.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from repro.errors import BudgetExceeded
from repro.ir.icfg import ICFG


class ResourceGuard:
    """Context manager enforcing a wall-clock deadline and a node cap.

    ``deadline_s`` bounds elapsed time from :meth:`start` (entering the
    ``with`` block); ``max_nodes`` bounds the node count of whatever
    graph the checkpoints hand in (the working clone, mid-split).
    Either may be None for "unlimited".  ``clock`` is injectable so
    tests can trip the deadline without sleeping.
    """

    def __init__(self, deadline_s: Optional[float] = None,
                 max_nodes: Optional[int] = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.deadline_s = deadline_s
        self.max_nodes = max_nodes
        self.clock = clock
        self.checks = 0
        self._deadline: Optional[float] = None

    def start(self) -> "ResourceGuard":
        """Arm the deadline relative to now; returns self."""
        if self.deadline_s is not None:
            self._deadline = self.clock() + self.deadline_s
        return self

    def __enter__(self) -> "ResourceGuard":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def check(self, icfg: Optional[ICFG] = None) -> None:
        """Raise :class:`BudgetExceeded` if any armed budget is blown."""
        self.checks += 1
        if self._deadline is not None and self.clock() > self._deadline:
            raise BudgetExceeded(
                f"per-conditional deadline of {self.deadline_s:g}s exceeded "
                f"after {self.checks} checkpoints")
        if (self.max_nodes is not None and icfg is not None
                and icfg.node_count() > self.max_nodes):
            raise BudgetExceeded(
                f"node budget exceeded: {icfg.node_count()} nodes > "
                f"cap {self.max_nodes}")
