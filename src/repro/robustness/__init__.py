"""Robustness subsystem: transactional transforms, guards, fault drills.

The paper calls restructuring "the most delicate part of the system";
this package is the production answer to that delicacy.  It makes the
whole-program optimizer crash-proof and self-validating:

- :mod:`~repro.robustness.snapshot` — cheap structural ICFG snapshots,
  the basis of per-conditional transactions (roll back one conditional,
  keep the rest of the run);
- :mod:`~repro.robustness.guards` — per-conditional wall-clock and
  node-growth budgets enforced cooperatively via checkpoints;
- :mod:`~repro.robustness.faults` — deterministic fault injection at
  named checkpoints, so the recovery paths themselves are testable;
- :mod:`~repro.robustness.diffcheck` — differential validation of
  observable traces between the original and optimized program;
- :mod:`~repro.robustness.report` — structured diagnostics bundles for
  every failure;
- :mod:`~repro.robustness.runtime` — the checkpoint plumbing tying the
  instrumented analysis/transform loops to guards and fault plans.

See docs/ROBUSTNESS.md for the transaction model and the knobs.
"""

from repro.robustness.degrade import (Attempt, JobOutcome, LADDER, Tier,
                                      tier_names)
from repro.robustness.diffcheck import (DiffMismatch, DiffReport,
                                        differential_check,
                                        require_equivalent,
                                        seeded_workloads)
from repro.robustness.faults import (CORRUPTION_ACTIONS, FaultPlan,
                                     FaultSpec, FiredFault, corrupt_icfg)
from repro.robustness.guards import DeadlineGuard, ResourceGuard
from repro.robustness.journal import Journal, load_outcomes
from repro.robustness.report import (DiagnosticsBundle, capture_bundle,
                                     write_bundle)
from repro.robustness.runtime import (active_context, checkpoint,
                                      robustness_context)
from repro.robustness.snapshot import ICFGSnapshot
from repro.robustness.supervisor import (BatchReport, BatchSupervisor,
                                         JobSpec, SupervisorOptions,
                                         run_batch)

__all__ = [
    "Attempt", "BatchReport", "BatchSupervisor", "CORRUPTION_ACTIONS",
    "DeadlineGuard", "DiagnosticsBundle", "DiffMismatch", "DiffReport",
    "FaultPlan", "FaultSpec", "FiredFault", "ICFGSnapshot", "JobOutcome",
    "JobSpec", "Journal", "LADDER", "ResourceGuard", "SupervisorOptions",
    "Tier", "active_context", "capture_bundle", "checkpoint", "corrupt_icfg",
    "differential_check", "load_outcomes", "require_equivalent",
    "robustness_context", "run_batch", "seeded_workloads", "tier_names",
    "write_bundle",
]
