"""Crash-isolated batch supervisor with checkpoint/resume.

``icbe batch`` turns the single-program optimizer into a service-shaped
component: each job runs in an **isolated worker subprocess** (see
:mod:`~repro.robustness.worker`) under a wall-clock timeout and an
address-space cap, so one pathological input — a hang in the
demand-driven analysis, a memory blow-up, a hard crash — costs exactly
one attempt of one job.  Failed attempts retry down the
graceful-degradation ladder (:mod:`~repro.robustness.degrade`) with
seeded, jittered exponential backoff; a circuit breaker stops retrying
a *job class* after K consecutive hard process deaths; and every
completed job is fsynced into a write-ahead journal
(:mod:`~repro.robustness.journal`) so an interrupted run — including
SIGKILL mid-job — resumes with ``--resume``, skipping completed jobs
and replaying in-flight ones.

Determinism contract: every piece of randomness (backoff jitter, chaos
injection, differential workloads) derives from the single batch
``seed`` plus stable job identity — never from wall-clock time, process
ids, or scheduling order — and the journal is flushed in job-index
order even under ``--jobs N`` parallelism.  Two runs with the same jobs
and seed therefore produce **byte-identical** journals and reports, and
so does an interrupted run finished with ``--resume``.
"""

from __future__ import annotations

import multiprocessing
import os
import random
import signal
import threading
import time
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import json

from repro import obs
from repro.errors import SupervisorDrained, SupervisorError
from repro.robustness import degrade
from repro.robustness.degrade import (Attempt, HARD_RESULTS, JobOutcome,
                                      NON_RETRYABLE_ERRORS, STATUS_DEGRADED,
                                      STATUS_FAILED, STATUS_OK)
from repro.robustness.guards import DeadlineGuard
from repro.robustness.journal import Journal
from repro.robustness.worker import parse_job_source, run_attempt, worker_main
from repro.utils import durafs

REPORT_NAME = "report.txt"
#: Per-attempt wall time and peak RSS, one JSON line each.  Advisory
#: and machine-specific by nature, hence a *sidecar* next to the
#: journal: ``journal.jsonl`` and ``report.txt`` stay byte-identical
#: across resumes, the telemetry file does not pretend to.
TELEMETRY_NAME = "telemetry.jsonl"

#: durafs fault sites of the supervisor's own write surfaces (the
#: journal has its own site inside :mod:`repro.robustness.journal`).
SITE_TELEMETRY = "batch.telemetry"
SITE_REPORT = "batch.report"


def job_class_of(name: str) -> str:
    """The circuit-breaker class of a job: its stem, minus a trailing
    numeric suffix, so ``gen3.mc``/``gen17.mc`` share one class."""
    stem = os.path.basename(name)
    for extension in (".mc",):
        if stem.endswith(extension):
            stem = stem[:-len(extension)]
    return stem.rstrip("0123456789_") or stem


@dataclass
class JobSpec:
    """One unit of batch work."""

    #: A ``.mc`` file path or a ``suite:<name>@<scale>`` reference.
    source: str
    name: str = ""
    job_class: str = ""
    #: Chaos injection: ``{"kind": "hang"|"crash"|"oom", "tiers": [...]}``.
    inject: Optional[dict] = None
    #: In-optimizer fault plan specs (site/hit/action/seed dicts).
    faults: Tuple[dict, ...] = ()
    #: Run the optimizer strict (injected faults escape and fail the
    #: attempt instead of rolling back) — used by drills and tests to
    #: exercise the ladder with in-optimizer faults.
    strict: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            suite_ref = parse_job_source(self.source)
            self.name = (suite_ref[0] if suite_ref
                         else os.path.basename(self.source))
        if not self.job_class:
            self.job_class = job_class_of(self.name)
        self.faults = tuple(self.faults)

    def to_json(self) -> dict:
        """The job *definition* as journaled in the meta record — the
        whole definition, injections included, so a ``--resume`` replays
        exactly the batch that was interrupted (chaos and all)."""
        return {"source": self.source, "name": self.name,
                "job_class": self.job_class, "inject": self.inject,
                "faults": list(self.faults), "strict": self.strict}

    @classmethod
    def from_json(cls, data: dict) -> "JobSpec":
        return cls(source=data["source"], name=data.get("name", ""),
                   job_class=data.get("job_class", ""),
                   inject=data.get("inject"),
                   faults=tuple(data.get("faults", ())),
                   strict=bool(data.get("strict", False)))


@dataclass
class SupervisorOptions:
    """Batch-level knobs (per-tier optimizer knobs ride along)."""

    jobs: int = 1                      # parallel workers
    timeout_s: float = 60.0            # per-attempt wall clock
    memory_mb: Optional[int] = 512     # per-worker address-space cap
    seed: int = 0                      # the single source of randomness
    budget: int = 1000
    duplication_limit: Optional[int] = 100
    diff_check: bool = True
    #: Per-conditional cooperative deadline inside the worker (None =
    #: rely on the process-level timeout alone).
    conditional_deadline_s: Optional[float] = None
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_jitter: float = 0.5        # +0..50% seeded jitter
    backoff_max_s: float = 2.0
    breaker_threshold: int = 5         # K consecutive hard failures
    #: "process" (real subprocess isolation) or "inprocess" (no
    #: isolation — fast path for property tests; hang injection and
    #: rlimits are unavailable there).
    isolation: str = "process"
    #: Sharded analysis prewarm inside each attempt (see
    #: :mod:`repro.analysis.parallel`).  Outcome-neutral, so it is not
    #: part of the fingerprint — a resume may change it freely.
    analysis_jobs: int = 1
    #: Persistent summary store directory shared by every attempt (see
    #: :mod:`repro.analysis.store`); outcome-neutral like the cache.
    summary_store: Optional[str] = None
    #: Store size cap in bytes (None = unbounded).  Eviction only ever
    #: costs misses, so this too stays out of the fingerprint.
    summary_store_quota: Optional[int] = None

    def fingerprint(self) -> dict:
        """The deterministic option set journaled in the meta record.

        ``jobs`` (parallelism) is deliberately excluded: it affects
        scheduling, never outcomes, so a resume may use a different
        worker count and still reproduce the same bytes.
        """
        return {"timeout_s": self.timeout_s, "memory_mb": self.memory_mb,
                "budget": self.budget,
                "duplication_limit": self.duplication_limit,
                "diff_check": self.diff_check,
                "conditional_deadline_s": self.conditional_deadline_s,
                "backoff_base_s": self.backoff_base_s,
                "backoff_factor": self.backoff_factor,
                "backoff_jitter": self.backoff_jitter,
                "backoff_max_s": self.backoff_max_s,
                "breaker_threshold": self.breaker_threshold}


@dataclass
class BatchReport:
    """The supervisor's structured account of one (possibly resumed) run."""

    outcomes: List[JobOutcome] = field(default_factory=list)
    #: Jobs satisfied from the journal instead of being re-run.
    resumed_jobs: int = 0
    #: Classes whose circuit breaker opened during the run.
    breaker_opened: List[str] = field(default_factory=list)
    #: Wall time of this supervisor invocation (in-memory only — never
    #: serialized, so journals and report files stay deterministic).
    wall_s: float = 0.0
    #: Per-attempt telemetry records of *this invocation* (resumed jobs
    #: contribute nothing — their workers ran in a previous process).
    #: In-memory mirror of the ``telemetry.jsonl`` sidecar.
    telemetry: List[dict] = field(default_factory=list)

    def job_telemetry(self) -> Dict[str, dict]:
        """Aggregate telemetry per job: summed attempt wall seconds and
        the max peak RSS any attempt's worker reached.  This is what
        makes a DEGRADED diagnosis actionable — it says whether the job
        fell down the ladder because it was slow, huge, or both."""
        rollup: Dict[str, dict] = {}
        for record in self.telemetry:
            entry = rollup.setdefault(record["job"],
                                      {"attempts": 0, "wall_s": 0.0,
                                       "peak_rss_kb": 0})
            entry["attempts"] += 1
            entry["wall_s"] += record.get("wall_s", 0.0)
            entry["peak_rss_kb"] = max(entry["peak_rss_kb"],
                                       record.get("peak_rss_kb", 0))
        return rollup

    def status_counts(self) -> Dict[str, int]:
        counts = {STATUS_OK: 0, STATUS_DEGRADED: 0, STATUS_FAILED: 0}
        for outcome in self.outcomes:
            counts[outcome.status] = counts.get(outcome.status, 0) + 1
        return counts

    def tier_counts(self) -> Dict[str, int]:
        """Completed jobs per ladder tier (FAILED jobs count nowhere)."""
        counts = {t.name: 0 for t in degrade.LADDER}
        for outcome in self.outcomes:
            if outcome.status != STATUS_FAILED:
                counts[outcome.tier_name] += 1
        return counts

    @property
    def total_retries(self) -> int:
        return sum(o.retries for o in self.outcomes)

    @property
    def total_kills(self) -> int:
        return sum(o.kills for o in self.outcomes)

    @property
    def all_definite(self) -> bool:
        return all(o.definite for o in self.outcomes)

    @property
    def failed_jobs(self) -> List[JobOutcome]:
        return [o for o in self.outcomes if o.status == STATUS_FAILED]

    def render(self) -> str:
        """The deterministic ``report.txt`` body (no timings, no pids)."""
        lines = ["# icbe batch report",
                 "ladder=" + ">".join(degrade.tier_names()), ""]
        for index, outcome in enumerate(self.outcomes):
            lines.append(
                f"[{index}] {outcome.job} {outcome.status} "
                f"tier={outcome.tier}/{outcome.tier_name} "
                f"attempts={len(outcome.attempts)} "
                f"retries={outcome.retries} kills={outcome.kills}"
                + (f" reason={outcome.reason}" if outcome.reason else ""))
        lines.append("")
        tiers = self.tier_counts()
        lines.append("tiers: " + " ".join(f"{name}={tiers[name]}"
                                          for name in degrade.tier_names()))
        statuses = self.status_counts()
        lines.append("statuses: " + " ".join(
            f"{key}={statuses[key]}"
            for key in (STATUS_OK, STATUS_DEGRADED, STATUS_FAILED)))
        lines.append(f"retries={self.total_retries} "
                     f"kills={self.total_kills} "
                     f"breaker_open={','.join(sorted(self.breaker_opened))}")
        return "\n".join(lines) + "\n"


@dataclass
class _JobState:
    """Supervisor-side progress of one job."""

    index: int
    spec: JobSpec
    tier: int = 0
    attempts: List[Attempt] = field(default_factory=list)
    #: Monotonic instant before which the next attempt must not start.
    eligible_at: float = 0.0
    pending_backoff_s: float = 0.0
    outcome: Optional[JobOutcome] = None

    @property
    def done(self) -> bool:
        return self.outcome is not None


class _Running:
    """One live worker subprocess."""

    def __init__(self, state: _JobState, process, result_path: str,
                 deadline: DeadlineGuard) -> None:
        self.state = state
        self.process = process
        self.result_path = result_path
        self.deadline = deadline
        self.killed_on_timeout = False


class BatchSupervisor:
    """Runs a batch of jobs to definite outcomes, whatever the jobs do."""

    def __init__(self, jobs: Sequence[JobSpec], run_dir: str,
                 options: Optional[SupervisorOptions] = None,
                 resume: bool = False) -> None:
        if not jobs and not resume:
            raise SupervisorError("batch has no jobs")
        self.jobs = list(jobs)
        self.run_dir = run_dir
        self.options = options or SupervisorOptions()
        self.resume = resume
        self.journal = Journal(run_dir)
        self._breaker: Dict[str, int] = {}
        self._breaker_open: Dict[str, str] = {}
        #: Set by the SIGTERM/SIGINT handler; checked between launches.
        self._drain_signum = 0

    # -- public API --------------------------------------------------------

    def run(self) -> BatchReport:
        started = time.monotonic()
        report = BatchReport()
        self._report = report
        states = self._states = self._prepare(report)
        # Telemetry is advisory: it is written without fsync and a
        # failure to open or append it must never cost the batch.
        try:
            self._telemetry_handle = durafs.AppendFile(
                os.path.join(self.run_dir, TELEMETRY_NAME),
                site=SITE_TELEMETRY, fresh=not self.resume, do_fsync=False)
        except OSError:
            self._telemetry_handle = None
        previous_handlers = self._install_drain_handlers()
        try:
            with obs.span("batch.run", jobs=len(states),
                          resumed=report.resumed_jobs):
                todo = [s for s in states if not s.done]
                if todo:
                    if self.options.isolation == "inprocess":
                        self._run_inprocess(todo)
                    else:
                        self._run_processes(todo)
                self._flush_journal()
        finally:
            self._restore_drain_handlers(previous_handlers)
            self.journal.close()
            if self._telemetry_handle is not None:
                self._telemetry_handle.close()
        if self._drain_signum:
            # The journal checkpoint above is the hand-off: completed
            # jobs are fsynced in index order, interrupted ones left
            # pending, and ``--resume`` finishes the batch with
            # byte-identical journal and report files.
            done = sum(1 for s in states if s.done)
            name = signal.Signals(self._drain_signum).name
            raise SupervisorDrained(
                f"batch drained on {name}: {done}/{len(states)} jobs "
                f"completed, journal checkpointed in {self.run_dir} "
                f"(finish with --resume)",
                signum=self._drain_signum,
                completed=done, total=len(states), run_dir=self.run_dir)
        report.outcomes = [s.outcome for s in states]
        report.breaker_opened = sorted(self._breaker_open)
        report.wall_s = time.monotonic() - started
        for outcome in report.outcomes:
            obs.add(f"batch.status.{outcome.status.lower()}")
        self._write_report(report)
        return report

    # -- graceful drain ----------------------------------------------------

    def _install_drain_handlers(self):
        """Catch SIGTERM/SIGINT for a checkpointing drain.

        Only possible from the main thread of the main interpreter;
        anywhere else (tests driving the supervisor from a thread) the
        batch simply keeps the host's disposition.
        """
        if threading.current_thread() is not threading.main_thread():
            return {}
        previous = {}
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                previous[signum] = signal.signal(signum, self._on_signal)
            except (ValueError, OSError):
                pass
        return previous

    @staticmethod
    def _restore_drain_handlers(previous) -> None:
        for signum, handler in previous.items():
            try:
                signal.signal(signum, handler)
            except (ValueError, OSError):
                pass

    def _on_signal(self, signum, frame) -> None:
        # Just a flag: everything meaningful (killing workers, the
        # journal checkpoint) happens at a safe point in the run loop,
        # never inside a signal handler.
        self._drain_signum = signum

    # -- setup & resume ----------------------------------------------------

    def _meta(self) -> dict:
        return {"seed": self.options.seed,
                "jobs": [s.to_json() for s in self.jobs],
                "options": self.options.fingerprint()}

    def _prepare(self, report: BatchReport) -> List[_JobState]:
        if self.resume:
            recovered = Journal.recover(self.run_dir)
            # The journal's meta is authoritative for everything that
            # shapes outcomes: seed, option fingerprint, and (when no
            # explicit job list is given) the jobs themselves.  Worker
            # parallelism is the one knob a resume may change freely.
            self.options.seed = recovered.meta["seed"]
            for key, value in recovered.meta["options"].items():
                setattr(self.options, key, value)
            if not self.jobs:
                self.jobs = [JobSpec.from_json(data)
                             for data in recovered.meta["jobs"]]
            Journal.check_meta(recovered, {"version": 1, **self._meta()})
            self.journal.open_resume(recovered)
            completed = recovered.completed
        else:
            self.journal.open_fresh(self._meta())
            completed = {}
        states = [_JobState(index=i, spec=spec)
                  for i, spec in enumerate(self.jobs)]
        for index, outcome in completed.items():
            if 0 <= index < len(states):
                states[index].outcome = outcome
                report.resumed_jobs += 1
        self._journal_cursor = 0
        self._journaled: Dict[int, bool] = {i: True for i in completed}
        # Fast-forward past the prefix already on disk.
        while self._journal_cursor in self._journaled:
            self._journal_cursor += 1
        return states

    # -- the two execution backends ---------------------------------------

    def _run_inprocess(self, todo: List[_JobState]) -> None:
        """No-isolation fast path (tests): same ladder, same breaker,
        same journal discipline; no real protection against hangs.
        Chaos injection is process-level by nature (``crash`` would
        ``os._exit`` the host, ``hang``/``oom`` would take it down), so
        only in-optimizer fault plans are allowed here."""
        for state in todo:
            if state.spec.inject:
                raise SupervisorError(
                    f"{state.spec.inject.get('kind')!r} injection requires "
                    f"process isolation", job=state.spec.name)
        pending = list(todo)
        while pending:
            if self._drain_signum:
                return
            state = pending.pop(0)
            with obs.span("batch.attempt", job=state.spec.name,
                          tier=state.tier):
                payload = run_attempt(self._attempt_spec(state))
                self._classify_structured(state, payload)
            if state.done:
                self._flush_journal()
            else:
                state.eligible_at = 0.0  # in-process: no real sleeping
                pending.append(state)

    def _run_processes(self, todo: List[_JobState]) -> None:
        context = self._mp_context()
        tmp_dir = os.path.join(self.run_dir, "tmp")
        os.makedirs(tmp_dir, exist_ok=True)
        ready: List[_JobState] = list(todo)
        waiting: List[_JobState] = []
        running: List[_Running] = []
        while ready or waiting or running:
            if self._drain_signum:
                # Drain: in-flight attempts are abandoned (killed and
                # reaped, nothing journaled for them — ``--resume``
                # replays the whole job, keeping the journal identical
                # to an uninterrupted run) and queued jobs stay pending.
                for worker in running:
                    worker.process.kill()
                    worker.process.join(10.0)
                obs.add("batch.drained.killed", len(running))
                return
            now = time.monotonic()
            still_waiting = []
            for state in waiting:
                (ready if state.eligible_at <= now
                 else still_waiting).append(state)
            waiting = still_waiting
            ready.sort(key=lambda s: s.index)
            while ready and len(running) < max(1, self.options.jobs):
                running.append(self._launch(context, tmp_dir, ready.pop(0)))
            for worker in list(running):
                if worker.process.is_alive():
                    if worker.deadline.expired():
                        worker.killed_on_timeout = True
                        worker.process.kill()
                        worker.process.join(10.0)
                    else:
                        continue
                running.remove(worker)
                state = worker.state
                self._collect(worker)
                if state.done:
                    self._flush_journal()
                else:
                    waiting.append(state)
            if running or waiting:
                time.sleep(0.005)
        # Reap everything (defensive; all workers were joined above).
        for worker in running:
            worker.process.join(0.1)

    @staticmethod
    def _mp_context():
        try:
            return multiprocessing.get_context("fork")
        except ValueError:       # platforms without fork
            return multiprocessing.get_context()

    def _launch(self, context, tmp_dir: str, state: _JobState) -> _Running:
        attempt_index = len(state.attempts)
        result_path = os.path.join(
            tmp_dir, f"attempt-{state.index}-{attempt_index}.json")
        if os.path.exists(result_path):
            os.remove(result_path)
        # Daemonic children cannot fork grandchildren, so a worker that
        # will run its own sharded analysis prewarm is launched
        # non-daemonic; its SIGALRM orphan backstop still guarantees it
        # cannot outlive a dead supervisor for long.
        process = context.Process(
            target=worker_main,
            args=(self._attempt_spec(state), result_path),
            daemon=self.options.analysis_jobs < 2)
        process.start()
        deadline = DeadlineGuard(self.options.timeout_s).start()
        return _Running(state, process, result_path, deadline)

    def _attempt_spec(self, state: _JobState) -> dict:
        opts = self.options
        return {"job": state.spec.source,
                "tier": state.tier,
                "budget": opts.budget,
                "duplication_limit": opts.duplication_limit,
                "diff_check": opts.diff_check,
                "diff_seed": self._derived_seed(state.spec.source, "diff"),
                "conditional_deadline_s": opts.conditional_deadline_s,
                "timeout_s": opts.timeout_s,
                "memory_mb": opts.memory_mb,
                "inject": state.spec.inject,
                "faults": list(state.spec.faults),
                "strict": state.spec.strict,
                "analysis_jobs": opts.analysis_jobs,
                "summary_store": opts.summary_store,
                "summary_store_quota": opts.summary_store_quota,
                # Workers trace only when the supervisor itself runs
                # under an observability session (their spans get
                # adopted back into it on collection).
                "trace": obs.enabled()}

    # -- attempt classification & the ladder -------------------------------

    def _collect(self, worker: _Running) -> None:
        """Turn one finished/killed worker into an attempt verdict."""
        worker.process.join(0.1)
        elapsed_s = worker.deadline.elapsed()
        payload = self._read_result(worker.result_path)
        if payload is not None:
            self._classify_structured(worker.state, payload,
                                      supervisor_wall_s=elapsed_s)
            return
        exitcode = worker.process.exitcode
        if worker.killed_on_timeout:
            result, detail = "timeout", (
                f"no result within {self.options.timeout_s:g}s; "
                f"worker killed")
        elif exitcode is not None and exitcode < 0:
            result, detail = "killed", f"worker died on signal {-exitcode}"
        elif exitcode:
            result, detail = "crash", f"worker exited with code {exitcode}"
        else:
            result, detail = "no-result", "worker exited without a result"
        before = len(worker.state.attempts)
        self._record_failure(worker.state, result, detail)
        # A hard death leaves no worker-side telemetry; the supervisor's
        # own wall clock for the attempt is the best available account.
        attempt = (worker.state.attempts[before]
                   if len(worker.state.attempts) > before else None)
        self._note_telemetry(worker.state, attempt, before,
                             wall_s=elapsed_s, peak_rss_kb=0)
        self._record_attempt_span(worker.state, attempt, elapsed_s,
                                  spans=None, metrics=None)

    @staticmethod
    def _read_result(result_path: str) -> Optional[dict]:
        import json
        if not os.path.exists(result_path):
            return None
        try:
            with open(result_path, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except (ValueError, OSError):
            return None          # torn result == no result (atomic rename
                                 # makes this unreachable in practice)

    def _classify_structured(self, state: _JobState, payload: dict,
                             supervisor_wall_s: Optional[float] = None,
                             ) -> None:
        """Strip the observability side channels off ``payload``, then
        classify the deterministic remainder.

        Telemetry, spans, and metrics are accounting only — they may
        never influence the verdict, the ladder, or the journal bytes.
        ``supervisor_wall_s`` is set for subprocess attempts (used to
        place the adopted worker trace on the supervisor's clock); it is
        ``None`` for in-process attempts, whose spans already live in
        the ambient session.
        """
        telemetry = payload.pop("telemetry", None) or {}
        spans = payload.pop("spans", None)
        metrics = payload.pop("metrics", None)
        before = len(state.attempts)
        self._dispatch_structured(state, payload)
        attempt = (state.attempts[before]
                   if len(state.attempts) > before else None)
        wall_s = float(telemetry.get("wall_s", supervisor_wall_s or 0.0))
        self._note_telemetry(state, attempt, before, wall_s=wall_s,
                             peak_rss_kb=int(telemetry.get("peak_rss_kb", 0)))
        if supervisor_wall_s is not None:
            self._record_attempt_span(state, attempt, supervisor_wall_s,
                                      spans=spans, metrics=metrics)

    def _dispatch_structured(self, state: _JobState, payload: dict) -> None:
        """Classify one structured (non-hard-death) worker payload."""
        tier = degrade.tier(state.tier)
        if payload.get("ok"):
            state.attempts.append(Attempt(
                tier=tier.index, tier_name=tier.name, result="ok",
                backoff_s=state.pending_backoff_s))
            self._breaker_success(state.spec.job_class)
            self._finalize_success(state, payload.get("counts") or {})
            return
        kind = payload.get("kind", "error")
        detail = f"{payload.get('error')}: {payload.get('message')}"
        if (kind == "load-error"
                or payload.get("error") in NON_RETRYABLE_ERRORS):
            context = dict(payload.get("context") or {})
            state.attempts.append(Attempt(
                tier=tier.index, tier_name=tier.name, result="error",
                detail=detail, backoff_s=state.pending_backoff_s,
                context=context))
            self._finalize_failed(state, f"non-retryable: {detail}",
                                  context=context)
            return
        self._record_failure(state, kind, detail)

    def _record_failure(self, state: _JobState, result: str,
                        detail: str) -> None:
        """One failed attempt: breaker accounting, then descend or fail."""
        tier = degrade.tier(state.tier)
        state.attempts.append(Attempt(
            tier=tier.index, tier_name=tier.name, result=result,
            detail=detail, backoff_s=state.pending_backoff_s))
        job_class = state.spec.job_class
        if result in HARD_RESULTS:
            self._breaker[job_class] = self._breaker.get(job_class, 0) + 1
            if (job_class not in self._breaker_open
                    and self._breaker[job_class]
                    >= self.options.breaker_threshold):
                self._breaker_open[job_class] = detail
        if job_class in self._breaker_open:
            state.attempts.append(Attempt(
                tier=tier.index, tier_name=tier.name, result="circuit-open",
                detail=f"class {job_class!r} breaker open"))
            self._finalize_failed(
                state,
                f"circuit breaker open for class {job_class!r} after "
                f"{self.options.breaker_threshold} consecutive hard "
                f"failures; last: {detail}")
            return
        if state.tier >= degrade.FLOOR_TIER:
            self._finalize_failed(
                state, f"failed at floor tier "
                       f"{degrade.tier(state.tier).name}: {detail}")
            return
        state.tier += 1
        delay = self._backoff_delay(state)
        state.pending_backoff_s = delay
        state.eligible_at = time.monotonic() + delay

    def _backoff_delay(self, state: _JobState) -> float:
        """Seeded, jittered exponential backoff for the *next* attempt.

        Derived purely from (batch seed, job identity, attempt number):
        independent of scheduling order and of resume points, which is
        what keeps journals byte-identical across interruptions.
        """
        opts = self.options
        failures = len(state.attempts)
        key = f"{state.index}:{state.spec.source}"
        rng = random.Random((zlib.crc32(key.encode()) << 17)
                            ^ (failures * 7919) ^ opts.seed)
        delay = opts.backoff_base_s * (opts.backoff_factor
                                       ** max(0, failures - 1))
        delay *= 1.0 + opts.backoff_jitter * rng.random()
        return min(delay, opts.backoff_max_s)

    def _derived_seed(self, source: str, purpose: str) -> int:
        return (zlib.crc32(f"{purpose}:{source}".encode())
                ^ self.options.seed) & 0x7FFFFFFF

    def _breaker_success(self, job_class: str) -> None:
        self._breaker[job_class] = 0

    # -- observability accounting (never affects outcomes) -----------------

    def _note_telemetry(self, state: _JobState, attempt: Optional[Attempt],
                        attempt_index: int, wall_s: float,
                        peak_rss_kb: int) -> None:
        """Record one attempt's measured wall time and peak RSS: on the
        in-memory :class:`Attempt`, in the report, and in the
        ``telemetry.jsonl`` sidecar — never in the journal."""
        if attempt is not None:
            attempt.wall_s = wall_s
            attempt.peak_rss_kb = peak_rss_kb
        record = {"job": state.spec.name, "index": state.index,
                  "attempt": attempt_index,
                  "tier": attempt.tier if attempt else state.tier,
                  "result": attempt.result if attempt else "?",
                  "wall_s": round(wall_s, 6),
                  "peak_rss_kb": peak_rss_kb}
        self._report.telemetry.append(record)
        handle = getattr(self, "_telemetry_handle", None)
        if handle is not None and not handle.closed:
            try:
                handle.append(json.dumps(record, sort_keys=True) + "\n")
            except OSError:
                # Advisory stream: drop the sidecar, keep the batch.
                handle.close()
                self._telemetry_handle = None
        obs.add("batch.attempts")

    def _record_attempt_span(self, state: _JobState,
                             attempt: Optional[Attempt], wall_s: float,
                             spans, metrics) -> None:
        """Retroactively place a finished subprocess attempt into the
        supervisor's trace, adopting the worker's own spans (id-remapped,
        re-parented, clock-rebased) underneath it."""
        session = obs.current()
        if session is None:
            return
        tracer = session.tracer
        end_s = tracer.now()
        start_s = end_s - max(0.0, wall_s)
        parent = (tracer.current.span_id
                  if tracer.current is not None else 0)
        span = tracer.record(
            "batch.attempt", start_s, end_s, parent_id=parent,
            job=state.spec.name,
            tier=attempt.tier if attempt else state.tier,
            result=attempt.result if attempt else "?")
        if spans:
            offset = start_s - min(r["start_s"] for r in spans)
            tracer.adopt(spans, parent_id=span.span_id,
                         clock_offset_s=offset,
                         origin=f"worker:{state.spec.name}")
        if metrics:
            session.metrics.merge(metrics)

    # -- outcomes & persistence -------------------------------------------

    def _finalize_success(self, state: _JobState, counts: dict) -> None:
        tier = degrade.tier(state.tier)
        if tier.index == 0:
            status, reason = STATUS_OK, ""
        else:
            status = STATUS_DEGRADED
            first_failure = next((a for a in state.attempts
                                  if a.result != "ok"), None)
            reason = (f"{first_failure.result}: {first_failure.detail}"
                      if first_failure else "degraded")
        state.outcome = JobOutcome(
            job=state.spec.name, status=status, tier=tier.index,
            tier_name=tier.name, reason=reason,
            attempts=tuple(state.attempts), counts=counts)

    def _finalize_failed(self, state: _JobState, reason: str,
                         context: Optional[dict] = None) -> None:
        tier = degrade.tier(state.tier)
        state.outcome = JobOutcome(
            job=state.spec.name, status=STATUS_FAILED, tier=tier.index,
            tier_name=tier.name, reason=reason,
            attempts=tuple(state.attempts), context=dict(context or {}))

    def _flush_journal(self) -> None:
        """Append finalized outcomes in job-index order, as soon as the
        contiguous done-prefix grows (write-ahead: fsynced before any
        scheduling decision depends on them).  Index order is the
        determinism barrier for parallel workers: completion order may
        vary, journal bytes may not."""
        states = self._states
        while (self._journal_cursor < len(states)
               and states[self._journal_cursor].done):
            if self._journal_cursor not in self._journaled:
                self.journal.append_job(
                    self._journal_cursor,
                    states[self._journal_cursor].outcome)
                self._journaled[self._journal_cursor] = True
            self._journal_cursor += 1

    def _write_report(self, report: BatchReport) -> None:
        path = os.path.join(self.run_dir, REPORT_NAME)
        try:
            durafs.atomic_write_text(path, report.render(),
                                     site=SITE_REPORT, must=True)
        except OSError as failure:
            raise SupervisorError(
                f"cannot write batch report: {failure} "
                f"(outcomes are journaled; free space and re-run with "
                f"--resume to regenerate the report)",
                errno=int(failure.errno or 0), path=path) from failure


def run_batch(sources: Sequence[str], run_dir: str,
              options: Optional[SupervisorOptions] = None,
              resume: bool = False,
              injections: Optional[Dict[str, dict]] = None,
              ) -> BatchReport:
    """Convenience wrapper: build specs (with optional chaos injections
    keyed by job name) and run the supervisor."""
    specs = []
    for source in sources:
        spec = JobSpec(source)
        if injections and spec.name in injections:
            spec.inject = injections[spec.name]
        specs.append(spec)
    return BatchSupervisor(specs, run_dir, options=options,
                           resume=resume).run()
