"""Structured diagnostics for failed or rolled-back transforms.

When a transaction aborts — an exception inside analysis/restructuring,
a blown budget, or a differential mismatch — the optimizer captures a
:class:`DiagnosticsBundle`: the failing conditional, the phase, the
exception with its traceback, a textual dump of the offending ICFG
(via :mod:`repro.ir.printer`), and the differential report if one
exists.  Bundles ride on the
:class:`~repro.transform.pipeline.OptimizationReport` and can be spilled
to disk with :func:`write_bundle`, so a production failure is a
post-mortem artifact instead of a lost stack trace.
"""

from __future__ import annotations

import json
import os
import traceback
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import error_context
from repro.ir.icfg import ICFG
from repro.ir.printer import dump_icfg
from repro.robustness.diffcheck import DiffReport
from repro.utils import durafs

#: durafs fault site of diagnostics-bundle spills.
SITE_BUNDLE = "diag.bundle"


@dataclass
class DiagnosticsBundle:
    """Everything known about one transactional failure."""

    branch_id: int           # -1 for pipeline-level phases
    phase: str               # restructure | diff-check | simplify | final-*
    failure: str
    traceback_text: str = ""
    icfg_dump: str = ""
    diff: Optional[DiffReport] = None
    #: The exception's structured ``.context`` dict (see
    #: :class:`~repro.errors.ReproError`), JSON-sanitized.
    error_context: Dict[str, object] = field(default_factory=dict)

    def render(self) -> str:
        """The bundle as a self-contained markdown document."""
        where = (f"branch {self.branch_id}" if self.branch_id >= 0
                 else "pipeline")
        parts = [f"# ICBE diagnostics — {where}, phase `{self.phase}`",
                 "", f"**Failure:** {self.failure or '(none recorded)'}"]
        if self.error_context:
            parts += ["", "**Context:**", "", "```json",
                      json.dumps(self.error_context, sort_keys=True,
                                 indent=2), "```"]
        if self.diff is not None:
            parts += ["", f"**Differential:** {self.diff.describe()}"]
        if self.traceback_text:
            parts += ["", "## Traceback", "", "```",
                      self.traceback_text.rstrip(), "```"]
        if self.icfg_dump:
            parts += ["", "## Offending ICFG", "", "```",
                      self.icfg_dump.rstrip(), "```"]
        return "\n".join(parts) + "\n"


def capture_bundle(branch_id: int, phase: str,
                   exc: Optional[BaseException] = None,
                   icfg: Optional[ICFG] = None,
                   diff: Optional[DiffReport] = None) -> DiagnosticsBundle:
    """Build a bundle from the live failure context, best-effort.

    The graph may be arbitrarily corrupt at capture time, so the dump is
    guarded: a graph the printer itself chokes on is reported as such
    rather than replacing one failure with another.
    """
    failure = ""
    traceback_text = ""
    if exc is not None:
        failure = f"{type(exc).__name__}: {exc}"
        traceback_text = "".join(traceback.format_exception(
            type(exc), exc, exc.__traceback__))
    elif diff is not None:
        failure = diff.describe()
    icfg_dump = ""
    if icfg is not None:
        try:
            icfg_dump = dump_icfg(icfg)
        except Exception as dump_error:  # corrupt graph: note, don't mask
            icfg_dump = f"<icfg not dumpable: {dump_error!r}>"
    return DiagnosticsBundle(branch_id=branch_id, phase=phase,
                             failure=failure,
                             traceback_text=traceback_text,
                             icfg_dump=icfg_dump, diff=diff,
                             error_context=(error_context(exc)
                                            if exc is not None else {}))


def write_bundle(bundle: DiagnosticsBundle, directory: str) -> str:
    """Write ``bundle`` under ``directory``; returns the file path.

    Best-effort: a bundle spill is a post-mortem convenience, so a
    failed write (disk full mid-incident is the norm, not the edge
    case) returns ``""`` — the bundle is still on the in-memory report.
    """
    try:
        os.makedirs(directory, exist_ok=True)
    except OSError:
        return ""
    tag = f"branch{bundle.branch_id}" if bundle.branch_id >= 0 else "pipeline"
    name = f"icbe-diag-{tag}-{bundle.phase.replace(':', '_')}.md"
    path = os.path.join(directory, name)
    counter = 1
    while os.path.exists(path):
        path = os.path.join(directory, f"{name[:-3]}-{counter}.md")
        counter += 1
    if not durafs.atomic_write_text(path, bundle.render(), site=SITE_BUNDLE):
        return ""
    return path
