"""The batch supervisor's isolated worker (child-process side).

One worker process = one attempt of one job at one ladder tier.  The
worker is designed to die well: it caps its own address space with
``resource.setrlimit`` *before* touching the input, arms a SIGALRM
backstop so an orphaned hang self-terminates even if the supervisor was
SIGKILLed, and reports through an **atomically renamed** JSON result
file — so the supervisor either sees a complete structured result or no
result at all, never a torn one.

Result protocol (every field the supervisor may journal is
deterministic — no timings, no pids; the ``telemetry``/``spans``/
``metrics`` side-channel fields are the explicit exception and are
stripped by the supervisor before journaling):

- success: ``{"ok": true, "tier": i, "verify_ok": true, "diff_ok":
  true, "counts": {...}}``
- structured failure: ``{"ok": false, "error": "<ExceptionType>",
  "message": "...", "context": {...}}`` — the worker survived and
  explained itself (a :class:`~repro.errors.ReproError`, a
  ``MemoryError`` under the rlimit, a failed validation);
- no result file / nonzero exit — the worker died hard (crash, OOM
  kill, or the supervisor's SIGKILL on timeout); the supervisor
  classifies these from the exit status.

Chaos injection (``spec["inject"]``) deliberately produces the three
pathologies the supervisor must survive — ``hang`` (ignores cooperative
checkpoints), ``crash`` (hard ``os._exit``), ``oom`` (allocates until
the rlimit bites) — gated on the attempt's tier so the degradation
ladder genuinely recovers the job one tier down.
"""

from __future__ import annotations

import os
import signal
import sys
import time
from typing import Optional, Tuple

from repro import obs
from repro.errors import ReproError, error_context
from repro.interp.workload import Workload
from repro.ir import lower_program, verify_icfg
from repro.ir.icfg import ICFG
from repro.lang import parse_program
from repro.robustness import degrade
from repro.robustness.diffcheck import differential_check, seeded_workloads
from repro.robustness.faults import FaultPlan, FaultSpec
from repro.utils import durafs

#: Exit codes the chaos faults use (recognizable in supervisor logs).
EXIT_CRASH = 134          # simulated abort()
EXIT_ORPHAN_BACKSTOP = 124

#: durafs fault site of the worker's result publication.
SITE_RESULT = "batch.result"

#: How far past the supervisor's own kill deadline the worker's SIGALRM
#: backstop waits before self-terminating (it only ever fires when the
#: supervisor itself was killed and can no longer clean us up).
ORPHAN_GRACE_FACTOR = 3.0


def parse_job_source(source: str):
    """``suite:<name>@<scale>`` -> (name, scale); anything else -> None."""
    if not source.startswith("suite:"):
        return None
    spec = source[len("suite:"):]
    name, _, scale_text = spec.partition("@")
    scale = int(scale_text) if scale_text else 1
    return name, scale


def load_job_icfg(source: str) -> Tuple[ICFG, Optional[Workload]]:
    """Parse, lower, and verify one job's program.

    ``source`` is either a path to a ``.mc`` file or a
    ``suite:<name>@<scale>`` benchmark reference; suite jobs also yield
    their deterministic ref workload for differential validation.
    """
    suite_ref = parse_job_source(source)
    if suite_ref is not None:
        from repro.benchgen.suite import load_benchmark
        bench = load_benchmark(suite_ref[0], scale=suite_ref[1])
        program, workload = bench.program, bench.workload
    else:
        with open(source, "r", encoding="utf-8") as handle:
            program = parse_program(handle.read())
        workload = None
    icfg = lower_program(program)
    verify_icfg(icfg)
    return icfg, workload


def _apply_rlimits(memory_mb: Optional[int]) -> None:
    """Cap the worker's memory before any real work happens.

    Linux does not enforce ``RLIMIT_RSS``, so the address-space limit
    (``RLIMIT_AS``) is the practical RSS cap: allocations past it raise
    ``MemoryError``, which the worker reports as a structured failure.
    """
    if memory_mb is None:
        return
    try:
        import resource
    except ImportError:          # non-POSIX: run uncapped rather than die
        return
    limit = int(memory_mb) * 1024 * 1024
    for name in ("RLIMIT_AS", "RLIMIT_DATA"):
        kind = getattr(resource, name, None)
        if kind is None:
            continue
        try:
            soft, hard = resource.getrlimit(kind)
            ceiling = hard if hard != resource.RLIM_INFINITY else limit
            resource.setrlimit(kind, (min(limit, ceiling), hard))
        except (ValueError, OSError):
            pass                 # container forbids it: supervisor kill
                                 # on timeout remains the backstop


def _arm_orphan_backstop(timeout_s: Optional[float]) -> None:
    """Self-destruct long after the supervisor would have killed us.

    The supervisor SIGKILLs hung workers at ``timeout_s``; this alarm
    only matters when the *supervisor* died first (e.g. the chaos drill
    SIGKILLs it), so an injected hang cannot leak a spinning orphan.
    """
    if timeout_s is None or not hasattr(signal, "SIGALRM"):
        return
    signal.signal(signal.SIGALRM,
                  lambda signum, frame: os._exit(EXIT_ORPHAN_BACKSTOP))
    signal.alarm(max(1, int(timeout_s * ORPHAN_GRACE_FACTOR) + 5))


def _run_injection(inject: Optional[dict], tier_index: int,
                   memory_mb: Optional[int]) -> None:
    """Fire a chaos fault if one is armed for this tier."""
    if not inject or tier_index not in inject.get("tiers", (0,)):
        return
    kind = inject.get("kind")
    if kind == "crash":
        os._exit(EXIT_CRASH)
    if kind == "hang":
        while True:              # ignores every cooperative checkpoint;
            time.sleep(0.25)     # only SIGKILL (or the alarm) ends this
    if kind == "oom":
        ceiling_mb = (memory_mb * 4) if memory_mb else 256
        hog = []
        for _ in range(int(ceiling_mb) // 8 + 1):
            hog.append(bytearray(8 * 1024 * 1024))
        del hog
        raise MemoryError(f"injected allocation reached {ceiling_mb}MB "
                          f"without tripping the rlimit")
    raise ValueError(f"unknown chaos injection kind {kind!r}")


def _write_result(result_path: str, payload: dict) -> None:
    """Atomic, fsynced result publication (write temp, rename).

    ``must=True``: an unpublishable result is a hard worker death (the
    OSError escapes and the process exits nonzero), which the
    supervisor already classifies correctly — never a torn file.
    """
    durafs.atomic_write_json(result_path, payload, site=SITE_RESULT,
                             must=True)


def _fault_plan(spec: dict) -> Optional[FaultPlan]:
    specs = spec.get("faults") or ()
    if not specs:
        return None
    return FaultPlan([FaultSpec(site=f["site"], hit=f.get("hit", 1),
                                action=f.get("action", "raise"),
                                seed=f.get("seed", 0)) for f in specs])


def _peak_rss_kb() -> int:
    """This process's lifetime peak resident set size, in KiB.

    ``ru_maxrss`` is KiB on Linux and bytes on macOS; normalize to KiB.
    Returns 0 where ``resource`` is unavailable (non-POSIX).
    """
    try:
        import resource
    except ImportError:
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        peak //= 1024
    return int(peak)


def run_attempt(spec: dict) -> dict:
    """Execute one (job, tier) attempt; returns the result payload.

    Never raises for job-level problems: every failure is folded into a
    structured ``ok: false`` payload (the supervisor decides what it
    means for the ladder).

    On top of the deterministic result fields the payload carries a
    ``telemetry`` dict (attempt wall seconds, the worker process's peak
    RSS in KiB) and — when ``spec["trace"]`` asks for it — ``spans``
    and ``metrics`` from the worker's own observability session.  The
    supervisor strips all three before anything reaches the journal,
    which is what keeps journal bytes deterministic.
    """
    started = time.monotonic()
    if spec.get("trace") and not obs.enabled():
        # Subprocess case: trace into a private session and serialize
        # it for the supervisor to adopt.  (In-process attempts find
        # the supervisor's session already active and just inherit it —
        # their spans parent naturally, so nothing is exported.)
        with obs.session() as active:
            with obs.span("worker.attempt", job=spec.get("job", ""),
                          tier=spec.get("tier", 0)):
                payload = _attempt_payload(spec)
            payload["spans"] = active.export_spans()
            payload["metrics"] = active.metrics.snapshot()
    else:
        payload = _attempt_payload(spec)
    payload["telemetry"] = {
        "wall_s": round(time.monotonic() - started, 6),
        "peak_rss_kb": _peak_rss_kb(),
    }
    return payload


def _attempt_payload(spec: dict) -> dict:
    """The attempt itself: load, optimize at the tier, validate."""
    tier = degrade.tier(spec["tier"])
    try:
        _run_injection(spec.get("inject"), tier.index, spec.get("memory_mb"))
        try:
            icfg, ref_workload = load_job_icfg(spec["job"])
        except MemoryError:
            raise
        except (ReproError, OSError, LookupError, ValueError) as failure:
            return _load_failure(spec["job"], failure)
        counts = {"conditionals": icfg.conditional_node_count(),
                  "nodes_before": icfg.node_count()}
        if not tier.optimize:
            # Parse-through: the verified input is the output.
            counts.update(optimized=0, failed=0, rolled_back=0,
                          nodes_after=icfg.node_count())
            return {"ok": True, "tier": tier.index, "verify_ok": True,
                    "diff_ok": True, "counts": counts}
        options = tier.options(
            budget=spec.get("budget", 1000),
            duplication_limit=spec.get("duplication_limit"),
            deadline_s=spec.get("conditional_deadline_s"),
            diff_check=bool(spec.get("diff_check", True)),
            diff_seed=spec.get("diff_seed", 0),
            fault_plan=_fault_plan(spec))
        options.strict = bool(spec.get("strict", False))
        options.analysis_jobs = int(spec.get("analysis_jobs") or 1)
        options.summary_store_dir = spec.get("summary_store") or None
        quota = spec.get("summary_store_quota")
        options.summary_store_quota = int(quota) if quota else None
        from repro.transform import ICBEOptimizer
        report = ICBEOptimizer(options).optimize(icfg)
        verify_icfg(report.optimized)
        workloads = seeded_workloads(seed=spec.get("diff_seed", 0))
        if ref_workload is not None:
            workloads.append(ref_workload)
        diff = differential_check(icfg, report.optimized,
                                  workloads=workloads)
        counts.update(optimized=report.optimized_count,
                      failed=report.failed_count,
                      rolled_back=report.rolled_back_count,
                      nodes_after=report.optimized.node_count())
        if not diff.ok:
            return {"ok": False, "error": "DifferentialMismatch",
                    "message": diff.describe(), "context": {},
                    "kind": "diff-mismatch"}
        return {"ok": True, "tier": tier.index, "verify_ok": True,
                "diff_ok": True, "counts": counts}
    except MemoryError:
        return {"ok": False, "error": "MemoryError",
                "message": f"memory cap "
                           f"({spec.get('memory_mb')}MB) exhausted",
                "context": {}, "kind": "oom"}
    except ReproError as failure:
        kind = ("verify-fail"
                if type(failure).__name__ == "VerificationError"
                else "error")
        return {"ok": False, "error": type(failure).__name__,
                "message": str(failure),
                "context": error_context(failure), "kind": kind}
    except OSError as failure:
        return {"ok": False, "error": type(failure).__name__,
                "message": str(failure), "context": {}, "kind": "error"}


def _load_failure(source: str, failure: BaseException) -> dict:
    """A structured verdict for a job whose program cannot be loaded.

    An input file deleted between admission and attempt, a bad or
    unknown ``suite:`` reference, an unreadable path — none of these
    can be fixed by degrading, so the payload is marked with the
    dedicated ``load-error`` kind (the supervisor fails the job fast,
    skipping the ladder) and carries structured context naming exactly
    what was unloadable, so the journaled outcome is diagnosable
    without reproducing the state of the filesystem.
    """
    context: dict = {"source": source, **error_context(failure)}
    if isinstance(failure, OSError):
        if failure.filename:
            context["path"] = str(failure.filename)
        if failure.errno is not None:
            context["errno"] = int(failure.errno)
    return {"ok": False, "error": type(failure).__name__,
            "message": f"cannot load job {source!r}: {failure}",
            "context": context, "kind": "load-error"}


def worker_main(spec: dict, result_path: str) -> None:
    """Child-process entry: cap resources, run, publish, exit 0.

    Anything that escapes (a true crash) leaves no result file, which
    the supervisor reads as a hard failure.
    """
    obs.reset()          # a forked child must not append to the
                         # supervisor's observability session
    _apply_rlimits(spec.get("memory_mb"))
    _arm_orphan_backstop(spec.get("timeout_s"))
    payload = run_attempt(spec)
    _write_result(result_path, payload)
