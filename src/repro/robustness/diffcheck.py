"""Differential validation: original vs optimized observable behaviour.

The optimizer's correctness contract is semantic, not structural: the
verifier proves the graph is runnable, but only execution proves it
computes the same thing.  :func:`differential_check` runs the original
and the optimized ICFG over a shared battery of seeded workloads and
compares the :attr:`~repro.interp.machine.ExecutionResult.observable`
projections (status, exit value, output stream, fault message — the
semantics-defining portion; profiles and step counts are excluded on
purpose, since the whole point of the optimization is to change them).

The transactional optimizer runs this after every accepted transform
(and once more at pipeline end): a mismatch rolls the offending
conditional back instead of silently shipping a miscompile.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import DifferentialMismatch
from repro.interp.machine import DEFAULT_STEP_LIMIT, run_icfg
from repro.interp.workload import Workload
from repro.ir.icfg import ICFG
from repro.robustness.runtime import checkpoint


@dataclass
class DiffMismatch:
    """One workload on which the two graphs observably diverged."""

    workload_name: str
    workload_values: Tuple[int, ...]
    original: Tuple
    optimized: Tuple

    def describe(self) -> str:
        """One-line human-readable account of the divergence."""
        return (f"workload {self.workload_name or self.workload_values}: "
                f"original {self.original} != optimized {self.optimized}")


@dataclass
class DiffReport:
    """Outcome of one differential comparison."""

    runs: int = 0
    mismatches: List[DiffMismatch] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every workload produced identical observables."""
        return not self.mismatches

    def describe(self) -> str:
        """Summary suitable for logs and :class:`BranchRecord.failure`."""
        if self.ok:
            return f"differential check ok over {self.runs} workloads"
        lines = [m.describe() for m in self.mismatches]
        return (f"differential mismatch on {len(self.mismatches)} of "
                f"{self.runs} workloads: " + "; ".join(lines))


def seeded_workloads(seed: int = 0, runs: int = 3, length: int = 16,
                     low: int = 0, high: int = 8) -> List[Workload]:
    """The default battery: the empty stream plus ``runs`` seeded ones.

    Values are non-negative by default: idiomatic MiniC programs treat 0
    and negatives as end-of-file sentinels, and a sentinel-free endless
    stream can stop such programs from ever terminating — which would
    turn every differential run into a step-limit crawl.
    """
    loads = [Workload([], name="empty")]
    for index in range(runs):
        loads.append(Workload.random(length, low=low, high=high,
                                     seed=seed + index,
                                     name=f"seeded-{seed + index}"))
    return loads


def differential_check(original: ICFG, optimized: ICFG,
                       workloads: Optional[List[Workload]] = None,
                       seed: int = 0, runs: int = 3, length: int = 16,
                       step_limit: int = DEFAULT_STEP_LIMIT) -> DiffReport:
    """Compare observable traces of ``original`` vs ``optimized``.

    Neither graph is mutated; workloads are re-wound via ``fresh`` so a
    caller-supplied battery can be reused across calls.
    """
    checkpoint("diffcheck:run")
    if workloads is None:
        workloads = seeded_workloads(seed, runs, length)
    report = DiffReport(runs=len(workloads))
    for workload in workloads:
        before = run_icfg(original, workload.fresh(), step_limit=step_limit)
        after = run_icfg(optimized, workload.fresh(), step_limit=step_limit)
        if before.observable != after.observable:
            report.mismatches.append(DiffMismatch(
                workload_name=workload.name,
                workload_values=tuple(workload.values),
                original=before.observable,
                optimized=after.observable))
    return report


def require_equivalent(original: ICFG, optimized: ICFG,
                       **kwargs) -> DiffReport:
    """:func:`differential_check` that raises on any divergence."""
    report = differential_check(original, optimized, **kwargs)
    if not report.ok:
        raise DifferentialMismatch(report.describe())
    return report
