"""The batch supervisor's write-ahead journal.

One line of canonical JSON per event, appended and **fsynced** before
the supervisor acts on the event — so any interruption, including
SIGKILL between two bytes, loses at most the line being written.  The
file is ``journal.jsonl`` inside the run directory.

Record types:

- ``meta`` — exactly one, the first line: schema version, batch seed,
  the ordered *complete* job definitions (sources, chaos injections,
  fault plans — so ``--resume`` replays exactly the interrupted batch),
  and the deterministic option fingerprint.  A resume refuses a journal
  whose meta does not match the resumed invocation (different jobs or
  seed would silently mix two batches).
- ``job`` — one per *completed* job, in job-index order: the job's
  definite :class:`~repro.robustness.degrade.JobOutcome`.

Determinism contract: every serialized field is a pure function of the
batch definition and seed — no timestamps, pids, hostnames, or
measured durations — and records are flushed in job-index order even
when workers run in parallel.  Hence an interrupted run finished with
``--resume`` produces a journal **byte-identical** to an uninterrupted
run: the completed prefix is already on disk and the replayed suffix
re-derives the same bytes.

Recovery: :meth:`Journal.recover` tolerates a torn final line (the
SIGKILL-mid-write case) by truncating the file back to the last valid
record before appending resumes.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import SupervisorError
from repro.robustness.degrade import JobOutcome
from repro.utils import durafs

JOURNAL_NAME = "journal.jsonl"
SCHEMA_VERSION = 1
#: The durafs fault site of every journal write.
SITE = "batch.journal"


def canonical_json(record: dict) -> str:
    """Stable bytes for one record: sorted keys, no whitespace."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


@dataclass
class RecoveredJournal:
    """What :meth:`Journal.recover` found on disk."""

    meta: Optional[dict] = None
    #: job-index -> outcome, for every completed job on disk.
    completed: Dict[int, JobOutcome] = field(default_factory=dict)
    #: Bytes of the valid prefix (the torn tail, if any, is past this).
    valid_bytes: int = 0
    torn_tail: bool = False


class Journal:
    """Append-only, fsynced journal of one batch run.

    All writes route through :mod:`repro.utils.durafs` (site
    ``batch.journal``).  A write-side failure — ENOSPC on the append,
    EIO on the fsync — is a *definite* operator error: the write-ahead
    contract is void without durability, so the append raises
    :class:`~repro.errors.SupervisorError` with structured errno/path
    context rather than limping on with an unjournaled batch.
    """

    def __init__(self, run_dir: str,
                 fs: Optional["durafs.Filesystem"] = None) -> None:
        self.run_dir = run_dir
        self.path = os.path.join(run_dir, JOURNAL_NAME)
        self.fs = durafs.resolve_fs(fs)
        self._handle: Optional[durafs.AppendFile] = None

    # -- writing -----------------------------------------------------------

    def open_fresh(self, meta: dict) -> None:
        """Start a new journal, writing the ``meta`` header record."""
        os.makedirs(self.run_dir, exist_ok=True)
        self._handle = durafs.AppendFile(self.path, site=SITE, fs=self.fs,
                                         fresh=True)
        self._append({"type": "meta", "version": SCHEMA_VERSION, **meta})

    def open_resume(self, recovered: RecoveredJournal) -> None:
        """Reopen for appending after :meth:`recover`, dropping any torn
        tail so the next record starts on a clean line boundary."""
        if recovered.torn_tail:
            self.fs.truncate_file(self.path, recovered.valid_bytes, SITE)
        self._handle = durafs.AppendFile(self.path, site=SITE, fs=self.fs)

    def append_job(self, index: int, outcome: JobOutcome) -> None:
        """Journal one completed job (write-ahead: fsynced before the
        supervisor reports or schedules anything based on it)."""
        self._append({"type": "job", "index": index,
                      "outcome": outcome.to_json()})

    def _append(self, record: dict) -> None:
        from repro import obs
        assert self._handle is not None, "journal is not open"
        try:
            self._handle.append(canonical_json(record) + "\n")
        except OSError as failure:
            raise SupervisorError(
                f"journal write failed: {failure} "
                f"(the write-ahead contract requires durable appends; "
                f"free space or choose another --run-dir, then --resume)",
                errno=int(failure.errno or 0), path=self.path,
                record_type=str(record.get("type"))) from failure
        obs.add("journal.fsyncs")

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # -- recovery ----------------------------------------------------------

    @classmethod
    def recover(cls, run_dir: str) -> RecoveredJournal:
        """Read back every valid record from ``run_dir``'s journal.

        Unparseable *final* lines are reported as a torn tail (the
        expected SIGKILL artifact); an unparseable line followed by more
        data means real corruption and raises
        :class:`~repro.errors.SupervisorError`.
        """
        path = os.path.join(run_dir, JOURNAL_NAME)
        if not os.path.exists(path):
            raise SupervisorError(
                f"no journal to resume at {path}", path=path)
        recovered = RecoveredJournal()
        with open(path, "rb") as handle:
            raw = handle.read()
        offset = 0
        lines = raw.split(b"\n")
        for position, line in enumerate(lines):
            if line == b"":
                offset += 1
                continue
            try:
                record = json.loads(line.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                if any(rest.strip() for rest in lines[position + 1:]):
                    raise SupervisorError(
                        f"corrupt journal record at byte {offset} of {path}",
                        path=path, offset=offset)
                recovered.torn_tail = True
                break
            recovered.valid_bytes = offset + len(line) + 1
            offset = recovered.valid_bytes
            kind = record.get("type")
            if kind == "meta":
                if recovered.meta is not None:
                    raise SupervisorError(
                        f"duplicate meta record in {path}", path=path)
                recovered.meta = record
            elif kind == "job":
                recovered.completed[record["index"]] = (
                    JobOutcome.from_json(record["outcome"]))
            else:
                raise SupervisorError(
                    f"unknown journal record type {kind!r} in {path}",
                    path=path, record_type=str(kind))
        if recovered.meta is None:
            raise SupervisorError(
                f"journal {path} has no meta record", path=path)
        return recovered

    @staticmethod
    def check_meta(recovered: RecoveredJournal, meta: dict) -> None:
        """Refuse to resume a journal that belongs to another batch."""
        assert recovered.meta is not None
        on_disk = recovered.meta
        for key in ("seed", "jobs", "options"):
            if on_disk.get(key) != meta.get(key):
                raise SupervisorError(
                    f"cannot resume: journal {key} mismatch "
                    f"({on_disk.get(key)!r} on disk vs {meta.get(key)!r} "
                    f"requested)",
                    key=key, on_disk=repr(on_disk.get(key)),
                    requested=repr(meta.get(key)))
        if on_disk.get("version") != SCHEMA_VERSION:
            raise SupervisorError(
                f"cannot resume: journal schema v{on_disk.get('version')} "
                f"!= v{SCHEMA_VERSION}",
                on_disk_version=on_disk.get("version"))


def load_outcomes(run_dir: str) -> List[JobOutcome]:
    """All completed outcomes in a run directory, in job order."""
    recovered = Journal.recover(run_dir)
    return [recovered.completed[i] for i in sorted(recovered.completed)]
