"""Deterministic fault injection for testing the optimizer's recovery.

A :class:`FaultPlan` arms faults at named instrumentation *sites* — the
strings passed to :func:`~repro.robustness.runtime.checkpoint` — and
fires them on an exact hit count, so a fault lands at a chosen point of
a chosen conditional's transaction, reproducibly.  The instrumented
sites are:

==========================  ================================================
``analysis:pair``           per node-query pair the correlation engine pops
``transform:split``         per node the splitter is about to clone
``transform:eliminate``     entering branch elimination
``transform:verify``        just before the post-transform verifier runs
``pipeline:branch-start``   per conditional, before its transaction begins
``pipeline:simplify``       before the end-of-run nop compaction
``diffcheck:run``           entering a differential trace comparison
==========================  ================================================

Two fault families exist.  ``raise`` faults throw (by default
:class:`~repro.errors.FaultInjected`) to simulate crashes anywhere in
the stack.  Corruption faults silently damage the graph the checkpoint
hands in — dropped edges, stray edges, dangling nodes, cleared exit
lists, skewed print constants — to simulate transform bugs, including
the worst kind: a structurally valid graph that computes the wrong
answer (``skew-print``), which only differential validation can catch.
All corruption is seeded and therefore replayable.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.errors import FaultInjected
from repro.ir.expr import Const
from repro.ir.icfg import EdgeKind, ICFG
from repro.ir.nodes import PrintNode

#: Every corruption action :func:`corrupt_icfg` understands.
CORRUPTION_ACTIONS = ("drop-edge", "stray-edge", "drop-node",
                      "clear-exits", "skew-print")


@dataclass
class FaultSpec:
    """One armed fault: fire on the ``hit``-th visit of ``site``."""

    site: str
    hit: int = 1
    action: str = "raise"
    message: str = ""
    seed: int = 0
    exception: type = FaultInjected


@dataclass
class FiredFault:
    """Record of a fault that actually fired (for assertions and logs)."""

    site: str
    hit: int
    action: str
    detail: str = ""


class FaultPlan:
    """A deterministic schedule of faults, keyed by checkpoint site.

    Activate it through the optimizer's ``fault_plan`` option (or
    directly via :func:`~repro.robustness.runtime.robustness_context`);
    every checkpoint hit is counted per site and matching specs fire
    exactly once.  ``fired`` records what happened.
    """

    def __init__(self, specs: Sequence[FaultSpec] = ()) -> None:
        self.specs: List[FaultSpec] = list(specs)
        self.hits: Dict[str, int] = {}
        self.fired: List[FiredFault] = []

    @classmethod
    def raising(cls, site: str, hit: int = 1, message: str = "",
                exception: type = FaultInjected) -> "FaultPlan":
        """A plan with a single exception-raising fault."""
        return cls([FaultSpec(site, hit, "raise", message,
                              exception=exception)])

    @classmethod
    def corrupting(cls, site: str, hit: int = 1,
                   action: str = "drop-edge", seed: int = 0) -> "FaultPlan":
        """A plan with a single graph-corrupting fault."""
        return cls([FaultSpec(site, hit, action, seed=seed)])

    def reset(self) -> "FaultPlan":
        """Forget hit counts and fired records so the plan can rerun."""
        self.hits.clear()
        self.fired.clear()
        return self

    def fire(self, site: str, icfg: Optional[ICFG] = None) -> None:
        """Count a hit of ``site`` and execute any spec armed for it."""
        count = self.hits.get(site, 0) + 1
        self.hits[site] = count
        for spec in self.specs:
            if spec.site == site and spec.hit == count:
                self._execute(spec, icfg)

    def _execute(self, spec: FaultSpec, icfg: Optional[ICFG]) -> None:
        if spec.action == "raise":
            self.fired.append(FiredFault(spec.site, spec.hit, spec.action))
            raise spec.exception(
                spec.message
                or f"injected fault at {spec.site} (hit {spec.hit})")
        if icfg is None:
            return  # corruption fault at a graph-less site: nothing to do
        detail = corrupt_icfg(icfg, spec.action,
                              _rng(spec.site, spec.hit, spec.seed))
        self.fired.append(FiredFault(spec.site, spec.hit, spec.action,
                                     detail))


def _rng(site: str, hit: int, seed: int) -> random.Random:
    """A process-independent RNG for one (site, hit, seed) triple."""
    return random.Random((zlib.crc32(site.encode()) << 16)
                         ^ (hit * 7919) ^ seed)


def corrupt_icfg(icfg: ICFG, action: str, rng: random.Random) -> str:
    """Apply one named corruption to ``icfg``; returns a description.

    Deterministic given the RNG.  Structural actions break a verifier
    invariant; ``skew-print`` keeps the graph verifier-clean but changes
    its observable behaviour.

    Several actions bypass the graph's mutator methods on purpose (that
    is the kind of bug they simulate), so the graph is marked wholly
    dirty up front: generation-gated machinery (snapshot reuse, scoped
    verification, the analysis context) must never mistake a corrupted
    graph for an untouched one.
    """
    icfg.mark_all_dirty()
    if action == "drop-edge":
        sources = [nid for nid in sorted(icfg.nodes)
                   if icfg.succ_edges(nid)]
        if not sources:
            return "noop: graph has no edges"
        src = sources[rng.randrange(len(sources))]
        edges = icfg.succ_edges(src)
        edge = edges[rng.randrange(len(edges))]
        icfg.remove_edge(edge)
        return f"removed edge {edge}"
    if action == "stray-edge":
        nodes = sorted(icfg.nodes)
        src = nodes[rng.randrange(len(nodes))]
        for _ in range(8):
            dst = nodes[rng.randrange(len(nodes))]
            if not icfg.has_edge(src, dst, EdgeKind.NORMAL):
                icfg.add_edge(src, dst, EdgeKind.NORMAL)
                return f"added stray edge {src} -normal-> {dst}"
        return "noop: could not find a fresh edge slot"
    if action == "drop-node":
        nodes = sorted(icfg.nodes)
        doomed = nodes[rng.randrange(len(nodes))]
        del icfg.nodes[doomed]  # leaves every incident edge dangling
        return f"dropped node {doomed}, leaving dangling edges"
    if action == "clear-exits":
        names = sorted(icfg.procs)
        name = names[rng.randrange(len(names))]
        icfg.procs[name].exits.clear()
        return f"cleared exit list of procedure {name!r}"
    if action == "skew-print":
        prints = [n for n in icfg.iter_nodes() if isinstance(n, PrintNode)]
        if not prints:
            return "noop: graph has no print nodes"
        node = prints[rng.randrange(len(prints))]
        old = node.value
        bump = old.value + 1 if isinstance(old, Const) else 1
        node.value = Const(bump)
        return f"skewed print node {node.id}: {old} -> {node.value}"
    raise ValueError(f"unknown corruption action {action!r}")
