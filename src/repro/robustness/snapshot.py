"""Cheap structural snapshots of an ICFG, for transactional transforms.

A snapshot captures exactly the mutable structure of a graph — nodes,
edge indices, procedure bookkeeping, globals, and the id allocator —
and can be restored any number of times.  It is *not* a ``deepcopy`` of
the whole world: node objects are duplicated via their own
``copy_with_id`` (sharing the immutable expression trees they point
at), edges are frozen dataclasses and shared outright, and nothing
outside the graph is touched.  Taking a snapshot therefore costs the
same order as :meth:`~repro.ir.icfg.ICFG.clone`, which the optimizer
already pays once per conditional.

The optimizer takes a snapshot before each conditional's restructuring
and rolls back to it when anything goes wrong, so one bad conditional
never poisons the rest of the run.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.ir.icfg import Edge, ICFG, ProcInfo, next_restore_token
from repro.ir.nodes import Node


class ICFGSnapshot:
    """A frozen structural copy of an ICFG at one point in time."""

    __slots__ = ("main", "globals", "procs", "nodes", "succs", "ids",
                 "generation", "proc_touched", "restore_token")

    def __init__(self, main: str, globals_: Dict, procs: Dict[str, ProcInfo],
                 nodes: Dict[int, Node], succs: Dict[int, List[Edge]],
                 ids, generation: int = 0,
                 proc_touched: Optional[Dict[str, int]] = None,
                 restore_token: int = 0) -> None:
        self.main = main
        self.globals = globals_
        self.procs = procs
        self.nodes = nodes
        self.succs = succs
        self.ids = ids
        self.generation = generation
        self.proc_touched = proc_touched if proc_touched is not None else {}
        #: Lineage epoch of the graph the snapshot was taken from; a
        #: restore hands it to the target so caches can tell a rewind
        #: within their own history from an arbitrary state swap.
        self.restore_token = restore_token

    @classmethod
    def take(cls, icfg: ICFG) -> "ICFGSnapshot":
        """Capture ``icfg``'s current structure (the graph is unharmed)."""
        return cls(
            main=icfg.main,
            globals_=dict(icfg.globals),
            procs={name: info.copy() for name, info in icfg.procs.items()},
            nodes={nid: node.copy_with_id(nid)
                   for nid, node in icfg.nodes.items()},
            succs={nid: list(edges) for nid, edges in icfg._succs.items()},
            ids=icfg._ids.clone(),
            generation=icfg.generation,
            proc_touched=dict(icfg._proc_touched),
            restore_token=icfg.restore_token)

    @property
    def node_count(self) -> int:
        """How many nodes the snapshotted graph had."""
        return len(self.nodes)

    def restore(self, into: Optional[ICFG] = None) -> ICFG:
        """Materialize the snapshotted state and return the graph.

        With ``into`` the target graph is overwritten in place (its
        object identity survives); otherwise a fresh :class:`ICFG` is
        built.  The snapshot itself stays valid — node objects are
        re-copied on every restore, so later mutation of a restored
        graph cannot corrupt the snapshot.
        """
        target = into if into is not None else ICFG(self.main)
        target.main = self.main
        target.globals = dict(self.globals)
        target.procs = {name: info.copy() for name, info in self.procs.items()}
        target.nodes = {nid: node.copy_with_id(nid)
                        for nid, node in self.nodes.items()}
        succs: Dict[int, List[Edge]] = {nid: list(edges)
                                        for nid, edges in self.succs.items()}
        preds: Dict[int, List[Edge]] = {nid: [] for nid in self.nodes}
        for edges in succs.values():
            for edge in edges:
                preds[edge.dst].append(edge)
        target._succs = succs
        target._preds = preds
        target._ids = self.ids.clone()
        # Restore the mutation clock too: a rolled-back graph is the
        # graph the snapshot saw, so analyses cached against that
        # generation are valid again.  But rewinding the clock lets new
        # mutations re-spend generation numbers the abandoned history
        # already used, so the restored graph also enters a fresh
        # lineage epoch and records exactly where it came from — caches
        # keyed on (epoch, generation) can then distinguish "back to the
        # state I know" from "different state, same number".
        target.generation = self.generation
        target._proc_touched = dict(self.proc_touched)
        target.restored_from_token = self.restore_token
        target.restored_generation = self.generation
        target.restore_token = next_restore_token()
        return target
