"""Checkpoint plumbing shared by resource guards and fault injection.

Analysis and restructuring are instrumented with :func:`checkpoint`
calls at their hot points (one per node-query pair examined, one per
node split, and so on).  A checkpoint is a near-free no-op unless a
:func:`robustness_context` is active, in which case it (a) lets the
active :class:`~repro.robustness.guards.ResourceGuard` enforce its
deadline and node budget and (b) gives the active
:class:`~repro.robustness.faults.FaultPlan` a chance to fire.

The context is a module-level slot rather than a parameter threaded
through every layer: the instrumented loops live many frames below the
optimizer, and the whole system is single-threaded by design.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.ir.icfg import ICFG

_ACTIVE: Optional["RobustnessContext"] = None


class RobustnessContext:
    """The bundle of hooks a checkpoint dispatches to."""

    def __init__(self, guard=None, plan=None) -> None:
        self.guard = guard
        self.plan = plan

    def hit(self, site: str, icfg: Optional[ICFG] = None) -> None:
        """Dispatch one checkpoint hit: guard first, then fault plan."""
        if self.guard is not None:
            self.guard.check(icfg)
        if self.plan is not None:
            self.plan.fire(site, icfg)


@contextmanager
def robustness_context(guard=None, plan=None) -> Iterator[RobustnessContext]:
    """Activate ``guard`` and ``plan`` for checkpoints inside the block.

    Contexts nest: the innermost one wins, and the previous context is
    restored on exit (even on exception).
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = context = RobustnessContext(guard, plan)
    try:
        yield context
    finally:
        _ACTIVE = previous


def checkpoint(site: str, icfg: Optional[ICFG] = None) -> None:
    """Report reaching instrumentation point ``site``.

    ``icfg`` is the graph being worked on at that point, handed to the
    guard (node-budget check) and to corruption faults.  When no context
    is active this is a single global read plus a None test.
    """
    if _ACTIVE is not None:
        _ACTIVE.hit(site, icfg)


def active_context() -> Optional[RobustnessContext]:
    """The innermost active context, or None outside any context."""
    return _ACTIVE
