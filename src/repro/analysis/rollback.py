"""Rollback: collect resolved answers forward along traversed paths.

After the backward worklist terminates, every hosted ``(node, query)``
pair has a disposition describing where its answers come from.  This
module runs the forward fixpoint the paper calls *rollback* (§3.1):
starting at pairs whose queries were resolved, answers propagate along
the reverse of the propagation edges and merge by set union at control
flow merge points.

Unprocessed pairs (budget exhaustion) contribute ``{UNDEF}``.

TRANS expansion happens here for call-site exits: a TRANS answer at the
callee's exit names the entry and surviving variant; the continuation
table maps it to either an immediate answer or the caller-side query at
the call node, whose answers then flow in (paper Fig. 4 lines 25-26).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from repro.analysis.answers import Answer, UNDEF
from repro.analysis.engine import (CachedSummaryDisposition,
                                   CallExitDisposition, CorrelationEngine,
                                   DecidedDisposition, NodeQuery,
                                   PerEdgeDisposition)
from repro.analysis.query import Query
from repro.utils.worklist import Worklist

AnswerMap = Dict[NodeQuery, FrozenSet[Answer]]


def collect_answers(engine: CorrelationEngine) -> AnswerMap:
    """Compute ``A[n, q]`` for every hosted pair of the last analysis."""
    answers: Dict[NodeQuery, Set[Answer]] = {}
    dependents: Dict[NodeQuery, Set[NodeQuery]] = {}

    all_pairs: List[NodeQuery] = []
    for node_id, queries in engine.raised.items():
        for query in queries:
            all_pairs.append((node_id, query))

    for pair in all_pairs:
        if pair not in engine.dispositions:
            # Raised but never processed: the budget ran out (Fig. 4
            # line 5's early termination) — conservatively unknown.
            answers[pair] = {UNDEF}
        else:
            answers[pair] = set()

    def depend(source: NodeQuery, sink: NodeQuery) -> None:
        dependents.setdefault(source, set()).add(sink)

    def answers_of(pair: NodeQuery, sink: NodeQuery) -> Set[Answer]:
        depend(pair, sink)
        return answers.get(pair, {UNDEF})

    def compute(pair: NodeQuery) -> Set[Answer]:
        disposition = engine.dispositions.get(pair)
        if disposition is None:
            return {UNDEF}
        if isinstance(disposition, DecidedDisposition):
            return {disposition.answer}
        if isinstance(disposition, CachedSummaryDisposition):
            # Answered from the cross-branch summary cache: the answer
            # set is already complete (TRANS expansion still happens at
            # the consuming call-site exit below).
            return set(disposition.answers)
        if isinstance(disposition, PerEdgeDisposition):
            result: Set[Answer] = set()
            for contrib in disposition.contribs:
                if contrib.answer is not None:
                    result.add(contrib.answer)
                else:
                    assert contrib.pred_query is not None
                    result |= answers_of((contrib.edge.src,
                                          contrib.pred_query), pair)
            return result
        assert isinstance(disposition, CallExitDisposition)
        if disposition.local_query is not None:
            return set(answers_of((disposition.call_id,
                                   disposition.local_query), pair))
        assert disposition.exit_id is not None
        assert disposition.summary_query is not None
        result = set()
        summary_answers = answers_of(
            (disposition.exit_id, disposition.summary_query), pair)
        for answer in summary_answers:
            if not answer.is_trans:
                result.add(answer)
                continue
            assert answer.trans_query is not None
            key = (disposition.call_id, answer.trans_query,
                   disposition.outer_tag)
            continuation = engine.cont_table.get(key)
            if continuation is None:
                # The surviving variant reached an entry this call does
                # not invoke: that transparent path cannot pass through
                # this call site, so it contributes nothing here.
                continue
            if isinstance(continuation, Answer):
                result.add(continuation)
            else:
                assert isinstance(continuation, Query)
                result |= answers_of((disposition.call_id, continuation),
                                     pair)
        return result

    worklist: Worklist[NodeQuery] = Worklist(all_pairs)
    while worklist:
        pair = worklist.pop()
        fresh = compute(pair)
        if not fresh <= answers[pair]:
            answers[pair] |= fresh
            for sink in dependents.get(pair, ()):
                worklist.push(sink)

    return {pair: frozenset(values) for pair, values in answers.items()}


def answers_at(answer_map: AnswerMap, node_id: int,
               query: Query) -> FrozenSet[Answer]:
    """The answer set for (node, query), defaulting to {UNDEF}."""
    return answer_map.get((node_id, query), frozenset({UNDEF}))
