"""Transitive MOD sets: which globals may a call modify?

The paper's intraprocedural baseline uses MOD/USE procedure summary
information at call sites [Cooper-Kennedy].  For queries, only MOD
matters: a query on global ``g`` may bypass a call to ``p`` exactly when
``g ∉ MOD(p)``.  MOD is the transitive closure over the call graph of
the globals a procedure assigns directly (including binding a call
result to a global at a call-site exit).
"""

from __future__ import annotations

from typing import Dict, Set

from repro.ir.expr import VarId
from repro.ir.icfg import ICFG
from repro.ir.nodes import AssignNode, CallExitNode, CallNode


def direct_mod_sets(icfg: ICFG) -> Dict[str, Set[VarId]]:
    """Globals each procedure assigns without following calls."""
    mods: Dict[str, Set[VarId]] = {name: set() for name in icfg.procs}
    for node in icfg.iter_nodes():
        target = None
        if isinstance(node, AssignNode):
            target = node.target
        elif isinstance(node, CallExitNode):
            target = node.result
        if target is not None and target.is_global:
            mods[node.proc].add(target)
    return mods


def call_graph(icfg: ICFG) -> Dict[str, Set[str]]:
    """caller -> set of callees (by call nodes present in the graph)."""
    edges: Dict[str, Set[str]] = {name: set() for name in icfg.procs}
    for node in icfg.iter_nodes():
        if isinstance(node, CallNode):
            edges[node.proc].add(node.callee)
    return edges


def transitive_mod_sets(icfg: ICFG) -> Dict[str, Set[VarId]]:
    """MOD(p): globals possibly modified by executing p, transitively."""
    mods = direct_mod_sets(icfg)
    callees = call_graph(icfg)
    changed = True
    while changed:
        changed = False
        for proc in icfg.procs:
            before = len(mods[proc])
            for callee in callees[proc]:
                mods[proc] |= mods[callee]
            if len(mods[proc]) != before:
                changed = True
    return mods
