"""Content-addressed, on-disk persistence of summary-node entries.

The cross-branch summary cache (:mod:`repro.analysis.context`) made
completed summary-node answers reusable *within* one optimizer run.
This module makes them reusable *across* runs and *across* programs: a
:class:`SummaryStore` keys each entry by what the answers can possibly
depend on — the canonical text of the callee's procedure body plus the
bodies of its transitive callees, which exit of the callee the summary
was computed at, the plain query, and the semantic knobs of the
:class:`~repro.analysis.config.AnalysisConfig` — and nothing else.
Two different programs that share a callee (the serve-mode common case
is re-optimizing overlapping programs) share store entries; the same
program re-optimized tomorrow skips the engine fixpoint entirely.

Node ids are run-local, so nothing id-shaped may enter a key or a
payload.  :func:`proc_node_order` fixes a canonical per-procedure
numbering (rank of the node id among the procedure's sorted node ids —
deterministic because lowering and restructuring allocate ids
deterministically), and the codec expresses every node reference as a
``(proc, local index)`` pair.  Decoding translates back through the
*current* graph's ordering; any reference that does not resolve makes
the whole entry a miss, never a wrong answer.

Durability routes through :mod:`repro.utils.durafs` (one JSON file per
entry, written to a temp name, fsynced, atomically renamed).  A torn
or garbage file — a crashed writer, a truncated disk, a hostile edit —
is a miss: reads parse defensively and validate a format stamp.

The store also has a *lifecycle*: opening it sweeps orphaned temp
files and half-finished evictions, an optional byte quota is enforced
with deterministic, crash-safe two-phase eviction, and a health state
machine (``healthy`` → ``read-only`` after consecutive write failures
→ ``disabled`` after consecutive read failures) keeps a sick disk
from slowing or corrupting the analysis: a degraded store only ever
costs misses, never wrong answers and never exceptions.

Only *completed* analyses may populate the store (the context enforces
this, exactly as it does for its in-memory cache), so stored answer
sets are exact and budget-independent: the budget is deliberately NOT
part of the key.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro import obs
from repro.utils import durafs

from repro.analysis.answers import Answer, answer_set, trans
from repro.analysis.config import AnalysisConfig
from repro.analysis.query import Query
from repro.ir.expr import VarId
from repro.ir.icfg import ICFG
from repro.ir.ops import RelOp

#: Bump when the entry payload or the canonicalization scheme changes:
#: old entries become misses instead of being misread.
STORE_FORMAT = 1


# ---------------------------------------------------------------------------
# Canonicalization: procedure bodies and node references without node ids.
# ---------------------------------------------------------------------------


def proc_node_order(icfg: ICFG, proc: str) -> List[int]:
    """The procedure's node ids in canonical (ascending) order.

    A node's *local index* is its rank in this list; it is stable across
    processes and runs because lowering and the transforms allocate ids
    deterministically, and it is what the store uses in place of ids.
    """
    return sorted(nid for nid, node in icfg.nodes.items()
                  if node.proc == proc)


def canonical_proc_text(icfg: ICFG, proc: str,
                        local_of: Dict[int, Tuple[str, int]]) -> str:
    """One procedure's body in id-free canonical text.

    ``local_of`` must already cover every node of every procedure the
    text may reference (build it over the closure first); cross-procedure
    edges render as ``proc:index`` so the closure text is self-contained.
    """
    info = icfg.procs[proc]
    params = ",".join(str(p) for p in info.params)
    entries = ",".join(str(local_of[nid][1]) for nid in info.entries
                       if nid in local_of)
    exits = ",".join(str(local_of[nid][1]) for nid in info.exits
                     if nid in local_of)
    lines = [f"proc {proc}({params}) entries=[{entries}] exits=[{exits}]"]
    for nid in proc_node_order(icfg, proc):
        node = icfg.nodes[nid]
        succ_parts = []
        for edge in icfg.succ_edges(nid):
            target = local_of.get(edge.dst)
            if target is None:
                # An edge out of the closure (a CALL into a procedure we
                # are not hashing).  Name the callee textually; bodies
                # outside the closure cannot influence the answers.
                target_text = f"<{icfg.nodes[edge.dst].proc}>"
            elif target[0] == proc:
                target_text = str(target[1])
            else:
                target_text = f"{target[0]}:{target[1]}"
            succ_parts.append(f"{edge.kind.value}->{target_text}")
        lines.append(f"  [{local_of[nid][1]}] {node.label()}  "
                     f"({', '.join(succ_parts)})")
    return "\n".join(lines)


def closure_locals(icfg: ICFG,
                   procs: FrozenSet[str]) -> Dict[int, Tuple[str, int]]:
    """node id -> (proc, local index) over every procedure in ``procs``."""
    local_of: Dict[int, Tuple[str, int]] = {}
    for proc in procs:
        if proc not in icfg.procs:
            continue
        for index, nid in enumerate(proc_node_order(icfg, proc)):
            local_of[nid] = (proc, index)
    return local_of


def canonical_closure_text(icfg: ICFG, procs: FrozenSet[str]) -> str:
    """The canonical, id-free text of a callee closure (sorted procs)."""
    local_of = closure_locals(icfg, procs)
    blocks = [canonical_proc_text(icfg, proc, local_of)
              for proc in sorted(procs) if proc in icfg.procs]
    return "\n".join(blocks)


def config_fingerprint(config: AnalysisConfig) -> dict:
    """The semantic subset of the analysis config.

    Everything that can change a *completed* summary's answers belongs
    here; the budget does not (only completed — untruncated — analyses
    are stored, and their answer sets are budget-independent).
    """
    return {
        "interprocedural": config.interprocedural,
        "sources": sorted(s.value for s in config.sources),
        "copy_substitution": config.copy_substitution,
        "offset_substitution": config.offset_substitution,
        "offset_constant_limit": config.offset_constant_limit,
        "resolve_initialized_globals": config.resolve_initialized_globals,
    }


# ---------------------------------------------------------------------------
# Codec: queries and answers without node ids.
# ---------------------------------------------------------------------------


def _encode_var(var: VarId) -> list:
    return [var.scope, var.name]


def _decode_var(data) -> VarId:
    scope, name = data
    if (scope is not None and not isinstance(scope, str)) \
            or not isinstance(name, str):
        raise ValueError("malformed variable")
    return VarId(scope, name)


def encode_query(query: Query,
                 local_of: Dict[int, Tuple[str, int]]) -> dict:
    """A query as JSON; the summary tag becomes a (proc, index) pair."""
    data = {"var": _encode_var(query.var), "relop": query.relop.value,
            "const": query.const}
    if query.summary_exit is not None:
        data["exit"] = list(local_of[query.summary_exit])
    return data


def decode_query(data: dict, node_of: Dict[Tuple[str, int], int]) -> Query:
    """Rebuild a query against the current graph's node numbering."""
    exit_ref = data.get("exit")
    summary_exit = None
    if exit_ref is not None:
        summary_exit = node_of[(exit_ref[0], exit_ref[1])]
    return Query(_decode_var(data["var"]), RelOp(data["relop"]),
                 int(data["const"]), summary_exit=summary_exit)


def encode_answers(answers: FrozenSet[Answer],
                   local_of: Dict[int, Tuple[str, int]]) -> list:
    """An answer set as a sorted JSON list (deterministic bytes)."""
    encoded = []
    for answer in sorted(answers, key=Answer.sort_key):
        if answer.is_trans:
            assert answer.trans_entry is not None
            assert answer.trans_query is not None
            encoded.append({"kind": "trans",
                            "entry": list(local_of[answer.trans_entry]),
                            "query": encode_query(answer.trans_query,
                                                  local_of)})
        else:
            encoded.append({"kind": answer.kind})
    return encoded


def decode_answers(data: list,
                   node_of: Dict[Tuple[str, int], int]) -> FrozenSet[Answer]:
    """Rebuild an answer set; raises on any unresolvable reference or
    malformed item (callers treat that as a store miss)."""
    answers = []
    for item in data:
        if not isinstance(item, dict):
            raise ValueError("malformed answer item")
        kind = item.get("kind")
        if kind == "trans":
            entry_ref = item["entry"]
            entry_id = node_of[(entry_ref[0], entry_ref[1])]
            answers.append(trans(entry_id,
                                 decode_query(item["query"], node_of)))
        elif kind in ("true", "false", "undef"):
            answers.append(Answer(kind))
        else:
            raise ValueError(f"unknown answer kind {kind!r}")
    return answer_set(answers)


# ---------------------------------------------------------------------------
# The store proper.
# ---------------------------------------------------------------------------


#: Store health states, in degradation order.
HEALTH_HEALTHY = "healthy"
HEALTH_READ_ONLY = "read-only"
HEALTH_DISABLED = "disabled"

#: Ranks for publishing health as a numeric gauge (``store.health``).
HEALTH_RANK = {HEALTH_HEALTHY: 0, HEALTH_READ_ONLY: 1, HEALTH_DISABLED: 2}

#: Consecutive write-side OSErrors before the store goes read-only.
WRITE_FAILURE_LIMIT = 3
#: Consecutive read-side OSErrors before the store disables entirely.
READ_FAILURE_LIMIT = 3

#: The durafs fault site of every entry write/read/eviction.
SITE_ENTRY = "store.entry"
#: The durafs fault site of open-time maintenance (sweep + quota).
SITE_MAINTENANCE = "store.maintenance"


class StoreStats:
    """Hit/miss/store/lifecycle accounting (published via obs)."""

    __slots__ = ("hits", "misses", "stores", "rejects", "io_errors",
                 "evictions", "orphans_swept", "health")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.stores = 0
        #: Entries found on disk but unusable (torn file, bad format,
        #: unresolvable node reference) — counted separately so a store
        #: full of garbage is visible, but always treated as misses.
        self.rejects = 0
        #: Write-side OSErrors (full disk, read-only remount...).  Never
        #: fatal, never silent: each one is counted here and published
        #: as the ``store.io_errors`` obs counter.
        self.io_errors = 0
        #: Entries removed by quota enforcement (two-phase delete).
        self.evictions = 0
        #: Crashed writers' temp files reclaimed at open.
        self.orphans_swept = 0
        #: The health state machine's current state (a string; published
        #: numerically as the ``store.health`` gauge via HEALTH_RANK).
        self.health = HEALTH_HEALTHY

    def snapshot(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores, "rejects": self.rejects,
                "io_errors": self.io_errors, "evictions": self.evictions,
                "orphans_swept": self.orphans_swept, "health": self.health}


def lifecycle_maintenance(root: str, *, quota_bytes: Optional[int] = None,
                          fs: Optional["durafs.Filesystem"] = None,
                          ttl_s: float = durafs.ORPHAN_TTL_S,
                          now: Optional[float] = None) -> dict:
    """Open-time maintenance of a store directory, usable standalone.

    Sweeps orphaned temp files and half-finished ``*.evict`` markers
    (finishing any two-phase delete a crashed evictor left behind),
    then enforces the byte quota.  Every step is concurrent-writer
    safe: files that vanish mid-step were simply claimed by a sibling.
    Returns ``{"orphans_swept", "evicted", "entries", "bytes"}``.
    """
    fs = durafs.resolve_fs(fs)
    fs.makedirs(root)
    swept = durafs.sweep_orphans(root, site=SITE_MAINTENANCE, fs=fs,
                                 ttl_s=ttl_s, now=now)
    evicted, entries, total = enforce_quota(root, quota_bytes, fs=fs)
    return {"orphans_swept": swept, "evicted": evicted,
            "entries": entries, "bytes": total}


def disk_usage(root: str,
               fs: Optional["durafs.Filesystem"] = None) -> Tuple[int, int]:
    """(entry count, total bytes) of the ``*.json`` entries in ``root``."""
    fs = durafs.resolve_fs(fs)
    entries = 0
    total = 0
    for name in durafs.safe_scan(root, site=SITE_MAINTENANCE, fs=fs,
                                 suffix=".json"):
        try:
            total += fs.stat(os.path.join(root, name)).st_size
        except OSError:
            continue
        entries += 1
    return entries, total


def enforce_quota(root: str, quota_bytes: Optional[int],
                  fs: Optional["durafs.Filesystem"] = None,
                  ) -> Tuple[int, int, int]:
    """Evict oldest entries until the store fits ``quota_bytes``.

    Deterministic given the directory state: candidates are ordered by
    (mtime, name) — oldest first, hash-name tiebreak.  Each eviction is
    two-phase and crash-safe: rename ``<key>.json`` → ``<key>.evict``
    (atomic — the entry instantly stops being readable), then remove
    the marker.  A crash between the phases leaves only a ``.evict``
    file, reclaimed unconditionally by the next open's orphan sweep.
    Concurrent writers are safe: a rename or remove that loses a race
    is skipped.  Returns (evicted, surviving entries, surviving bytes).
    """
    fs = durafs.resolve_fs(fs)
    survivors: List[Tuple[int, str, int]] = []   # (mtime_ns, name, size)
    for name in durafs.safe_scan(root, site=SITE_MAINTENANCE, fs=fs,
                                 suffix=".json"):
        try:
            info = fs.stat(os.path.join(root, name))
        except OSError:
            continue
        survivors.append((info.st_mtime_ns, name, info.st_size))
    survivors.sort()
    total = sum(size for _, _, size in survivors)
    if quota_bytes is None:
        return 0, len(survivors), total
    evicted = 0
    while survivors and total > quota_bytes:
        _, name, size = survivors.pop(0)
        path = os.path.join(root, name)
        marker = f"{path[:-len('.json')]}.evict"
        try:
            fs.replace(path, marker, SITE_MAINTENANCE)   # phase one
        except OSError:
            total -= size          # a sibling already claimed it
            continue
        total -= size
        evicted += 1
        try:
            fs.remove(marker, SITE_MAINTENANCE)          # phase two
        except OSError:
            pass                   # sweep reclaims the marker later
    if evicted:
        obs.add("store.evictions", evicted)
    return evicted, len(survivors), total


class SummaryStore:
    """Content-addressed, crash-tolerant summary persistence.

    One instance may be shared by any number of processes operating on
    the same directory: writes are atomic renames of fsynced temp files
    keyed by content, so concurrent writers of the same key race
    harmlessly (every winner wrote the same bytes) and readers never
    observe a torn entry.

    The instance also runs the store's lifecycle: an orphan sweep and
    quota enforcement at open (``maintain=False`` skips both — forked
    prewarm children attach to a store the parent already maintained),
    and a health state machine while running.  ``write_failure_limit``
    consecutive write-side OSErrors park the store in ``read-only``
    (reads keep serving hits, writes stop being attempted);
    ``read_failure_limit`` consecutive read-side OSErrors — a failing
    device, not mere garbage content — park it in ``disabled`` (every
    probe is an instant miss).  Degradation never raises and never
    changes answers: a sick store is indistinguishable from a cold one.
    """

    def __init__(self, root: str, config: AnalysisConfig, *,
                 fs: Optional["durafs.Filesystem"] = None,
                 quota_bytes: Optional[int] = None,
                 write_failure_limit: int = WRITE_FAILURE_LIMIT,
                 read_failure_limit: int = READ_FAILURE_LIMIT,
                 maintain: bool = True) -> None:
        self.root = root
        self.fs = durafs.resolve_fs(fs)
        self.quota_bytes = quota_bytes
        self.write_failure_limit = max(1, write_failure_limit)
        self.read_failure_limit = max(1, read_failure_limit)
        self.fingerprint = config_fingerprint(config)
        self._fingerprint_text = json.dumps(
            self.fingerprint, sort_keys=True, separators=(",", ":"))
        self.stats = StoreStats()
        self._write_failures = 0   # consecutive
        self._read_failures = 0    # consecutive
        self._approx_bytes = 0
        os.makedirs(self.root, exist_ok=True)
        if maintain:
            report = lifecycle_maintenance(root, quota_bytes=quota_bytes,
                                           fs=self.fs)
            self.stats.orphans_swept += report["orphans_swept"]
            self.stats.evictions += report["evicted"]
            self._approx_bytes = report["bytes"]

    # -- health ----------------------------------------------------------

    @property
    def health(self) -> str:
        return self.stats.health

    def _note_write_failure(self) -> None:
        self.stats.io_errors += 1
        obs.add("store.io_errors")
        self._write_failures += 1
        if (self.stats.health == HEALTH_HEALTHY
                and self._write_failures >= self.write_failure_limit):
            self.stats.health = HEALTH_READ_ONLY
            obs.add("store.health_transitions")

    def _note_read_failure(self) -> None:
        self.stats.io_errors += 1
        obs.add("store.io_errors")
        self._read_failures += 1
        if (self.stats.health != HEALTH_DISABLED
                and self._read_failures >= self.read_failure_limit):
            self.stats.health = HEALTH_DISABLED
            obs.add("store.health_transitions")

    # -- keying ----------------------------------------------------------

    def entry_key(self, closure_text: str, callee: str, exit_index: int,
                  plain_query: Query) -> str:
        """sha256(callee canonical closure body, exit, interned query)."""
        digest = hashlib.sha256()
        for part in (closure_text, f"{callee}:{exit_index}",
                     f"{plain_query.var} {plain_query.relop} "
                     f"{plain_query.const}",
                     self._fingerprint_text):
            digest.update(part.encode("utf-8"))
            digest.update(b"\x00")
        return digest.hexdigest()

    def _path(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.json")

    # -- IO --------------------------------------------------------------

    def load(self, key: str) -> Optional[list]:
        """The stored (still-encoded) answer list for ``key``, or None.

        Every failure mode — missing file, unreadable file, torn or
        hand-mangled JSON, wrong format stamp — is a miss.  Garbage
        content counts a reject; a read-side OSError additionally feeds
        the health machine (a failing device eventually disables the
        store); a disabled store answers miss without touching disk.
        """
        if self.stats.health == HEALTH_DISABLED:
            self.stats.misses += 1
            return None
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except OSError:
            self.stats.rejects += 1
            self._note_read_failure()
            return None
        except ValueError:
            self.stats.rejects += 1
            return None
        self._read_failures = 0
        if (not isinstance(payload, dict)
                or payload.get("format") != STORE_FORMAT
                or not isinstance(payload.get("answers"), list)):
            self.stats.rejects += 1
            return None
        self.stats.hits += 1
        return payload["answers"]

    def save(self, key: str, encoded_answers: list) -> None:
        """Persist one entry (atomic; concurrent writers race safely).

        A full disk or a permissions change must never fail the
        analysis: a write-side OSError is counted (``stats.io_errors``,
        ``store.io_errors``), feeds the health machine, and the entry
        is simply not persisted.  A store that is no longer ``healthy``
        stops attempting writes at all.
        """
        if self.stats.health != HEALTH_HEALTHY:
            return
        path = self._path(key)
        if os.path.exists(path):
            return                      # content-addressed: already there
        payload = {"format": STORE_FORMAT, "answers": encoded_answers}
        data = json.dumps(payload, sort_keys=True,
                          separators=(",", ":")).encode("utf-8")
        if not durafs.atomic_write_bytes(path, data, site=SITE_ENTRY,
                                         fs=self.fs):
            self._note_write_failure()
            return
        self._write_failures = 0
        self.stats.stores += 1
        self._approx_bytes += len(data)
        if (self.quota_bytes is not None
                and self._approx_bytes > self.quota_bytes):
            evicted, _, total = enforce_quota(self.root, self.quota_bytes,
                                              fs=self.fs)
            self.stats.evictions += evicted
            self._approx_bytes = total

    def entry_count(self) -> int:
        return len(durafs.safe_scan(self.root, site=SITE_MAINTENANCE,
                                    fs=self.fs, suffix=".json"))
