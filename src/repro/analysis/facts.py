"""Value-set facts and the decision procedure behind query resolution.

Every fact the four correlation sources produce is expressible as an
integer set of the form *interval minus at most one point*:

- constant assignment ``v := 7``      → ``[7, 7]``
- branch assertion ``v < c`` (edges)  → ``(-inf, c-1]`` / ``[c, +inf)``
- unsigned conversion (source #3)     → ``[0, 255]``
- successful dereference (source #4)  → ``Z \\ {0}``
- ``alloc`` result                    → ``[0, +inf)``

A query ``(relop, c)`` denotes such a set too.  Resolution is then set
containment: fact ⊆ query ⇒ TRUE on this path; fact ∩ query = ∅ ⇒
FALSE; otherwise the fact does not decide the query.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Optional

from repro.ir.ops import RelOp, UNSIGNED_MASK


@dataclass(frozen=True, slots=True)
class ValueSet:
    """``{x : lo <= x <= hi} \\ {exclude}`` with None bounds = infinite.

    Value sets are compared and hashed constantly by the decision
    procedure, so the hash is cached at construction (after the
    exclusion is normalised, which is part of value identity).
    """

    lo: Optional[int] = None
    hi: Optional[int] = None
    exclude: Optional[int] = None
    _hash: int = field(init=False, repr=False, compare=False, default=0)

    def __post_init__(self) -> None:
        if (self.lo is not None and self.hi is not None
                and self.lo > self.hi):
            raise ValueError(f"empty interval [{self.lo}, {self.hi}]")
        if self.exclude is not None and not self._interval_contains(self.exclude):
            # A moot exclusion; normalise it away for value equality.
            object.__setattr__(self, "exclude", None)
        object.__setattr__(self, "_hash",
                           hash((self.lo, self.hi, self.exclude)))

    def __hash__(self) -> int:
        return self._hash

    # -- constructors ------------------------------------------------------

    @staticmethod
    def singleton(value: int) -> "ValueSet":
        return ValueSet(value, value)

    @staticmethod
    def everything_but(value: int) -> "ValueSet":
        return ValueSet(None, None, exclude=value)

    @staticmethod
    def at_least(value: int) -> "ValueSet":
        return ValueSet(lo=value)

    @staticmethod
    def at_most(value: int) -> "ValueSet":
        return ValueSet(hi=value)

    @staticmethod
    def unsigned_range() -> "ValueSet":
        return ValueSet(0, UNSIGNED_MASK)

    @staticmethod
    def nonzero() -> "ValueSet":
        return ValueSet.everything_but(0)

    @staticmethod
    def from_relop(relop: RelOp, const: int) -> "ValueSet":
        """The set of values v with ``v relop const`` (interned: the
        same relation always returns the same object)."""
        return _from_relop_interned(relop, const)

    # -- predicates -----------------------------------------------------------

    def _interval_contains(self, value: int) -> bool:
        if self.lo is not None and value < self.lo:
            return False
        if self.hi is not None and value > self.hi:
            return False
        return True

    def contains(self, value: int) -> bool:
        return self._interval_contains(value) and value != self.exclude

    @property
    def is_bounded(self) -> bool:
        return self.lo is not None and self.hi is not None

    @property
    def is_empty(self) -> bool:
        """True for the one degenerate form: a singleton minus itself.

        The correlation sources never produce it, but the algebra stays
        total: the empty set is a subset of and disjoint from anything.
        """
        return (self.lo is not None and self.lo == self.hi
                and self.exclude == self.lo)

    def size_if_small(self, cap: int = 4) -> Optional[int]:
        """Cardinality when bounded and at most ``cap``; else None."""
        if not self.is_bounded:
            return None
        assert self.lo is not None and self.hi is not None
        count = self.hi - self.lo + 1
        if self.exclude is not None:
            count -= 1
        return count if count <= cap else None

    # -- the decision procedure ---------------------------------------------

    def is_subset_of(self, other: "ValueSet") -> bool:
        """Sound, complete subset test for this set representation."""
        if self.is_empty:
            return True
        # First: self's interval must fit inside other's interval, except
        # that self's excluded point may cover a one-point overhang.
        lo_gap = _gap_below(self, other)
        hi_gap = _gap_above(self, other)
        overhang_points = []
        if lo_gap is None or hi_gap is None:
            return False  # infinite overhang
        if lo_gap > 1 or hi_gap > 1:
            return False  # more than one point sticks out on a side
        if lo_gap == 1:
            assert self.lo is not None
            overhang_points.append(self.lo)
        if hi_gap == 1:
            assert self.hi is not None
            overhang_points.append(self.hi)
        if len(overhang_points) > 1:
            return False
        if overhang_points and overhang_points[0] != self.exclude:
            return False
        # Second: other's excluded point must not be an element of self.
        if other.exclude is not None and self.contains(other.exclude):
            return False
        return True

    def is_disjoint_from(self, other: "ValueSet") -> bool:
        """Sound, complete disjointness test."""
        if self.is_empty or other.is_empty:
            return True
        lo = _max_opt(self.lo, other.lo)
        hi = _min_opt(self.hi, other.hi)
        if lo is not None and hi is not None:
            if lo > hi:
                return True
            width = hi - lo + 1
            if width <= 2:
                excluded = {self.exclude, other.exclude}
                return all(lo + i in excluded for i in range(width))
            return False
        # Infinite intersection interval: at most 2 excluded points
        # cannot empty it.
        return False

    def __str__(self) -> str:
        lo = "-inf" if self.lo is None else str(self.lo)
        hi = "+inf" if self.hi is None else str(self.hi)
        base = f"[{lo}, {hi}]"
        if self.exclude is not None:
            base += f" \\ {{{self.exclude}}}"
        return base


@lru_cache(maxsize=4096)
def _from_relop_interned(relop: RelOp, const: int) -> ValueSet:
    if relop is RelOp.EQ:
        return ValueSet.singleton(const)
    if relop is RelOp.NE:
        return ValueSet.everything_but(const)
    if relop is RelOp.LT:
        return ValueSet.at_most(const - 1)
    if relop is RelOp.LE:
        return ValueSet.at_most(const)
    if relop is RelOp.GT:
        return ValueSet.at_least(const + 1)
    return ValueSet.at_least(const)  # GE


def _gap_below(inner: ValueSet, outer: ValueSet) -> Optional[int]:
    """How many of inner's low-side points lie below outer's interval.

    Returns None for an infinite overhang, otherwise a count clamped
    at 2 (we only care about 0, 1, or "too many").
    """
    if outer.lo is None:
        return 0
    if inner.lo is None:
        return None
    gap = outer.lo - inner.lo
    return max(0, min(gap, 2))


def _gap_above(inner: ValueSet, outer: ValueSet) -> Optional[int]:
    if outer.hi is None:
        return 0
    if inner.hi is None:
        return None
    gap = inner.hi - outer.hi
    return max(0, min(gap, 2))


def _max_opt(a: Optional[int], b: Optional[int]) -> Optional[int]:
    if a is None:
        return b
    if b is None:
        return a
    return max(a, b)


def _min_opt(a: Optional[int], b: Optional[int]) -> Optional[int]:
    if a is None:
        return b
    if b is None:
        return a
    return min(a, b)


def decide(fact: ValueSet, relop: RelOp, const: int) -> Optional[bool]:
    """Does knowing ``v ∈ fact`` decide ``v relop const``?

    True/False when decided; None when the fact is insufficient.
    """
    query_set = ValueSet.from_relop(relop, const)
    if fact.is_subset_of(query_set):
        return True
    if fact.is_disjoint_from(query_set):
        return False
    return None
