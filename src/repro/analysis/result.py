"""Analysis results: answers at the conditional plus cost/benefit data.

A :class:`CorrelationResult` is the analysis-phase product for one
conditional: whether it was analyzable, the answers collected at it, the
full per-node answer map (which the restructuring consumes), and the
cost accounting.  Terminology follows the paper:

- *some correlation*: TRUE or FALSE appears among the answers — the
  outcome is known along at least one incoming path;
- *full correlation*: every answer is TRUE or FALSE — the outcome is
  known along all paths and the conditional can be eliminated entirely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Tuple

from repro.analysis.answers import Answer, format_answers
from repro.analysis.engine import AnalysisStats, CorrelationEngine
from repro.analysis.query import Query
from repro.analysis.rollback import AnswerMap, answers_at
from repro.ir.icfg import ICFG


@dataclass
class CorrelationResult:
    """Everything the analysis learned about one conditional branch."""

    icfg: ICFG
    branch_id: int
    initial_query: Optional[Query]
    engine: Optional[CorrelationEngine]
    answers: AnswerMap = field(default_factory=dict)
    stats: AnalysisStats = field(default_factory=AnalysisStats)

    # -- basic classification ------------------------------------------------

    @property
    def analyzable(self) -> bool:
        """The predicate had the ``(v relop c)`` shape we can query."""
        return self.initial_query is not None

    @property
    def branch_answers(self) -> FrozenSet[Answer]:
        if self.initial_query is None:
            return frozenset()
        return answers_at(self.answers, self.branch_id, self.initial_query)

    @property
    def has_correlation(self) -> bool:
        """Outcome known along some (not necessarily all) paths."""
        return any(a.is_known for a in self.branch_answers)

    @property
    def fully_correlated(self) -> bool:
        """Outcome known along *all* paths reaching the conditional."""
        answers = self.branch_answers
        return bool(answers) and all(a.is_known for a in answers)

    # -- introspection ------------------------------------------------------

    def visited_pairs(self) -> Tuple[Tuple[int, Query], ...]:
        if self.engine is None:
            return ()
        pairs = []
        for node_id, queries in self.engine.raised.items():
            for query in queries:
                pairs.append((node_id, query))
        return tuple(pairs)

    def visited_node_count(self) -> int:
        if self.engine is None:
            return 0
        return len(self.engine.raised)

    def describe(self) -> str:
        if not self.analyzable:
            return f"branch {self.branch_id}: not analyzable"
        return (f"branch {self.branch_id}: query {self.initial_query} -> "
                f"{format_answers(self.branch_answers)} "
                f"({self.stats.pairs_examined} pairs examined"
                f"{', budget exhausted' if self.stats.budget_exhausted else ''})")


def summarize_answer_map(result: CorrelationResult) -> Dict[int, str]:
    """node id -> rendered answers (debugging aid for small graphs)."""
    rendered: Dict[int, str] = {}
    if result.engine is None:
        return rendered
    for node_id in sorted(result.engine.raised):
        parts = []
        for query in result.engine.raised[node_id]:
            answers = answers_at(result.answers, node_id, query)
            parts.append(f"{query}={format_answers(answers)}")
        rendered[node_id] = "; ".join(parts)
    return rendered
