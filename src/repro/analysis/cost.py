"""Cost/benefit estimation for eliminating one conditional (paper §3.1).

The analysis provides, before any restructuring happens:

- an **upper bound on code duplication**: a node hosting ``k`` answers
  to a query must be split ``k`` ways; with several queries the bound is
  the cross product ("the actual code growth is usually lower because a
  node split on one query may separate answers to other queries");
- a **profile-based estimate of eliminated dynamic branch executions**:
  the execution frequencies of the sites where the query resolved to a
  known outcome, capped by the conditional's own execution count.

The optimizer uses the duplication bound as its gate (Fig. 11 sweeps
the per-conditional limit) and the benefit estimate for reporting
(Fig. 10's scatter).
"""

from __future__ import annotations

from repro.analysis.engine import (CallExitDisposition, DecidedDisposition,
                                   PerEdgeDisposition)
from repro.analysis.answers import Answer
from repro.analysis.result import CorrelationResult
from repro.analysis.rollback import answers_at
from repro.interp.profile import Profile
from repro.ir.icfg import EdgeKind
from repro.ir.nodes import BranchNode


def duplication_upper_bound(result: CorrelationResult) -> int:
    """Upper bound on new nodes created to eliminate this conditional."""
    if result.engine is None:
        return 0
    extra = 0
    for node_id, queries in result.engine.raised.items():
        copies = 1
        for query in queries:
            answers = answers_at(result.answers, node_id, query)
            copies *= max(1, len(answers))
        extra += copies - 1
    return extra


def _edge_frequency(profile: Profile, result: CorrelationResult,
                    src_id: int, kind: EdgeKind) -> int:
    """Execution frequency of an edge, from its source's profile."""
    node = result.icfg.nodes.get(src_id)
    if isinstance(node, BranchNode):
        if kind is EdgeKind.TRUE:
            return profile.branch_taken(src_id, True)
        if kind is EdgeKind.FALSE:
            return profile.branch_taken(src_id, False)
    return profile.count_of(src_id)


def eliminated_executions_estimate(result: CorrelationResult,
                                   profile: Profile) -> int:
    """Estimated dynamic branch executions removed by optimizing this
    conditional, from the frequencies of the resolution sites."""
    if result.engine is None or not result.has_correlation:
        return 0
    total = 0
    for (node_id, _query), disposition in result.engine.dispositions.items():
        if isinstance(disposition, DecidedDisposition):
            if disposition.answer.is_known:
                total += profile.count_of(node_id)
        elif isinstance(disposition, PerEdgeDisposition):
            for contrib in disposition.contribs:
                if contrib.answer is not None and contrib.answer.is_known:
                    total += _edge_frequency(profile, result,
                                             contrib.edge.src,
                                             contrib.edge.kind)
        elif isinstance(disposition, CallExitDisposition):
            pass  # answers flow from elsewhere; already counted there
    for key, continuation in result.engine.cont_table.items():
        if isinstance(continuation, Answer) and continuation.is_known:
            call_id = key[0]
            total += profile.count_of(call_id)
    branch_executions = profile.branch_executions(result.branch_id)
    return min(total, branch_executions)
