"""One-call front door for the correlation analysis."""

from __future__ import annotations

from typing import Optional

from repro.analysis.config import AnalysisConfig
from repro.analysis.context import AnalysisContext
from repro.analysis.engine import CachedSummaryDisposition, CorrelationEngine
from repro.analysis.result import CorrelationResult
from repro.analysis.rollback import collect_answers
from repro.errors import AnalysisError
from repro.ir.icfg import ICFG
from repro.ir.nodes import BranchNode


def analyze_branch(icfg: ICFG, branch_id: int,
                   config: Optional[AnalysisConfig] = None,
                   engine: Optional[CorrelationEngine] = None,
                   context: Optional[AnalysisContext] = None
                   ) -> CorrelationResult:
    """Analyze one conditional: backward query propagation + rollback.

    Pass a shared ``engine`` to reuse its query cache across conditionals
    (paper §3.3's O(C*N*V) caching variant).  The caller must not modify
    the graph between analyses sharing an engine.

    Pass a ``context`` (an :class:`~repro.analysis.context.AnalysisContext`
    in sync with ``icfg``) to consult and populate the cross-branch
    summary cache: completed summary-node entries of this analysis are
    stored for later conditionals.
    """
    from repro import obs
    node = icfg.nodes.get(branch_id)
    if not isinstance(node, BranchNode):
        raise AnalysisError(f"node {branch_id} is not a conditional branch")
    with obs.span("analysis.correlation", branch=branch_id,
                  proc=node.proc) as span:
        reuse = engine is not None
        if engine is None:
            engine = CorrelationEngine(icfg, config, context=context)
        initial = engine.analyze(node, reuse_cache=reuse)
        if initial is None:
            span.set(analyzable=False)
            obs.add("analysis.branches_unanalyzable")
            return CorrelationResult(icfg, branch_id, None, None)
        answers = collect_answers(engine)
        if engine.context is not None and not engine.stats.budget_exhausted:
            _store_summaries(engine, answers)
        span.set(pairs=engine.stats.pairs_examined,
                 budget_exhausted=engine.stats.budget_exhausted)
    obs.add("analysis.branches_analyzed")
    obs.add("analysis.pairs_examined", engine.stats.pairs_examined)
    if engine.stats.budget_exhausted:
        obs.add("analysis.budget_exhaustions")
    return CorrelationResult(icfg, branch_id, initial, engine,
                             answers=answers, stats=engine.stats)


def _store_summaries(engine: CorrelationEngine, answers) -> None:
    """Populate the context's summary cache from a *completed* analysis.

    Only exact entries are stored: a budget-exhausted analysis left
    pairs unprocessed (they contributed ``{UNDEF}``), so its answer
    sets may understate the real flows — the caller skips it entirely.
    Entries that were themselves answered from the cache are skipped
    (they are already stored).
    """
    context = engine.context
    assert context is not None
    for (node_id, query), answer_set in answers.items():
        if not query.is_summary or query.summary_exit != node_id:
            continue
        if isinstance(engine.dispositions.get((node_id, query)),
                      CachedSummaryDisposition):
            continue
        node = engine.icfg.nodes.get(node_id)
        if node is None:
            continue
        context.store_summary(engine.icfg, node.proc, node_id,
                              query.as_plain(), answer_set)
