"""One-call front door for the correlation analysis."""

from __future__ import annotations

from typing import Optional

from repro.analysis.config import AnalysisConfig
from repro.analysis.engine import CorrelationEngine
from repro.analysis.result import CorrelationResult
from repro.analysis.rollback import collect_answers
from repro.errors import AnalysisError
from repro.ir.icfg import ICFG
from repro.ir.nodes import BranchNode


def analyze_branch(icfg: ICFG, branch_id: int,
                   config: Optional[AnalysisConfig] = None,
                   engine: Optional[CorrelationEngine] = None
                   ) -> CorrelationResult:
    """Analyze one conditional: backward query propagation + rollback.

    Pass a shared ``engine`` to reuse its query cache across conditionals
    (paper §3.3's O(C*N*V) caching variant).  The caller must not modify
    the graph between analyses sharing an engine.
    """
    node = icfg.nodes.get(branch_id)
    if not isinstance(node, BranchNode):
        raise AnalysisError(f"node {branch_id} is not a conditional branch")
    reuse = engine is not None
    if engine is None:
        engine = CorrelationEngine(icfg, config)
    initial = engine.analyze(node, reuse_cache=reuse)
    if initial is None:
        return CorrelationResult(icfg, branch_id, None, None)
    answers = collect_answers(engine)
    return CorrelationResult(icfg, branch_id, initial, engine,
                             answers=answers, stats=engine.stats)
