"""Demand-driven interprocedural correlation analysis (paper §3.1).

Given one conditional branch with predicate ``v relop c``, the analysis
raises the query *"is the outcome of (v relop c) known along some
incoming path?"* and propagates it backwards through the ICFG until it
resolves on every path:

- **TRUE/FALSE** — the path is *correlated*: the branch outcome is known.
- **UNDEF** — the variable receives an unknown value on the path.
- **TRANS(entry, q)** — only for *summary-node queries* computed at
  procedure exits: the procedure is transparent along the path and the
  query survived to ``entry`` as variant ``q`` (to be continued in the
  caller).  We refine the paper's single TRANS answer with the surviving
  variant so that restructuring can route transparent paths precisely.

The analysis is demand driven (only nodes that may lie on a correlated
path are visited), uses summary-node entries at procedure exits
(Duesterwald-Gupta-Soffa framework), honours a node-query-pair budget
(paper §4 uses 1000), and is followed by a *rollback* that collects the
resolved answers forward with set-union merging.
"""

from repro.analysis.answers import (Answer, AnswerSet, FALSE, TRUE, UNDEF,
                                    trans)
from repro.analysis.config import AnalysisConfig, CorrelationSource
from repro.analysis.context import AnalysisContext, CacheStats
from repro.analysis.cost import (duplication_upper_bound,
                                 eliminated_executions_estimate)
from repro.analysis.driver import analyze_branch
from repro.analysis.engine import AnalysisStats, CorrelationEngine
from repro.analysis.facts import ValueSet, decide
from repro.analysis.query import Query
from repro.analysis.result import CorrelationResult
from repro.analysis.rollback import collect_answers

__all__ = [
    "AnalysisConfig", "AnalysisContext", "AnalysisStats", "Answer",
    "AnswerSet", "CacheStats",
    "CorrelationEngine", "CorrelationResult", "CorrelationSource", "FALSE",
    "Query", "TRUE", "UNDEF", "ValueSet", "analyze_branch",
    "collect_answers", "decide", "duplication_upper_bound",
    "eliminated_executions_estimate", "trans",
]
