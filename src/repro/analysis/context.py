"""Shared, incrementally-invalidated analysis state across branches.

The demand-driven analysis is cheap *per branch*, but the optimizer
used to throw every derived fact away between branches: each
conditional rebuilt mod/ref summaries, re-interned nothing, and
re-raised summary queries earlier branches had already answered.  The
:class:`AnalysisContext` makes those facts first-class cached
artifacts, keyed to the graph's mutation *generation*
(:attr:`~repro.ir.icfg.ICFG.generation`), and invalidates them with
procedure-level precision using the graph's dirty sets.

Cached artifacts and their invalidation rules:

``summaries``
    Answer sets of completed summary-node queries, keyed
    ``(callee, exit node, plain query)``.  A summary's answers depend
    only on its callee's body and the bodies of that callee's
    transitive callees (summary queries stop at procedure entries with
    TRANS), so an entry is invalidated exactly when a committed
    transform dirties a procedure in that closure.  Only analyses that
    ran to completion (no budget exhaustion) may populate the cache —
    truncated answer sets are not exact and would poison reuse.

``modref``
    The transitive MOD sets and the call graph.  Any dirty procedure
    drops them (MOD is a whole-program fixpoint; recomputing it is
    cheaper than incrementalising it).

``indices``
    Per-procedure adjacency indices (currently the branch-node index
    the optimizer's pending scan uses).  Any dirty procedure drops
    them.

Lifecycle: the pass manager calls :meth:`commit` after a transaction's
result is adopted — only then do dirty procedures invalidate entries —
and :meth:`rollback` after a restore, which invalidates *nothing*
because restoring a snapshot also restores the generation the caches
are keyed to.  A context whose generation disagrees with the graph's
simply stands aside (:meth:`in_sync` is False and every lookup misses),
so a desynchronised cache can cause a slow path but never a wrong one.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.answers import Answer
from repro.analysis.facts import ValueSet
from repro.analysis.modref import call_graph, transitive_mod_sets
from repro.analysis.query import Query
from repro.ir.expr import VarId
from repro.ir.icfg import ICFG
from repro.ir.nodes import BranchNode

#: Cache key of one summary-node entry: (callee, exit node, plain query).
SummaryKey = Tuple[str, int, Query]


@dataclass
class CacheStats:
    """Hit/miss/invalidation accounting for one optimizer run."""

    summary_hits: int = 0
    summary_misses: int = 0
    summary_stored: int = 0
    summary_invalidated: int = 0
    modref_reuses: int = 0
    modref_invalidated: int = 0
    index_reuses: int = 0
    index_invalidated: int = 0
    snapshot_reuses: int = 0
    restores_elided: int = 0
    analyses_reused: int = 0
    commits: int = 0
    rollbacks: int = 0
    queries_interned: int = 0
    value_sets_interned: int = 0

    @property
    def summary_lookups(self) -> int:
        return self.summary_hits + self.summary_misses

    def publish(self, prefix: str = "cache.") -> None:
        """Feed every counter into the active observability session's
        metrics registry (no-op when observability is off)."""
        from repro import obs
        if not obs.enabled():
            return
        for name, value in vars(self).items():
            obs.add(prefix + name, value)

    def describe(self) -> str:
        return (f"summary cache: {self.summary_hits} hits / "
                f"{self.summary_misses} misses / "
                f"{self.summary_invalidated} invalidated "
                f"({self.summary_stored} stored); "
                f"{self.analyses_reused} analyses reused, "
                f"{self.snapshot_reuses} snapshots reused, "
                f"{self.restores_elided} restores elided")


class AnalysisContext:
    """Cross-branch cache of analysis artifacts for one optimizer run."""

    #: Names passes use to declare which cached analyses they preserve.
    SUMMARIES = "summaries"
    MODREF = "modref"
    INDICES = "indices"
    ALL: FrozenSet[str] = frozenset((SUMMARIES, MODREF, INDICES))

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        #: Generation of the graph every cached artifact describes, or
        #: None before the context is bound to a run.
        self.generation: Optional[int] = None
        #: Lineage epoch of that graph (see ICFG.restore_token): the
        #: generation alone does not identify a state once a snapshot
        #: restore has rewound the mutation clock.
        self._restore_token: int = 0
        self.stats = CacheStats()
        self._queries: Dict[Query, Query] = {}
        self._value_sets: Dict[ValueSet, ValueSet] = {}
        self._summaries: Dict[SummaryKey, FrozenSet[Answer]] = {}
        self._summary_deps: Dict[SummaryKey, FrozenSet[str]] = {}
        self._mod_sets: Optional[Dict[str, Set[VarId]]] = None
        self._call_graph: Optional[Dict[str, Set[str]]] = None
        self._branch_index: Optional[Dict[str, List[int]]] = None
        self._branch_ids: Optional[List[int]] = None
        #: Optional on-disk summary store (see repro.analysis.store);
        #: probed on memory misses, written through on stores.
        self._store = None
        self._closure_texts: Dict[FrozenSet[str], str] = {}

    # -- lifecycle -----------------------------------------------------------

    def bind(self, icfg: ICFG) -> None:
        """Attach to a run's working graph, dropping every cached fact."""
        self.generation = icfg.generation
        self._restore_token = icfg.restore_token
        self._summaries.clear()
        self._summary_deps.clear()
        self._mod_sets = None
        self._call_graph = None
        self._branch_index = None
        self._branch_ids = None
        self._closure_texts.clear()

    def _lineage_ok(self, icfg: ICFG) -> bool:
        """Is ``icfg`` the history the cached facts were computed on?

        A snapshot restore stamps the graph into a fresh lineage epoch.
        When the restore landed exactly on the cached state — same epoch
        the cache is synced to, same generation — the cache adopts the
        new epoch and every fact stays valid; any other epoch change
        means generation numbers are no longer comparable and the caller
        must rebind.  Without this check, a restore that rewinds *below*
        the cached generation followed by fresh mutations climbing back
        past it would slip through the ``generation <`` guard and serve
        summaries for procedure bodies that no longer exist.
        """
        if icfg.restore_token == self._restore_token:
            return True
        if (self.generation is not None
                and icfg.restored_state_matches(self._restore_token,
                                                self.generation)):
            self._restore_token = icfg.restore_token
            return True
        return False

    def in_sync(self, icfg: ICFG) -> bool:
        """True when cached facts describe exactly this graph state."""
        return (self.enabled and self.generation == icfg.generation
                and self._lineage_ok(icfg))

    def commit(self, icfg: ICFG,
               preserves: FrozenSet[str] = frozenset()) -> None:
        """A transform on ``icfg``'s lineage was adopted: invalidate
        cached facts reaching the dirty procedures, except the analyses
        the committing pass declared it preserves."""
        if not self.enabled:
            return
        self.stats.commits += 1
        if (self.generation is None or not self._lineage_ok(icfg)
                or icfg.generation < self.generation):
            # Unknown lineage: be safe and start over.
            self.bind(icfg)
            return
        dirty = icfg.dirty_procs_since(self.generation)
        self.generation = icfg.generation
        if not dirty:
            return
        if self.SUMMARIES not in preserves:
            doomed = [key for key, deps in self._summary_deps.items()
                      if deps & dirty]
            for key in doomed:
                del self._summaries[key]
                del self._summary_deps[key]
            self.stats.summary_invalidated += len(doomed)
        for closure in [c for c in self._closure_texts if c & dirty]:
            del self._closure_texts[closure]
        if self.MODREF not in preserves:
            if self._mod_sets is not None or self._call_graph is not None:
                self.stats.modref_invalidated += 1
            self._mod_sets = None
            self._call_graph = None
        if self.INDICES not in preserves:
            if self._branch_index is not None:
                self.stats.index_invalidated += 1
            self._branch_index = None
            self._branch_ids = None

    def rollback(self, icfg: ICFG) -> None:
        """A transaction was rolled back.  Restoring a snapshot also
        restores the generation, so cached facts are valid again and
        nothing is invalidated."""
        if not self.enabled:
            return
        self.stats.rollbacks += 1
        if self.generation is not None and not self._lineage_ok(icfg):
            self.bind(icfg)
            return
        if self.generation is not None and icfg.generation != self.generation:
            # The restore did not land on the cached generation (an
            # out-of-lineage graph was swapped in): resynchronise.
            self.bind(icfg)

    # -- interning -----------------------------------------------------------

    def intern_query(self, query: Query) -> Query:
        """The canonical instance of ``query`` (identity-stable across
        branches, which turns dict probes into pointer comparisons)."""
        cached = self._queries.get(query)
        if cached is not None:
            return cached
        self._queries[query] = query
        self.stats.queries_interned += 1
        return query

    def intern_value_set(self, values: ValueSet) -> ValueSet:
        cached = self._value_sets.get(values)
        if cached is not None:
            return cached
        self._value_sets[values] = values
        self.stats.value_sets_interned += 1
        return values

    # -- memoized whole-program analyses -------------------------------------

    def mod_sets(self, icfg: ICFG) -> Dict[str, Set[VarId]]:
        """Memoized :func:`~repro.analysis.modref.transitive_mod_sets`."""
        if not self.in_sync(icfg):
            return transitive_mod_sets(icfg)
        if self._mod_sets is None:
            self._mod_sets = transitive_mod_sets(icfg)
        else:
            self.stats.modref_reuses += 1
        return self._mod_sets

    def callees_of(self, icfg: ICFG) -> Dict[str, Set[str]]:
        """Memoized call graph (caller -> callees)."""
        if not self.in_sync(icfg):
            return call_graph(icfg)
        if self._call_graph is None:
            self._call_graph = call_graph(icfg)
        else:
            self.stats.modref_reuses += 1
        return self._call_graph

    def branch_ids(self, icfg: ICFG) -> List[int]:
        """All branch-node ids, ascending, from the per-procedure index."""
        if not self.in_sync(icfg):
            return [b.id for b in icfg.branch_nodes()]
        if self._branch_ids is None:
            per_proc: Dict[str, List[int]] = {}
            for node in icfg.iter_nodes():
                if isinstance(node, BranchNode):
                    per_proc.setdefault(node.proc, []).append(node.id)
            self._branch_index = per_proc
            self._branch_ids = [bid for ids in per_proc.values()
                                for bid in ids]
            self._branch_ids.sort()
        else:
            self.stats.index_reuses += 1
        return self._branch_ids

    def _callee_closure(self, icfg: ICFG, proc: str) -> FrozenSet[str]:
        """``proc`` plus its transitive callees — everything a summary
        computed inside ``proc`` can structurally depend on."""
        graph = self.callees_of(icfg)
        seen = {proc}
        stack = [proc]
        while stack:
            for callee in graph.get(stack.pop(), ()):
                if callee not in seen:
                    seen.add(callee)
                    stack.append(callee)
        return frozenset(seen)

    # -- the cross-branch summary cache --------------------------------------

    def lookup_summary(self, icfg: ICFG, callee: str, exit_id: int,
                       plain_query: Query) -> Optional[FrozenSet[Answer]]:
        """The cached answer set of a summary-node query, or None.

        Misses in memory fall through to the attached on-disk store (if
        any); a store hit is decoded, installed in memory with its
        closure deps, and served like a native entry.
        """
        if not self.in_sync(icfg):
            return None
        found = self._summaries.get((callee, exit_id, plain_query))
        if found is None and self._store is not None:
            found = self._probe_store(icfg, callee, exit_id, plain_query)
        if found is None:
            self.stats.summary_misses += 1
        else:
            self.stats.summary_hits += 1
        return found

    def store_summary(self, icfg: ICFG, callee: str, exit_id: int,
                      plain_query: Query, answers: FrozenSet[Answer]) -> None:
        """Record a *completed* summary-node entry for later branches."""
        if not self.in_sync(icfg):
            return
        key = (callee, exit_id, self.intern_query(plain_query))
        if key in self._summaries:
            return
        closure = self._callee_closure(icfg, callee)
        self._summaries[key] = answers
        self._summary_deps[key] = closure
        self.stats.summary_stored += 1
        if self._store is not None:
            self._persist_summary(icfg, callee, exit_id, plain_query,
                                  answers, closure)

    def summary_count(self) -> int:
        return len(self._summaries)

    # -- the on-disk summary store ---------------------------------------

    def attach_store(self, store) -> None:
        """Back the summary cache with a persistent
        :class:`~repro.analysis.store.SummaryStore`."""
        self._store = store

    @property
    def store(self):
        return self._store

    def _closure_text(self, icfg: ICFG, closure: FrozenSet[str]) -> str:
        """Memoized canonical text of one callee closure (the store's
        content address component; invalidated with the closure)."""
        from repro.analysis.store import canonical_closure_text
        text = self._closure_texts.get(closure)
        if text is None:
            text = canonical_closure_text(icfg, closure)
            self._closure_texts[closure] = text
        return text

    def _probe_store(self, icfg: ICFG, callee: str, exit_id: int,
                     plain_query: Query) -> Optional[FrozenSet[Answer]]:
        from repro.analysis.store import closure_locals, decode_answers
        if callee not in icfg.procs:
            return None
        closure = self._callee_closure(icfg, callee)
        local_of = closure_locals(icfg, closure)
        exit_ref = local_of.get(exit_id)
        if exit_ref is None:
            return None
        key = self._store.entry_key(self._closure_text(icfg, closure),
                                    callee, exit_ref[1], plain_query)
        encoded = self._store.load(key)
        if encoded is None:
            return None
        node_of = {ref: nid for nid, ref in local_of.items()}
        try:
            answers = decode_answers(encoded, node_of)
        except (KeyError, ValueError, TypeError):
            # Unresolvable reference or malformed payload: a miss, and
            # counted as a reject so a poisoned store stays visible.
            self._store.stats.hits -= 1
            self._store.stats.rejects += 1
            return None
        cache_key = (callee, exit_id, self.intern_query(plain_query))
        self._summaries[cache_key] = answers
        self._summary_deps[cache_key] = closure
        return answers

    def _persist_summary(self, icfg: ICFG, callee: str, exit_id: int,
                         plain_query: Query, answers: FrozenSet[Answer],
                         closure: FrozenSet[str]) -> None:
        from repro.analysis.store import closure_locals, encode_answers
        local_of = closure_locals(icfg, closure)
        exit_ref = local_of.get(exit_id)
        if exit_ref is None:
            return
        try:
            encoded = encode_answers(answers, local_of)
        except KeyError:
            # An answer references a node outside the closure (should
            # not happen; never worth failing the analysis over).
            return
        key = self._store.entry_key(self._closure_text(icfg, closure),
                                    callee, exit_ref[1], plain_query)
        self._store.save(key, encoded)

    # -- shipping summaries between processes ----------------------------

    def export_summaries(self, icfg: ICFG) -> List[dict]:
        """Every cached summary entry as JSON-able data.

        References are (proc, local index) pairs, so the payload decodes
        on any process holding a structurally identical graph — which is
        exactly what the parallel prewarm workers and the parent share.
        Entries are emitted in deterministic sorted order.
        """
        from repro.analysis.store import (closure_locals, encode_answers,
                                          encode_query)
        local_of = closure_locals(icfg, frozenset(icfg.procs))
        entries = []
        for (callee, exit_id, query), answers in self._summaries.items():
            exit_ref = local_of.get(exit_id)
            if exit_ref is None:
                continue
            try:
                entries.append({
                    "callee": callee,
                    "exit": list(exit_ref),
                    "query": encode_query(query, local_of),
                    "answers": encode_answers(answers, local_of),
                    "deps": sorted(self._summary_deps[(callee, exit_id,
                                                       query)]),
                })
            except KeyError:
                continue
        entries.sort(key=lambda e: (e["callee"], e["exit"],
                                    json.dumps(e["query"], sort_keys=True)))
        return entries

    def import_summaries(self, icfg: ICFG, entries: List[dict]) -> int:
        """Install exported entries against this (identical) graph.

        Returns how many entries were adopted; malformed or unresolvable
        entries are skipped, and existing entries are never overwritten
        (first import wins — imports are sorted, so merge order cannot
        change the result).
        """
        from repro.analysis.store import (closure_locals, decode_answers,
                                          decode_query)
        if not self.in_sync(icfg):
            return 0
        local_of = closure_locals(icfg, frozenset(icfg.procs))
        node_of = {ref: nid for nid, ref in local_of.items()}
        adopted = 0
        for entry in entries:
            try:
                callee = entry["callee"]
                exit_ref = entry["exit"]
                exit_id = node_of[(exit_ref[0], exit_ref[1])]
                query = self.intern_query(
                    decode_query(entry["query"], node_of))
                answers = decode_answers(entry["answers"], node_of)
                deps = frozenset(entry["deps"])
            except (KeyError, TypeError, ValueError, IndexError):
                continue
            key = (callee, exit_id, query)
            if key in self._summaries:
                continue
            self._summaries[key] = answers
            self._summary_deps[key] = deps
            self.stats.summary_stored += 1
            adopted += 1
        return adopted
