"""Correlation-assisted static branch prediction (paper §5).

"Run-time prediction schemes have been proposed that predict the
outcome of a branch using its correlation with the last k branches.
If the correlation is statically detectable, our analysis can provide
the prediction hardware with directions..."

This module uses the correlation analysis as a *static predictor*:

- a branch whose answers contain exactly one known outcome is predicted
  that way with confidence "certain" on correlated paths;
- a partially correlated branch is predicted toward its known outcome
  (the correlated paths vote, the unknown ones abstain);
- an uncorrelated branch falls back to the baseline heuristic
  (backward-taken/forward-not-taken is meaningless on an ICFG, so the
  baseline predicts "taken", the classic static default).

``evaluate_predictor`` scores predictions against a dynamic profile,
so experiments can compare hint-assisted vs baseline accuracy — the
effect the paper argues for qualitatively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.analysis.config import AnalysisConfig
from repro.analysis.driver import analyze_branch
from repro.interp.profile import Profile
from repro.ir.icfg import ICFG


@dataclass(frozen=True)
class Prediction:
    """A static prediction for one conditional branch."""

    branch_id: int
    taken: bool
    source: str          # "correlation" | "baseline"
    certain: bool        # True when every path's outcome is known


def predict_branch(icfg: ICFG, branch_id: int,
                   config: Optional[AnalysisConfig] = None) -> Prediction:
    """Predict one branch, preferring statically detected correlation."""
    result = analyze_branch(icfg, branch_id, config)
    kinds = {a.kind for a in result.branch_answers}
    known = kinds & {"true", "false"}
    if len(known) == 1:
        outcome = known == {"true"}
        return Prediction(branch_id=branch_id, taken=outcome,
                          source="correlation",
                          certain="undef" not in kinds)
    # Both outcomes occur on correlated paths, or nothing is known:
    # no single static hint follows from correlation alone.
    return Prediction(branch_id=branch_id, taken=True, source="baseline",
                      certain=False)


def predict_all(icfg: ICFG, config: Optional[AnalysisConfig] = None
                ) -> Dict[int, Prediction]:
    """Predict every conditional branch of the program."""
    return {branch.id: predict_branch(icfg, branch.id, config)
            for branch in icfg.branch_nodes()}


@dataclass
class PredictorScore:
    """Accuracy of a static predictor against a dynamic profile.

    ``hint_*`` counts cover only *certain* correlation hints — branches
    whose outcome is known along every path.  Analysis soundness makes
    those 100% accurate, which is what a compiler would forward to
    prediction hardware (paper §5).
    """

    executed: int = 0
    correct: int = 0
    hint_executed: int = 0
    hint_correct: int = 0

    @property
    def accuracy(self) -> float:
        return self.correct / self.executed if self.executed else 0.0

    @property
    def hint_accuracy(self) -> float:
        if not self.hint_executed:
            return 0.0
        return self.hint_correct / self.hint_executed


def evaluate_predictor(predictions: Dict[int, Prediction],
                       profile: Profile) -> PredictorScore:
    """Score predictions: each dynamic branch execution is one trial."""
    score = PredictorScore()
    for branch_id, prediction in predictions.items():
        taken = profile.branch_true.get(branch_id, 0)
        not_taken = profile.branch_false.get(branch_id, 0)
        executed = taken + not_taken
        if executed == 0:
            continue
        correct = taken if prediction.taken else not_taken
        score.executed += executed
        score.correct += correct
        if prediction.source == "correlation" and prediction.certain:
            score.hint_executed += executed
            score.hint_correct += correct
    return score


def baseline_predictions(icfg: ICFG) -> Dict[int, Prediction]:
    """The no-analysis predictor: always predict taken."""
    return {branch.id: Prediction(branch_id=branch.id, taken=True,
                                  source="baseline", certain=False)
            for branch in icfg.branch_nodes()}
