"""Queries: the unit of demand in the correlation analysis.

A query ``(v relop c)`` asks whether the relation is known to hold.  The
paper's queries are tuples ``(v, relop, c, sne)`` where ``sne`` marks
summary-node queries; we carry the owning exit node id instead (queries
are immutable values, so the summary table is keyed externally).

Back-substitution (paper §3.1) rewrites a query across a copy-like
assignment.  We support the generalised offset form: crossing
``v := w + d`` turns ``(v relop c)`` into ``(w relop c - d)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.ir.expr import VarId
from repro.ir.ops import RelOp


@dataclass(frozen=True, slots=True)
class Query:
    """``(var relop const)``, optionally tagged as a summary-node query.

    ``summary_exit`` is the procedure-exit node id the summary is being
    computed for, or ``None`` for ordinary (caller-context) queries.

    Queries are dictionary keys on every hot path of the analysis (the
    raised-query table, dispositions, the continuation table), so the
    hash is computed once at construction and ``__slots__`` keeps the
    instances lean.
    """

    var: VarId
    relop: RelOp
    const: int
    summary_exit: Optional[int] = None
    _hash: int = field(init=False, repr=False, compare=False, default=0)

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash", hash(
            (self.var, self.relop, self.const, self.summary_exit)))

    def __hash__(self) -> int:
        return self._hash

    @property
    def is_summary(self) -> bool:
        return self.summary_exit is not None

    def holds_for(self, value: int) -> bool:
        """Evaluate the query against a concrete value."""
        return self.relop.evaluate(value, self.const)

    def substituted(self, var: VarId, offset: int = 0) -> "Query":
        """The query after crossing ``old_var := var + offset``."""
        return replace(self, var=var, const=self.const - offset)

    def as_summary(self, exit_id: int) -> "Query":
        return replace(self, summary_exit=exit_id)

    def as_plain(self) -> "Query":
        """The same relation without the summary tag."""
        if self.summary_exit is None:
            return self
        return replace(self, summary_exit=None)

    def sort_key(self) -> tuple:
        return (str(self.var), self.relop.value, self.const,
                -1 if self.summary_exit is None else self.summary_exit)

    def __str__(self) -> str:
        tag = f"@exit{self.summary_exit}" if self.is_summary else ""
        return f"({self.var} {self.relop} {self.const}){tag}"
