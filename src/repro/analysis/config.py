"""Analysis configuration: scope, budget, and enabled correlation sources.

The paper's implementation recognised constant assignments and
conditional branches as correlation sources (§4 "Implementation"); the
techniques section also describes unsigned conversions and pointer
dereferences (§3.1).  All four are implemented here and individually
selectable, with the paper's implemented pair as an explicit preset so
experiments can match either the described or the measured system.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, unique
from typing import FrozenSet


@unique
class CorrelationSource(Enum):
    """The four sources of static correlation from paper §3.1."""

    CONSTANT_ASSIGNMENT = "constant-assignment"
    BRANCH_ASSERTION = "branch-assertion"
    UNSIGNED_CONVERSION = "unsigned-conversion"
    POINTER_DEREFERENCE = "pointer-dereference"


ALL_SOURCES: FrozenSet[CorrelationSource] = frozenset(CorrelationSource)

#: The two sources the paper's ICC implementation enabled (§4).
PAPER_SOURCES: FrozenSet[CorrelationSource] = frozenset({
    CorrelationSource.CONSTANT_ASSIGNMENT,
    CorrelationSource.BRANCH_ASSERTION,
})

#: Paper §4: "the analysis was terminated after 1000 node-query pairs".
DEFAULT_BUDGET = 1000

#: Effectively exhaustive analysis (Figures 9 and 10 use this).
UNLIMITED_BUDGET = 10**9


@dataclass(frozen=True)
class AnalysisConfig:
    """Knobs for one run of the correlation analysis.

    - ``interprocedural``: queries may cross entry/exit boundaries.  The
      intraprocedural baseline (False) keeps queries inside a procedure
      and consults transitive MOD sets at call sites, mirroring the
      paper's baseline that "used MOD and USE procedure summary
      information at call sites".
    - ``budget``: maximum node-query pairs examined before remaining
      queries resolve conservatively to UNDEF (paper §4, Fig. 4 line 5).
    - ``sources``: enabled correlation sources.
    - ``copy_substitution``: interpret copy assignments ``v := w``.
    - ``offset_substitution``: also interpret ``v := w ± c`` (the "more
      general symbolic back-substitution" of §3.1).  Off by default —
      the paper's implementation interprets only plain copies, and
      offset rewriting around loop increments generates one query
      variant per iteration count.  When enabled, variants whose
      constant exceeds ``offset_constant_limit`` in magnitude resolve
      to UNDEF so the query space stays finite.
    - ``resolve_initialized_globals``: a query on a global reaching the
      program's start entry resolves against the static initializer
      (MiniC globals are definitely initialized, so this is exact).
    """

    interprocedural: bool = True
    budget: int = DEFAULT_BUDGET
    sources: FrozenSet[CorrelationSource] = field(default=ALL_SOURCES)
    copy_substitution: bool = True
    offset_substitution: bool = False
    offset_constant_limit: int = 64
    resolve_initialized_globals: bool = True

    def has(self, source: CorrelationSource) -> bool:
        return source in self.sources

    @staticmethod
    def interprocedural_default(budget: int = DEFAULT_BUDGET) -> "AnalysisConfig":
        return AnalysisConfig(interprocedural=True, budget=budget)

    @staticmethod
    def intraprocedural_default(budget: int = DEFAULT_BUDGET) -> "AnalysisConfig":
        return AnalysisConfig(interprocedural=False, budget=budget)

    @staticmethod
    def paper_implementation(interprocedural: bool = True,
                             budget: int = DEFAULT_BUDGET) -> "AnalysisConfig":
        """The configuration matching the paper's measured system."""
        return AnalysisConfig(interprocedural=interprocedural, budget=budget,
                              sources=PAPER_SOURCES)
