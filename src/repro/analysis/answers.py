"""Query answers: TRUE, FALSE, UNDEF, and refined TRANS.

The paper resolves queries to one of four answers.  TRUE/FALSE mark a
correlated path; UNDEF marks a path where the value is unknown; TRANS
marks, for summary-node queries only, a path through the procedure along
which the query was not resolved (the procedure is *transparent*).

We refine TRANS with the pair ``(entry node, surviving query variant)``:
back-substitution inside the procedure may transform the query before it
reaches an entry (e.g. a global rewritten to a parameter), and different
transparent paths may surrender different variants.  Restructuring needs
to route each transparent path to the caller answer of *its* variant, so
the variant is part of the answer's identity.  (The paper's presentation
keeps a single TRANS and stores the variants in the summary-node entry;
the information content is the same.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Optional

from repro.analysis.query import Query


@dataclass(frozen=True)
class Answer:
    """One of TRUE / FALSE / UNDEF / TRANS(entry, variant)."""

    kind: str                     # "true" | "false" | "undef" | "trans"
    trans_entry: Optional[int] = None
    trans_query: Optional[Query] = None

    @property
    def is_trans(self) -> bool:
        return self.kind == "trans"

    @property
    def is_known(self) -> bool:
        """TRUE or FALSE — a correlated outcome."""
        return self.kind in ("true", "false")

    def sort_key(self) -> tuple:
        if self.is_trans:
            assert self.trans_query is not None
            return (3, self.trans_entry or -1, self.trans_query.sort_key())
        return ({"true": 0, "false": 1, "undef": 2}[self.kind], -1, ())

    def __str__(self) -> str:
        if self.is_trans:
            return f"TRANS(entry={self.trans_entry},{self.trans_query})"
        return self.kind.upper()


TRUE = Answer("true")
FALSE = Answer("false")
UNDEF = Answer("undef")


def trans(entry_id: int, variant: Query) -> Answer:
    """A TRANS answer carrying the surviving variant at ``entry_id``."""
    return Answer("trans", trans_entry=entry_id, trans_query=variant)


def from_bool(value: bool) -> Answer:
    """TRUE/FALSE from a concrete evaluation."""
    return TRUE if value else FALSE


AnswerSet = FrozenSet[Answer]

EMPTY: AnswerSet = frozenset()


def answer_set(answers: Iterable[Answer]) -> AnswerSet:
    """Freeze an iterable of answers."""
    return frozenset(answers)


def sorted_answers(answers: Iterable[Answer]) -> list:
    """Answers in the deterministic report order."""
    return sorted(answers, key=Answer.sort_key)


def format_answers(answers: Iterable[Answer]) -> str:
    """Render an answer set like ``{TRUE, UNDEF}``."""
    return "{" + ", ".join(str(a) for a in sorted_answers(answers)) + "}"
