"""The demand-driven correlation analysis worklist (paper Fig. 4).

One :class:`CorrelationEngine` analyzes one conditional branch.  It
seeds the worklist with the branch's own query and propagates backwards:

- ordinary nodes resolve via :func:`~repro.analysis.resolve.node_transfer`
  or forward the (possibly back-substituted) query to predecessors, with
  branch assertions applied per incoming edge;
- procedure entries either split the query out to every call site
  (non-summary queries, rewriting parameters to arguments) or resolve to
  TRANS (summary queries), recording the surviving variant;
- call-site exits look up / create *summary-node entries*: the query is
  rewritten into the callee (return-value binding → the callee's
  ``$ret``), raised at the procedure exit as a summary query, and every
  TRANS variant that survives to the callee's entry is continued at the
  call node (paper Fig. 4 lines 14-26).  Queries on variables the callee
  cannot touch bypass it along the LOCAL edge.

Every processed ``(node, query)`` pair gets a *disposition* recording
how its answers derive from its neighbours; the rollback phase
(:mod:`repro.analysis.rollback`) runs a forward fixpoint over these
dispositions, and the restructuring phase wires node copies using the
same per-edge records.

The node-query-pair budget (Fig. 4 line 5, §4) stops the worklist;
anything still pending resolves conservatively to UNDEF.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.analysis.answers import Answer, UNDEF, from_bool, trans
from repro.analysis.config import AnalysisConfig
from repro.analysis.query import Query
from repro.analysis.resolve import (Decided, Proceed, arg_index_of_param,
                                    edge_assertion, entry_param_contribution,
                                    node_transfer)
from repro.analysis.modref import transitive_mod_sets
from repro.errors import AnalysisError
from repro.ir.expr import VarId
from repro.ir.icfg import Edge, EdgeKind, ICFG
from repro.ir.nodes import BranchNode, CallExitNode, CallNode, EntryNode
from repro.robustness.runtime import checkpoint
from repro.utils.ordered import OrderedSet
from repro.utils.worklist import Worklist

NodeQuery = Tuple[int, Query]


# --------------------------------------------------------------------------
# Dispositions: how the answers of a hosted (node, query) pair derive.
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class EdgeContribution:
    """One incoming edge's share of a pair's answers: either an answer
    decided on the edge itself, or the query raised at the edge's source."""

    edge: Edge
    answer: Optional[Answer] = None
    pred_query: Optional[Query] = None

    def __post_init__(self) -> None:
        if (self.answer is None) == (self.pred_query is None):
            raise AnalysisError("contribution needs exactly one of "
                                "answer/pred_query")


@dataclass(frozen=True)
class DecidedDisposition:
    """The pair is a source: the node itself decides the query."""

    answer: Answer


@dataclass(frozen=True)
class PerEdgeDisposition:
    """Answers are the union of per-incoming-edge contributions."""

    contribs: Tuple[EdgeContribution, ...]


@dataclass(frozen=True)
class CallExitDisposition:
    """Answers at a call-site exit (paper Fig. 4 lines 14-26).

    Either a pure bypass (``local_query`` raised at the call node: the
    callee cannot affect the variable) or a summary lookup
    (``summary_query`` raised at ``exit_id``; TRANS variants continue at
    the call node via the engine's continuation table, keyed by this
    pair's own summary tag ``outer_tag``).
    """

    call_id: int
    local_query: Optional[Query] = None
    exit_id: Optional[int] = None
    summary_query: Optional[Query] = None
    outer_tag: Optional[int] = None


@dataclass(frozen=True)
class CachedSummaryDisposition:
    """A summary-node pair answered from the cross-branch summary cache
    of an :class:`~repro.analysis.context.AnalysisContext` instead of
    being propagated through the callee.  The answers are exact (only
    completed analyses populate the cache), but the callee-internal
    pairs behind them were *not* visited by this engine — so an engine
    holding one of these must never drive restructuring."""

    answers: frozenset


Disposition = Union[DecidedDisposition, PerEdgeDisposition,
                    CallExitDisposition, CachedSummaryDisposition]

#: Continuation key: (call node id, surviving variant, outer summary tag).
ContKey = Tuple[int, Query, Optional[int]]


@dataclass
class AnalysisStats:
    """Cost accounting for one conditional (Table 2 raw material)."""

    pairs_examined: int = 0
    queries_raised: int = 0
    budget_exhausted: bool = False
    summary_entries_created: int = 0
    cache_hits: int = 0
    #: Summary queries answered from the cross-branch context cache
    #: (distinct from ``cache_hits``, the per-engine §3.3 query cache).
    summary_cache_hits: int = 0
    summary_cache_misses: int = 0


class CorrelationEngine:
    """Demand-driven correlation analysis for a single ICFG."""

    def __init__(self, icfg: ICFG, config: Optional[AnalysisConfig] = None,
                 context=None) -> None:
        self.icfg = icfg
        self.config = config if config is not None else AnalysisConfig()
        # The shared AnalysisContext, if one is supplied *and* its
        # cached facts describe this exact graph state; otherwise the
        # engine runs standalone, exactly as before.
        self.context = (context if context is not None
                        and context.in_sync(icfg) else None)
        self._mod_sets = None  # lazy; only the intraprocedural mode needs it

        # Per-analysis state (reset by analyze()).
        self.raised: Dict[int, OrderedSet[Query]] = {}
        self.dispositions: Dict[NodeQuery, Disposition] = {}
        self.worklist: Worklist[NodeQuery] = Worklist()
        self.cont_table: Dict[ContKey, Union[Answer, Query]] = {}
        self._trans_records: Dict[int, OrderedSet[Tuple[int, Query]]] = {}
        self._exit_dependents: Dict[int, OrderedSet[Tuple[int, Optional[int]]]] = {}
        self._pre_existing: frozenset = frozenset()
        self.stats = AnalysisStats()

    # -- public API ---------------------------------------------------------

    def analyze(self, branch: BranchNode,
                reuse_cache: bool = False) -> Optional[Query]:
        """Run the worklist for ``branch``; returns the initial query, or
        None when the predicate is not in analyzable ``(v relop c)`` form.

        Results live on the engine afterwards (``raised``,
        ``dispositions``, ``cont_table``, ``stats``); feed them to
        :func:`repro.analysis.rollback.collect_answers`.

        With ``reuse_cache=True`` the pairs resolved by previous
        analyses on this engine are kept (the query cache of paper
        §3.3): a query already raised at a node is not re-processed.
        Only valid while the graph is unmodified; the default wipes all
        state, which is what the paper's implementation settled on
        ("maintaining the cache proved counterproductive... due to
        increased memory requirements").
        """
        pattern = branch.correlation_pattern()
        if pattern is None:
            return None
        var, relop, const = pattern
        initial = Query(var, relop, const)

        if not reuse_cache:
            self.raised = {}
            self.dispositions = {}
            self.cont_table = {}
            self._trans_records = {}
            self._exit_dependents = {}
        self.worklist = Worklist()
        self.stats = AnalysisStats()
        self._pre_existing = (frozenset(self.dispositions)
                              if reuse_cache else frozenset())

        self._raise(branch.id, initial)
        while self.worklist:
            if self.stats.pairs_examined >= self.config.budget:
                self.stats.budget_exhausted = True
                break
            node_id, query = self.worklist.pop()
            self.stats.pairs_examined += 1
            checkpoint("analysis:pair", self.icfg)
            self._process(node_id, query)
        return initial

    def hosted_queries(self, node_id: int) -> Tuple[Query, ...]:
        return tuple(self.raised.get(node_id, ()))

    # -- worklist plumbing ------------------------------------------------------

    def _raise(self, node_id: int, query: Query) -> None:
        """Paper Fig. 4 ``raise_query``: dedup via Q[n]."""
        if self.context is not None:
            query = self.context.intern_query(query)
        queries = self.raised.setdefault(node_id, OrderedSet())
        if queries.add(query):
            self.stats.queries_raised += 1
            self.worklist.push((node_id, query))
            return
        key = (node_id, query)
        if key in self.dispositions:
            if key in self._pre_existing:
                self.stats.cache_hits += 1
            return
        # Raised earlier but never processed (a previous analysis ran
        # out of budget, or it is pending): (re)queue it.
        self.worklist.push(key)

    # -- node processing ---------------------------------------------------------

    def _process(self, node_id: int, query: Query) -> None:
        node = self.icfg.nodes[node_id]
        if isinstance(node, EntryNode):
            self._process_entry(node, query)
        elif isinstance(node, CallExitNode):
            self._process_call_exit(node, query)
        else:
            self._process_plain(node_id, query)

    def _process_plain(self, node_id: int, query: Query) -> None:
        node = self.icfg.nodes[node_id]
        transfer = node_transfer(self.icfg, node, query, self.config)
        if isinstance(transfer, Decided):
            self.dispositions[(node_id, query)] = DecidedDisposition(
                transfer.answer)
            return
        assert isinstance(transfer, Proceed)
        pre_query = transfer.query
        pred_edges = self.icfg.pred_edges(node_id)
        if not pred_edges:
            # A plain node with no predecessors is dead code; nothing
            # can be asserted about paths reaching it.
            self.dispositions[(node_id, query)] = DecidedDisposition(UNDEF)
            return
        contribs: List[EdgeContribution] = []
        for edge in pred_edges:
            verdict = edge_assertion(self.icfg, edge, pre_query, self.config)
            if verdict is not None:
                contribs.append(EdgeContribution(edge,
                                                 answer=from_bool(verdict)))
            else:
                contribs.append(EdgeContribution(edge, pred_query=pre_query))
                self._raise(edge.src, pre_query)
        self.dispositions[(node_id, query)] = PerEdgeDisposition(
            tuple(contribs))

    # -- procedure entries ---------------------------------------------------

    def _process_entry(self, node: EntryNode, query: Query) -> None:
        info = self.icfg.procs[node.proc]
        var = query.var
        is_param = var in info.params
        is_local = (var.scope == node.proc) and not is_param

        if is_local:
            # MiniC locals (incl. $ret and temporaries) are definitely
            # zero at entry, so the query resolves exactly.
            self.dispositions[(node.id, query)] = DecidedDisposition(
                from_bool(query.holds_for(0)))
            return

        if query.is_summary:
            # Paper Fig. 4 line 7: summary queries stop at the entry with
            # TRANS; record the surviving variant for continuations.
            answer = trans(node.id, query)
            self.dispositions[(node.id, query)] = DecidedDisposition(answer)
            self._record_trans(query.summary_exit, node.id, query)
            return

        pred_edges = [e for e in self.icfg.pred_edges(node.id)
                      if e.kind is EdgeKind.CALL]
        if not pred_edges:
            self.dispositions[(node.id, query)] = DecidedDisposition(
                self._program_start_answer(query))
            return

        if node.id == self.icfg.main_entry():
            # A *recursive* main: control reaches this entry both from
            # call sites and from program start, but only the former
            # appear as edges.  Resolve conservatively rather than miss
            # the startup path.
            self.dispositions[(node.id, query)] = DecidedDisposition(UNDEF)
            return

        if not self.config.interprocedural:
            # Baseline: queries never leave the procedure.
            self.dispositions[(node.id, query)] = DecidedDisposition(UNDEF)
            return

        contribs: List[EdgeContribution] = []
        for edge in pred_edges:
            call = self.icfg.nodes[edge.src]
            assert isinstance(call, CallNode)
            if var.is_global:
                contribs.append(EdgeContribution(edge, pred_query=query))
                self._raise(call.id, query)
                continue
            index = arg_index_of_param(self.icfg, node.proc, var)
            if index is None:
                raise AnalysisError(
                    f"query {query} at entry of {node.proc!r} is neither "
                    f"global, local, nor parameter")
            outcome = entry_param_contribution(call, index, query, self.config)
            if isinstance(outcome, Answer):
                contribs.append(EdgeContribution(edge, answer=outcome))
            else:
                assert isinstance(outcome, Query)
                contribs.append(EdgeContribution(edge, pred_query=outcome))
                self._raise(call.id, outcome)
        self.dispositions[(node.id, query)] = PerEdgeDisposition(
            tuple(contribs))

    def _program_start_answer(self, query: Query) -> Answer:
        """An entry with no callers is the program's start (main)."""
        if query.var.is_global and self.config.resolve_initialized_globals:
            initial = self.icfg.globals.get(query.var, 0)
            return from_bool(query.holds_for(initial))
        return UNDEF

    # -- call-site exits ---------------------------------------------------------

    def _process_call_exit(self, node: CallExitNode, query: Query) -> None:
        call_id = self.icfg.call_pred_of_call_exit(node.id)
        exit_id = self.icfg.exit_pred_of_call_exit(node.id)
        call = self.icfg.nodes[call_id]
        assert isinstance(call, CallNode)

        # The call-site exit binds the return value; rewrite a query on
        # the bound variable into the callee's return slot.
        inner = query
        if node.result is not None and query.var == node.result:
            inner = Query(VarId.ret(call.callee), query.relop, query.const,
                          summary_exit=query.summary_exit)

        caller_local = (inner.var.scope == node.proc)
        if caller_local:
            # The callee cannot observe or modify the caller's locals:
            # the call is transparent for this query.
            self.dispositions[(node.id, query)] = CallExitDisposition(
                call_id=call_id, local_query=inner)
            self._raise(call_id, inner)
            return

        if not self.config.interprocedural:
            if inner.var.is_global and inner.var not in self._mod(call.callee):
                # MOD/USE summary at call sites (paper §4): the callee
                # provably never writes this global.
                self.dispositions[(node.id, query)] = CallExitDisposition(
                    call_id=call_id, local_query=inner)
                self._raise(call_id, inner)
            else:
                self.dispositions[(node.id, query)] = DecidedDisposition(UNDEF)
            return

        # Interprocedural: go through the callee via a summary query.
        summary_query = Query(inner.var, inner.relop, inner.const,
                              summary_exit=exit_id)
        if self.context is not None:
            # Consult the cross-branch summary cache before raising a
            # new summary query: an earlier conditional may already
            # have computed this callee's answers in full.
            cached = self.context.lookup_summary(
                self.icfg, call.callee, exit_id, summary_query.as_plain())
            if cached is not None:
                self.stats.summary_cache_hits += 1
                self._install_cached_summary(exit_id, summary_query, cached)
                self.dispositions[(node.id, query)] = CallExitDisposition(
                    call_id=call_id, exit_id=exit_id,
                    summary_query=summary_query,
                    outer_tag=query.summary_exit)
                self._register_dependent(exit_id, call, query.summary_exit)
                return
            self.stats.summary_cache_misses += 1
        if summary_query not in self.raised.get(exit_id, ()):
            self.stats.summary_entries_created += 1
        self._raise(exit_id, summary_query)
        self.dispositions[(node.id, query)] = CallExitDisposition(
            call_id=call_id, exit_id=exit_id, summary_query=summary_query,
            outer_tag=query.summary_exit)
        self._register_dependent(exit_id, call, query.summary_exit)

    def _install_cached_summary(self, exit_id: int, summary_query: Query,
                                answers: frozenset) -> None:
        """Host a cached summary entry at the exit: the pair is marked
        raised-and-resolved without visiting the callee, and its TRANS
        variants are replayed so continuations fire for every dependent
        call site exactly as live discovery would."""
        queries = self.raised.setdefault(exit_id, OrderedSet())
        if not queries.add(summary_query):
            return  # already installed by an earlier hit
        self.stats.queries_raised += 1
        self.dispositions[(exit_id, summary_query)] = \
            CachedSummaryDisposition(answers)
        for answer in sorted(answers, key=Answer.sort_key):
            if answer.is_trans:
                assert answer.trans_entry is not None
                assert answer.trans_query is not None
                self._record_trans(exit_id, answer.trans_entry,
                                   answer.trans_query)

    def _mod(self, proc: str):
        if self._mod_sets is None:
            if self.context is not None:
                self._mod_sets = self.context.mod_sets(self.icfg)
            else:
                self._mod_sets = transitive_mod_sets(self.icfg)
        return self._mod_sets.get(proc, set())

    # -- TRANS continuations (paper Fig. 4 lines 21-26) --------------------------

    def _register_dependent(self, exit_id: int, call: CallNode,
                            outer_tag: Optional[int]) -> None:
        dependents = self._exit_dependents.setdefault(exit_id, OrderedSet())
        if dependents.add((call.id, outer_tag)):
            for entry_id, variant in self._trans_records.get(exit_id,
                                                             OrderedSet()):
                if entry_id == call.entry_id:
                    self._raise_continuation(call, variant, outer_tag)

    def _record_trans(self, exit_id: Optional[int], entry_id: int,
                      variant: Query) -> None:
        assert exit_id is not None
        records = self._trans_records.setdefault(exit_id, OrderedSet())
        if records.add((entry_id, variant)):
            for call_id, outer_tag in self._exit_dependents.get(exit_id,
                                                                OrderedSet()):
                call = self.icfg.nodes[call_id]
                assert isinstance(call, CallNode)
                if call.entry_id == entry_id:
                    self._raise_continuation(call, variant, outer_tag)

    def _raise_continuation(self, call: CallNode, variant: Query,
                            outer_tag: Optional[int]) -> None:
        """Continue a transparent path's surviving query in the caller.

        The continuation re-enters the caller's context, so it carries
        the *outer* summary tag (None for the original caller context).
        """
        key = (call.id, variant, outer_tag)
        if key in self.cont_table:
            return
        base = Query(variant.var, variant.relop, variant.const,
                     summary_exit=outer_tag)
        if variant.var.is_global:
            self.cont_table[key] = base
            self._raise(call.id, base)
            return
        index = arg_index_of_param(self.icfg, call.callee, variant.var)
        if index is None:
            # A callee-local variant cannot be TRANS (entries resolve
            # locals exactly); defensively resolve unknown.
            self.cont_table[key] = UNDEF
            return
        outcome = entry_param_contribution(call, index, base, self.config)
        if isinstance(outcome, Answer):
            self.cont_table[key] = outcome
        else:
            assert isinstance(outcome, Query)
            self.cont_table[key] = outcome
            self._raise(call.id, outcome)
