"""Sharded, multi-process prewarm of the correlation analysis.

Queries for distinct conditionals are independent, so the expensive
part of an optimizer run — the demand-driven fixpoints behind each
branch's summary queries — parallelizes naturally.  What does *not*
parallelize is the transform: restructuring allocates node ids, and id
allocation order is part of the byte-identical determinism contract.

This module therefore splits the work where the independence actually
is.  Worker subprocesses run the *analysis only*, each over one shard
of branches, into private :class:`~repro.analysis.context.
AnalysisContext` instances; they ship their completed summary entries
back as JSON (node references encoded as (proc, local index) pairs so
they decode in any process holding the identical graph).  The parent
merges the shards' entries — sorted, first-import-wins, so merge order
cannot influence the result — into the run's shared context, and then
executes the ordinary single-process pipeline.  Every merged entry is
exact (only completed analyses export), and the pipeline's cache
machinery is already proven outcome-neutral, so ``--analysis-jobs N``
is byte-identical to serial by construction: the parallel phase can
only change *when* a summary is computed, never *what* the transform
does.

Shards follow the call graph: two branches whose procedures are
weakly connected (caller/callee, transitively) share summaries, so
they stay in one shard and nothing is computed twice across workers;
disconnected regions split freely.  Planning is deterministic —
components are bin-packed largest-first into at most ``jobs`` shards
with lexicographic tie-breaks.

The process plumbing mirrors the robustness workers: fork-server-free
``fork`` context (the graph travels by memory inheritance, never
pickling), atomic result files, join deadlines with terminate/kill
escalation, and a fresh observability session per child.  A worker
that dies or times out simply contributes nothing — prewarm is an
optimization, so every failure mode degrades to "the parent computes
that shard's summaries itself".
"""

from __future__ import annotations

import json
import multiprocessing
import os
import tempfile
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.analysis.config import AnalysisConfig
from repro.analysis.context import AnalysisContext
from repro.analysis.driver import analyze_branch
from repro.analysis.store import SummaryStore
from repro.ir.icfg import ICFG
from repro.utils import durafs

#: Default per-worker wall cap.  Analysis budgets bound the work per
#: query, so this only has to catch pathological stalls.
DEFAULT_TIMEOUT_S = 120.0

#: durafs fault site of shard result publication.
SITE_SHARD = "analysis.shard"


# ---------------------------------------------------------------------------
# Shard planning.
# ---------------------------------------------------------------------------


@dataclass
class Shard:
    """One worker's slice: a set of procedures and their branches."""

    index: int
    procs: List[str] = field(default_factory=list)
    branch_ids: List[int] = field(default_factory=list)


def call_components(icfg: ICFG,
                    context: Optional[AnalysisContext] = None) -> Dict[str, str]:
    """proc -> component representative, over the *undirected* call graph.

    Weak connectivity is the right grain: a summary computed in one
    component can never be consulted while analyzing a branch of
    another (summaries reach exactly the callee closure, which weak
    components contain), so shards along component lines never
    duplicate fixpoint work between workers.
    """
    if context is not None:
        graph = context.callees_of(icfg)
    else:
        from repro.analysis.modref import call_graph
        graph = call_graph(icfg)
    parent: Dict[str, str] = {name: name for name in icfg.procs}

    def find(name: str) -> str:
        root = name
        while parent[root] != root:
            root = parent[root]
        while parent[name] != root:
            parent[name], name = root, parent[name]
        return root

    def union(a: str, b: str) -> None:
        ra, rb = find(a), find(b)
        if ra == rb:
            return
        # Smaller name wins the root: deterministic representatives.
        if rb < ra:
            ra, rb = rb, ra
        parent[rb] = ra

    for caller, callees in sorted(graph.items()):
        for callee in sorted(callees):
            if caller in parent and callee in parent:
                union(caller, callee)
    return {name: find(name) for name in parent}


def plan_shards(icfg: ICFG, branch_ids: Sequence[int], jobs: int,
                context: Optional[AnalysisContext] = None) -> List[Shard]:
    """Partition ``branch_ids`` into at most ``jobs`` shards.

    Two-level grain.  A weak call-graph component whose branch count
    fits one shard's fair share stays whole (no summary is ever
    computed in two workers).  A component too big for that — the
    normal case: any program whose procedures are all reachable from
    ``main`` is one component — splits per procedure; workers may then
    re-derive some shared callee summaries, a wall-clock tax the fan-out
    pays for, never a correctness risk (each worker's context is
    private and every exported entry is exact).

    Deterministic: work units are sorted by (branch count descending,
    name) and greedily assigned to the least-loaded shard, ties to the
    lowest shard index.  Shards with no branches are dropped, so the
    result may be shorter than ``jobs``.
    """
    component_of = call_components(icfg, context)
    groups: Dict[Tuple[str, str], List[int]] = {}
    comp_total: Dict[str, int] = {}
    for branch_id in sorted(branch_ids):
        proc = icfg.nodes[branch_id].proc
        rep = component_of.get(proc)
        if rep is None:
            continue
        groups.setdefault((rep, proc), []).append(branch_id)
        comp_total[rep] = comp_total.get(rep, 0) + 1
    total = sum(comp_total.values())
    fair_share = max(1, -(-total // max(1, jobs)))
    # A work unit is (sort name, procs, branch ids).
    units: List[Tuple[str, List[str], List[int]]] = []
    for rep in sorted(comp_total):
        if comp_total[rep] <= fair_share:
            procs = sorted(p for (r, p) in groups if r == rep)
            merged = sorted(b for (r, _), bs in groups.items()
                            if r == rep for b in bs)
            units.append((rep, procs, merged))
        else:
            for (r, proc), bs in sorted(groups.items()):
                if r == rep:
                    units.append((proc, [proc], list(bs)))
    units.sort(key=lambda u: (-len(u[2]), u[0]))
    shards = [Shard(index=i) for i in range(max(1, jobs))]
    for _, procs, bids in units:
        target = min(shards, key=lambda s: (len(s.branch_ids), s.index))
        target.branch_ids.extend(bids)
        target.procs.extend(procs)
    planned = [s for s in shards if s.branch_ids]
    for shard in planned:
        shard.branch_ids.sort()
        shard.procs.sort()
    return planned


# ---------------------------------------------------------------------------
# Worker side.
# ---------------------------------------------------------------------------


def prewarm_worker_main(icfg: ICFG, branch_ids: Sequence[int],
                        config: AnalysisConfig, store_root: Optional[str],
                        result_path: str) -> None:
    """Child entry: analyze one shard, publish its summary entries.

    The graph arrives by fork inheritance and is never mutated (the
    analysis is read-only), so no copy is taken.  Any crash leaves no
    result file, which the parent reads as a failed (skipped) shard.
    """
    obs.reset()          # a forked child must not append to the
                         # parent's observability session
    context = AnalysisContext()
    context.bind(icfg)
    if store_root:
        # ``maintain=False``: N forked siblings racing the same
        # lifecycle sweep would evict and reclaim under each other;
        # only the parent's store runs maintenance.
        context.attach_store(SummaryStore(store_root, config,
                                          maintain=False))
    analyzed = 0
    for branch_id in branch_ids:
        try:
            analyze_branch(icfg, branch_id, config, context=context)
            analyzed += 1
        except Exception:       # noqa: BLE001 — prewarm is best-effort
            continue
    payload = {
        "analyzed": analyzed,
        "entries": context.export_summaries(icfg),
    }
    durafs.atomic_write_json(result_path, payload, site=SITE_SHARD,
                             must=True)


def _analyze_inline(icfg: ICFG, shard: Shard, config: AnalysisConfig,
                    store: Optional[SummaryStore]) -> dict:
    """In-process fallback shard run (platforms without fork)."""
    context = AnalysisContext()
    context.bind(icfg)
    if store is not None:
        context.attach_store(store)
    analyzed = 0
    for branch_id in shard.branch_ids:
        try:
            analyze_branch(icfg, branch_id, config, context=context)
            analyzed += 1
        except Exception:       # noqa: BLE001
            continue
    return {"analyzed": analyzed, "entries": context.export_summaries(icfg)}


# ---------------------------------------------------------------------------
# Parent side.
# ---------------------------------------------------------------------------


@dataclass
class PrewarmReport:
    """What one parallel prewarm did (fed into obs counters)."""

    jobs: int = 1
    shards: int = 0
    branches: int = 0
    workers: int = 0
    failures: int = 0
    merged: int = 0
    mode: str = "off"

    def publish(self) -> None:
        if not obs.enabled():
            return
        obs.add("parallel.shards", self.shards)
        obs.add("parallel.branches", self.branches)
        obs.add("parallel.workers", self.workers)
        obs.add("parallel.worker_failures", self.failures)
        obs.add("parallel.summaries_merged", self.merged)


def _fork_context():
    if multiprocessing.current_process().daemon:
        # Daemonic processes may not fork children; prewarm inline.
        return None
    try:
        return multiprocessing.get_context("fork")
    except ValueError:           # platforms without fork
        return None


def prewarm_context(icfg: ICFG, config: AnalysisConfig,
                    context: AnalysisContext, jobs: int,
                    timeout_s: float = DEFAULT_TIMEOUT_S) -> PrewarmReport:
    """Populate ``context``'s summary cache using ``jobs`` processes.

    Safe to call with any ``jobs``: below 2, or with fewer than two
    shards of work, it does nothing (the serial pipeline computes
    everything itself, exactly as before this module existed).
    """
    report = PrewarmReport(jobs=jobs)
    if jobs < 2 or not context.enabled or not context.in_sync(icfg):
        return report
    branch_ids = context.branch_ids(icfg)
    shards = plan_shards(icfg, branch_ids, jobs, context)
    report.shards = len(shards)
    report.branches = sum(len(s.branch_ids) for s in shards)
    if report.shards < 2:
        # One connected region: a single worker would just race the
        # parent to the same fixpoints.  Skip.
        report.publish()
        return report
    store = context.store
    store_root = store.root if store is not None else None
    mp_context = _fork_context()
    with obs.span("analysis.prewarm", jobs=jobs, shards=report.shards):
        if mp_context is None:
            report.mode = "inline"
            payloads = [_analyze_inline(icfg, shard, config, store)
                        for shard in shards]
        else:
            report.mode = "fork"
            payloads = _run_forked(mp_context, icfg, shards, config,
                                   store_root, timeout_s, report)
        with obs.span("analysis.prewarm.merge"):
            for payload in payloads:
                if not isinstance(payload, dict):
                    continue
                entries = payload.get("entries")
                if isinstance(entries, list):
                    report.merged += context.import_summaries(icfg, entries)
    report.publish()
    return report


def _run_forked(mp_context, icfg: ICFG, shards: List[Shard],
                config: AnalysisConfig, store_root: Optional[str],
                timeout_s: float, report: PrewarmReport) -> List[Optional[dict]]:
    """Launch one forked worker per shard; reap with a deadline."""
    payloads: List[Optional[dict]] = [None] * len(shards)
    with tempfile.TemporaryDirectory(prefix="icbe-prewarm-") as tmp_dir:
        running = []
        for shard in shards:
            result_path = os.path.join(tmp_dir, f"shard-{shard.index}.json")
            process = mp_context.Process(
                target=prewarm_worker_main,
                args=(icfg, shard.branch_ids, config, store_root,
                      result_path),
                daemon=True)
            process.start()
            report.workers += 1
            running.append((shard, process, result_path))
        deadline = time.monotonic() + timeout_s
        for slot, (shard, process, result_path) in enumerate(running):
            process.join(max(0.0, deadline - time.monotonic()))
            if process.is_alive():
                process.terminate()
                process.join(5.0)
                if process.is_alive():
                    process.kill()
                    process.join()
            if process.exitcode != 0 or not os.path.exists(result_path):
                report.failures += 1
                continue
            try:
                with open(result_path, "r", encoding="utf-8") as handle:
                    payloads[slot] = json.load(handle)
            except (ValueError, OSError):
                report.failures += 1
    return payloads
