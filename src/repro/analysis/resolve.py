"""Per-node and per-edge query resolution (the four correlation sources).

``node_transfer`` answers: given that node ``n`` executes last, what
happens to query ``q`` about the post-``n`` state?  Either the node
*decides* the query (TRUE/FALSE outcome known, or UNDEF when the
variable gets an unknown value), or the query *continues* to the
pre-``n`` state, possibly rewritten by back-substitution.

``edge_assertion`` answers: does crossing edge ``m -> n`` decide the
query?  True/false out-edges of a branch carry the branch's assertion
(source #2); nothing else asserts on edges.

Source summary (paper §3.1):

1. constant assignment     ``v := c``        (node, decides or nothing)
2. branch assertion        true/false edges  (edge, decides or passes)
3. unsigned conversion     ``v := (unsigned) e``  → fact v ∈ [0, 255]
   (we also give ``v := alloc(e)`` the fact v ∈ [0, +inf), same gate)
4. pointer dereference     a completed load/store through ``p``
   guarantees ``p != 0`` afterwards (decides or passes)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

from repro.analysis.answers import Answer, UNDEF, from_bool
from repro.analysis.config import AnalysisConfig, CorrelationSource
from repro.analysis.facts import ValueSet, decide
from repro.analysis.query import Query
from repro.ir.expr import (Alloc, Const, Convert, InputRead, Load, VarId,
                           as_const, as_var, as_var_plus_const,
                           direct_deref_vars)
from repro.ir.icfg import Edge, EdgeKind, ICFG
from repro.ir.nodes import (AssignNode, BranchNode, CallNode, ExitNode, Node,
                            NopNode, PrintNode, StoreNode)


@dataclass(frozen=True)
class Decided:
    """The node decides the query for all paths through it."""

    answer: Answer


@dataclass(frozen=True)
class Proceed:
    """The query continues past the node, possibly rewritten."""

    query: Query


Transfer = Union[Decided, Proceed]


def _decide_with_fact(fact: ValueSet, query: Query,
                      on_unknown: Transfer) -> Transfer:
    verdict = decide(fact, query.relop, query.const)
    if verdict is None:
        return on_unknown
    return Decided(from_bool(verdict))


def _assignment_transfer(node: AssignNode, query: Query,
                         config: AnalysisConfig) -> Transfer:
    """Effect of ``target := rhs`` on a query about ``target``."""
    rhs = node.rhs
    value = as_const(rhs)
    if value is not None:
        if config.has(CorrelationSource.CONSTANT_ASSIGNMENT):
            return Decided(from_bool(query.holds_for(value)))
        return Decided(UNDEF)

    copy = as_var_plus_const(rhs)
    if copy is not None and config.copy_substitution:
        source_var, offset = copy
        if offset == 0:
            return Proceed(query.substituted(source_var, 0))
        if config.offset_substitution:
            rewritten = query.substituted(source_var, offset)
            if abs(rewritten.const) <= config.offset_constant_limit:
                return Proceed(rewritten)
        return Decided(UNDEF)

    if isinstance(rhs, Convert):
        if config.has(CorrelationSource.UNSIGNED_CONVERSION):
            return _decide_with_fact(ValueSet.unsigned_range(), query,
                                     Decided(UNDEF))
        return Decided(UNDEF)

    if isinstance(rhs, Alloc):
        # alloc yields NULL or a positive address: a range fact, gated
        # with the other value-range source.
        if config.has(CorrelationSource.UNSIGNED_CONVERSION):
            return _decide_with_fact(ValueSet.at_least(0), query,
                                     Decided(UNDEF))
        return Decided(UNDEF)

    if isinstance(rhs, (InputRead, Load)):
        return Decided(UNDEF)

    # Arbitrary computation: value unknown.
    return Decided(UNDEF)


def _deref_fact_applies(node: Node, var: VarId) -> bool:
    """Does executing ``node`` dereference ``var`` directly?"""
    if isinstance(node, AssignNode):
        return var in direct_deref_vars([node.rhs])
    if isinstance(node, StoreNode):
        address_var = as_var(node.address)
        if address_var == var:
            return True
        return var in direct_deref_vars([node.address, node.value])
    return False


def node_transfer(icfg: ICFG, node: Node, query: Query,
                  config: AnalysisConfig) -> Transfer:
    """Resolve or rewrite ``query`` across ``node`` (backwards).

    Entry and call-site exit nodes are interprocedural boundaries the
    engine handles itself; this function covers every other node kind.
    """
    if isinstance(node, AssignNode) and node.target == query.var:
        return _assignment_transfer(node, query, config)

    if (config.has(CorrelationSource.POINTER_DEREFERENCE)
            and _deref_fact_applies(node, query.var)):
        # The node completed a dereference of the query variable, so on
        # every path leaving it the variable is non-zero.  This asserts
        # without defining: if the fact does not decide, the query keeps
        # propagating (the dereference did not change the value).
        return _decide_with_fact(ValueSet.nonzero(), query, Proceed(query))

    if isinstance(node, (AssignNode, BranchNode, CallNode, ExitNode, NopNode,
                         PrintNode, StoreNode)):
        return Proceed(query)

    raise TypeError(
        f"node_transfer cannot handle {type(node).__name__} (id {node.id})")


def edge_assertion(icfg: ICFG, edge: Edge, query: Query,
                   config: AnalysisConfig) -> Optional[bool]:
    """Does the assertion carried by ``edge`` decide ``query``?

    Only true/false out-edges of branches whose predicate matches
    ``(v relop c)`` on the query's variable carry assertions.
    """
    if edge.kind not in (EdgeKind.TRUE, EdgeKind.FALSE):
        return None
    if not config.has(CorrelationSource.BRANCH_ASSERTION):
        return None
    source = icfg.nodes[edge.src]
    if not isinstance(source, BranchNode):
        return None
    pattern = source.correlation_pattern()
    if pattern is None:
        return None
    var, relop, const = pattern
    if var != query.var:
        return None
    if edge.kind is EdgeKind.FALSE:
        relop = relop.negated()
    fact = ValueSet.from_relop(relop, const)
    return decide(fact, query.relop, query.const)


def entry_param_contribution(call: CallNode, param_index: int, query: Query,
                             config: AnalysisConfig
                             ) -> Union[Answer, Query, None]:
    """Cross a CALL edge backwards: rewrite a parameter query to the
    caller's argument expression at ``call``.

    Returns an :class:`Answer` when the argument decides the query
    immediately (constant argument, or an argument too complex to track
    → UNDEF), a rewritten :class:`Query` to raise at the call node, or
    ``None`` only on malformed input (arity mismatch).
    """
    if param_index >= len(call.args):
        return UNDEF
    arg = call.args[param_index]
    value = as_const(arg)
    if value is not None:
        return from_bool(query.holds_for(value))
    if config.copy_substitution:
        copy = as_var_plus_const(arg)
        if copy is not None:
            source_var, offset = copy
            if offset == 0:
                return query.substituted(source_var, 0)
            if config.offset_substitution:
                rewritten = query.substituted(source_var, offset)
                if abs(rewritten.const) <= config.offset_constant_limit:
                    return rewritten
    return UNDEF


def arg_index_of_param(icfg: ICFG, proc: str, var: VarId) -> Optional[int]:
    """The parameter position of ``var`` in ``proc``, if it is one."""
    params = icfg.procs[proc].params
    try:
        return params.index(var)
    except ValueError:
        return None
