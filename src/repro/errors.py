"""Exception hierarchy for the ICBE reproduction.

Every layer of the system raises a subclass of :class:`ReproError`, so
callers can catch a single exception type at the API boundary while tests
can assert on precise failure categories.

Every :class:`ReproError` carries a structured ``context`` dict — machine
readable key/value detail (positions, procedure names, budgets, tiers)
that diagnostics bundles and the batch supervisor's journal serialize
verbatim, so a production failure is queryable data rather than a string
to regex.  Subclasses populate it from their own constructors; ad-hoc
keys can be passed to any constructor as keyword arguments.
"""

from __future__ import annotations

from typing import Any, Dict


class ReproError(Exception):
    """Base class for all errors raised by this package.

    ``context`` holds structured detail about the failure.  It is always
    a plain dict of JSON-serializable values (enforced only by
    convention; :func:`error_context` sanitizes on the way out).
    """

    def __init__(self, message: str = "", **context: Any) -> None:
        super().__init__(message)
        self.context: Dict[str, Any] = dict(context)


def error_context(exc: BaseException) -> Dict[str, Any]:
    """The structured context of ``exc``, JSON-sanitized, best-effort.

    Non-Repro exceptions yield an empty dict; values that do not
    round-trip through ``str`` cheaply are stringified so a corrupt
    context never breaks diagnostics serialization.
    """
    raw = getattr(exc, "context", None)
    if not isinstance(raw, dict):
        return {}
    safe: Dict[str, Any] = {}
    for key, value in raw.items():
        if isinstance(value, (str, int, float, bool, type(None))):
            safe[str(key)] = value
        else:
            safe[str(key)] = repr(value)
    return safe


class LexError(ReproError):
    """A malformed token was encountered while scanning MiniC source."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{line}:{column}: {message}",
                         line=line, column=column)
        self.line = line
        self.column = column


class ParseError(ReproError):
    """The token stream does not form a valid MiniC program."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{line}:{column}: {message}",
                         line=line, column=column)
        self.line = line
        self.column = column


class SemanticError(ReproError):
    """The program parsed but violates a static rule (scope, arity...)."""


class LoweringError(ReproError):
    """The AST could not be translated to the interprocedural CFG."""


class VerificationError(ReproError):
    """An ICFG failed a structural well-formedness check."""


class InterpreterError(ReproError):
    """A runtime fault during ICFG interpretation (e.g. null deref)."""


class StepLimitExceeded(InterpreterError):
    """The interpreter exceeded its step budget (probable infinite loop)."""


class AnalysisError(ReproError):
    """Internal inconsistency in the correlation analysis."""


class TransformError(ReproError):
    """The restructuring transformation could not be applied safely."""


class BudgetExceeded(ReproError):
    """A resource guard tripped (per-conditional deadline or node growth).

    Raised cooperatively from instrumented checkpoints inside analysis
    and restructuring, so a runaway conditional is abandoned and rolled
    back instead of hanging or exhausting memory.
    """


class FaultInjected(ReproError):
    """An armed :class:`~repro.robustness.faults.FaultPlan` fired.

    Only ever raised on purpose, by tests and drills that exercise the
    optimizer's recovery paths.
    """


class DifferentialMismatch(ReproError):
    """Original and optimized programs observably diverged on a workload.

    Raised by strict-mode differential validation; non-strict mode rolls
    the offending transform back and records diagnostics instead.
    """


class SupervisorError(ReproError):
    """The batch supervisor could not run or resume a batch.

    Raised for operator-level problems — a resume directory whose
    journal belongs to a different batch or seed, an unreadable run
    directory — never for per-job failures, which become structured
    ``FAILED`` outcomes instead.
    """


class SupervisorDrained(ReproError):
    """A batch run was interrupted by SIGTERM/SIGINT and drained.

    Raised by :meth:`~repro.robustness.supervisor.BatchSupervisor.run`
    *after* the journal was checkpointed and every worker reaped, so
    the caller can exit with the conventional code (130 for SIGINT,
    143 for SIGTERM) knowing a ``--resume`` of the run directory will
    reproduce the uninterrupted run byte-for-byte.
    """

    def __init__(self, message: str, signum: int, **context: Any) -> None:
        super().__init__(message, signum=signum, **context)
        self.signum = signum

    @property
    def exit_code(self) -> int:
        """The shell convention for death-by-signal: 128 + signum."""
        return 128 + self.signum


class ServeError(ReproError):
    """An ``icbe serve`` request or daemon configuration is unusable.

    Raised for operator- and client-level problems — a malformed
    submission body, a run directory journaled by a daemon with a
    different option fingerprint — never for per-job optimization
    failures, which become definite job results instead.
    """
