"""Exception hierarchy for the ICBE reproduction.

Every layer of the system raises a subclass of :class:`ReproError`, so
callers can catch a single exception type at the API boundary while tests
can assert on precise failure categories.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class LexError(ReproError):
    """A malformed token was encountered while scanning MiniC source."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{line}:{column}: {message}")
        self.line = line
        self.column = column


class ParseError(ReproError):
    """The token stream does not form a valid MiniC program."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{line}:{column}: {message}")
        self.line = line
        self.column = column


class SemanticError(ReproError):
    """The program parsed but violates a static rule (scope, arity...)."""


class LoweringError(ReproError):
    """The AST could not be translated to the interprocedural CFG."""


class VerificationError(ReproError):
    """An ICFG failed a structural well-formedness check."""


class InterpreterError(ReproError):
    """A runtime fault during ICFG interpretation (e.g. null deref)."""


class StepLimitExceeded(InterpreterError):
    """The interpreter exceeded its step budget (probable infinite loop)."""


class AnalysisError(ReproError):
    """Internal inconsistency in the correlation analysis."""


class TransformError(ReproError):
    """The restructuring transformation could not be applied safely."""


class BudgetExceeded(ReproError):
    """A resource guard tripped (per-conditional deadline or node growth).

    Raised cooperatively from instrumented checkpoints inside analysis
    and restructuring, so a runaway conditional is abandoned and rolled
    back instead of hanging or exhausting memory.
    """


class FaultInjected(ReproError):
    """An armed :class:`~repro.robustness.faults.FaultPlan` fired.

    Only ever raised on purpose, by tests and drills that exercise the
    optimizer's recovery paths.
    """


class DifferentialMismatch(ReproError):
    """Original and optimized programs observably diverged on a workload.

    Raised by strict-mode differential validation; non-strict mode rolls
    the offending transform back and records diagnostics instead.
    """
