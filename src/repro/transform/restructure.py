"""Per-conditional restructuring driver: analyze → gate → split →
eliminate → verify (paper §3's two-phase optimization for one branch).

The driver never mutates the input graph: all work happens on a clone,
which is only handed back when the transformation succeeded and the
verifier accepted the result.  A rejection (no correlation, duplication
limit exceeded, or — defensively — a verification failure) reports the
reason and leaves the caller's graph untouched.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.analysis.config import AnalysisConfig
from repro.analysis.cost import (duplication_upper_bound,
                                 eliminated_executions_estimate)
from repro.analysis.driver import analyze_branch
from repro.analysis.result import CorrelationResult
from repro.interp.profile import Profile
from repro.errors import TransformError, VerificationError
from repro.ir.icfg import ICFG
from repro.ir.verify import verify_icfg
from repro.robustness.runtime import checkpoint
from repro.transform.eliminate import eliminate_known_copies
from repro.transform.split import Splitter


class BranchOutcome(enum.Enum):
    """Why a conditional was or was not optimized."""

    OPTIMIZED = "optimized"
    NOT_ANALYZABLE = "not-analyzable"
    NO_CORRELATION = "no-correlation"
    OVER_LIMIT = "over-duplication-limit"
    LOW_BENEFIT = "low-benefit"
    TRANSFORM_FAILED = "transform-failed"
    #: An exception escaped analysis/restructuring (or a resource guard
    #: tripped); the optimizer rolled the conditional's transaction back.
    FAILED = "failed"
    #: The transform verified structurally but differential validation
    #: caught an observable divergence; the transform was discarded.
    ROLLED_BACK = "rolled-back"


@dataclass
class RestructureResult:
    """Outcome of attempting to optimize one conditional."""

    branch_id: int
    outcome: BranchOutcome
    analysis: Optional[CorrelationResult] = None
    new_icfg: Optional[ICFG] = None
    duplication_bound: int = 0
    nodes_before: int = 0
    nodes_after: int = 0
    executable_before: int = 0
    executable_after: int = 0
    eliminated_copies: int = 0
    cloned_from: Dict[int, int] = field(default_factory=dict)
    failure: str = ""

    @property
    def applied(self) -> bool:
        return self.outcome is BranchOutcome.OPTIMIZED

    @property
    def node_growth(self) -> int:
        return self.nodes_after - self.nodes_before


def restructure_branch(icfg: ICFG, branch_id: int,
                       config: Optional[AnalysisConfig] = None,
                       duplication_limit: Optional[int] = None,
                       profile=None,
                       min_benefit_per_node: Optional[float] = None,
                       precomputed: Optional[CorrelationResult] = None,
                       incremental_verify: bool = False,
                       in_place: bool = False) -> RestructureResult:
    """Try to eliminate one conditional along its correlated paths.

    ``duplication_limit`` is the paper's per-conditional gate: the
    restructuring only runs when the analysis' duplication upper bound
    does not exceed it (Fig. 11 sweeps this limit).

    ``profile`` + ``min_benefit_per_node`` implement the "better
    heuristic" the paper sketches at the end of §4: also require the
    estimated eliminated dynamic branch executions to pay for the code
    growth — at least ``min_benefit_per_node`` eliminated executions
    per duplicated node.

    ``precomputed`` hands in a finished analysis of ``icfg`` itself
    (same node ids as the working clone) instead of re-analyzing; it
    must be complete (not budget-truncated) and cache-independent —
    the splitter walks every pair the engine visited, so an analysis
    that short-circuited callees through a summary cache cannot drive
    restructuring.  ``incremental_verify`` scopes the post-transform
    verification to the procedures the transform actually dirtied
    (sound because out-of-band corruption marks everything dirty).
    ``in_place`` mutates ``icfg`` itself instead of a clone: the caller
    must hold a snapshot and restore it on any non-OPTIMIZED outcome
    (cloning preserves node ids, so in-place and cloned runs produce
    identical graphs).
    """
    working = icfg if in_place else icfg.clone()
    base_generation = working.generation
    if precomputed is not None:
        analysis = precomputed
    else:
        analysis = analyze_branch(working, branch_id, config)
    base = RestructureResult(branch_id=branch_id,
                             outcome=BranchOutcome.NOT_ANALYZABLE,
                             analysis=analysis,
                             nodes_before=icfg.node_count(),
                             executable_before=icfg.executable_node_count())
    if not analysis.analyzable:
        return base
    if not analysis.has_correlation:
        base.outcome = BranchOutcome.NO_CORRELATION
        return base

    bound = duplication_upper_bound(analysis)
    base.duplication_bound = bound
    if duplication_limit is not None and bound > duplication_limit:
        base.outcome = BranchOutcome.OVER_LIMIT
        return base
    if profile is not None and min_benefit_per_node is not None:
        estimate = eliminated_executions_estimate(analysis, profile)
        if estimate < min_benefit_per_node * max(1, bound):
            base.outcome = BranchOutcome.LOW_BENEFIT
            return base

    assert analysis.engine is not None and analysis.initial_query is not None
    try:
        splitter = Splitter(working, analysis.engine, analysis.answers,
                            branch_id, analysis.initial_query)
        outcome = splitter.split()
        base.eliminated_copies = eliminate_known_copies(
            working, outcome.branch_copies)
        working.remove_unreachable()
        checkpoint("transform:verify", working)
        if incremental_verify:
            verify_icfg(working,
                        procs=working.dirty_procs_since(base_generation))
        else:
            verify_icfg(working)
    except (TransformError, VerificationError) as failure:
        base.outcome = BranchOutcome.TRANSFORM_FAILED
        base.failure = str(failure)
        return base

    base.outcome = BranchOutcome.OPTIMIZED
    base.new_icfg = working
    base.nodes_after = working.node_count()
    base.executable_after = working.executable_node_count()
    base.cloned_from = outcome.cloned_from
    return base
