"""Answer-driven node splitting (the engine of paper Fig. 8).

Given one analyzed conditional, every node hosting queries is replaced
by one copy per *assignment* — a choice of one answer for each hosted
query (cross product, paper §3.1's duplication bound).  Edges are then
re-derived so that a copy only receives control from predecessors whose
own assignment yields exactly the copy's answers; this is the paper's
``fix-edges`` discipline expressed constructively.  The uniqueness of
the compatible target makes every non-branch copy keep out-degree one,
which is why restructuring never duplicates *operations along a path*.

Call-site exit nodes are special (paper Fig. 4 lines 14-26 / Fig. 7):
they are rebuilt per (call copy, exit copy) pair with freshly wired
LOCAL/RETURN edges and return maps, and their answers are *derived*:
from the exit copy's summary answer when it is TRUE/FALSE/UNDEF, from
the call copy's continuation answer when the callee was transparent.
Pairs whose derivation is contradictory (a transparent path entering
through an entry this call does not invoke) are provably unreachable
and are simply not built.

Entry and exit copies land in their procedure's entry/exit lists —
that *is* entry/exit splitting; callers' CALL edges and ``entry_id``
fields are re-pointed during the generic wiring pass.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.answers import Answer, UNDEF
from repro.analysis.engine import (CallExitDisposition, CorrelationEngine,
                                   DecidedDisposition, PerEdgeDisposition)
from repro.analysis.query import Query
from repro.analysis.rollback import AnswerMap
from repro.errors import TransformError
from repro.ir.icfg import Edge, EdgeKind, ICFG
from repro.ir.nodes import CallExitNode, CallNode, EntryNode, ExitNode, Node
from repro.robustness.runtime import checkpoint

#: A choice of one answer per hosted query.
Assignment = Tuple[Tuple[Query, Answer], ...]


def _make_assignment(pairs: Dict[Query, Answer]) -> Assignment:
    return tuple(sorted(pairs.items(),
                        key=lambda item: item[0].sort_key()))


@dataclass
class CloneSet:
    """All copies of one original node, keyed by assignment."""

    original: Node
    clones: Dict[Assignment, Node] = field(default_factory=dict)

    def lookup(self, assignment: Assignment) -> Node:
        try:
            return self.clones[assignment]
        except KeyError:
            raise TransformError(
                f"no copy of node {self.original.id} for assignment "
                f"{[(str(q), str(a)) for q, a in assignment]}")


@dataclass
class SplitOutcome:
    """What the splitter produced (consumed by elimination/cleanup)."""

    #: assignment-keyed copies of every visited non-call-exit node
    clone_sets: Dict[int, CloneSet]
    #: rebuilt call-site exits: original id -> list of copies
    call_exit_clones: Dict[int, List[Node]]
    #: new node id -> original node id (for pipeline bookkeeping)
    cloned_from: Dict[int, int]
    #: copies of the analyzed conditional with their answer for the query
    branch_copies: List[Tuple[Node, Answer]]


class Splitter:
    """Performs one conditional's restructuring on a working graph."""

    def __init__(self, icfg: ICFG, engine: CorrelationEngine,
                 answers: AnswerMap, branch_id: int,
                 initial_query: Query) -> None:
        self.icfg = icfg
        self.engine = engine
        self.answers = answers
        self.branch_id = branch_id
        self.initial_query = initial_query
        self.clone_sets: Dict[int, CloneSet] = {}
        self.call_exit_clones: Dict[int, List[Node]] = {}
        self.call_exit_assignments: Dict[int, Dict[Query, Answer]] = {}
        self.cloned_from: Dict[int, int] = {}
        self._doomed_originals: List[int] = []

    # -- queries about the analysis --------------------------------------------

    def hosted(self, node_id: int) -> Tuple[Query, ...]:
        return tuple(self.engine.raised.get(node_id, ()))

    def answer_set(self, node_id: int, query: Query) -> Tuple[Answer, ...]:
        found = self.answers.get((node_id, query), frozenset())
        if not found:
            # No answers can only happen on unreachable regions; give the
            # copy a consistent placeholder so wiring stays total.
            return (UNDEF,)
        return tuple(sorted(found, key=Answer.sort_key))

    def is_visited(self, node_id: int) -> bool:
        return bool(self.engine.raised.get(node_id))

    # -- main entry point --------------------------------------------------------

    def split(self) -> SplitOutcome:
        visited = [nid for nid in sorted(self.engine.raised)
                   if self.engine.raised[nid] and nid in self.icfg.nodes]
        plain_visited = [nid for nid in visited
                         if not isinstance(self.icfg.nodes[nid], CallExitNode)]

        for node_id in plain_visited:
            checkpoint("transform:split", self.icfg)
            self._make_clones(node_id)

        self._rebuild_call_exits()
        self._wire_generic_edges()
        self._delete_originals()

        branch_copies = self._collect_branch_copies()
        return SplitOutcome(clone_sets=self.clone_sets,
                            call_exit_clones=self.call_exit_clones,
                            cloned_from=self.cloned_from,
                            branch_copies=branch_copies)

    # -- phase 1: copies of visited nodes ---------------------------------------

    def _make_clones(self, node_id: int) -> None:
        node = self.icfg.nodes[node_id]
        queries = self.hosted(node_id)
        per_query = [self.answer_set(node_id, q) for q in queries]
        clone_set = CloneSet(original=node)
        for combo in itertools.product(*per_query):
            assignment = _make_assignment(dict(zip(queries, combo)))
            copy = self.icfg.duplicate_node(node)
            self.cloned_from[copy.id] = node_id
            clone_set.clones[assignment] = copy
        self.clone_sets[node_id] = clone_set
        self._doomed_originals.append(node_id)

    # -- phase 2: call-site exits -----------------------------------------------

    def _call_exit_needs_rebuild(self, node: CallExitNode) -> bool:
        call_id = self.icfg.call_pred_of_call_exit(node.id)
        exit_id = self.icfg.exit_pred_of_call_exit(node.id)
        return (self.is_visited(node.id) or call_id in self.clone_sets
                or exit_id in self.clone_sets)

    def _rebuild_call_exits(self) -> None:
        call_exits = [n for n in self.icfg.iter_nodes()
                      if isinstance(n, CallExitNode)]
        for node in call_exits:
            if not self._call_exit_needs_rebuild(node):
                continue
            self._rebuild_one_call_exit(node)

    def _candidates(self, node_id: int) -> List[Tuple[Node, Assignment]]:
        """Copies of a node with their assignments ([original, ()] when
        the node was not split)."""
        clone_set = self.clone_sets.get(node_id)
        if clone_set is None:
            return [(self.icfg.nodes[node_id], ())]
        return [(copy, assignment)
                for assignment, copy in clone_set.clones.items()]

    def _rebuild_one_call_exit(self, node: CallExitNode) -> None:
        call_id = self.icfg.call_pred_of_call_exit(node.id)
        exit_id = self.icfg.exit_pred_of_call_exit(node.id)
        copies: List[Node] = []
        for call_copy, call_assignment in self._candidates(call_id):
            assert isinstance(call_copy, CallNode)
            # The copy's return map is rebuilt from scratch below; drop
            # entries inherited from the original.
            call_copy.return_map.pop(exit_id, None)
            for exit_copy, exit_assignment in self._candidates(exit_id):
                derived = self._derive_call_exit_assignment(
                    node, dict(call_assignment), dict(exit_assignment))
                if derived is None:
                    continue  # provably unreachable (call, exit) pairing
                fresh = self.icfg.duplicate_node(node)
                self.cloned_from[fresh.id] = node.id
                self.icfg.add_edge(call_copy.id, fresh.id, EdgeKind.LOCAL)
                self.icfg.add_edge(exit_copy.id, fresh.id, EdgeKind.RETURN)
                call_copy.return_map[exit_copy.id] = fresh.id
                self.call_exit_assignments[fresh.id] = derived
                copies.append(fresh)
        self.call_exit_clones[node.id] = copies
        self._doomed_originals.append(node.id)

    def _derive_call_exit_assignment(
            self, node: CallExitNode, call_assignment: Dict[Query, Answer],
            exit_assignment: Dict[Query, Answer]
    ) -> Optional[Dict[Query, Answer]]:
        """Answers a call-site exit copy hosts, given its call copy's and
        exit copy's assignments; None if the pairing is unreachable."""
        derived: Dict[Query, Answer] = {}
        for query in self.hosted(node.id):
            disposition = self.engine.dispositions.get((node.id, query))
            if disposition is None:
                derived[query] = UNDEF  # budget-truncated pair
                continue
            if isinstance(disposition, DecidedDisposition):
                derived[query] = disposition.answer
                continue
            if not isinstance(disposition, CallExitDisposition):
                raise TransformError(
                    f"call-exit {node.id} has unexpected disposition "
                    f"{type(disposition).__name__}")
            if disposition.local_query is not None:
                derived[query] = self._assigned(call_assignment,
                                                disposition.call_id,
                                                disposition.local_query)
                continue
            assert disposition.summary_query is not None
            summary_answer = self._assigned(exit_assignment,
                                            disposition.exit_id,
                                            disposition.summary_query)
            if not summary_answer.is_trans:
                derived[query] = summary_answer
                continue
            key = (disposition.call_id, summary_answer.trans_query,
                   disposition.outer_tag)
            continuation = self.engine.cont_table.get(key)
            if continuation is None:
                return None  # transparent path enters via another entry
            if isinstance(continuation, Answer):
                derived[query] = continuation
            else:
                derived[query] = self._assigned(call_assignment,
                                                disposition.call_id,
                                                continuation)
        return derived

    def _assigned(self, assignment: Dict[Query, Answer],
                  node_id: Optional[int], query: Query) -> Answer:
        if query in assignment:
            return assignment[query]
        # The neighbour was not split (single combination): read its
        # unique answer directly.
        assert node_id is not None
        answers = self.answer_set(node_id, query)
        if len(answers) != 1:
            raise TransformError(
                f"query {query} at unsplit node {node_id} has "
                f"{len(answers)} answers")
        return answers[0]

    # -- phase 3: generic edge wiring ------------------------------------------------

    def _source_copies(self, node_id: int) -> List[Tuple[Node,
                                                         Dict[Query, Answer]]]:
        """Copies of ``node_id`` acting as edge sources, with assignments."""
        if node_id in self.clone_sets:
            return [(copy, dict(assignment)) for assignment, copy
                    in self.clone_sets[node_id].clones.items()]
        if node_id in self.call_exit_clones:
            return [(copy, self.call_exit_assignments[copy.id])
                    for copy in self.call_exit_clones[node_id]]
        return [(self.icfg.nodes[node_id], {})]

    def _wire_generic_edges(self) -> None:
        original_edges: List[Edge] = []
        for node_id in sorted(self.icfg.nodes):
            if node_id in self.cloned_from:
                continue  # a fresh copy; only original edges drive wiring
            for edge in self.icfg.succ_edges(node_id):
                if edge.kind in (EdgeKind.LOCAL, EdgeKind.RETURN):
                    continue  # rebuilt by the call-exit phase
                if edge.dst in self.cloned_from:
                    continue
                original_edges.append(edge)

        for edge in original_edges:
            target_touched = (edge.dst in self.clone_sets
                              or edge.dst in self.call_exit_clones)
            source_touched = (edge.src in self.clone_sets
                              or edge.src in self.call_exit_clones)
            if not target_touched and not source_touched:
                continue  # edge survives untouched
            for source_copy, source_assignment in self._source_copies(edge.src):
                target = self._target_copy(edge, source_assignment)
                if not self.icfg.has_edge(source_copy.id, target.id, edge.kind):
                    self.icfg.add_edge(source_copy.id, target.id, edge.kind)
                if edge.kind is EdgeKind.CALL and isinstance(source_copy,
                                                             CallNode):
                    source_copy.entry_id = target.id

    def _target_copy(self, edge: Edge, source_assignment: Dict[Query, Answer]
                     ) -> Node:
        """The unique copy of ``edge.dst`` compatible with the source copy."""
        if edge.dst not in self.clone_sets:
            return self.icfg.nodes[edge.dst]
        required: Dict[Query, Answer] = {}
        for query in self.hosted(edge.dst):
            disposition = self.engine.dispositions.get((edge.dst, query))
            if disposition is None:
                required[query] = UNDEF
                continue
            if isinstance(disposition, DecidedDisposition):
                required[query] = disposition.answer
                continue
            if not isinstance(disposition, PerEdgeDisposition):
                raise TransformError(
                    f"node {edge.dst} has unexpected disposition for wiring")
            contribution = None
            for contrib in disposition.contribs:
                if contrib.edge == edge:
                    contribution = contrib
                    break
            if contribution is None:
                raise TransformError(
                    f"edge {edge} missing from contributions of query "
                    f"{query} at node {edge.dst}")
            if contribution.answer is not None:
                required[query] = contribution.answer
            else:
                assert contribution.pred_query is not None
                required[query] = self._assigned(source_assignment,
                                                 edge.src,
                                                 contribution.pred_query)
        return self.clone_sets[edge.dst].lookup(_make_assignment(required))

    # -- phase 4: cleanup ---------------------------------------------------------

    def _delete_originals(self) -> None:
        for node_id in self._doomed_originals:
            if node_id in self.icfg.nodes:
                self.icfg.remove_node(node_id)

    def _collect_branch_copies(self) -> List[Tuple[Node, Answer]]:
        clone_set = self.clone_sets.get(self.branch_id)
        if clone_set is None:
            return []
        copies: List[Tuple[Node, Answer]] = []
        for assignment, copy in clone_set.clones.items():
            answer = dict(assignment)[self.initial_query]
            copies.append((copy, answer))
        return copies
