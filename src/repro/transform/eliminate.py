"""Branch elimination proper (paper Fig. 8 lines 15-16).

After splitting, each copy of the analyzed conditional hosts exactly one
answer to the initial query.  Copies hosting TRUE or FALSE are fully
redundant: the copy is changed into an empty node and only the edge to
the taken successor survives.  Copies hosting UNDEF remain real
conditionals.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.analysis.answers import Answer
from repro.ir.icfg import EdgeKind, ICFG
from repro.ir.nodes import BranchNode, Node, NopNode
from repro.robustness.runtime import checkpoint


def eliminate_known_copies(icfg: ICFG,
                           branch_copies: List[Tuple[Node, Answer]]) -> int:
    """Replace decided branch copies with empty nodes; return how many."""
    checkpoint("transform:eliminate", icfg)
    eliminated = 0
    for copy, answer in branch_copies:
        if not answer.is_known:
            continue
        if copy.id not in icfg.nodes:
            continue  # already removed as unreachable
        assert isinstance(copy, BranchNode)
        taken_kind = EdgeKind.TRUE if answer.kind == "true" else EdgeKind.FALSE
        taken_target = None
        for edge in icfg.succ_edges(copy.id):
            if edge.kind is taken_kind:
                taken_target = edge.dst
        if taken_target is None:
            # The surviving arm was never wired (its paths are
            # unreachable); leave the copy for unreachable-code removal.
            continue
        replacement = NopNode(icfg.new_id(), copy.proc,
                              note=f"eliminated-branch-{copy.id}")
        icfg.add_node(replacement)
        for edge in list(icfg.pred_edges(copy.id)):
            icfg.remove_edge(edge)
            icfg.add_edge(edge.src, replacement.id, edge.kind)
        icfg.add_edge(replacement.id, taken_target, EdgeKind.NORMAL)
        icfg.remove_node(copy.id)
        eliminated += 1
    return eliminated
