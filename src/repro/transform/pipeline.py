"""The whole-program ICBE optimizer.

Optimizes conditionals one by one, exactly as the paper does: for each
conditional, run the demand-driven analysis, check the duplication
bound against the per-conditional limit, and restructure when the gate
passes (§4 "Eliminated Branches").  The analysis is re-run on the
current (possibly already restructured) graph each time — the paper
notes the analysis must work on restructured programs with multiple
entries/exits, and ours does.

Each conditional is optimized at most once.  Copies of an
already-processed conditional created by later transformations inherit
its processed status; copies of *unprocessed* conditionals are new
conditionals in their own right and get their own turn.

Every conditional's trip is a *transaction*: the graph is snapshotted
before the attempt, the attempt runs under the active resource guard
and fault plan, and any failure — an escaped exception, a blown budget,
a verifier rejection, or a differential-trace mismatch on the accepted
result — rolls back that one conditional and the run continues.  The
public contract of :meth:`ICBEOptimizer.optimize` is therefore total in
non-strict mode: it always returns, the returned graph always passes
:func:`~repro.ir.verify.verify_icfg`, and it is never half-mutated.
Strict mode re-raises the first failure instead (for debugging).

The run itself is structured as a pass pipeline (see
:mod:`repro.transform.passes`): restructure → simplify → final
validation, sharing one
:class:`~repro.analysis.context.AnalysisContext` whose cached analyses
are invalidated incrementally after each committed transaction.
``OptimizerOptions.analysis_cache=False`` turns the shared context off
and recovers the original per-conditional re-derivation, with
guaranteed-identical outcomes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro import obs
from repro.analysis.config import AnalysisConfig
from repro.analysis.context import AnalysisContext, CacheStats
from repro.errors import DifferentialMismatch, ReproError
from repro.interp.profile import Profile, RemappedProfile
from repro.interp.workload import Workload
from repro.ir.icfg import ICFG
from repro.ir.verify import verify_icfg
from repro.robustness.diffcheck import DiffReport, differential_check
from repro.robustness.faults import FaultPlan
from repro.robustness.report import (DiagnosticsBundle, capture_bundle,
                                     write_bundle)
from repro.robustness.snapshot import ICFGSnapshot
from repro.transform.restructure import BranchOutcome, RestructureResult


@dataclass
class OptimizerOptions:
    """Optimizer-level knobs (the analysis has its own config)."""

    config: AnalysisConfig = field(default_factory=AnalysisConfig)
    #: Paper Fig. 11's per-conditional duplication limit N (None = ∞).
    duplication_limit: Optional[int] = None
    #: Overall safety cap: stop optimizing when the graph exceeds this
    #: multiple of its original node count (None = uncapped).
    max_growth_factor: Optional[float] = None
    #: Compact forwarding/eliminated-branch nops after optimizing (the
    #: paper notes eliminated conditionals become removable empty nodes).
    simplify: bool = True
    #: Profile-guided benefit gate (paper §4's "better heuristic"): skip
    #: a conditional unless its estimated eliminated executions amount
    #: to at least ``min_benefit_per_node`` per duplicated node.  Both
    #: fields must be set for the gate to apply.
    profile: Optional["Profile"] = None
    min_benefit_per_node: Optional[float] = None
    #: Strict mode re-raises the first per-conditional failure instead
    #: of rolling back and continuing (debugging aid).
    strict: bool = False
    #: Run differential trace validation after every accepted transform
    #: and once more at pipeline end; mismatches roll the transform back.
    diff_check: bool = False
    #: Workload battery for differential validation (None = a seeded
    #: default battery of ``diff_runs`` random streams plus the empty
    #: stream).
    diff_workloads: Optional[List[Workload]] = None
    diff_seed: int = 0
    diff_runs: int = 3
    #: Per-conditional wall-clock deadline in seconds (None = ∞),
    #: enforced cooperatively at analysis/transform checkpoints.
    deadline_s: Optional[float] = None
    #: Per-conditional node-growth guard: abort one conditional's
    #: transaction when the working graph exceeds this multiple of its
    #: pre-transaction node count (None = unguarded).
    guard_growth_factor: Optional[float] = None
    #: Deterministic fault plan for robustness drills (None = no faults).
    fault_plan: Optional[FaultPlan] = None
    #: Spill a diagnostics bundle per failure into this directory
    #: (None = keep bundles in memory on the report only).
    diagnostics_dir: Optional[str] = None
    #: Share one :class:`~repro.analysis.context.AnalysisContext` across
    #: the run: cross-branch summary caching, memoized mod/ref and
    #: call-graph/adjacency indices, generation-gated snapshot reuse and
    #: dirty-procedure-scoped re-verification.  ``False``
    #: (``--no-analysis-cache``) re-derives everything per conditional —
    #: the original behaviour, kept as the A/B baseline; outcomes are
    #: identical either way.
    analysis_cache: bool = True
    #: Run a sharded multi-process analysis prewarm before the serial
    #: pipeline (see :mod:`repro.analysis.parallel`).  Outcome-neutral:
    #: any value produces byte-identical reports and graphs; values
    #: above 1 only move summary computation off the critical path.
    analysis_jobs: int = 1
    #: Directory of a persistent, content-addressed summary store (see
    #: :mod:`repro.analysis.store`); None keeps summaries in memory
    #: only.  Outcome-neutral like the cache it extends.
    summary_store_dir: Optional[str] = None
    #: Size cap for that store in bytes (None = unbounded).  Enforced by
    #: deterministic oldest-first eviction after each overflow; evicted
    #: entries only ever cost future misses, so this too is
    #: outcome-neutral.
    summary_store_quota: Optional[int] = None
    #: Degradation-ladder hook (see :mod:`repro.robustness.degrade`):
    #: which ladder tier these options encode.  Purely descriptive here —
    #: tier *semantics* are expressed through the other fields — but the
    #: optimizer stamps it onto the report so a batch supervisor (and
    #: its journal) can attribute every result to the tier that made it.
    tier: int = 0
    tier_name: str = "full"


@dataclass
class BranchRecord:
    """One conditional's trip through the optimizer."""

    branch_id: int
    outcome: BranchOutcome
    duplication_bound: int = 0
    node_growth: int = 0
    eliminated_copies: int = 0
    pairs_examined: int = 0
    budget_exhausted: bool = False
    failure: str = ""


@dataclass
class OptimizationReport:
    """Summary of a whole-program optimization run."""

    optimized: ICFG
    records: List[BranchRecord] = field(default_factory=list)
    diagnostics: List[DiagnosticsBundle] = field(default_factory=list)
    nodes_before: int = 0
    nodes_after: int = 0
    executable_before: int = 0
    executable_after: int = 0
    conditionals_before: int = 0
    conditionals_after: int = 0
    elapsed_seconds: float = 0.0
    #: Analysis-context counters for the run (hits, misses,
    #: invalidations, elided work); all zero when caching is off.
    cache: CacheStats = field(default_factory=CacheStats)
    #: On-disk summary store counters (``repro.analysis.store.
    #: StoreStats``), or None when no store was attached.
    store: Optional[object] = None
    #: Degradation-ladder tier the run executed at (stamped from
    #: :attr:`OptimizerOptions.tier`; 0/"full" outside batch runs).
    tier: int = 0
    tier_name: str = "full"

    @property
    def optimized_count(self) -> int:
        """How many conditionals were successfully optimized."""
        return sum(1 for r in self.records
                   if r.outcome is BranchOutcome.OPTIMIZED)

    @property
    def failed_count(self) -> int:
        """Conditionals whose transaction aborted on an exception."""
        return sum(1 for r in self.records
                   if r.outcome is BranchOutcome.FAILED)

    @property
    def rolled_back_count(self) -> int:
        """Accepted transforms discarded by differential validation."""
        return sum(1 for r in self.records
                   if r.outcome is BranchOutcome.ROLLED_BACK)

    def outcome_counts(self) -> Dict[str, int]:
        """Per-branch outcome tally, keyed by outcome value string."""
        counts: Dict[str, int] = {}
        for record in self.records:
            key = record.outcome.value
            counts[key] = counts.get(key, 0) + 1
        return counts

    @property
    def node_growth(self) -> int:
        """Net node-count change of the whole run."""
        return self.nodes_after - self.nodes_before

    @property
    def growth_percent(self) -> float:
        """Net node growth as a percentage of the input size."""
        if self.nodes_before == 0:
            return 0.0
        return 100.0 * self.node_growth / self.nodes_before

    def total_pairs_examined(self) -> int:
        """Node-query pairs examined across every conditional."""
        return sum(r.pairs_examined for r in self.records)


class ICBEOptimizer:
    """Interprocedural (or, as the baseline, intraprocedural)
    conditional branch elimination over a whole ICFG."""

    def __init__(self, options: Optional[OptimizerOptions] = None) -> None:
        self.options = options if options is not None else OptimizerOptions()

    def optimize(self, icfg: ICFG) -> OptimizationReport:
        """Optimize every analyzable conditional; the input is untouched.

        Non-strict mode (the default) never raises and never returns a
        half-mutated graph: every per-conditional failure is rolled
        back, recorded as a :class:`BranchRecord`, and attached to the
        report as a diagnostics bundle.
        """
        from repro.transform.passes import PipelineState, \
            build_default_pipeline

        started = time.perf_counter()
        opts = self.options
        current = icfg.clone()
        report = OptimizationReport(
            optimized=current,
            nodes_before=icfg.node_count(),
            executable_before=icfg.executable_node_count(),
            conditionals_before=icfg.conditional_node_count(),
            tier=opts.tier, tier_name=opts.tier_name)

        context = AnalysisContext(enabled=opts.analysis_cache)
        context.bind(current)
        if opts.summary_store_dir and opts.analysis_cache:
            from repro.analysis.store import SummaryStore
            context.attach_store(
                SummaryStore(opts.summary_store_dir, opts.config,
                             quota_bytes=opts.summary_store_quota))
        if opts.analysis_jobs > 1 and opts.analysis_cache:
            from repro.analysis.parallel import prewarm_context
            prewarm_context(current, opts.config, context,
                            opts.analysis_jobs)
        gate_profile = None
        origin: Dict[int, int] = {}
        if opts.profile is not None:
            gate_profile = RemappedProfile(opts.profile, origin)
        growth_cap = None
        if opts.max_growth_factor is not None:
            growth_cap = int(icfg.node_count() * opts.max_growth_factor)

        state = PipelineState(optimizer=self, original=icfg, current=current,
                              report=report, context=context, origin=origin,
                              gate_profile=gate_profile,
                              growth_cap=growth_cap)
        with obs.span("optimize", nodes=report.nodes_before,
                      conditionals=report.conditionals_before,
                      tier=opts.tier_name):
            state = build_default_pipeline().run(state)
        current = state.current

        report.optimized = current
        report.cache = context.stats
        if context.store is not None:
            report.store = context.store.stats
        report.nodes_after = current.node_count()
        report.executable_after = current.executable_node_count()
        report.conditionals_after = current.conditional_node_count()
        report.elapsed_seconds = time.perf_counter() - started
        self._publish_metrics(report)
        return report

    @staticmethod
    def _publish_metrics(report: "OptimizationReport") -> None:
        """Feed the run's report counters (and the analysis context's
        cache counters) into the active metrics registry.  Everything
        published here is deterministic — derived from the work done,
        never from how long it took."""
        if not obs.enabled():
            return
        obs.add("optimize.runs")
        obs.add("optimize.conditionals_before", report.conditionals_before)
        obs.add("optimize.optimized", report.optimized_count)
        obs.add("optimize.failed", report.failed_count)
        obs.add("optimize.rolled_back", report.rolled_back_count)
        obs.add("optimize.pairs_examined", report.total_pairs_examined())
        obs.gauge("optimize.nodes_before", report.nodes_before)
        obs.gauge("optimize.nodes_after", report.nodes_after)
        obs.gauge("optimize.node_growth", report.node_growth)
        report.cache.publish()
        if report.store is not None:
            from repro.analysis.store import HEALTH_RANK
            for name, value in report.store.snapshot().items():
                if name == "health":
                    obs.gauge("store.health", HEALTH_RANK.get(value, 0))
                elif isinstance(value, (int, float)):
                    obs.add(f"store.{name}", value)

    # -- transactional phases ------------------------------------------------

    def _final_validation(self, original: ICFG, current: ICFG,
                          report: OptimizationReport) -> ICFG:
        """Last line of defence: the returned graph must verify and
        (when differential checking is on) behave like the input.  A
        violation here means a pipeline-level fault slipped through
        every per-conditional net, so the whole run is rolled back to a
        pristine clone of the input — correct, if unoptimized."""
        opts = self.options
        try:
            verify_icfg(current)
        except ReproError as failure:
            if opts.strict:
                raise
            self._diagnose(report, -1, "final-verify",
                           exc=failure, icfg=current)
            return original.clone()
        if opts.diff_check:
            diff = self._diff(original, current)
            if not diff.ok:
                if opts.strict:
                    raise DifferentialMismatch(diff.describe())
                self._diagnose(report, -1, "final-diff",
                               icfg=current, diff=diff)
                return original.clone()
        return current

    # -- helpers -------------------------------------------------------------

    def _node_cap(self, snapshot: ICFGSnapshot) -> Optional[int]:
        """The per-transaction node budget, if growth-guarded."""
        factor = self.options.guard_growth_factor
        if factor is None:
            return None
        return int(snapshot.node_count * factor)

    def _diff(self, original: ICFG, optimized: ICFG) -> DiffReport:
        """Differential trace comparison with the configured workloads."""
        opts = self.options
        return differential_check(original, optimized,
                                  workloads=opts.diff_workloads,
                                  seed=opts.diff_seed, runs=opts.diff_runs)

    def _diagnose(self, report: OptimizationReport, branch_id: int,
                  phase: str, exc: Optional[BaseException] = None,
                  icfg: Optional[ICFG] = None,
                  diff: Optional[DiffReport] = None) -> None:
        """Capture (and optionally spill) a diagnostics bundle."""
        bundle = capture_bundle(branch_id, phase, exc=exc, icfg=icfg,
                                diff=diff)
        report.diagnostics.append(bundle)
        if self.options.diagnostics_dir is not None:
            write_bundle(bundle, self.options.diagnostics_dir)

    @staticmethod
    def _record(result: RestructureResult) -> BranchRecord:
        stats = result.analysis.stats if result.analysis is not None else None
        return BranchRecord(
            branch_id=result.branch_id,
            outcome=result.outcome,
            duplication_bound=result.duplication_bound,
            node_growth=result.node_growth if result.applied else 0,
            eliminated_copies=result.eliminated_copies,
            pairs_examined=stats.pairs_examined if stats else 0,
            budget_exhausted=stats.budget_exhausted if stats else False,
            failure=result.failure)
