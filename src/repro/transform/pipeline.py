"""The whole-program ICBE optimizer.

Optimizes conditionals one by one, exactly as the paper does: for each
conditional, run the demand-driven analysis, check the duplication
bound against the per-conditional limit, and restructure when the gate
passes (§4 "Eliminated Branches").  The analysis is re-run on the
current (possibly already restructured) graph each time — the paper
notes the analysis must work on restructured programs with multiple
entries/exits, and ours does.

Each conditional is optimized at most once.  Copies of an
already-processed conditional created by later transformations inherit
its processed status; copies of *unprocessed* conditionals are new
conditionals in their own right and get their own turn.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.analysis.config import AnalysisConfig
from repro.interp.profile import Profile, RemappedProfile
from repro.ir.icfg import ICFG
from repro.ir.simplify import simplify_nops
from repro.ir.verify import verify_icfg
from repro.transform.restructure import (BranchOutcome, RestructureResult,
                                         restructure_branch)


@dataclass
class OptimizerOptions:
    """Optimizer-level knobs (the analysis has its own config)."""

    config: AnalysisConfig = field(default_factory=AnalysisConfig)
    #: Paper Fig. 11's per-conditional duplication limit N (None = ∞).
    duplication_limit: Optional[int] = None
    #: Overall safety cap: stop optimizing when the graph exceeds this
    #: multiple of its original node count (None = uncapped).
    max_growth_factor: Optional[float] = None
    #: Compact forwarding/eliminated-branch nops after optimizing (the
    #: paper notes eliminated conditionals become removable empty nodes).
    simplify: bool = True
    #: Profile-guided benefit gate (paper §4's "better heuristic"): skip
    #: a conditional unless its estimated eliminated executions amount
    #: to at least ``min_benefit_per_node`` per duplicated node.  Both
    #: fields must be set for the gate to apply.
    profile: Optional["Profile"] = None
    min_benefit_per_node: Optional[float] = None


@dataclass
class BranchRecord:
    """One conditional's trip through the optimizer."""

    branch_id: int
    outcome: BranchOutcome
    duplication_bound: int = 0
    node_growth: int = 0
    eliminated_copies: int = 0
    pairs_examined: int = 0
    budget_exhausted: bool = False
    failure: str = ""


@dataclass
class OptimizationReport:
    """Summary of a whole-program optimization run."""

    optimized: ICFG
    records: List[BranchRecord] = field(default_factory=list)
    nodes_before: int = 0
    nodes_after: int = 0
    executable_before: int = 0
    executable_after: int = 0
    conditionals_before: int = 0
    conditionals_after: int = 0
    elapsed_seconds: float = 0.0

    @property
    def optimized_count(self) -> int:
        return sum(1 for r in self.records
                   if r.outcome is BranchOutcome.OPTIMIZED)

    @property
    def node_growth(self) -> int:
        return self.nodes_after - self.nodes_before

    @property
    def growth_percent(self) -> float:
        if self.nodes_before == 0:
            return 0.0
        return 100.0 * self.node_growth / self.nodes_before

    def total_pairs_examined(self) -> int:
        return sum(r.pairs_examined for r in self.records)


class ICBEOptimizer:
    """Interprocedural (or, as the baseline, intraprocedural)
    conditional branch elimination over a whole ICFG."""

    def __init__(self, options: Optional[OptimizerOptions] = None) -> None:
        self.options = options if options is not None else OptimizerOptions()

    def optimize(self, icfg: ICFG) -> OptimizationReport:
        """Optimize every analyzable conditional; the input is untouched."""
        started = time.perf_counter()
        current = icfg.clone()
        report = OptimizationReport(
            optimized=current,
            nodes_before=icfg.node_count(),
            executable_before=icfg.executable_node_count(),
            conditionals_before=icfg.conditional_node_count())

        done: Set[int] = set()
        # copy id -> original id, composed across transformations, so
        # the profile-guided benefit gate keeps working on copies.
        origin: Dict[int, int] = {}
        gate_profile = None
        if self.options.profile is not None:
            gate_profile = RemappedProfile(self.options.profile, origin)
        growth_cap = None
        if self.options.max_growth_factor is not None:
            growth_cap = int(icfg.node_count()
                             * self.options.max_growth_factor)

        while True:
            pending = [b.id for b in current.branch_nodes()
                       if b.id not in done]
            if not pending:
                break
            if growth_cap is not None and current.node_count() > growth_cap:
                break
            branch_id = pending[0]
            done.add(branch_id)
            result = restructure_branch(
                current, branch_id, self.options.config,
                self.options.duplication_limit,
                profile=gate_profile,
                min_benefit_per_node=self.options.min_benefit_per_node)
            report.records.append(self._record(result))
            if result.applied:
                assert result.new_icfg is not None
                current = result.new_icfg
                for new_id, old_id in result.cloned_from.items():
                    origin[new_id] = origin.get(old_id, old_id)
                    if old_id in done:
                        done.add(new_id)

        if self.options.simplify:
            simplify_nops(current)
            verify_icfg(current)

        report.optimized = current
        report.nodes_after = current.node_count()
        report.executable_after = current.executable_node_count()
        report.conditionals_after = current.conditional_node_count()
        report.elapsed_seconds = time.perf_counter() - started
        return report

    @staticmethod
    def _record(result: RestructureResult) -> BranchRecord:
        stats = result.analysis.stats if result.analysis is not None else None
        return BranchRecord(
            branch_id=result.branch_id,
            outcome=result.outcome,
            duplication_bound=result.duplication_bound,
            node_growth=result.node_growth if result.applied else 0,
            eliminated_copies=result.eliminated_copies,
            pairs_examined=stats.pairs_examined if stats else 0,
            budget_exhausted=stats.budget_exhausted if stats else False,
            failure=result.failure)
