"""The whole-program ICBE optimizer.

Optimizes conditionals one by one, exactly as the paper does: for each
conditional, run the demand-driven analysis, check the duplication
bound against the per-conditional limit, and restructure when the gate
passes (§4 "Eliminated Branches").  The analysis is re-run on the
current (possibly already restructured) graph each time — the paper
notes the analysis must work on restructured programs with multiple
entries/exits, and ours does.

Each conditional is optimized at most once.  Copies of an
already-processed conditional created by later transformations inherit
its processed status; copies of *unprocessed* conditionals are new
conditionals in their own right and get their own turn.

Every conditional's trip is a *transaction*: the graph is snapshotted
before the attempt, the attempt runs under the active resource guard
and fault plan, and any failure — an escaped exception, a blown budget,
a verifier rejection, or a differential-trace mismatch on the accepted
result — rolls back that one conditional and the run continues.  The
public contract of :meth:`ICBEOptimizer.optimize` is therefore total in
non-strict mode: it always returns, the returned graph always passes
:func:`~repro.ir.verify.verify_icfg`, and it is never half-mutated.
Strict mode re-raises the first failure instead (for debugging).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.analysis.config import AnalysisConfig
from repro.errors import DifferentialMismatch, ReproError
from repro.interp.profile import Profile, RemappedProfile
from repro.interp.workload import Workload
from repro.ir.icfg import ICFG
from repro.ir.simplify import simplify_nops
from repro.ir.verify import verify_icfg
from repro.robustness.diffcheck import DiffReport, differential_check
from repro.robustness.faults import FaultPlan
from repro.robustness.guards import ResourceGuard
from repro.robustness.report import (DiagnosticsBundle, capture_bundle,
                                     write_bundle)
from repro.robustness.runtime import checkpoint, robustness_context
from repro.robustness.snapshot import ICFGSnapshot
from repro.transform.restructure import (BranchOutcome, RestructureResult,
                                         restructure_branch)


@dataclass
class OptimizerOptions:
    """Optimizer-level knobs (the analysis has its own config)."""

    config: AnalysisConfig = field(default_factory=AnalysisConfig)
    #: Paper Fig. 11's per-conditional duplication limit N (None = ∞).
    duplication_limit: Optional[int] = None
    #: Overall safety cap: stop optimizing when the graph exceeds this
    #: multiple of its original node count (None = uncapped).
    max_growth_factor: Optional[float] = None
    #: Compact forwarding/eliminated-branch nops after optimizing (the
    #: paper notes eliminated conditionals become removable empty nodes).
    simplify: bool = True
    #: Profile-guided benefit gate (paper §4's "better heuristic"): skip
    #: a conditional unless its estimated eliminated executions amount
    #: to at least ``min_benefit_per_node`` per duplicated node.  Both
    #: fields must be set for the gate to apply.
    profile: Optional["Profile"] = None
    min_benefit_per_node: Optional[float] = None
    #: Strict mode re-raises the first per-conditional failure instead
    #: of rolling back and continuing (debugging aid).
    strict: bool = False
    #: Run differential trace validation after every accepted transform
    #: and once more at pipeline end; mismatches roll the transform back.
    diff_check: bool = False
    #: Workload battery for differential validation (None = a seeded
    #: default battery of ``diff_runs`` random streams plus the empty
    #: stream).
    diff_workloads: Optional[List[Workload]] = None
    diff_seed: int = 0
    diff_runs: int = 3
    #: Per-conditional wall-clock deadline in seconds (None = ∞),
    #: enforced cooperatively at analysis/transform checkpoints.
    deadline_s: Optional[float] = None
    #: Per-conditional node-growth guard: abort one conditional's
    #: transaction when the working graph exceeds this multiple of its
    #: pre-transaction node count (None = unguarded).
    guard_growth_factor: Optional[float] = None
    #: Deterministic fault plan for robustness drills (None = no faults).
    fault_plan: Optional[FaultPlan] = None
    #: Spill a diagnostics bundle per failure into this directory
    #: (None = keep bundles in memory on the report only).
    diagnostics_dir: Optional[str] = None


@dataclass
class BranchRecord:
    """One conditional's trip through the optimizer."""

    branch_id: int
    outcome: BranchOutcome
    duplication_bound: int = 0
    node_growth: int = 0
    eliminated_copies: int = 0
    pairs_examined: int = 0
    budget_exhausted: bool = False
    failure: str = ""


@dataclass
class OptimizationReport:
    """Summary of a whole-program optimization run."""

    optimized: ICFG
    records: List[BranchRecord] = field(default_factory=list)
    diagnostics: List[DiagnosticsBundle] = field(default_factory=list)
    nodes_before: int = 0
    nodes_after: int = 0
    executable_before: int = 0
    executable_after: int = 0
    conditionals_before: int = 0
    conditionals_after: int = 0
    elapsed_seconds: float = 0.0

    @property
    def optimized_count(self) -> int:
        """How many conditionals were successfully optimized."""
        return sum(1 for r in self.records
                   if r.outcome is BranchOutcome.OPTIMIZED)

    @property
    def failed_count(self) -> int:
        """Conditionals whose transaction aborted on an exception."""
        return sum(1 for r in self.records
                   if r.outcome is BranchOutcome.FAILED)

    @property
    def rolled_back_count(self) -> int:
        """Accepted transforms discarded by differential validation."""
        return sum(1 for r in self.records
                   if r.outcome is BranchOutcome.ROLLED_BACK)

    def outcome_counts(self) -> Dict[str, int]:
        """Per-branch outcome tally, keyed by outcome value string."""
        counts: Dict[str, int] = {}
        for record in self.records:
            key = record.outcome.value
            counts[key] = counts.get(key, 0) + 1
        return counts

    @property
    def node_growth(self) -> int:
        """Net node-count change of the whole run."""
        return self.nodes_after - self.nodes_before

    @property
    def growth_percent(self) -> float:
        """Net node growth as a percentage of the input size."""
        if self.nodes_before == 0:
            return 0.0
        return 100.0 * self.node_growth / self.nodes_before

    def total_pairs_examined(self) -> int:
        """Node-query pairs examined across every conditional."""
        return sum(r.pairs_examined for r in self.records)


class ICBEOptimizer:
    """Interprocedural (or, as the baseline, intraprocedural)
    conditional branch elimination over a whole ICFG."""

    def __init__(self, options: Optional[OptimizerOptions] = None) -> None:
        self.options = options if options is not None else OptimizerOptions()

    def optimize(self, icfg: ICFG) -> OptimizationReport:
        """Optimize every analyzable conditional; the input is untouched.

        Non-strict mode (the default) never raises and never returns a
        half-mutated graph: every per-conditional failure is rolled
        back, recorded as a :class:`BranchRecord`, and attached to the
        report as a diagnostics bundle.
        """
        started = time.perf_counter()
        opts = self.options
        current = icfg.clone()
        report = OptimizationReport(
            optimized=current,
            nodes_before=icfg.node_count(),
            executable_before=icfg.executable_node_count(),
            conditionals_before=icfg.conditional_node_count())

        done: Set[int] = set()
        # copy id -> original id, composed across transformations, so
        # the profile-guided benefit gate keeps working on copies.
        origin: Dict[int, int] = {}
        gate_profile = None
        if opts.profile is not None:
            gate_profile = RemappedProfile(opts.profile, origin)
        growth_cap = None
        if opts.max_growth_factor is not None:
            growth_cap = int(icfg.node_count() * opts.max_growth_factor)

        while True:
            pending = [b.id for b in current.branch_nodes()
                       if b.id not in done]
            if not pending:
                break
            if growth_cap is not None and current.node_count() > growth_cap:
                break
            branch_id = pending[0]
            done.add(branch_id)
            snapshot = ICFGSnapshot.take(current)
            guard = ResourceGuard(deadline_s=opts.deadline_s,
                                  max_nodes=self._node_cap(snapshot))
            diff: Optional[DiffReport] = None
            try:
                with guard, robustness_context(guard=guard,
                                               plan=opts.fault_plan):
                    checkpoint("pipeline:branch-start", current)
                    result = restructure_branch(
                        current, branch_id, opts.config,
                        opts.duplication_limit,
                        profile=gate_profile,
                        min_benefit_per_node=opts.min_benefit_per_node)
                    if result.applied and opts.diff_check:
                        assert result.new_icfg is not None
                        diff = self._diff(icfg, result.new_icfg)
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as failure:
                if opts.strict:
                    raise
                current = snapshot.restore()
                report.records.append(BranchRecord(
                    branch_id=branch_id, outcome=BranchOutcome.FAILED,
                    failure=f"{type(failure).__name__}: {failure}"))
                self._diagnose(report, branch_id, "restructure",
                               exc=failure, icfg=current)
                continue

            record = self._record(result)
            adopted = False
            if result.applied:
                assert result.new_icfg is not None
                if diff is not None and not diff.ok:
                    if opts.strict:
                        raise DifferentialMismatch(diff.describe())
                    record.outcome = BranchOutcome.ROLLED_BACK
                    record.failure = diff.describe()
                    record.node_growth = 0
                    self._diagnose(report, branch_id, "diff-check",
                                   icfg=result.new_icfg, diff=diff)
                else:
                    current = result.new_icfg
                    adopted = True
                    for new_id, old_id in result.cloned_from.items():
                        origin[new_id] = origin.get(old_id, old_id)
                        if old_id in done:
                            done.add(new_id)
            if not adopted:
                # Nothing was accepted, so the pre-transaction state is
                # the truth.  Restoring it even on benign outcomes also
                # heals any corruption of the *live* graph (an injected
                # fault before restructuring cloned it) that the
                # conditional's own verdict would otherwise smuggle
                # forward into every later transaction.
                current = snapshot.restore()
            report.records.append(record)

        current = self._simplify_phase(current, report)
        current = self._final_validation(icfg, current, report)

        report.optimized = current
        report.nodes_after = current.node_count()
        report.executable_after = current.executable_node_count()
        report.conditionals_after = current.conditional_node_count()
        report.elapsed_seconds = time.perf_counter() - started
        return report

    # -- transactional phases ------------------------------------------------

    def _simplify_phase(self, current: ICFG,
                        report: OptimizationReport) -> ICFG:
        """End-of-run nop compaction, as its own transaction."""
        opts = self.options
        if not opts.simplify:
            return current
        snapshot = ICFGSnapshot.take(current)
        try:
            with robustness_context(plan=opts.fault_plan):
                checkpoint("pipeline:simplify", current)
                simplify_nops(current)
                verify_icfg(current)
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as failure:
            if opts.strict:
                raise
            current = snapshot.restore()
            self._diagnose(report, -1, "simplify", exc=failure, icfg=current)
        return current

    def _final_validation(self, original: ICFG, current: ICFG,
                          report: OptimizationReport) -> ICFG:
        """Last line of defence: the returned graph must verify and
        (when differential checking is on) behave like the input.  A
        violation here means a pipeline-level fault slipped through
        every per-conditional net, so the whole run is rolled back to a
        pristine clone of the input — correct, if unoptimized."""
        opts = self.options
        try:
            verify_icfg(current)
        except ReproError as failure:
            if opts.strict:
                raise
            self._diagnose(report, -1, "final-verify",
                           exc=failure, icfg=current)
            return original.clone()
        if opts.diff_check:
            diff = self._diff(original, current)
            if not diff.ok:
                if opts.strict:
                    raise DifferentialMismatch(diff.describe())
                self._diagnose(report, -1, "final-diff",
                               icfg=current, diff=diff)
                return original.clone()
        return current

    # -- helpers -------------------------------------------------------------

    def _node_cap(self, snapshot: ICFGSnapshot) -> Optional[int]:
        """The per-transaction node budget, if growth-guarded."""
        factor = self.options.guard_growth_factor
        if factor is None:
            return None
        return int(snapshot.node_count * factor)

    def _diff(self, original: ICFG, optimized: ICFG) -> DiffReport:
        """Differential trace comparison with the configured workloads."""
        opts = self.options
        return differential_check(original, optimized,
                                  workloads=opts.diff_workloads,
                                  seed=opts.diff_seed, runs=opts.diff_runs)

    def _diagnose(self, report: OptimizationReport, branch_id: int,
                  phase: str, exc: Optional[BaseException] = None,
                  icfg: Optional[ICFG] = None,
                  diff: Optional[DiffReport] = None) -> None:
        """Capture (and optionally spill) a diagnostics bundle."""
        bundle = capture_bundle(branch_id, phase, exc=exc, icfg=icfg,
                                diff=diff)
        report.diagnostics.append(bundle)
        if self.options.diagnostics_dir is not None:
            write_bundle(bundle, self.options.diagnostics_dir)

    @staticmethod
    def _record(result: RestructureResult) -> BranchRecord:
        stats = result.analysis.stats if result.analysis is not None else None
        return BranchRecord(
            branch_id=result.branch_id,
            outcome=result.outcome,
            duplication_bound=result.duplication_bound,
            node_growth=result.node_growth if result.applied else 0,
            eliminated_copies=result.eliminated_copies,
            pairs_examined=stats.pairs_examined if stats else 0,
            budget_exhausted=stats.budget_exhausted if stats else False,
            failure=result.failure)
