"""Procedure inlining (paper §5, "Procedure inlining").

The paper discusses realizing ICBE through inlining: detect correlation
interprocedurally, inline the procedures involved, then apply
intraprocedural branch elimination — and argues this costs more code
growth than entry/exit splitting ("pre-pass inlining must resort to
exhaustive inlining... Clearly, pre-pass inlining incurs large code
growth").  This module provides the inliner so the claim can be
measured (``benchmarks/bench_inlining.py``).

``inline_call`` splices one call site: the callee body reachable from
the call's target entry is cloned into the caller with freshly scoped
variables, parameters become explicit copy assignments (which the
correlation analysis back-substitutes through, so correlation survives
inlining — the property the paper's inlining-based ICBE relies on), and
each callee exit is rerouted to the continuation of the call-site exit
it would have returned to.

``inline_exhaustively`` repeatedly inlines every non-recursive call
site up to a node budget, the "pre-pass" baseline.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.analysis.modref import call_graph
from repro.errors import TransformError
from repro.ir import expr as ir
from repro.ir.icfg import EdgeKind, ICFG, INTRA_KINDS
from repro.ir.nodes import (AssignNode, CallExitNode, CallNode, EntryNode,
                            ExitNode, Node, NopNode)


def _callee_body(icfg: ICFG, entry_id: int, callee: str) -> Set[int]:
    """Node ids of ``callee`` reachable from ``entry_id`` (LOCAL edges
    stand in for call returns; nested callees are not included)."""
    seen: Set[int] = set()
    stack = [entry_id]
    while stack:
        node_id = stack.pop()
        if node_id in seen:
            continue
        seen.add(node_id)
        for edge in icfg.succ_edges(node_id):
            if edge.kind in INTRA_KINDS or edge.kind is EdgeKind.LOCAL:
                stack.append(edge.dst)
    return seen


class _Inliner:
    """Splices one call site; each instance is single-use."""

    def __init__(self, icfg: ICFG, call: CallNode, instance: int) -> None:
        self.icfg = icfg
        self.call = call
        self.caller = call.proc
        self.callee = call.callee
        self.prefix = f"$inl{instance}"
        self.var_map: Dict[ir.VarId, ir.VarId] = {}
        self.node_map: Dict[int, Node] = {}

    # -- variable renaming -------------------------------------------------

    def rename_var(self, var: ir.VarId) -> ir.VarId:
        if var.is_global:
            return var
        if var.scope != self.callee:
            return var  # caller vars inside rewritten expressions
        mapped = self.var_map.get(var)
        if mapped is None:
            mapped = ir.VarId.local(self.caller,
                                    f"{self.prefix}_{var.name}")
            self.var_map[var] = mapped
            self.icfg.procs[self.caller].locals.append(mapped)
        return mapped

    def rename_expr(self, expr: ir.Expr) -> ir.Expr:
        if isinstance(expr, ir.VarExpr):
            return ir.VarExpr(self.rename_var(expr.var))
        if isinstance(expr, ir.UnaryExpr):
            return ir.UnaryExpr(expr.op, self.rename_expr(expr.operand))
        if isinstance(expr, ir.BinaryExpr):
            return ir.BinaryExpr(expr.op, self.rename_expr(expr.left),
                                 self.rename_expr(expr.right))
        if isinstance(expr, ir.Convert):
            return ir.Convert(self.rename_expr(expr.operand))
        if isinstance(expr, ir.Alloc):
            return ir.Alloc(self.rename_expr(expr.size))
        if isinstance(expr, ir.Load):
            return ir.Load(self.rename_expr(expr.address))
        return expr  # Const, InputRead

    # -- node cloning ---------------------------------------------------------

    def clone_node(self, node: Node) -> Node:
        copy = node.copy_with_id(self.icfg.new_id())
        copy.proc = self.caller
        if isinstance(copy, (EntryNode, ExitNode)):
            # Entries/exits of the inlined body become plain control.
            replacement = NopNode(copy.id, self.caller,
                                  note=f"{self.prefix}-{node.label()}")
            self.icfg.add_node(replacement)
            self.node_map[node.id] = replacement
            return replacement
        if isinstance(copy, AssignNode):
            copy.target = self.rename_var(copy.target)
            copy.rhs = self.rename_expr(copy.rhs)
        elif isinstance(copy, CallNode):
            copy.args = [self.rename_expr(a) for a in copy.args]
            copy.return_map = {}  # rebuilt below with cloned call exits
        elif isinstance(copy, CallExitNode):
            if copy.result is not None:
                copy.result = self.rename_var(copy.result)
        else:
            for attr in ("predicate", "address", "value"):
                if hasattr(copy, attr):
                    setattr(copy, attr,
                            self.rename_expr(getattr(copy, attr)))
        self.icfg.add_node(copy)
        self.node_map[node.id] = copy
        return copy

    # -- the splice ----------------------------------------------------------

    def run(self) -> None:
        icfg = self.icfg
        call = self.call
        body = _callee_body(icfg, call.entry_id, self.callee)

        for node_id in sorted(body):
            self.clone_node(icfg.nodes[node_id])

        # Intraprocedural and LOCAL edges within the body.
        for node_id in sorted(body):
            for edge in icfg.succ_edges(node_id):
                if edge.dst in body and (edge.kind in INTRA_KINDS
                                         or edge.kind is EdgeKind.LOCAL):
                    icfg.add_edge(self.node_map[edge.src].id,
                                  self.node_map[edge.dst].id, edge.kind)

        # Nested calls keep calling their original callees; their call
        # exits were cloned with them, so rebuild CALL/RETURN edges and
        # return maps against the *original* nested entries/exits.
        for node_id in sorted(body):
            original = icfg.nodes[node_id]
            if not isinstance(original, CallNode):
                continue
            copy = self.node_map[node_id]
            assert isinstance(copy, CallNode)
            icfg.add_edge(copy.id, original.entry_id, EdgeKind.CALL)
            for exit_id, call_exit_id in original.return_map.items():
                cloned_exit = self.node_map[call_exit_id]
                copy.return_map[exit_id] = cloned_exit.id
                icfg.add_edge(exit_id, cloned_exit.id, EdgeKind.RETURN)

        # Parameter binding: explicit copies ahead of the body, so the
        # correlation analysis substitutes through them.  Every other
        # callee local must be re-zeroed: a frame starts with zeroed
        # locals on each call, but the renamed locals now live in the
        # caller's frame and would otherwise keep values from an earlier
        # execution of the inlined region (e.g. inside a loop).
        callee_info = icfg.procs[self.callee]
        params = callee_info.params
        binds: List[AssignNode] = []
        for param, arg in zip(params, call.args):
            binds.append(AssignNode(icfg.new_id(), self.caller,
                                    self.rename_var(param), arg))
        for local in callee_info.locals:
            if local in params:
                continue
            binds.append(AssignNode(icfg.new_id(), self.caller,
                                    self.rename_var(local), ir.Const(0)))
        for bind in binds:
            icfg.add_node(bind)
        for first, second in zip(binds, binds[1:]):
            icfg.add_edge(first.id, second.id, EdgeKind.NORMAL)

        entry_nop = self.node_map[call.entry_id]
        chain_head = binds[0] if binds else entry_nop
        if binds:
            icfg.add_edge(binds[-1].id, entry_nop.id, EdgeKind.NORMAL)

        # Route the caller into the inlined body.
        for edge in list(icfg.pred_edges(call.id)):
            icfg.remove_edge(edge)
            icfg.add_edge(edge.src, chain_head.id, edge.kind)

        # Route each inlined exit to the continuation of the call-site
        # exit that exit would have returned to, binding the result.
        ret_var = ir.VarId.ret(self.callee)
        for exit_id, call_exit_id in call.return_map.items():
            if exit_id not in body:
                continue  # unreachable from this entry
            exit_nop = self.node_map[exit_id]
            call_exit = icfg.nodes[call_exit_id]
            assert isinstance(call_exit, CallExitNode)
            continuation = icfg.only_succ(call_exit.id, EdgeKind.NORMAL)
            if call_exit.result is not None:
                move = AssignNode(icfg.new_id(), self.caller,
                                  call_exit.result,
                                  ir.VarExpr(self.rename_var(ret_var)))
                icfg.add_node(move)
                icfg.add_edge(exit_nop.id, move.id, EdgeKind.NORMAL)
                icfg.add_edge(move.id, continuation, EdgeKind.NORMAL)
            else:
                icfg.add_edge(exit_nop.id, continuation, EdgeKind.NORMAL)

        # Drop the call site and its call-site exits.
        for call_exit_id in list(call.return_map.values()):
            icfg.remove_node(call_exit_id)
        icfg.remove_node(call.id)


def inline_call(icfg: ICFG, call_id: int, instance: Optional[int] = None
                ) -> None:
    """Inline one call site in place.

    Refuses direct self-recursion (a procedure inlined into itself
    would duplicate the call, not remove it).
    """
    call = icfg.nodes.get(call_id)
    if not isinstance(call, CallNode):
        raise TransformError(f"node {call_id} is not a call site")
    if call.callee == call.proc:
        raise TransformError(
            f"refusing to inline recursive call to {call.callee!r}")
    marker = instance if instance is not None else icfg.new_id()
    _Inliner(icfg, call, marker).run()


def _recursive_procs(icfg: ICFG) -> Set[str]:
    """Procedures on a call-graph cycle (never safe to inline away)."""
    graph = call_graph(icfg)
    recursive: Set[str] = set()
    for start in graph:
        stack = [start]
        seen: Set[str] = set()
        while stack:
            proc = stack.pop()
            for callee in graph.get(proc, ()):
                if callee == start:
                    recursive.add(start)
                    stack = []
                    break
                if callee not in seen:
                    seen.add(callee)
                    stack.append(callee)
    return recursive


def inline_hot_calls(icfg: ICFG, profile, min_executions: int,
                     node_budget: int = 1_000_000) -> int:
    """Partial inlining (paper §5): inline only frequently executed call
    sites.

    The paper suggests lowering the code growth of inlining-based ICBE
    by "performing full ICBE (with interprocedural restructuring),
    followed by partial inlining, in which only frequently executed
    paths through the optimized procedure are inlined".  ``profile``
    should be collected on ``icfg`` itself (e.g. a run of the already
    ICBE-optimized program).  Returns the number of call sites inlined.
    """
    recursive = _recursive_procs(icfg)
    hot = [call.id for call in icfg.call_nodes()
           if profile.count_of(call.id) >= min_executions
           and call.callee not in recursive and call.callee != call.proc]
    inlined = 0
    for call_id in hot:
        if icfg.node_count() >= node_budget:
            break
        if call_id not in icfg.nodes:
            continue  # consumed by an earlier inline of its caller
        inline_call(icfg, call_id)
        inlined += 1
    icfg.remove_unreachable()
    return inlined


def inline_exhaustively(icfg: ICFG, node_budget: int) -> int:
    """The pre-pass inlining baseline: repeatedly inline every call to a
    non-recursive procedure until none remain or ``node_budget`` nodes
    are exceeded.  Returns the number of call sites inlined.
    """
    recursive = _recursive_procs(icfg)
    inlined = 0
    progress = True
    while progress and icfg.node_count() < node_budget:
        progress = False
        for call in icfg.call_nodes():
            if icfg.node_count() >= node_budget:
                break
            if call.callee in recursive or call.callee == call.proc:
                continue
            if call.id not in icfg.nodes:
                continue
            inline_call(icfg, call.id)
            inlined += 1
            progress = True
    icfg.remove_unreachable()
    return inlined
