"""Code restructuring: path duplication and branch elimination (paper §3.2).

The transformation isolates correlated paths by splitting every node
that hosts multiple answers to a query, so that each copy hosts exactly
one answer; copies of the analyzed conditional whose answer is known
become empty nodes wired to the taken successor.  Because entry and
exit nodes are ordinary ICFG nodes, the same splitting performs the
paper's *entry splitting* and *exit splitting*; call-site exit nodes are
rebuilt per (call copy, exit copy) pair, which keeps the graph in
call-site normal form and regenerates the return maps (the "additional
return addresses").

The driver works on a clone of the input graph and verifies the result
before committing, so a failed or rejected transformation never damages
the program.
"""

from repro.transform.pipeline import (ICBEOptimizer, OptimizationReport,
                                      OptimizerOptions)
from repro.transform.restructure import (BranchOutcome, restructure_branch,
                                         RestructureResult)

__all__ = ["BranchOutcome", "ICBEOptimizer", "OptimizationReport",
           "OptimizerOptions", "RestructureResult", "restructure_branch"]
