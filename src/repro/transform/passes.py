"""The optimizer's pass pipeline: passes, transactions, invalidation.

:class:`~repro.transform.pipeline.ICBEOptimizer` used to be one inline
loop; it is now a :class:`PassManager` running a fixed sequence of
passes over a :class:`PipelineState`:

1. :class:`RestructurePass` — one transaction per conditional:
   analyze, gate, split, eliminate, remove unreachable, verify; adopt
   or roll back.
2. :class:`SimplifyPass` — end-of-run nop compaction, as its own
   transaction.
3. :class:`FinalValidatePass` — full structural verification (never
   scoped) plus the optional differential check; a violation rolls the
   whole run back to a pristine clone of the input.

Each pass declares which cached analyses of the shared
:class:`~repro.analysis.context.AnalysisContext` it *preserves*.  After
a committed transaction the context invalidates only cache entries
reaching the procedures the transform dirtied (minus the preserved
analyses); a rollback invalidates nothing, because restoring a snapshot
restores the generation the caches are keyed to.

With the context enabled (the default) the per-branch transaction gets
three structural shortcuts, none of which may change outcomes:

- **snapshot reuse** — a new snapshot is taken only when the graph's
  generation moved past the last one (i.e. after a commit or a healed
  corruption), instead of once per conditional;
- **restore elision** — a failed or fruitless transaction only restores
  the snapshot when the live graph actually mutated (injected
  corruption marks the graph dirty, so this is generation-checked);
- **analysis reuse / clone elision** — the conditional is first
  analyzed *in place* on the live graph (consulting the summary cache);
  verdicts that cannot lead to restructuring (not analyzable, provably
  no correlation) are recorded without ever cloning the graph.  A
  conditional that shows correlation is restructured from a fresh,
  cache-independent analysis — reusing the in-place analysis directly
  when it had no cache hits and no budget truncation, re-analyzing on
  the clone otherwise — because the splitter must see every
  callee-internal pair, which a cache-assisted analysis skipped.

Cache-off (``OptimizerOptions.analysis_cache=False``) keeps the
original per-branch behaviour — snapshot, clone, fresh analysis, full
verification, unconditional restore — which is exactly what makes it
the honest A/B baseline for ``--no-analysis-cache``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set

from repro import obs
from repro.analysis.context import AnalysisContext
from repro.analysis.driver import analyze_branch
from repro.errors import DifferentialMismatch
from repro.ir.icfg import ICFG
from repro.ir.simplify import simplify_nops
from repro.ir.verify import verify_icfg
from repro.robustness.diffcheck import DiffReport
from repro.robustness.guards import ResourceGuard
from repro.robustness.runtime import checkpoint, robustness_context
from repro.robustness.snapshot import ICFGSnapshot
from repro.transform.restructure import (BranchOutcome, RestructureResult,
                                         restructure_branch)


@dataclass
class PipelineState:
    """Everything a pass may read or advance during one optimizer run."""

    optimizer: "ICBEOptimizer"
    original: ICFG
    current: ICFG
    report: "OptimizationReport"
    context: AnalysisContext
    done: Set[int] = field(default_factory=set)
    #: copy id -> original id, composed across transformations, so the
    #: profile-guided benefit gate keeps working on copies.
    origin: Dict[int, int] = field(default_factory=dict)
    gate_profile: Optional[object] = None
    growth_cap: Optional[int] = None
    snapshot: Optional[ICFGSnapshot] = None

    @property
    def options(self):
        return self.optimizer.options

    # -- snapshot discipline -------------------------------------------------

    def fresh_snapshot(self) -> ICFGSnapshot:
        obs.add("transform.snapshots_taken")
        self.snapshot = ICFGSnapshot.take(self.current)
        return self.snapshot

    def ensure_snapshot(self) -> ICFGSnapshot:
        """A snapshot matching the live graph's generation, reusing the
        previous one when nothing mutated since it was taken."""
        if (self.snapshot is not None
                and self.snapshot.generation == self.current.generation):
            self.context.stats.snapshot_reuses += 1
            return self.snapshot
        return self.fresh_snapshot()

    def restore(self, snapshot: ICFGSnapshot) -> None:
        """Roll the live graph back to ``snapshot``.

        With the context enabled, a restore is elided when the graph's
        generation never moved past the snapshot — nothing was mutated
        (corruption faults bump the generation, so they always force
        the real restore).  Cache-off keeps the original unconditional
        restore."""
        if (self.options.analysis_cache
                and self.current.generation == snapshot.generation):
            self.context.stats.restores_elided += 1
            return
        obs.add("transform.rollbacks")
        self.current = snapshot.restore()
        self.context.rollback(self.current)

    def commit(self, preserves: FrozenSet[str]) -> None:
        """Adopt the live graph's new state, invalidating cached
        analyses that reach its dirty procedures."""
        self.context.commit(self.current, preserves=preserves)


class Pass:
    """One pipeline stage.  ``preserves`` names the cached analyses of
    the shared context that stay valid across this pass's committed
    mutations (see :class:`~repro.analysis.context.AnalysisContext`)."""

    name: str = "pass"
    preserves: FrozenSet[str] = frozenset()

    def run(self, state: PipelineState) -> None:
        raise NotImplementedError


class PassManager:
    """Runs passes in order over one shared :class:`PipelineState`."""

    def __init__(self, passes: List[Pass]) -> None:
        self.passes = list(passes)

    def run(self, state: PipelineState) -> PipelineState:
        for pass_ in self.passes:
            with obs.span(f"pass.{pass_.name}"):
                pass_.run(state)
        return state


# ---------------------------------------------------------------------------
# The per-branch restructuring pass.
# ---------------------------------------------------------------------------


class RestructurePass(Pass):
    """Per-conditional restructuring, one transaction per conditional."""

    name = "restructure"
    # Committed splits invalidate by dirty procedures (the context does
    # the per-entry reachability math); nothing is preserved wholesale.
    preserves: FrozenSet[str] = frozenset()

    def run(self, state: PipelineState) -> None:
        while True:
            pending = self._pending(state)
            if not pending:
                break
            if (state.growth_cap is not None
                    and state.current.node_count() > state.growth_cap):
                break
            branch_id = pending[0]
            state.done.add(branch_id)
            self._transact(state, branch_id)

    def _pending(self, state: PipelineState) -> List[int]:
        if state.options.analysis_cache:
            ids = state.context.branch_ids(state.current)
        else:
            ids = [b.id for b in state.current.branch_nodes()]
        return [bid for bid in ids if bid not in state.done]

    def _transact(self, state: PipelineState, branch_id: int) -> None:
        with obs.span("transform.branch", branch=branch_id) as obs_span:
            self._transact_traced(state, branch_id, obs_span)

    def _transact_traced(self, state: PipelineState, branch_id: int,
                         obs_span) -> None:
        from repro.transform.pipeline import BranchRecord

        opts = state.options
        optimizer = state.optimizer
        if opts.analysis_cache:
            snapshot = state.ensure_snapshot()
        else:
            snapshot = state.fresh_snapshot()
        guard = ResourceGuard(deadline_s=opts.deadline_s,
                              max_nodes=optimizer._node_cap(snapshot))
        diff: Optional[DiffReport] = None
        try:
            with guard, robustness_context(guard=guard,
                                           plan=opts.fault_plan):
                checkpoint("pipeline:branch-start", state.current)
                if (opts.analysis_cache
                        and state.current.generation != snapshot.generation):
                    # A fault corrupted the live graph at the checkpoint
                    # (corruption marks it dirty): heal before analyzing
                    # rather than poisoning this conditional's verdict.
                    state.current = snapshot.restore()
                result = self._attempt(state, branch_id, snapshot)
                if result.applied and opts.diff_check:
                    assert result.new_icfg is not None
                    diff = optimizer._diff(state.original, result.new_icfg)
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as failure:
            if opts.strict:
                raise
            state.restore(snapshot)
            state.report.records.append(BranchRecord(
                branch_id=branch_id, outcome=BranchOutcome.FAILED,
                failure=f"{type(failure).__name__}: {failure}"))
            optimizer._diagnose(state.report, branch_id, "restructure",
                                exc=failure, icfg=state.current)
            obs_span.set(outcome=BranchOutcome.FAILED.value)
            obs.add("transform.outcome.failed")
            return

        record = optimizer._record(result)
        adopted = False
        if result.applied:
            assert result.new_icfg is not None
            if diff is not None and not diff.ok:
                if opts.strict:
                    raise DifferentialMismatch(diff.describe())
                record.outcome = BranchOutcome.ROLLED_BACK
                record.failure = diff.describe()
                record.node_growth = 0
                optimizer._diagnose(state.report, branch_id, "diff-check",
                                    icfg=result.new_icfg, diff=diff)
            else:
                state.current = result.new_icfg
                adopted = True
                for new_id, old_id in result.cloned_from.items():
                    state.origin[new_id] = state.origin.get(old_id, old_id)
                    if old_id in state.done:
                        state.done.add(new_id)
                state.commit(self.preserves)
        if not adopted:
            # Nothing was accepted, so the pre-transaction state is the
            # truth.  Restoring it also heals any corruption of the
            # *live* graph that the conditional's own verdict would
            # otherwise smuggle forward (generation-checked, so the
            # fault-free case skips the copy when the cache is on).
            state.restore(snapshot)
        state.report.records.append(record)
        obs_span.set(outcome=record.outcome.value)
        obs.add(f"transform.outcome.{record.outcome.value}")
        if adopted:
            obs.add("transform.branches_eliminated",
                    record.eliminated_copies)
            obs.observe("transform.node_growth", record.node_growth)
            obs.observe("transform.duplication_bound",
                        record.duplication_bound)

    def _attempt(self, state: PipelineState, branch_id: int,
                 snapshot: ICFGSnapshot) -> RestructureResult:
        """One conditional's analyze-and-maybe-restructure attempt."""
        opts = state.options
        if not opts.analysis_cache:
            # The A/B baseline: clone + fresh analysis + full
            # verification, exactly the pre-context behaviour.
            return restructure_branch(
                state.current, branch_id, opts.config,
                opts.duplication_limit, profile=state.gate_profile,
                min_benefit_per_node=opts.min_benefit_per_node)

        # Cache-assisted pre-analysis, in place on the live graph (the
        # analysis never mutates it), consulting the summary cache.
        pre = analyze_branch(state.current, branch_id, opts.config,
                             context=state.context)
        base = RestructureResult(
            branch_id=branch_id, outcome=BranchOutcome.NOT_ANALYZABLE,
            analysis=pre,
            nodes_before=state.current.node_count(),
            executable_before=state.current.executable_node_count())
        if not pre.analyzable:
            return base
        if state.current.generation != snapshot.generation:
            # A corruption fault fired during the in-place analysis:
            # its verdict is tainted.  Heal and decide the conditional
            # the way the baseline would, with a fresh analysis.
            state.current = snapshot.restore()
            return restructure_branch(
                state.current, branch_id, opts.config,
                opts.duplication_limit, profile=state.gate_profile,
                min_benefit_per_node=opts.min_benefit_per_node,
                incremental_verify=True)
        if (not pre.has_correlation
                and not pre.stats.budget_exhausted):
            # Exact verdict (cached summaries are exact, and nothing
            # was truncated): no correlated path exists, so no clone,
            # no restructuring.  A truncated no-correlation verdict
            # falls through to the fresh path instead, which applies
            # the budget the same way the baseline does.
            base.outcome = BranchOutcome.NO_CORRELATION
            return base
        precomputed = None
        if (pre.stats.summary_cache_hits == 0
                and not pre.stats.budget_exhausted):
            # The pre-analysis never touched the cache and ran to
            # completion: it *is* a fresh analysis (node ids survive
            # cloning), so restructuring can consume it directly.
            precomputed = pre
            state.context.stats.analyses_reused += 1
        # Restructure the live graph in place: the snapshot (not a
        # throwaway clone) is the transaction's undo log, so the copy
        # is pure overhead.  Cloning preserves node ids, so the result
        # is identical to the baseline's cloned run.
        return restructure_branch(
            state.current, branch_id, opts.config, opts.duplication_limit,
            profile=state.gate_profile,
            min_benefit_per_node=opts.min_benefit_per_node,
            precomputed=precomputed, incremental_verify=True,
            in_place=True)


# ---------------------------------------------------------------------------
# End-of-run passes.
# ---------------------------------------------------------------------------


class SimplifyPass(Pass):
    """End-of-run nop compaction, as its own transaction.

    Nop removal rewires edges around non-operations: queries propagate
    through nops unchanged and no assignment, call, or entry/exit is
    touched, so both the summary cache and mod/ref summaries survive
    the commit.  Node sets do change, so adjacency indices do not.
    """

    name = "simplify"
    preserves: FrozenSet[str] = frozenset({AnalysisContext.SUMMARIES,
                                           AnalysisContext.MODREF})

    def run(self, state: PipelineState) -> None:
        opts = state.options
        if not opts.simplify:
            return
        if opts.analysis_cache:
            snapshot = state.ensure_snapshot()
        else:
            snapshot = state.fresh_snapshot()
        base_generation = state.current.generation
        try:
            with robustness_context(plan=opts.fault_plan):
                checkpoint("pipeline:simplify", state.current)
                simplify_nops(state.current)
                if opts.analysis_cache:
                    verify_icfg(state.current,
                                procs=state.current.dirty_procs_since(
                                    base_generation))
                else:
                    verify_icfg(state.current)
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as failure:
            if opts.strict:
                raise
            state.restore(snapshot)
            state.optimizer._diagnose(state.report, -1, "simplify",
                                      exc=failure, icfg=state.current)
            return
        state.commit(self.preserves)


class FinalValidatePass(Pass):
    """Last line of defence: a full (never scoped) structural
    verification plus the optional differential check.  It mutates
    nothing on success, so it preserves everything; on failure the
    whole run is rolled back to a pristine clone of the input."""

    name = "final-validate"
    preserves: FrozenSet[str] = AnalysisContext.ALL

    def run(self, state: PipelineState) -> None:
        state.current = state.optimizer._final_validation(
            state.original, state.current, state.report)


def build_default_pipeline() -> PassManager:
    """The standard restructure → simplify → validate pipeline."""
    return PassManager([RestructurePass(), SimplifyPass(),
                        FinalValidatePass()])
