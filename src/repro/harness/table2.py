"""Table 2: the cost of correlation analysis.

The paper reports, per benchmark: overall compile time vs analysis
time, memory for the program representation vs the analysis structures,
and node-query pairs processed (total and per conditional).  We measure
the same quantities on the substitute suite: wall-clock seconds for the
front end + lowering vs the per-conditional analyses (budget 1000, the
paper's Fig. 11 setting), structure counts converted to nominal
kilobytes, and exact pair counts from the engine's statistics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional

from repro.analysis import AnalysisConfig, analyze_branch
from repro.benchgen.suite import benchmark_names, load_benchmark
from repro.ir import lower_program, verify_icfg
from repro.utils.tables import render_table

#: Nominal bytes per structure for the memory estimate columns (the
#: paper reports megabytes of its C structs; we report the equivalent
#: structural footprint rather than Python object overhead).
BYTES_PER_NODE = 48
BYTES_PER_EDGE = 24
BYTES_PER_PAIR = 56
BYTES_PER_SUMMARY = 72


@dataclass
class Table2Row:
    name: str
    overall_seconds: float
    analysis_seconds: float
    progrep_kb: float
    analysis_kb: float
    pairs_total: int
    pairs_per_conditional: float
    conditionals: int
    budget_hits: int


def measure_benchmark(name: str,
                      config: Optional[AnalysisConfig] = None) -> Table2Row:
    """One benchmark's Table 2 row (times, memory, pair counts)."""
    cfg = config if config is not None else AnalysisConfig(budget=1000)
    start = time.perf_counter()
    bench = load_benchmark(name)
    icfg = lower_program(bench.program)
    verify_icfg(icfg)
    frontend_seconds = time.perf_counter() - start

    edge_count = sum(len(icfg.succ_edges(n)) for n in icfg.nodes)
    progrep_kb = (icfg.node_count() * BYTES_PER_NODE
                  + edge_count * BYTES_PER_EDGE) / 1024.0

    pairs_total = 0
    raised_total = 0
    summaries_total = 0
    budget_hits = 0
    analyzed = 0
    analysis_start = time.perf_counter()
    branches = icfg.branch_nodes()
    for branch in branches:
        result = analyze_branch(icfg, branch.id, cfg)
        pairs_total += result.stats.pairs_examined
        raised_total += result.stats.queries_raised
        summaries_total += result.stats.summary_entries_created
        if result.stats.budget_exhausted:
            budget_hits += 1
        if result.analyzable:
            analyzed += 1
    analysis_seconds = time.perf_counter() - analysis_start

    analysis_kb = (raised_total * BYTES_PER_PAIR
                   + summaries_total * BYTES_PER_SUMMARY) / 1024.0
    per_cond = pairs_total / analyzed if analyzed else 0.0
    return Table2Row(name=name,
                     overall_seconds=frontend_seconds + analysis_seconds,
                     analysis_seconds=analysis_seconds,
                     progrep_kb=progrep_kb,
                     analysis_kb=analysis_kb,
                     pairs_total=pairs_total,
                     pairs_per_conditional=per_cond,
                     conditionals=len(branches),
                     budget_hits=budget_hits)


def compute_table2(names: Optional[List[str]] = None,
                   config: Optional[AnalysisConfig] = None) -> List[Table2Row]:
    """Table 2 rows for the given (default: all) benchmarks."""
    return [measure_benchmark(name, config)
            for name in (names if names is not None else benchmark_names())]


def render_table2(rows: List[Table2Row]) -> str:
    """ASCII rendering of Table 2."""
    headers = ["benchmark", "overall [s]", "analysis [s]", "progrep [KB]",
               "analysis [KB]", "pairs total", "pairs/cond", "conds",
               "budget hits"]
    body = [[r.name, round(r.overall_seconds, 4), round(r.analysis_seconds, 4),
             r.progrep_kb, r.analysis_kb, r.pairs_total,
             r.pairs_per_conditional, r.conditionals, r.budget_hits]
            for r in rows]
    return render_table(headers, body,
                        title="Table 2: cost of correlation analysis "
                              "(budget 1000)")


def main() -> None:
    """Print Table 2 for the whole suite."""
    print(render_table2(compute_table2()))


if __name__ == "__main__":
    main()
