"""Figure 9: characteristics of statically detectable branch correlation.

Four panels in the paper, all reproduced from the same classification:

- top-left:  % of conditionals that are analyzable / intraprocedurally
  correlated / interprocedurally correlated (static count);
- top-right: the same weighted by execution count (dynamic);
- bottom-left / bottom-right: the same two views for *full* correlation
  (outcome known along all incoming paths).

The paper computes these with an infinite analysis termination limit;
we use a budget large enough to be exhaustive on the suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis import AnalysisConfig
from repro.analysis.config import UNLIMITED_BUDGET
from repro.benchgen.suite import benchmark_names
from repro.harness.metrics import (branch_population, percent,
                                   prepare_benchmark)
from repro.utils.tables import render_table

#: "Effectively exhaustive" budget for the suite (the paper's infinite
#: termination limit; every suite analysis drains its worklist well
#: below this).
EXHAUSTIVE_BUDGET = 200_000


@dataclass
class Fig9Row:
    """One benchmark's bars across all four panels."""

    name: str
    analyzable_pct: float
    # some correlation
    intra_pct: float
    inter_pct: float
    intra_dyn_pct: float
    inter_dyn_pct: float
    # full correlation
    intra_full_pct: float
    inter_full_pct: float
    intra_full_dyn_pct: float
    inter_full_dyn_pct: float


def compute_fig9(names: Optional[List[str]] = None,
                 budget: int = EXHAUSTIVE_BUDGET) -> List[Fig9Row]:
    """All four panels' bars for the given benchmarks."""
    rows: List[Fig9Row] = []
    for name in (names if names is not None else benchmark_names()):
        context = prepare_benchmark(name)
        inter = branch_population(
            context, AnalysisConfig(interprocedural=True, budget=budget))
        intra = branch_population(
            context, AnalysisConfig(interprocedural=False, budget=budget))
        total = len(inter)
        total_exec = sum(i.executions for i in inter)

        def static_pct(infos, key) -> float:
            return percent(sum(1 for i in infos if key(i)), total)

        def dyn_pct(infos, key) -> float:
            return percent(sum(i.executions for i in infos if key(i)),
                           total_exec)

        rows.append(Fig9Row(
            name=name,
            analyzable_pct=static_pct(inter, lambda i: i.analyzable),
            intra_pct=static_pct(intra, lambda i: i.correlated),
            inter_pct=static_pct(inter, lambda i: i.correlated),
            intra_dyn_pct=dyn_pct(intra, lambda i: i.correlated),
            inter_dyn_pct=dyn_pct(inter, lambda i: i.correlated),
            intra_full_pct=static_pct(intra, lambda i: i.fully_correlated),
            inter_full_pct=static_pct(inter, lambda i: i.fully_correlated),
            intra_full_dyn_pct=dyn_pct(intra,
                                       lambda i: i.fully_correlated),
            inter_full_dyn_pct=dyn_pct(inter,
                                       lambda i: i.fully_correlated)))
    return rows


def render_fig9(rows: List[Fig9Row]) -> str:
    """ASCII rendering of the four panels."""
    parts = []
    headers = ["benchmark", "analyzable %", "intra %", "inter %"]
    parts.append(render_table(
        headers,
        [[r.name, r.analyzable_pct, r.intra_pct, r.inter_pct] for r in rows],
        title="Fig 9 (top-left): conditionals with correlation, static"))
    parts.append(render_table(
        ["benchmark", "intra %", "inter %"],
        [[r.name, r.intra_dyn_pct, r.inter_dyn_pct] for r in rows],
        title="Fig 9 (top-right): conditionals with correlation, dynamic"))
    parts.append(render_table(
        ["benchmark", "intra %", "inter %"],
        [[r.name, r.intra_full_pct, r.inter_full_pct] for r in rows],
        title="Fig 9 (bottom-left): full correlation, static"))
    parts.append(render_table(
        ["benchmark", "intra %", "inter %"],
        [[r.name, r.intra_full_dyn_pct, r.inter_full_dyn_pct] for r in rows],
        title="Fig 9 (bottom-right): full correlation, dynamic"))
    return "\n\n".join(parts)


def summary_ratios(rows: List[Fig9Row]) -> Dict[str, float]:
    """Suite-average inter/intra detection ratios (paper: 'at least 2x')."""
    inter = sum(r.inter_pct for r in rows)
    intra = sum(r.intra_pct for r in rows)
    inter_dyn = sum(r.inter_full_dyn_pct for r in rows)
    intra_dyn = sum(r.intra_full_dyn_pct for r in rows)
    return {
        "static_ratio": inter / intra if intra else float("inf"),
        "full_dynamic_ratio": (inter_dyn / intra_dyn if intra_dyn
                               else float("inf")),
    }


def main() -> None:
    """Print Figure 9 for the whole suite."""
    print(render_fig9(compute_fig9()))


if __name__ == "__main__":
    main()
