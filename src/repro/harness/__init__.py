"""Experiment harness: regenerate every table and figure of the paper.

Each experiment module produces plain data structures plus an ASCII
rendering; ``python -m repro.harness <experiment>`` prints one, and the
benchmarks under ``benchmarks/`` time and record them.  The mapping to
the paper:

- :mod:`repro.harness.table1` — benchmark characteristics
- :mod:`repro.harness.table2` — analysis cost
- :mod:`repro.harness.fig9`   — conditionals with (full) correlation,
  static and dynamically weighted, intra vs inter
- :mod:`repro.harness.fig10`  — per-conditional duplication-vs-benefit
  scatter, intra vs inter
- :mod:`repro.harness.fig11`  — eliminated executed conditionals vs code
  growth across per-conditional duplication limits
- :mod:`repro.harness.headline` — the 2.5× and 3-18% headline claims
"""

from repro.harness.metrics import (BenchmarkContext, branch_population,
                                   prepare_benchmark)

__all__ = ["BenchmarkContext", "branch_population", "prepare_benchmark"]
