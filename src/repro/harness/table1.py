"""Table 1: benchmark program characteristics.

The paper's Table 1 reports, per benchmark: source lines, procedures
(defined and library), ICFG node counts (all and conditional), and the
conditional share of the program statically and dynamically.  We report
the same columns for the substitute suite; "library procedures" counts
the classifier/helper procedures (those never calling anything else),
mirroring the paper's defined-vs-library split.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis.modref import call_graph
from repro.benchgen.suite import benchmark_names
from repro.harness.metrics import BenchmarkContext, percent, prepare_benchmark
from repro.utils.tables import render_table


@dataclass
class Table1Row:
    name: str
    source_lines: int
    procedures: int
    leaf_procedures: int
    nodes_all: int
    nodes_executable: int
    nodes_conditional: int
    static_cond_pct: float
    dynamic_cond_pct: float


def table1_row(context: BenchmarkContext) -> Table1Row:
    """One benchmark's Table 1 row from its prepared context."""
    icfg = context.icfg
    callees = call_graph(icfg)
    leaves = sum(1 for name, targets in callees.items()
                 if not targets and name != icfg.main)
    executable = icfg.executable_node_count()
    conditionals = icfg.conditional_node_count()
    profile = context.profile
    return Table1Row(
        name=context.name,
        source_lines=context.bench.source_lines,
        procedures=len(icfg.procs),
        leaf_procedures=leaves,
        nodes_all=icfg.node_count(),
        nodes_executable=executable,
        nodes_conditional=conditionals,
        static_cond_pct=percent(conditionals, executable),
        dynamic_cond_pct=percent(profile.executed_conditionals,
                                 profile.executed_operations))


def compute_table1(names: List[str] = None) -> List[Table1Row]:
    """Table 1 rows for the given (default: all) benchmarks."""
    rows = []
    for name in (names if names is not None else benchmark_names()):
        rows.append(table1_row(prepare_benchmark(name)))
    return rows


def render_table1(rows: List[Table1Row]) -> str:
    """ASCII rendering of Table 1."""
    headers = ["benchmark", "lines", "procs", "leaf procs", "nodes",
               "exec nodes", "cond nodes", "cond/prog static %",
               "cond/prog dynamic %"]
    body = [[r.name, r.source_lines, r.procedures, r.leaf_procedures,
             r.nodes_all, r.nodes_executable, r.nodes_conditional,
             r.static_cond_pct, r.dynamic_cond_pct] for r in rows]
    return render_table(headers, body,
                        title="Table 1: benchmark programs")


def main() -> None:
    """Print Table 1 for the whole suite."""
    print(render_table1(compute_table1()))


if __name__ == "__main__":
    main()
