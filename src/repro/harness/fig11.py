"""Figure 11: eliminated executed conditionals vs program code growth.

The paper's central experiment: optimize each benchmark with the
per-conditional duplication limit N swept over {5, 10, 20, 50, 100,
200}, analysis budget 1000, in both analysis scopes.  Each point
reports the percentage reduction in *executed* conditional branches
(measured by re-running the ref workload on the optimized program) and
the program code growth (executable nodes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.analysis import AnalysisConfig
from repro.harness.metrics import BenchmarkContext, percent, prepare_benchmark
from repro.benchgen.suite import benchmark_names
from repro.interp import run_icfg
from repro.transform import ICBEOptimizer, OptimizerOptions
from repro.utils.tables import render_table

#: The paper's sweep of the per-conditional duplication limit.
DUPLICATION_LIMITS = (5, 10, 20, 50, 100, 200)

#: The paper's analysis termination budget for this experiment.
FIG11_BUDGET = 1000


@dataclass
class Fig11Point:
    benchmark: str
    interprocedural: bool
    duplication_limit: int
    optimized_branches: int
    executed_before: int
    executed_after: int
    nodes_before: int
    nodes_after: int

    @property
    def reduction_pct(self) -> float:
        return percent(self.executed_before - self.executed_after,
                       self.executed_before)

    @property
    def growth_pct(self) -> float:
        return percent(self.nodes_after - self.nodes_before,
                       self.nodes_before)


def sweep_benchmark(context: BenchmarkContext, interprocedural: bool,
                    limits: tuple = DUPLICATION_LIMITS,
                    budget: int = FIG11_BUDGET) -> List[Fig11Point]:
    """One benchmark's points across the duplication-limit sweep."""
    points: List[Fig11Point] = []
    baseline_executed = context.profile.executed_conditionals
    nodes_before = context.icfg.executable_node_count()
    for limit in limits:
        config = AnalysisConfig(interprocedural=interprocedural,
                                budget=budget)
        optimizer = ICBEOptimizer(OptimizerOptions(
            config=config, duplication_limit=limit))
        report = optimizer.optimize(context.icfg)
        rerun = run_icfg(report.optimized, context.bench.workload)
        if rerun.observable != context.execution.observable:
            raise RuntimeError(
                f"{context.name}: optimization changed semantics at "
                f"limit {limit} (interprocedural={interprocedural})")
        points.append(Fig11Point(
            benchmark=context.name,
            interprocedural=interprocedural,
            duplication_limit=limit,
            optimized_branches=report.optimized_count,
            executed_before=baseline_executed,
            executed_after=rerun.profile.executed_conditionals,
            nodes_before=nodes_before,
            nodes_after=report.optimized.executable_node_count()))
    return points


def compute_fig11(names: Optional[List[str]] = None,
                  limits: tuple = DUPLICATION_LIMITS,
                  budget: int = FIG11_BUDGET) -> List[Fig11Point]:
    """The full sweep: every benchmark, both scopes."""
    points: List[Fig11Point] = []
    for name in (names if names is not None else benchmark_names()):
        context = prepare_benchmark(name)
        points.extend(sweep_benchmark(context, True, limits, budget))
        points.extend(sweep_benchmark(context, False, limits, budget))
    return points


def render_fig11(points: List[Fig11Point]) -> str:
    """ASCII rendering, one table per benchmark."""
    parts = []
    benchmarks = sorted({p.benchmark for p in points})
    for name in benchmarks:
        rows = []
        for point in points:
            if point.benchmark != name:
                continue
            rows.append([("inter" if point.interprocedural else "intra"),
                         point.duplication_limit,
                         point.optimized_branches,
                         point.reduction_pct,
                         point.growth_pct])
        parts.append(render_table(
            ["scope", "dup limit N", "branches optimized",
             "executed-cond reduction %", "code growth %"],
            rows, title=f"Fig 11: {name}"))
    return "\n\n".join(parts)


def main() -> None:
    """Print Figure 11 for the whole suite."""
    print(render_fig11(compute_fig11()))


if __name__ == "__main__":
    main()
