"""Generate EXPERIMENTS.md: paper-reported vs measured, for everything.

Run:  python -m repro.harness.report [output-path]

This executes every experiment (Table 1, Table 2, Fig. 9, Fig. 10,
Fig. 11, headline) on the substitute suite and writes a markdown report
juxtaposing the paper's numbers with ours, with the fidelity notes from
DESIGN.md inline.
"""

from __future__ import annotations

import sys
import time

from repro.harness import fig9, fig10, fig11, headline, table1, table2

PREAMBLE = """\
# EXPERIMENTS — paper vs measured

Reproduction of the evaluation in Bodík, Gupta & Soffa,
*Interprocedural Conditional Branch Elimination* (PLDI 1997).

**Substrate difference, read first.**  The paper measures SPEC95 integer
codes compiled by a modified ICC; we measure the six-program MiniC
suite from `repro.benchgen.suite` executed by the ICFG interpreter
(see DESIGN.md for why each substitution preserves the phenomenon).
The suite is intentionally dense in the correlation idioms the paper
attributes to modular programming, so *absolute* percentages run hotter
than SPEC95; every *directional* claim (who wins, by what rough factor,
how knobs move the result) is checked by assertions in `benchmarks/`.

Regenerate any row with `pytest benchmarks/bench_<name>.py
--benchmark-only -s` or `python -m repro.harness <name>`.
"""

SECTIONS = {
    "table1": """\
## Table 1 — benchmark programs

Paper reports (SPEC95): 1.9k-29k source lines, 26-372 procedures,
0.9k-38k ICFG nodes of which 89-5304 conditional; conditionals are
13-21% of nodes statically and 21-31% of executed operations
dynamically.

Measured on the substitute suite (smaller programs, same shape — the
conditional share of executed operations exceeds its static share on
every benchmark, as in the paper's last two columns):

```
{body}
```
""",
    "table2": """\
## Table 2 — cost of correlation analysis

Paper reports: analysis is the dominant but affordable compile-time
cost (e.g. 83.8s of 98.4s for go), analysis memory is of the same order
as the program representation, and the demand-driven analysis examines
a bounded number of node-query pairs per conditional (~24-169).

Measured (same structure: per-conditional pair counts bounded by the
budget of 1000 and far below it, analysis memory within an order of
magnitude of the program representation):

```
{body}
```
""",
    "fig9": """\
## Figure 9 — statically detectable correlation

Paper reports: interprocedural analysis detects **at least twice as
many** correlated conditionals as intraprocedural analysis; full
correlation would eliminate 3-19% of executed conditionals
interprocedurally vs up to 8% intraprocedurally.

Measured: the inter/intra static detection ratio is {static_ratio:.2f}x
(assertion in `bench_fig9.py` requires >= 2.0), and interprocedural
full-correlation dominates on every benchmark, statically and
dynamically:

```
{body}
```
""",
    "fig10": """\
## Figure 10 — duplication cost vs dynamic benefit per conditional

Paper reports: interprocedural analysis both finds more correlated
conditionals and populates the upper-left quadrant (cheap to isolate,
frequently executed) more densely — the region that makes ICBE
profitable.

Measured: inter finds {inter_points} correlated conditionals vs
{intra_points} intra; upper-left quadrant {inter_ul} vs {intra_ul}
(thresholds: duplication <= 20 nodes, >= 50 avoided executions).

```
{body}
```
""",
    "fig11": """\
## Figure 11 — eliminated executed conditionals vs code growth

Paper reports, sweeping the per-conditional duplication limit N in
{{5..200}} with analysis budget 1000: (1) at any given code growth,
ICBE eliminates significantly more executed conditionals than the
intraprocedural baseline; (2) more allowed growth gives more
elimination; (3) the per-conditional limit is an effective global
growth control.

Measured (all three hold; assertions in `bench_fig11.py`).  Negative
growth appears at small limits because eliminating a fully-correlated
conditional can delete more (newly unreachable) nodes than splitting
duplicated:

```
{body}
```
""",
    "headline": """\
## Headline claims

Paper: "for the same amount of code growth, the estimated reduction in
executed conditional branches is about **2.5 times higher** with ICBE
than when only intraprocedural elimination is applied", and ICBE
eliminates "**3% to 18%** of executed conditionals".

Measured: mean matched-growth ratio **{ratio:.2f}x** (per-benchmark
{ratio_min:.2f}-{ratio_max:.2f}x); executed-conditional reduction
**{red_min:.1f}%-{red_max:.1f}%**.  The ratio brackets the paper's 2.5x;
the reduction band sits above the paper's because the suite's branch
population is idiom-dense by construction (see preamble) — on SPEC-like
code most branches are uncorrelated data tests, which only scales the
denominator.

```
{body}
```
""",
}


def _robustness_section() -> str:
    """Transactional-optimizer drill: outcomes with and without faults.

    Runs the suite through the optimizer with differential validation
    on, then repeats one benchmark under an injected-fault schedule, and
    tabulates the per-branch outcome counts (including the FAILED /
    ROLLED_BACK transactions) that `harness` summaries now track.
    """
    from repro.benchgen.suite import benchmark_names
    from repro.harness.metrics import prepare_benchmark
    from repro.ir import verify_icfg
    from repro.robustness import FaultPlan, differential_check
    from repro.transform import ICBEOptimizer, OptimizerOptions

    header = ("| benchmark | optimized | failed | rolled back | other | "
              "diff check |\n|---|---|---|---|---|---|")
    rows = []
    for name in benchmark_names():
        context = prepare_benchmark(name)
        report = ICBEOptimizer(OptimizerOptions(
            duplication_limit=100, diff_check=True)).optimize(context.icfg)
        verify_icfg(report.optimized)
        diff_ok = differential_check(context.icfg, report.optimized).ok
        other = (len(report.records) - report.optimized_count
                 - report.failed_count - report.rolled_back_count)
        rows.append(f"| {name} | {report.optimized_count} | "
                    f"{report.failed_count} | {report.rolled_back_count} | "
                    f"{other} | {'ok' if diff_ok else 'MISMATCH'} |")

    drill_name = benchmark_names()[0]
    context = prepare_benchmark(drill_name)
    plan = FaultPlan([
        FaultPlan.raising("transform:split", hit=2).specs[0],
        FaultPlan.corrupting("transform:verify", hit=3,
                             action="skew-print").specs[0],
    ])
    drilled = ICBEOptimizer(OptimizerOptions(
        duplication_limit=100, diff_check=True,
        fault_plan=plan)).optimize(context.icfg)
    verify_icfg(drilled.optimized)
    drill_ok = differential_check(context.icfg, drilled.optimized).ok
    drill_other = (len(drilled.records) - drilled.optimized_count
                   - drilled.failed_count - drilled.rolled_back_count)
    rows.append(f"| {drill_name} (2 injected faults) | "
                f"{drilled.optimized_count} | {drilled.failed_count} | "
                f"{drilled.rolled_back_count} | {drill_other} | "
                f"{'ok' if drill_ok else 'MISMATCH'} |")

    return f"""\
## Robustness — transactional optimizer drill

Every conditional's restructuring runs as a transaction (snapshot →
attempt → differential validation → commit or rollback; see
docs/ROBUSTNESS.md).  The table shows per-branch outcome counts across
the suite with differential checking enabled, plus one deliberately
faulted run: an exception injected mid-split and a semantic corruption
injected past the structural verifier.  Both faults cost exactly the
affected transactions; the final graph always verifies and always
matches the original program's observable traces.

{header}
{chr(10).join(rows)}
"""


def _supervisor_section() -> str:
    """Batch-supervisor drill: the suite plus a deliberately failing job.

    Runs the six benchmarks through `icbe batch` machinery (in-process
    backend — same ladder, breaker and journal discipline as the
    subprocess backend) with one extra job carrying a strict in-optimizer
    fault, so the degradation ladder is exercised inside the report run.
    """
    import shutil
    import tempfile

    from repro.benchgen.suite import benchmark_names
    from repro.robustness.supervisor import (BatchSupervisor, JobSpec,
                                             SupervisorOptions)

    specs = [JobSpec(f"suite:{name}@1") for name in benchmark_names()]
    specs.append(JobSpec(
        f"suite:{benchmark_names()[0]}@1", name="drill-faulted",
        faults=({"site": "transform:split", "hit": 1, "action": "raise"},),
        strict=True))
    run_dir = tempfile.mkdtemp(prefix="icbe-report-batch-")
    try:
        batch = BatchSupervisor(
            specs, run_dir,
            options=SupervisorOptions(isolation="inprocess",
                                      backoff_base_s=0.0)).run()
    finally:
        shutil.rmtree(run_dir, ignore_errors=True)

    header = ("| job | status | tier | attempts | retries |\n"
              "|---|---|---|---|---|")
    rows = [f"| {o.job} | {o.status} | {o.tier}/{o.tier_name} | "
            f"{len(o.attempts)} | {o.retries} |"
            for o in batch.outcomes]
    tiers = batch.tier_counts()
    tier_line = " ".join(f"{name}={tiers[name]}" for name in tiers)

    return f"""\
## Robustness — batch supervisor and the degradation ladder

`icbe batch` runs each job in an isolated worker under wall-clock and
address-space caps; failures descend the graceful-degradation ladder
({' > '.join(tiers)}) one tier per attempt, and every completed job is
fsynced into a write-ahead journal so interrupted runs resume
byte-identically (see docs/ROBUSTNESS.md).  The drill below runs the
suite plus one job with a strict injected fault at `transform:split` —
it degrades (the ladder still finds a tier whose output verifies and
diff-checks) while the clean jobs stay at tier 0:

{header}
{chr(10).join(rows)}

Tier totals: {tier_line}; retries={batch.total_retries},
kills={batch.total_kills}, wall={batch.wall_s:.1f}s.
Chaos coverage (hangs, crashes, OOM, SIGKILL-resume) runs at scale 8 in
`benchmarks/bench_supervisor.py` and in the CI chaos job.
"""


def _observability_section() -> str:
    """Self-profile of one optimizer run under the tracing layer.

    Runs the li_like benchmark end to end (parse → lower → optimize)
    inside a private observability session and renders the pstats-style
    per-span aggregate plus the headline counters, so the report shows
    where one optimizer invocation actually spends its time.
    """
    from repro import obs
    from repro.harness.metrics import prepare_benchmark
    from repro.transform import ICBEOptimizer, OptimizerOptions

    with obs.suspended(), obs.session() as active:
        context = prepare_benchmark("li_like")
        ICBEOptimizer(OptimizerOptions(
            duplication_limit=100)).optimize(context.icfg)
    profile = active.render_profile(limit=12)
    counters = active.metrics.snapshot()["counters"]
    highlight = ["analysis.branches_analyzed", "analysis.pairs_examined",
                 "transform.branches_eliminated", "transform.snapshots_taken",
                 "transform.rollbacks", "cache.summary_hits",
                 "cache.summary_misses", "cache.analyses_reused",
                 "cache.queries_interned"]
    counter_lines = "\n".join(f"{name:36s} {counters[name]}"
                              for name in highlight if name in counters)

    return f"""\
## Observability — self-profile of one optimizer run

Every layer is instrumented with hierarchical spans and counters (off
by default, < 2% overhead when disabled; see docs/OBSERVABILITY.md).
The table below profiles one li_like optimization; reproduce with
`icbe optimize suite:li_like --profile`, or get the full span tree with
`--trace out.jsonl` and convert it for `chrome://tracing` with
`python -m repro.obs.export out.jsonl chrome.json`.

```
{profile}
```

Headline counters of the same run (full catalog in
docs/OBSERVABILITY.md; counters are deterministic — byte-identical
snapshots across same-seed runs, asserted in `tests/obs/`):

```
{counter_lines}
```
"""


def _cache_section() -> str:
    """Analysis-context counters and cache-on/off equivalence."""
    from repro.benchgen.suite import benchmark_names
    from repro.harness.metrics import prepare_benchmark
    from repro.ir import dump_icfg
    from repro.transform import ICBEOptimizer, OptimizerOptions

    header = ("| benchmark | summary hits/misses | invalidated | analyses "
              "reused | snapshots reused | restores elided | outcomes |\n"
              "|---|---|---|---|---|---|---|")
    rows = []
    for name in benchmark_names():
        context = prepare_benchmark(name)
        cached = ICBEOptimizer(OptimizerOptions(
            duplication_limit=100)).optimize(context.icfg)
        plain = ICBEOptimizer(OptimizerOptions(
            duplication_limit=100,
            analysis_cache=False)).optimize(context.icfg)
        identical = (
            [(r.branch_id, r.outcome) for r in cached.records]
            == [(r.branch_id, r.outcome) for r in plain.records]
            and dump_icfg(cached.optimized) == dump_icfg(plain.optimized))
        stats = cached.cache
        rows.append(
            f"| {name} | {stats.summary_hits}/{stats.summary_misses} | "
            f"{stats.summary_invalidated} | {stats.analyses_reused} | "
            f"{stats.snapshot_reuses} | {stats.restores_elided} | "
            f"{'identical' if identical else 'DIVERGED'} |")

    return f"""\
## Analysis context — shared caches across conditionals

The optimizer runs as a pass pipeline over one shared, generation-keyed
`AnalysisContext` (see docs/ARCHITECTURE.md): cross-branch summary
caching, memoized mod/ref, snapshot reuse, restore elision, and
dirty-procedure-scoped re-verification.  `--no-analysis-cache`
re-derives everything per conditional; per-branch outcomes and the
final graph are identical either way (last column compares both, here
and in `benchmarks/bench_cache.py` at scale 8 where the shared context
gives a >= 1.5x wall-clock speedup).

{header}
{chr(10).join(rows)}
"""


def _parallel_store_section() -> str:
    """Sharded prewarm and summary-store cold/warm accounting."""
    import shutil
    import tempfile
    from repro.analysis import AnalysisConfig, analyze_branch
    from repro.analysis.context import AnalysisContext
    from repro.analysis.store import SummaryStore
    from repro.benchgen.suite import benchmark_names
    from repro.harness.metrics import prepare_benchmark
    from repro.utils import durafs

    config = AnalysisConfig(budget=1000)

    def sweep(icfg, root, fs=None):
        context = AnalysisContext()
        context.bind(icfg)
        context.attach_store(SummaryStore(root, config, fs=fs))
        answers = []
        for branch_id in sorted(b.id for b in icfg.branch_nodes()):
            result = analyze_branch(icfg, branch_id, config, context=context)
            answers.append((branch_id, result.branch_answers))
        return answers, context.store.stats

    header = ("| benchmark | persisted | warm hits/misses | answers | "
              "under ENOSPC |\n|---|---|---|---|---|")
    rows = []
    for name in benchmark_names():
        icfg = prepare_benchmark(name).icfg
        root = tempfile.mkdtemp(prefix="icbe-report-store-")
        sick_root = tempfile.mkdtemp(prefix="icbe-report-sick-")
        try:
            cold_answers, cold_stats = sweep(icfg, root)
            warm_answers, warm_stats = sweep(icfg, root)
            # The durability contract: the same sweep on a store whose
            # every entry write hits ENOSPC must produce identical
            # answers and park the store read-only, never raise.
            sick_fs = durafs.Filesystem(durafs.FsFaultPlan.erroring(
                "store.entry", op="write", hit=0))
            sick_answers, sick_stats = sweep(icfg, sick_root, fs=sick_fs)
        finally:
            shutil.rmtree(root, ignore_errors=True)
            shutil.rmtree(sick_root, ignore_errors=True)
        identical = cold_answers == warm_answers and warm_stats.stores == 0
        degraded = sick_answers == cold_answers and sick_stats.stores == 0
        rows.append(
            f"| {name} | {cold_stats.stores} | "
            f"{warm_stats.hits}/{warm_stats.misses} | "
            f"{'identical' if identical else 'DIVERGED'} | "
            f"{'identical' if degraded else 'DIVERGED'}"
            f" ({sick_stats.health}) |")

    return f"""\
## Parallel analysis and the persistent summary store

`--analysis-jobs N` prewarms the shared context before the pipeline
runs: branches are sharded along weak call-graph components (oversized
components split per procedure), forked workers analyze their shards
into private contexts, and the parent merges the completed summary
entries back (sorted, first-import-wins) before executing the ordinary
serial pipeline — so parallel runs stay byte-identical to serial by
construction.  `--summary-store DIR` persists completed summary entries
content-addressed by (callee closure body, exit, query, semantic
config); a later run on the same program loads them instead of
re-running the fixpoints.  The table runs the analysis sweep cold and
then warm on the same store; warm misses are the store working as
specified — only *completed* analyses persist (a budget-exhausted
answer set is not exact), so truncated queries re-run every time.
`benchmarks/bench_parallel.py` gates the warm-over-cold speedup
(>= 1.5x over the suite at scale 8) and
`benchmarks/ci_parallel_equivalence.py` holds serial, sharded, and
store-backed optimizer runs to identical outcomes under `--diff-check`.
The last column re-runs the sweep against a store whose every entry
write fails with ENOSPC (injected via `repro.utils.durafs`): answers
must stay identical while the health state machine parks the store
read-only — degradation costs misses, never correctness (see
docs/ROBUSTNESS.md, "Durability contract").

{header}
{chr(10).join(rows)}
"""


def _extensions_section() -> str:
    """Measure the qualitative §3.3/§5 claims for the report."""
    from repro.analysis import AnalysisConfig, analyze_branch
    from repro.analysis.engine import CorrelationEngine
    from repro.analysis.prediction import (baseline_predictions,
                                           evaluate_predictor, predict_all)
    from repro.benchgen.suite import benchmark_names
    from repro.harness.metrics import prepare_benchmark
    from repro.interp import run_icfg
    from repro.transform import ICBEOptimizer, OptimizerOptions
    from repro.transform.inline import inline_exhaustively

    config = AnalysisConfig(budget=10_000)

    # §5 inlining-vs-splitting, aggregated.
    split_growth = inline_growth = 0.0
    for name in benchmark_names():
        context = prepare_benchmark(name)
        base = context.icfg.executable_node_count()
        optimizer = ICBEOptimizer(OptimizerOptions(
            config=AnalysisConfig(interprocedural=True),
            duplication_limit=100))
        split = optimizer.optimize(context.icfg).optimized
        split_growth += 100.0 * (split.executable_node_count() - base) / base
        flattened = context.icfg.clone()
        inline_exhaustively(flattened, node_budget=50_000)
        baseline_opt = ICBEOptimizer(OptimizerOptions(
            config=AnalysisConfig(interprocedural=False),
            duplication_limit=100))
        inlined = baseline_opt.optimize(flattened).optimized
        inline_growth += (100.0
                          * (inlined.executable_node_count() - base) / base)
    split_growth /= len(benchmark_names())
    inline_growth /= len(benchmark_names())

    # §3.3 query cache, aggregated.
    fresh_pairs = cached_pairs = 0
    for name in benchmark_names():
        context = prepare_benchmark(name)
        engine = CorrelationEngine(context.icfg, config)
        for branch in context.icfg.branch_nodes():
            fresh_pairs += analyze_branch(
                context.icfg, branch.id, config).stats.pairs_examined
            cached_pairs += analyze_branch(
                context.icfg, branch.id, config,
                engine=engine).stats.pairs_examined

    # §5 prediction, aggregated.
    base_correct = assisted_correct = executed = 0
    for name in benchmark_names():
        context = prepare_benchmark(name)
        assisted = evaluate_predictor(predict_all(context.icfg, config),
                                      context.profile)
        baseline = evaluate_predictor(baseline_predictions(context.icfg),
                                      context.profile)
        executed += baseline.executed
        base_correct += baseline.correct
        assisted_correct += assisted.correct

    return f"""\
## Extension claims (paper §3.3 and §5)

| Claim | Paper | Measured (suite aggregate) |
|---|---|---|
| Inlining-based ICBE grows code more than entry/exit splitting (§5) | "pre-pass inlining incurs large code growth" | splitting {split_growth:+.1f}% vs exhaustive inlining {inline_growth:+.1f}% executable-node growth at equal elimination |
| Query caching saves analysis work at a memory cost (§3.3) | "caching proved counterproductive... due to increased memory" | cached engines process {cached_pairs} vs {fresh_pairs} node-query pairs, but retain every pair ever raised (see `bench_query_cache.py` for peak live pairs) |
| Correlation assists static branch prediction (§5) | qualitative | static accuracy {100.0 * base_correct / executed:.1f}% -> {100.0 * assisted_correct / executed:.1f}% with correlation hints; certain hints are 100% accurate |

Deeper per-benchmark numbers: `pytest benchmarks/bench_inlining.py
benchmarks/bench_partial_inline.py benchmarks/bench_query_cache.py
benchmarks/bench_prediction.py benchmarks/bench_benefit_gate.py
--benchmark-only -s`.
"""


def generate(path: str = "EXPERIMENTS.md") -> str:
    """Run every experiment and write the markdown report to ``path``."""
    started = time.perf_counter()   # monotonic: immune to clock steps
    parts = [PREAMBLE]

    rows1 = table1.compute_table1()
    parts.append(SECTIONS["table1"].format(body=table1.render_table1(rows1)))

    rows2 = table2.compute_table2()
    parts.append(SECTIONS["table2"].format(body=table2.render_table2(rows2)))

    rows9 = fig9.compute_fig9()
    ratios = fig9.summary_ratios(rows9)
    parts.append(SECTIONS["fig9"].format(
        static_ratio=ratios["static_ratio"],
        body=fig9.render_fig9(rows9)))

    data10 = fig10.compute_fig10()
    inter_quadrants = fig10.quadrant_counts(data10.inter)
    intra_quadrants = fig10.quadrant_counts(data10.intra)
    parts.append(SECTIONS["fig10"].format(
        inter_points=len(data10.inter), intra_points=len(data10.intra),
        inter_ul=inter_quadrants["upper_left"],
        intra_ul=intra_quadrants["upper_left"],
        body=fig10.render_fig10(data10)))

    points11 = fig11.compute_fig11()
    parts.append(SECTIONS["fig11"].format(body=fig11.render_fig11(points11)))

    summary = headline.compute_headline(points11)
    ratio_values = list(summary.per_benchmark_ratio.values())
    parts.append(SECTIONS["headline"].format(
        ratio=summary.mean_ratio,
        ratio_min=min(ratio_values), ratio_max=max(ratio_values),
        red_min=summary.reduction_min_pct, red_max=summary.reduction_max_pct,
        body=headline.render_headline(summary)))

    parts.append(_extensions_section())
    parts.append(_robustness_section())
    parts.append(_supervisor_section())
    parts.append(_cache_section())
    parts.append(_parallel_store_section())
    parts.append(_observability_section())

    elapsed = time.perf_counter() - started
    parts.append(f"---\n\nGenerated by `python -m repro.harness.report` "
                 f"in {elapsed:.1f}s.\n")
    text = "\n".join(parts)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return text


def main() -> None:
    """CLI entry: ``python -m repro.harness.report [path]``."""
    path = sys.argv[1] if len(sys.argv) > 1 else "EXPERIMENTS.md"
    generate(path)
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
