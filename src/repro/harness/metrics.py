"""Shared measurement plumbing for the experiment harness.

A :class:`BenchmarkContext` bundles one suite program with its lowered
ICFG and the dynamic profile of its ref workload — the ingredients every
experiment consumes.  ``branch_population`` classifies each conditional
the way the paper's Figure 9 does: analyzable?, correlated?, fully
correlated?, under both analysis scopes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis import AnalysisConfig, analyze_branch
from repro.analysis.cost import (duplication_upper_bound,
                                 eliminated_executions_estimate)
from repro.analysis.result import CorrelationResult
from repro.benchgen.suite import BenchmarkProgram, load_benchmark
from repro.interp import ExecutionResult, run_icfg
from repro.interp.profile import Profile
from repro.ir import ICFG, lower_program, verify_icfg


@dataclass
class BenchmarkContext:
    """One benchmark, lowered and profiled on its ref workload."""

    bench: BenchmarkProgram
    icfg: ICFG
    execution: ExecutionResult

    @property
    def name(self) -> str:
        return self.bench.name

    @property
    def profile(self) -> Profile:
        return self.execution.profile


def prepare_benchmark(name: str) -> BenchmarkContext:
    """Load, lower, verify, and profile one suite benchmark."""
    bench = load_benchmark(name)
    icfg = lower_program(bench.program)
    verify_icfg(icfg)
    execution = run_icfg(icfg, bench.workload)
    if execution.status != "ok":
        raise RuntimeError(
            f"benchmark {name!r} did not run cleanly: {execution.status} "
            f"{execution.fault_message}")
    return BenchmarkContext(bench=bench, icfg=icfg, execution=execution)


@dataclass
class BranchInfo:
    """One conditional's classification under one analysis scope."""

    branch_id: int
    executions: int
    analyzable: bool
    correlated: bool
    fully_correlated: bool
    duplication_bound: int
    benefit_estimate: int
    pairs_examined: int
    result: Optional[CorrelationResult] = None


def classify_branch(context: BenchmarkContext, branch_id: int,
                    config: AnalysisConfig,
                    keep_result: bool = False) -> BranchInfo:
    """Classify one conditional under ``config`` (Fig. 9 categories)."""
    result = analyze_branch(context.icfg, branch_id, config)
    executions = context.profile.branch_executions(branch_id)
    info = BranchInfo(
        branch_id=branch_id,
        executions=executions,
        analyzable=result.analyzable,
        correlated=result.has_correlation,
        fully_correlated=result.fully_correlated,
        duplication_bound=(duplication_upper_bound(result)
                           if result.has_correlation else 0),
        benefit_estimate=eliminated_executions_estimate(result,
                                                        context.profile),
        pairs_examined=result.stats.pairs_examined,
        result=result if keep_result else None)
    return info


def branch_population(context: BenchmarkContext, config: AnalysisConfig
                      ) -> List[BranchInfo]:
    """Classify every conditional in the benchmark under ``config``."""
    return [classify_branch(context, branch.id, config)
            for branch in context.icfg.branch_nodes()]


def percent(part: float, whole: float) -> float:
    """``part`` as a percentage of ``whole`` (0 when whole is 0)."""
    return 100.0 * part / whole if whole else 0.0


def population_summary(infos: List[BranchInfo]) -> Dict[str, float]:
    """Aggregate a classification the way Fig. 9 reports it."""
    total = len(infos)
    total_exec = sum(i.executions for i in infos)
    return {
        "conditionals": total,
        "executed": total_exec,
        "analyzable_pct": percent(sum(1 for i in infos if i.analyzable),
                                  total),
        "correlated_pct": percent(sum(1 for i in infos if i.correlated),
                                  total),
        "fully_pct": percent(sum(1 for i in infos if i.fully_correlated),
                             total),
        "correlated_dyn_pct": percent(
            sum(i.executions for i in infos if i.correlated), total_exec),
        "fully_dyn_pct": percent(
            sum(i.executions for i in infos if i.fully_correlated),
            total_exec),
    }
