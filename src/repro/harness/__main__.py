"""Command line front end: ``python -m repro.harness <experiment>``."""

from __future__ import annotations

import sys

from repro.harness import fig9, fig10, fig11, headline, table1, table2

EXPERIMENTS = {
    "table1": table1.main,
    "table2": table2.main,
    "fig9": fig9.main,
    "fig10": fig10.main,
    "fig11": fig11.main,
    "headline": headline.main,
}


def main(argv=None) -> int:
    """Dispatch ``python -m repro.harness <experiment>``."""
    args = sys.argv[1:] if argv is None else argv
    if not args or args[0] in ("-h", "--help"):
        names = ", ".join(EXPERIMENTS)
        print(f"usage: python -m repro.harness <{names}|all>")
        return 0 if args else 2
    name = args[0]
    if name == "all":
        for key, runner in EXPERIMENTS.items():
            print(f"=== {key} ===")
            runner()
            print()
        return 0
    runner = EXPERIMENTS.get(name)
    if runner is None:
        print(f"unknown experiment {name!r}; "
              f"choose from {', '.join(EXPERIMENTS)} or 'all'")
        return 2
    runner()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
