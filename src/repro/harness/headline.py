"""The paper's headline claims, recomputed from the Fig. 11 data.

Two claims (abstract and §1):

1. Interprocedural detection enables elimination of **3% to 18%** of
   executed conditionals (we report our suite's min/max at the largest
   duplication limit).
2. For the **same amount of code growth**, ICBE's reduction in executed
   conditional branches is about **2.5×** that of intraprocedural
   elimination.  We interpolate each scope's reduction-vs-growth curve
   and compare at matched growth levels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.harness.fig11 import Fig11Point, compute_fig11
from repro.utils.tables import render_table


@dataclass
class HeadlineSummary:
    per_benchmark_ratio: Dict[str, float]
    mean_ratio: float
    reduction_min_pct: float
    reduction_max_pct: float


def _curve(points: List[Fig11Point], benchmark: str,
           interprocedural: bool) -> List[Tuple[float, float]]:
    """(growth%, reduction%) pairs sorted by growth."""
    selected = [(p.growth_pct, p.reduction_pct) for p in points
                if p.benchmark == benchmark
                and p.interprocedural == interprocedural]
    return sorted(selected)


def _reduction_at_growth(curve: List[Tuple[float, float]],
                         growth: float) -> float:
    """Reduction achievable within a growth budget (step interpolation:
    the best point whose growth does not exceed the budget)."""
    best = 0.0
    for point_growth, reduction in curve:
        if point_growth <= growth + 1e-9:
            best = max(best, reduction)
    return best


def matched_growth_ratio(points: List[Fig11Point],
                         benchmark: str) -> Optional[float]:
    """inter/intra reduction ratio averaged over the intra curve's
    achievable growth levels (the paper's same-code-growth comparison)."""
    inter = _curve(points, benchmark, True)
    intra = _curve(points, benchmark, False)
    ratios = []
    for growth, intra_reduction in intra:
        if intra_reduction <= 0.0:
            continue
        inter_reduction = _reduction_at_growth(inter, growth)
        ratios.append(inter_reduction / intra_reduction)
    if not ratios:
        return None
    return sum(ratios) / len(ratios)


def compute_headline(points: Optional[List[Fig11Point]] = None
                     ) -> HeadlineSummary:
    """Both headline numbers from Fig. 11 points."""
    if points is None:
        points = compute_fig11()
    benchmarks = sorted({p.benchmark for p in points})
    ratios: Dict[str, float] = {}
    reductions: List[float] = []
    for name in benchmarks:
        ratio = matched_growth_ratio(points, name)
        if ratio is not None:
            ratios[name] = ratio
        inter_curve = _curve(points, name, True)
        if inter_curve:
            reductions.append(max(r for _, r in inter_curve))
    mean_ratio = (sum(ratios.values()) / len(ratios)) if ratios else 0.0
    return HeadlineSummary(
        per_benchmark_ratio=ratios,
        mean_ratio=mean_ratio,
        reduction_min_pct=min(reductions) if reductions else 0.0,
        reduction_max_pct=max(reductions) if reductions else 0.0)


def render_headline(summary: HeadlineSummary) -> str:
    """ASCII rendering with the paper's numbers alongside."""
    rows = [[name, ratio] for name, ratio in
            sorted(summary.per_benchmark_ratio.items())]
    table = render_table(
        ["benchmark", "inter/intra reduction ratio at matched growth"],
        rows, title="Headline: same-code-growth comparison")
    lines = [
        table,
        "",
        f"mean matched-growth ratio: {summary.mean_ratio:.2f}x "
        f"(paper: about 2.5x)",
        f"ICBE executed-conditional reduction across suite: "
        f"{summary.reduction_min_pct:.1f}% .. "
        f"{summary.reduction_max_pct:.1f}% (paper: 3% .. 18%)",
    ]
    return "\n".join(lines)


def main() -> None:
    """Print the headline comparison."""
    print(render_headline(compute_headline()))


if __name__ == "__main__":
    main()
