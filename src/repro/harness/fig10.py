"""Figure 10: duplication cost vs dynamic benefit, per conditional.

One point per correlated conditional: x = nodes created when the
conditional is eliminated (the analysis' duplication upper bound),
y = dynamic branch executions avoided (profile-based estimate).  The
paper contrasts the intraprocedural and interprocedural scatters and
observes that interprocedural analysis adds many frequently-executed,
cheap-to-isolate conditionals (upper-left quadrant).

Computed with the exhaustive budget, like the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis import AnalysisConfig
from repro.benchgen.suite import benchmark_names
from repro.harness.fig9 import EXHAUSTIVE_BUDGET
from repro.harness.metrics import branch_population, prepare_benchmark
from repro.utils.tables import render_table


@dataclass
class ScatterPoint:
    benchmark: str
    branch_id: int
    duplication: int
    avoided_executions: int


@dataclass
class Fig10Data:
    intra: List[ScatterPoint]
    inter: List[ScatterPoint]


def compute_fig10(names: Optional[List[str]] = None,
                  budget: int = EXHAUSTIVE_BUDGET) -> Fig10Data:
    """Scatter data for both analysis scopes."""
    intra_points: List[ScatterPoint] = []
    inter_points: List[ScatterPoint] = []
    for name in (names if names is not None else benchmark_names()):
        context = prepare_benchmark(name)
        for interprocedural, sink in ((False, intra_points),
                                      (True, inter_points)):
            config = AnalysisConfig(interprocedural=interprocedural,
                                    budget=budget)
            for info in branch_population(context, config):
                if not info.correlated:
                    continue
                sink.append(ScatterPoint(
                    benchmark=name, branch_id=info.branch_id,
                    duplication=info.duplication_bound,
                    avoided_executions=info.benefit_estimate))
    return Fig10Data(intra=intra_points, inter=inter_points)


def quadrant_counts(points: List[ScatterPoint], dup_threshold: int = 20,
                    exec_threshold: int = 50) -> Dict[str, int]:
    """Counts per quadrant; 'upper_left' is cheap-and-frequent, the
    region the paper highlights as ICBE's advantage."""
    counts = {"upper_left": 0, "upper_right": 0,
              "lower_left": 0, "lower_right": 0}
    for point in points:
        vertical = "upper" if point.avoided_executions >= exec_threshold \
            else "lower"
        horizontal = "left" if point.duplication <= dup_threshold \
            else "right"
        counts[f"{vertical}_{horizontal}"] += 1
    return counts


def render_fig10(data: Fig10Data) -> str:
    """ASCII rendering of both scatters plus quadrant counts."""
    parts = []
    for label, points in (("intraprocedural", data.intra),
                          ("interprocedural", data.inter)):
        rows: List[Tuple] = [[p.benchmark, p.branch_id, p.duplication,
                              p.avoided_executions]
                             for p in sorted(points,
                                             key=lambda p: (p.benchmark,
                                                            p.branch_id))]
        parts.append(render_table(
            ["benchmark", "branch", "code duplication [nodes]",
             "avoided dynamic branches"],
            rows,
            title=f"Fig 10 ({label}): contribution vs duplication"))
        quadrants = quadrant_counts(points)
        parts.append(f"quadrants ({label}): {quadrants}")
    return "\n\n".join(parts)


def main() -> None:
    """Print Figure 10 for the whole suite."""
    print(render_fig10(compute_fig10()))


if __name__ == "__main__":
    main()
