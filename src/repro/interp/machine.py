"""The ICFG interpreter.

Executes one node at a time, maintaining a call stack of frames.  The
key detail for this reproduction is the *return map*: each call node
carries ``{exit_node_id -> call_site_exit_id}``, recorded in the callee's
frame at call time.  When an exit node is reached, control resumes at
the call-site exit the map designates — that is how a procedure with
split exits "returns control to one of several return points in the
caller" (paper §1) without any special casing here.

Faults (null/wild heap access, missing return address) terminate the run
with a fault status; differential tests compare full results including
fault status, so the optimizer must preserve faults exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import InterpreterError
from repro.ir import expr as ir
from repro.ir.icfg import EdgeKind, ICFG
from repro.ir.nodes import (AssignNode, BranchNode, CallExitNode, CallNode,
                            EntryNode, ExitNode, NopNode, PrintNode,
                            StoreNode)
from repro.ir.ops import eval_binary, eval_convert, eval_unary
from repro.interp.profile import Profile
from repro.interp.workload import Workload

DEFAULT_STEP_LIMIT = 2_000_000


@dataclass
class Frame:
    """One procedure activation."""

    proc: str
    locals: Dict[ir.VarId, int]
    return_map: Dict[int, int]


@dataclass
class ExecutionResult:
    """Everything observable about a run."""

    status: str                      # "ok" | "fault" | "step-limit"
    exit_value: Optional[int]
    output: List[int]
    profile: Profile
    fault_message: str = ""
    steps: int = 0

    @property
    def observable(self) -> Tuple[str, Optional[int], Tuple[int, ...], str]:
        """The semantics-defining portion (profiles/steps excluded)."""
        return (self.status, self.exit_value, tuple(self.output),
                self.fault_message)


class Machine:
    """Interpreter for one run over one workload."""

    def __init__(self, icfg: ICFG, workload: Optional[Workload] = None,
                 step_limit: int = DEFAULT_STEP_LIMIT) -> None:
        self.icfg = icfg
        self.workload = workload if workload is not None else Workload([])
        self.step_limit = step_limit
        self.globals: Dict[ir.VarId, int] = dict(icfg.globals)
        self.heap: Dict[int, int] = {}
        self._next_address = 1
        self.frames: List[Frame] = []
        self.output: List[int] = []
        self.profile = Profile()
        self.steps = 0

    # -- value access --------------------------------------------------------

    def read_var(self, var: ir.VarId) -> int:
        if var.is_global:
            return self.globals.get(var, 0)
        return self.frames[-1].locals.get(var, 0)

    def write_var(self, var: ir.VarId, value: int) -> None:
        if var.is_global:
            self.globals[var] = value
        else:
            self.frames[-1].locals[var] = value

    def _alloc(self, size: int) -> int:
        """Allocate ``size`` zeroed cells; sizes <= 0 yield NULL."""
        if size <= 0:
            return 0
        base = self._next_address
        for offset in range(size):
            self.heap[base + offset] = 0
        self._next_address += size
        return base

    def _load(self, address: int) -> int:
        if address == 0:
            raise InterpreterError("null pointer load")
        if address not in self.heap:
            raise InterpreterError(f"wild load at address {address}")
        return self.heap[address]

    def _store(self, address: int, value: int) -> None:
        if address == 0:
            raise InterpreterError("null pointer store")
        if address not in self.heap:
            raise InterpreterError(f"wild store at address {address}")
        self.heap[address] = value

    # -- expression evaluation ---------------------------------------------

    def eval(self, expr: ir.Expr) -> int:
        if isinstance(expr, ir.Const):
            return expr.value
        if isinstance(expr, ir.VarExpr):
            return self.read_var(expr.var)
        if isinstance(expr, ir.BinaryExpr):
            return eval_binary(expr.op, self.eval(expr.left),
                               self.eval(expr.right))
        if isinstance(expr, ir.UnaryExpr):
            return eval_unary(expr.op, self.eval(expr.operand))
        if isinstance(expr, ir.Convert):
            return eval_convert(self.eval(expr.operand))
        if isinstance(expr, ir.InputRead):
            return self.workload.next_value()
        if isinstance(expr, ir.Alloc):
            return self._alloc(self.eval(expr.size))
        if isinstance(expr, ir.Load):
            return self._load(self.eval(expr.address))
        raise InterpreterError(f"cannot evaluate {type(expr).__name__}")

    # -- main loop -----------------------------------------------------------

    def run(self) -> ExecutionResult:
        info = self.icfg.procs[self.icfg.main]
        self.frames.append(Frame(self.icfg.main,
                                 {v: 0 for v in info.locals}, {}))
        current = self.icfg.main_entry()
        pending_return: Optional[int] = None

        try:
            while True:
                if self.steps >= self.step_limit:
                    return self._finish("step-limit", None,
                                        "step limit exceeded")
                self.steps += 1
                node = self.icfg.nodes[current]
                self.profile.count_node(node)

                if isinstance(node, (EntryNode, NopNode)):
                    current = self.icfg.only_succ(node.id, EdgeKind.NORMAL)
                elif isinstance(node, AssignNode):
                    self.write_var(node.target, self.eval(node.rhs))
                    current = self.icfg.only_succ(node.id, EdgeKind.NORMAL)
                elif isinstance(node, BranchNode):
                    taken = self.eval(node.predicate) != 0
                    self.profile.count_branch(node, taken)
                    true_dst, false_dst = self.icfg.branch_targets(node.id)
                    current = true_dst if taken else false_dst
                elif isinstance(node, PrintNode):
                    self.output.append(self.eval(node.value))
                    current = self.icfg.only_succ(node.id, EdgeKind.NORMAL)
                elif isinstance(node, StoreNode):
                    address = self.eval(node.address)
                    value = self.eval(node.value)
                    self._store(address, value)
                    current = self.icfg.only_succ(node.id, EdgeKind.NORMAL)
                elif isinstance(node, CallNode):
                    args = [self.eval(a) for a in node.args]
                    callee = self.icfg.procs[node.callee]
                    frame = Frame(node.callee,
                                  {v: 0 for v in callee.locals},
                                  dict(node.return_map))
                    for param, value in zip(callee.params, args):
                        frame.locals[param] = value
                    self.frames.append(frame)
                    current = node.entry_id
                elif isinstance(node, ExitNode):
                    frame = self.frames[-1]
                    value = frame.locals.get(ir.VarId.ret(node.proc), 0)
                    if len(self.frames) == 1:
                        return self._finish("ok", value, "")
                    if node.id not in frame.return_map:
                        raise InterpreterError(
                            f"no return address for exit {node.id} "
                            f"of {node.proc!r}")
                    target = frame.return_map[node.id]
                    self.frames.pop()
                    pending_return = value
                    current = target
                elif isinstance(node, CallExitNode):
                    if pending_return is None:
                        raise InterpreterError(
                            f"call-exit {node.id} reached without a return")
                    if node.result is not None:
                        self.write_var(node.result, pending_return)
                    pending_return = None
                    current = self.icfg.only_succ(node.id, EdgeKind.NORMAL)
                else:
                    raise InterpreterError(
                        f"cannot execute node {node.id}: {node.label()}")
        except InterpreterError as fault:
            return self._finish("fault", None, str(fault))

    def _finish(self, status: str, exit_value: Optional[int],
                fault_message: str) -> ExecutionResult:
        return ExecutionResult(status=status, exit_value=exit_value,
                               output=self.output, profile=self.profile,
                               fault_message=fault_message, steps=self.steps)


def run_icfg(icfg: ICFG, workload: Optional[Workload] = None,
             step_limit: int = DEFAULT_STEP_LIMIT) -> ExecutionResult:
    """Convenience wrapper: execute ``icfg`` over ``workload``."""
    from repro import obs
    stream = workload.fresh() if workload is not None else None
    with obs.span("interp.run") as span:
        result = Machine(icfg, stream, step_limit).run()
        span.set(status=result.status,
                 operations=result.profile.executed_operations)
    obs.add("interp.executed_conditionals",
            result.profile.executed_conditionals)
    return result
