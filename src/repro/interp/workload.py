"""Deterministic input streams for program runs.

A :class:`Workload` is the run's entire external world: every ``input()``
in the program consumes the next value.  An exhausted stream yields
``default`` forever (programs typically treat that as end-of-file), so
runs are total and reproducible — the property differential testing
needs.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional


class Workload:
    """A replayable stream of integers for ``input()``."""

    def __init__(self, values: Iterable[int], default: int = 0,
                 name: str = "") -> None:
        self.values: List[int] = [int(v) for v in values]
        self.default = default
        self.name = name
        self._pos = 0

    def next_value(self) -> int:
        if self._pos < len(self.values):
            value = self.values[self._pos]
            self._pos += 1
            return value
        return self.default

    @property
    def consumed(self) -> int:
        return self._pos

    def reset(self) -> "Workload":
        """Rewind so the same workload can drive another run."""
        self._pos = 0
        return self

    def fresh(self) -> "Workload":
        """An independent, rewound copy."""
        return Workload(self.values, self.default, self.name)

    @staticmethod
    def random(length: int, low: int = -8, high: int = 8,
               seed: Optional[int] = None, name: str = "") -> "Workload":
        """A uniformly random workload (used by property tests)."""
        rng = random.Random(seed)
        return Workload([rng.randint(low, high) for _ in range(length)],
                        name=name)

    def __len__(self) -> int:
        return len(self.values)

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"Workload{label}(len={len(self.values)})"
