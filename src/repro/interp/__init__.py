"""ICFG interpreter — the reproduction's execution substrate.

The paper collects dynamic branch counts by profiling compiled SPEC95
binaries; we collect the same events by directly executing the ICFG.
The interpreter honours return maps, so programs restructured by exit
splitting run unchanged: a procedure returns to whichever call-site exit
its caller registered for the exit node that was reached.
"""

from repro.interp.machine import ExecutionResult, Machine, run_icfg
from repro.interp.profile import Profile
from repro.interp.workload import Workload

__all__ = ["ExecutionResult", "Machine", "Profile", "Workload", "run_icfg"]
