"""Execution profiles: the dynamic counters the evaluation reports.

The paper's dynamic numbers are (a) executed conditional branches and
(b) execution frequencies of the nodes where analysis queries were
resolved (used to estimate the benefit of eliminating a conditional).
Both come from per-node execution counts, which is what this profile
stores.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.ir.icfg import ICFG
from repro.ir.nodes import BranchNode, Node


@dataclass
class Profile:
    """Per-node execution counts plus derived aggregates."""

    node_counts: Dict[int, int] = field(default_factory=dict)
    branch_true: Dict[int, int] = field(default_factory=dict)
    branch_false: Dict[int, int] = field(default_factory=dict)
    executed_operations: int = 0
    executed_conditionals: int = 0

    def count_node(self, node: Node) -> None:
        self.node_counts[node.id] = self.node_counts.get(node.id, 0) + 1
        if node.is_executable:
            self.executed_operations += 1

    def count_branch(self, node: BranchNode, taken: bool) -> None:
        self.executed_conditionals += 1
        table = self.branch_true if taken else self.branch_false
        table[node.id] = table.get(node.id, 0) + 1

    def count_of(self, node_id: int) -> int:
        return self.node_counts.get(node_id, 0)

    def branch_taken(self, node_id: int, taken: bool) -> int:
        table = self.branch_true if taken else self.branch_false
        return table.get(node_id, 0)

    def branch_executions(self, node_id: int) -> int:
        return (self.branch_true.get(node_id, 0)
                + self.branch_false.get(node_id, 0))

    def merge(self, other: "Profile") -> None:
        """Accumulate another run's counters into this profile."""
        for node_id, count in other.node_counts.items():
            self.node_counts[node_id] = self.node_counts.get(node_id, 0) + count
        for node_id, count in other.branch_true.items():
            self.branch_true[node_id] = self.branch_true.get(node_id, 0) + count
        for node_id, count in other.branch_false.items():
            self.branch_false[node_id] = (self.branch_false.get(node_id, 0)
                                          + count)
        self.executed_operations += other.executed_operations
        self.executed_conditionals += other.executed_conditionals


class RemappedProfile:
    """A profile view over a restructured graph.

    Restructuring replaces nodes with copies under fresh ids, so a
    profile collected on the original program no longer matches.  Given
    the accumulated ``origin`` map (copy id -> original id), this view
    answers count queries for copies with their original's counts —
    each copy inherits its original's frequency, which over-approximates
    per-copy frequency but keeps benefit estimates meaningful across a
    whole optimization run.
    """

    def __init__(self, base: Profile, origin: Dict[int, int]) -> None:
        self._base = base
        self._origin = origin

    def _resolve(self, node_id: int) -> int:
        return self._origin.get(node_id, node_id)

    def count_of(self, node_id: int) -> int:
        return self._base.count_of(self._resolve(node_id))

    def branch_taken(self, node_id: int, taken: bool) -> int:
        return self._base.branch_taken(self._resolve(node_id), taken)

    def branch_executions(self, node_id: int) -> int:
        return self._base.branch_executions(self._resolve(node_id))


def executed_conditionals(profile: Profile, icfg: ICFG) -> int:
    """Executed conditional count recomputed from per-node data (sanity)."""
    total = 0
    for node in icfg.iter_nodes():
        if isinstance(node, BranchNode):
            total += profile.count_of(node.id)
    return total
