"""Robustness drill over the benchmark suite.

Runs the transactional optimizer over every suite benchmark twice —
once clean with differential validation on, once under a hostile fault
plan (a mid-run crash plus a verifier-invisible semantic skew) — and
asserts the robustness contract at suite scale:

- the clean pass optimizes everything the plain optimizer would, with
  zero failures and a clean differential check;
- the hostile pass completes, each fault fires at most once (one
  transaction each), and it still ships a verify-clean, diff-clean
  graph;
- the transactional machinery's overhead stays within an order of
  magnitude of the plain pipeline (snapshots are cheap clones, and the
  differential interpreter runs dominate, not the bookkeeping).

Run:  pytest benchmarks/bench_robustness.py --benchmark-only
"""

from repro.analysis import AnalysisConfig
from repro.benchgen.suite import benchmark_names, load_benchmark
from repro.ir import lower_program, verify_icfg
from repro.robustness import FaultPlan, FaultSpec, differential_check
from repro.transform import ICBEOptimizer, OptimizerOptions
from repro.utils.tables import render_table

SCALE = 1
BUDGET = 1000


def hostile_plan():
    """A crash mid-split plus a semantic skew only diffcheck can see."""
    return FaultPlan([
        FaultSpec("transform:split", hit=2, action="raise"),
        FaultSpec("transform:verify", hit=3, action="skew-print"),
    ])


def drill(name):
    bench = load_benchmark(name, scale=SCALE)
    icfg = lower_program(bench.program)

    clean = ICBEOptimizer(OptimizerOptions(
        config=AnalysisConfig(budget=BUDGET),
        diff_check=True)).optimize(icfg)
    hostile = ICBEOptimizer(OptimizerOptions(
        config=AnalysisConfig(budget=BUDGET),
        diff_check=True, fault_plan=hostile_plan())).optimize(icfg)

    for report in (clean, hostile):
        verify_icfg(report.optimized)
        assert differential_check(icfg, report.optimized).ok, name
    assert clean.failed_count == 0 and clean.rolled_back_count == 0, name
    # Each injected fault is confined to one transaction: a spec fires
    # once, so failures never exceed the plan size.  (Optimized counts
    # may legitimately drift further — rolling back one conditional
    # changes how later ones split.)
    assert hostile.failed_count + hostile.rolled_back_count <= 2, name

    return {
        "conds": len(clean.records),
        "clean_opt": clean.optimized_count,
        "hostile_opt": hostile.optimized_count,
        "failed": hostile.failed_count,
        "rolled_back": hostile.rolled_back_count,
    }


def test_robustness_drill(benchmark):
    def sweep():
        return {name: drill(name) for name in benchmark_names()}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [[name, r["conds"], r["clean_opt"], r["hostile_opt"],
             r["failed"], r["rolled_back"]] for name, r in results.items()]
    print()
    print(render_table(
        ["benchmark (x%d)" % SCALE, "conds", "clean opt", "hostile opt",
         "failed", "rolled back"], rows,
        title="Transactional optimizer under fault injection"))
    # The hostile plan must actually bite somewhere in the suite.
    assert any(r["failed"] or r["rolled_back"] for r in results.values())
    # And never wipe out a benchmark's optimization wholesale.
    for name, r in results.items():
        if r["clean_opt"]:
            assert r["hostile_opt"] >= 1 or r["conds"] <= 2, name
