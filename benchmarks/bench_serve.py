"""Serve-daemon load drill at suite scale, with chaos.

Stands up a real ``icbe serve`` daemon (4 resident workers) and drives
it the way an impatient client fleet would:

- **throughput**: the six-benchmark suite at scale 8 plus duplicate
  submissions (coalesced) and ad-hoc programs, all polled concurrently;
  reports jobs/sec and the p50/p99 submit→done latency;
- **chaos**: a crash-injected job must land DEGRADED one tier down with
  the pool healed; a SIGKILL of the daemon mid-queue, followed by a
  restart on the same run directory, must finish every admitted job
  under its original id — zero lost or corrupted results;
- **cache**: resubmitting a completed program is answered from the
  content-addressed cache without a new job.

Run:  pytest benchmarks/bench_serve.py --benchmark-only -s
"""

import concurrent.futures
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time

from repro.benchgen.suite import benchmark_names
from repro.serve.client import ServeClient
from repro.utils.tables import render_table

SCALE = 8
WORKERS = 4
ATTEMPT_TIMEOUT_S = 180.0
JOB_WAIT_S = 600.0

ADHOC_TEMPLATE = """
proc classify(v) {{
    if (v <= 0) {{ return 0; }}
    if (v > {pivot}) {{ if (v > {pivot}) {{ print {pivot}; }} }}
    return v;
}}
proc main() {{
    var r = classify(input());
    print r;
    return 0;
}}
"""


def _spawn_daemon(run_dir):
    env = dict(os.environ,
               PYTHONPATH=os.path.join(os.path.dirname(__file__), "..",
                                       "src"))
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
         "--workers", str(WORKERS), "--run-dir", run_dir,
         "--timeout", str(ATTEMPT_TIMEOUT_S), "--drain-grace", "10",
         "--seed", "2026"],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.PIPE)
    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise AssertionError("daemon died on startup: "
                                 + process.stderr.read().decode())
        try:
            client = ServeClient.from_run_dir(run_dir, timeout_s=45.0)
            if client.readyz()[0] == 200 and _pid_matches(run_dir, process):
                return process, client
        except Exception:
            pass
        time.sleep(0.05)
    raise AssertionError("daemon never became ready")


def _pid_matches(run_dir, process):
    from repro.serve.app import read_discovery
    info = read_discovery(run_dir)
    return info is not None and info.get("pid") == process.pid


def _submit_and_wait(client, body):
    started = time.monotonic()
    status, payload, _ = client.submit(**body)
    assert status in (200, 202), (status, payload)
    if status == 200:            # cache hit: answered in one round trip
        return {"id": None, "latency_s": time.monotonic() - started,
                "result": payload["result"], "cached": True}
    final = client.wait(payload["id"], timeout_s=JOB_WAIT_S)
    return {"id": payload["id"],
            "latency_s": time.monotonic() - started,
            "result": final["result"],
            "cached": False,
            "coalesced": bool(final["result"].get("coalesced"))}


def _live_workers(client):
    return sum(1 for worker in client.stats()["workers"]
               if worker["state"] != "dead")


def _quantile(sorted_values, q):
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1,
                int(round(q * (len(sorted_values) - 1))))
    return sorted_values[index]


def load_drill():
    scratch = tempfile.mkdtemp(prefix="icbe-bench-serve-")
    run_dir = os.path.join(scratch, "run")
    summary = {}
    process = None
    try:
        process, client = _spawn_daemon(run_dir)

        # -- phase 1: throughput over suite + duplicates + ad-hoc -----
        bodies = [{"suite": f"{name}@{SCALE}"}
                  for name in benchmark_names()]
        bodies += [{"suite": f"{name}@{SCALE}"}
                   for name in benchmark_names()]      # coalesce fodder
        bodies += [{"source": ADHOC_TEMPLATE.format(pivot=p)}
                   for p in (3, 5, 7, 11)]
        started = time.monotonic()
        with concurrent.futures.ThreadPoolExecutor(len(bodies)) as pool:
            outcomes = list(pool.map(
                lambda body: _submit_and_wait(client, body), bodies))
        elapsed = time.monotonic() - started
        assert all(o["result"]["status"] == "OK" for o in outcomes), (
            [o["result"] for o in outcomes if o["result"]["status"] != "OK"])
        coalesced = sum(1 for o in outcomes if o.get("coalesced"))
        assert coalesced >= 1, "duplicate submissions never coalesced"
        latencies = sorted(o["latency_s"] for o in outcomes)
        summary.update({
            "jobs": len(outcomes),
            "wall_s": elapsed,
            "jobs_per_s": len(outcomes) / elapsed,
            "p50_s": _quantile(latencies, 0.50),
            "p99_s": _quantile(latencies, 0.99),
            "coalesced": coalesced,
        })

        # -- phase 2: worker chaos — crash-inject, expect healing -----
        status, payload, _ = client.submit(
            source=ADHOC_TEMPLATE.format(pivot=13),
            inject={"kind": "crash", "tiers": [0]})
        assert status == 202, payload
        chaotic = client.wait(payload["id"], timeout_s=JOB_WAIT_S)
        assert chaotic["result"]["status"] == "DEGRADED", chaotic
        assert chaotic["result"]["tier"] == 1
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            if _live_workers(client) >= WORKERS:
                break
            time.sleep(0.2)
        assert _live_workers(client) >= WORKERS, (
            "pool never healed after the injected crash")

        # -- phase 3: daemon chaos — SIGKILL mid-queue, restart -------
        completed_before = client.stats()["jobs"]["completed"]
        pending = []
        for pivot in range(20, 36):  # fresh keys, deeper than the pool
            status, payload, _ = client.submit(
                source=ADHOC_TEMPLATE.format(pivot=pivot))
            assert status == 202, payload
            pending.append(payload["id"])
        while client.stats()["jobs"]["completed"] == completed_before:
            time.sleep(0.05)     # let at least one finish first
        process.kill()
        process.wait(timeout=30)
        process, client = _spawn_daemon(run_dir)
        recovered = client.stats()["jobs"]["recovered"]
        with concurrent.futures.ThreadPoolExecutor(len(pending)) as pool:
            finals = list(pool.map(
                lambda jid: client.wait(jid, timeout_s=JOB_WAIT_S),
                pending))
        assert all(f["result"]["status"] == "OK" for f in finals), (
            "results lost or corrupted across the SIGKILL")
        summary["killed_recovered"] = recovered

        # -- phase 4: content-addressed cache across everything -------
        status, payload, _ = client.submit(
            source=ADHOC_TEMPLATE.format(pivot=3))
        assert status == 200 and payload["cached"] is True, payload
        summary["cache_entries"] = client.stats()["cache"]["entries"]

        client.drain()
        process.wait(timeout=60)
        process = None
        return summary
    finally:
        if process is not None and process.poll() is None:
            process.kill()
            process.wait(timeout=30)
        shutil.rmtree(scratch, ignore_errors=True)


def test_serve_load_drill(benchmark):
    summary = benchmark.pedantic(load_drill, rounds=1, iterations=1)
    rows = [
        ["jobs completed (phase 1)", summary["jobs"]],
        ["throughput", f"{summary['jobs_per_s']:.2f} jobs/s"],
        ["latency p50", f"{summary['p50_s']:.2f} s"],
        ["latency p99", f"{summary['p99_s']:.2f} s"],
        ["coalesced duplicates", summary["coalesced"]],
        ["jobs recovered after SIGKILL", summary["killed_recovered"]],
        ["cache entries", summary["cache_entries"]],
    ]
    print()
    print(render_table(["metric", "value"], rows,
                       title=f"icbe serve under load "
                             f"(suite x{SCALE}, {WORKERS} workers)"))
    assert summary["jobs_per_s"] > 0
    assert summary["killed_recovered"] >= 1
