"""Regenerates paper Figure 10 (duplication vs benefit scatter).

Run:  pytest benchmarks/bench_fig10.py --benchmark-only
"""

from repro.harness.fig10 import compute_fig10, quadrant_counts, render_fig10


def test_fig10(benchmark):
    data = benchmark(compute_fig10)
    print()
    print(render_fig10(data))
    # The paper's reading of the scatter: interprocedural analysis finds
    # more correlated conditionals overall, and more of the cheap,
    # frequently-executed kind (upper-left quadrant).
    assert len(data.inter) > len(data.intra)
    inter_quadrants = quadrant_counts(data.inter)
    intra_quadrants = quadrant_counts(data.intra)
    assert inter_quadrants["upper_left"] >= intra_quadrants["upper_left"]
    assert inter_quadrants["upper_left"] > 0
