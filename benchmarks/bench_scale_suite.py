"""Tables 1 and 2 at SPEC-like program scale.

The handwritten suite cores are idiom-dense miniatures; this bench
regenerates the two cost tables on the scale-8 tier (thousands of ICFG
nodes per program, like the paper's Table 1 programs) and asserts the
properties that must survive scaling:

- the demand-driven analysis stays bounded per conditional (budget);
- analysis time stays interactive on every program;
- interprocedural detection still dominates intraprocedural.

Run:  pytest benchmarks/bench_scale_suite.py --benchmark-only
"""

from repro.analysis import AnalysisConfig, analyze_branch
from repro.benchgen.suite import benchmark_names, load_benchmark
from repro.harness.metrics import percent
from repro.interp import run_icfg
from repro.ir import lower_program, verify_icfg
from repro.utils.tables import render_table

SCALE = 8
BUDGET = 1000


def measure(name):
    import time
    bench = load_benchmark(name, scale=SCALE)
    icfg = lower_program(bench.program)
    verify_icfg(icfg)
    execution = run_icfg(icfg, bench.workload, step_limit=5_000_000)
    assert execution.status == "ok"

    started = time.perf_counter()
    pairs = 0
    inter_correlated = intra_correlated = 0
    branches = icfg.branch_nodes()
    for branch in branches:
        inter = analyze_branch(icfg, branch.id,
                               AnalysisConfig(budget=BUDGET))
        intra = analyze_branch(
            icfg, branch.id,
            AnalysisConfig(interprocedural=False, budget=BUDGET))
        pairs += inter.stats.pairs_examined
        inter_correlated += inter.has_correlation
        intra_correlated += intra.has_correlation
    seconds = time.perf_counter() - started

    return {
        "nodes": icfg.node_count(),
        "conds": len(branches),
        "cond_pct": percent(len(branches), icfg.executable_node_count()),
        "pairs_per_cond": pairs / max(1, len(branches)),
        "seconds": seconds,
        "inter": inter_correlated,
        "intra": intra_correlated,
    }


def test_suite_at_scale(benchmark):
    def sweep():
        return {name: measure(name) for name in benchmark_names()}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [[name, r["nodes"], r["conds"], r["cond_pct"],
             r["pairs_per_cond"], round(r["seconds"], 3),
             r["inter"], r["intra"]] for name, r in results.items()]
    print()
    print(render_table(
        ["benchmark (x8)", "nodes", "conds", "cond %", "pairs/cond",
         "analysis [s]", "inter corr", "intra corr"], rows,
        title=f"Tables 1+2 at scale {SCALE}"))
    for name, r in results.items():
        assert r["nodes"] > 1500, name
        assert r["pairs_per_cond"] <= BUDGET, name
        assert r["seconds"] < 30.0, name
        assert r["inter"] >= r["intra"], name
    total_inter = sum(r["inter"] for r in results.values())
    total_intra = sum(r["intra"] for r in results.values())
    # The paper's 2x detection advantage persists at scale.
    assert total_inter >= 1.5 * total_intra
