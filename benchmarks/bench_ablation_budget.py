"""Ablation: the analysis termination budget (paper §4).

The paper terminates the demand-driven analysis after 1000 node-query
pairs and argues early termination barely hurts because far-flung
correlation would be too expensive to exploit anyway.  This bench
sweeps the budget and reports how many correlated conditionals each
level finds across the suite.

Run:  pytest benchmarks/bench_ablation_budget.py --benchmark-only
"""

from repro.analysis import AnalysisConfig
from repro.benchgen.suite import benchmark_names
from repro.harness.metrics import branch_population, prepare_benchmark
from repro.utils.tables import render_table

BUDGETS = (10, 50, 200, 1000, 50_000)


def correlated_counts(budget):
    found = fully = 0
    for name in benchmark_names():
        context = prepare_benchmark(name)
        for info in branch_population(
                context, AnalysisConfig(budget=budget)):
            found += info.correlated
            fully += info.fully_correlated
    return found, fully


def test_budget_ablation(benchmark):
    def sweep():
        return {budget: correlated_counts(budget) for budget in BUDGETS}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [[budget, results[budget][0], results[budget][1]]
            for budget in BUDGETS]
    print()
    print(render_table(["budget", "correlated", "fully correlated"], rows,
                       title="Ablation: analysis termination budget"))
    # Monotone: a larger budget never finds less.
    counts = [results[b][0] for b in BUDGETS]
    assert counts == sorted(counts)
    # The paper's observation: 1000 is effectively exhaustive.
    assert results[1000][0] == results[50_000][0]
    # And a tiny budget misses real correlation.
    assert results[10][0] < results[1000][0]
