"""Shared analysis context: suite-scale speedup at identical outcomes.

The optimizer's pass pipeline shares one generation-keyed
`AnalysisContext` across conditionals (cross-branch summary cache,
memoized mod/ref and indices, snapshot reuse, restore elision, in-place
restructuring under snapshot protection, and dirty-procedure-scoped
re-verification).  `--no-analysis-cache` recovers the original
derive-everything-per-conditional behaviour.

This bench runs the scale-8 tier (thousands of ICFG nodes per program)
both ways and asserts the two properties that justify the architecture:

- **equivalence**: per-branch outcome sequences are identical and the
  optimized graphs are byte-identical (and both verify);
- **speed**: the shared context is at least 1.5x faster over the suite.

Run:  pytest benchmarks/bench_cache.py --benchmark-only -s
"""

import time

from repro.analysis import AnalysisConfig
from repro.benchgen.suite import benchmark_names, load_benchmark
from repro.ir import dump_icfg, lower_program, verify_icfg
from repro.transform import ICBEOptimizer, OptimizerOptions
from repro.utils.tables import render_table

SCALE = 8
BUDGET = 1000
LIMIT = 40
MIN_SUITE_SPEEDUP = 1.5


def _options(analysis_cache):
    return OptimizerOptions(config=AnalysisConfig(budget=BUDGET),
                            duplication_limit=LIMIT,
                            analysis_cache=analysis_cache)


def measure(name):
    icfg = lower_program(load_benchmark(name, scale=SCALE).program)
    verify_icfg(icfg)

    started = time.perf_counter()
    cached = ICBEOptimizer(_options(True)).optimize(icfg)
    cached_s = time.perf_counter() - started

    started = time.perf_counter()
    plain = ICBEOptimizer(_options(False)).optimize(icfg)
    plain_s = time.perf_counter() - started

    # Equivalence: same per-branch verdicts, byte-identical result, and
    # both graphs pass full structural verification.
    assert ([(r.branch_id, r.outcome) for r in cached.records]
            == [(r.branch_id, r.outcome) for r in plain.records]), name
    assert dump_icfg(cached.optimized) == dump_icfg(plain.optimized), name
    verify_icfg(cached.optimized)
    verify_icfg(plain.optimized)

    return {
        "cached_s": cached_s,
        "plain_s": plain_s,
        "optimized": cached.optimized_count,
        "records": len(cached.records),
        "hits": cached.cache.summary_hits,
        "misses": cached.cache.summary_misses,
        "reused": cached.cache.analyses_reused,
        "snap_reuse": cached.cache.snapshot_reuses,
        "elided": cached.cache.restores_elided,
    }


def test_cache_speedup_at_scale(benchmark):
    def sweep():
        return {name: measure(name) for name in benchmark_names()}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [[name, r["records"], r["optimized"],
             round(r["cached_s"], 2), round(r["plain_s"], 2),
             round(r["plain_s"] / r["cached_s"], 2),
             f"{r['hits']}/{r['misses']}", r["reused"],
             r["snap_reuse"], r["elided"]]
            for name, r in results.items()]
    cached_total = sum(r["cached_s"] for r in results.values())
    plain_total = sum(r["plain_s"] for r in results.values())
    speedup = plain_total / cached_total
    rows.append(["TOTAL", "", "", round(cached_total, 2),
                 round(plain_total, 2), round(speedup, 2), "", "", "", ""])
    print()
    print(render_table(
        ["benchmark (x8)", "conds", "opt", "cache [s]", "no-cache [s]",
         "speedup", "hits/misses", "analyses reused", "snap reused",
         "restores elided"], rows,
        title=f"Shared analysis context at scale {SCALE} "
              f"(identical outcomes both ways)"))
    assert speedup >= MIN_SUITE_SPEEDUP, (
        f"suite speedup {speedup:.2f}x < {MIN_SUITE_SPEEDUP}x")
