"""The paper's headline claims, recomputed end to end.

- ICBE eliminates a substantial share of executed conditionals
  (paper: 3%..18% on SPEC95; our idiom-dense suite runs hotter, and the
  assertion checks the direction and a sane band).
- At matched code growth, ICBE beats the intraprocedural baseline by a
  large factor (paper: about 2.5x).

Run:  pytest benchmarks/bench_headline.py --benchmark-only
"""

from repro.harness.fig11 import compute_fig11
from repro.harness.headline import compute_headline, render_headline


def test_headline(benchmark):
    def compute():
        return compute_headline(compute_fig11())

    summary = benchmark.pedantic(compute, rounds=1, iterations=1)
    print()
    print(render_headline(summary))
    # Direction + magnitude of the same-growth comparison.
    assert summary.mean_ratio >= 2.0
    # Every benchmark sees a real reduction; the band brackets the
    # paper's 3..18% from above because our suite is idiom-dense.
    assert summary.reduction_min_pct >= 3.0
    assert summary.reduction_max_pct <= 70.0
