"""Regenerates paper Table 1 (benchmark characteristics) and times it.

Run:  pytest benchmarks/bench_table1.py --benchmark-only
"""

from repro.harness.table1 import compute_table1, render_table1


def test_table1(benchmark):
    rows = benchmark(compute_table1)
    print()
    print(render_table1(rows))
    # Shape assertions mirroring the paper's Table 1: conditionals are a
    # significant share of nodes, and the dynamic share exceeds static
    # (branches run hot), as in the paper's last two columns.
    assert len(rows) == 6
    for row in rows:
        assert 10.0 < row.static_cond_pct < 45.0
        assert row.dynamic_cond_pct > row.static_cond_pct * 0.8
