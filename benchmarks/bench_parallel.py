"""Persistent summary store: warm-over-cold speedup of the analysis.

The on-disk store (`repro.analysis.store`) persists completed
summary-node answer sets content-addressed by (callee closure body,
exit, query, semantic config).  What it accelerates is the correlation
*analysis* — the demand-driven fixpoints the optimizer (and the
``--analysis-jobs`` prewarm workers) run per branch; the transform
itself never touches it.  This bench therefore measures the analysis
sweep — every branch of every scale-8 suite benchmark analyzed through
a store-backed context — cold (empty store directory) and then warm
(same directory, fresh process state), and asserts:

- **equivalence**: per-branch answer sets are identical cold and warm
  (store entries are exact by construction — only completed analyses
  persist);
- **speed**: the warm sweep is at least 1.5x faster over the suite.

A serial-vs-``analysis_jobs`` byte-equivalence spot check of the full
optimizer rides along (the exhaustive version is
``ci_parallel_equivalence.py`` and the property suite).

Run:  pytest benchmarks/bench_parallel.py --benchmark-only -s
"""

import shutil
import tempfile
import time

from repro.analysis import AnalysisConfig, analyze_branch
from repro.analysis.context import AnalysisContext
from repro.analysis.store import SummaryStore
from repro.benchgen.suite import benchmark_names, load_benchmark
from repro.ir import dump_icfg, lower_program, verify_icfg
from repro.transform import ICBEOptimizer, OptimizerOptions
from repro.utils.tables import render_table

SCALE = 8
BUDGET = 1000
MIN_SUITE_SPEEDUP = 1.5
CONFIG = AnalysisConfig(budget=BUDGET)


def sweep(icfg, store_root):
    """Analyze every branch through a store-backed context."""
    context = AnalysisContext()
    context.bind(icfg)
    context.attach_store(SummaryStore(store_root, CONFIG))
    answers = []
    started = time.perf_counter()
    for branch_id in sorted(b.id for b in icfg.branch_nodes()):
        result = analyze_branch(icfg, branch_id, CONFIG, context=context)
        answers.append((branch_id, result.branch_answers))
    wall_s = time.perf_counter() - started
    return wall_s, answers, context.store.stats


def measure(name):
    icfg = lower_program(load_benchmark(name, scale=SCALE).program)
    verify_icfg(icfg)
    store_root = tempfile.mkdtemp(prefix="icbe-bench-store-")
    try:
        cold_s, cold_answers, cold_stats = sweep(icfg, store_root)
        warm_s, warm_answers, warm_stats = sweep(icfg, store_root)
    finally:
        shutil.rmtree(store_root, ignore_errors=True)
    assert warm_answers == cold_answers, name
    assert warm_stats.stores == 0, name       # nothing left to learn
    return {"cold_s": cold_s, "warm_s": warm_s,
            "branches": len(cold_answers),
            "persisted": cold_stats.stores,
            "warm_hits": warm_stats.hits,
            "warm_misses": warm_stats.misses}


def check_parallel_equivalence(name):
    """Full-optimizer spot check: --analysis-jobs is byte-invisible."""
    icfg = lower_program(load_benchmark(name, scale=SCALE).program)
    serial = ICBEOptimizer(OptimizerOptions(
        config=AnalysisConfig(budget=BUDGET))).optimize(icfg)
    wide = ICBEOptimizer(OptimizerOptions(
        config=AnalysisConfig(budget=BUDGET),
        analysis_jobs=4)).optimize(icfg)
    assert ([(r.branch_id, r.outcome) for r in serial.records]
            == [(r.branch_id, r.outcome) for r in wide.records]), name
    assert dump_icfg(serial.optimized) == dump_icfg(wide.optimized), name
    verify_icfg(wide.optimized)


def test_warm_store_speedup_at_scale(benchmark):
    def full_sweep():
        check_parallel_equivalence("li_like")
        return {name: measure(name) for name in benchmark_names()}

    results = benchmark.pedantic(full_sweep, rounds=1, iterations=1)
    rows = [[name, r["branches"], r["persisted"],
             f"{r['warm_hits']}/{r['warm_misses']}",
             round(r["cold_s"], 2), round(r["warm_s"], 2),
             round(r["cold_s"] / r["warm_s"], 2)]
            for name, r in results.items()]
    cold_total = sum(r["cold_s"] for r in results.values())
    warm_total = sum(r["warm_s"] for r in results.values())
    speedup = cold_total / warm_total
    rows.append(["TOTAL", "", "", "", round(cold_total, 2),
                 round(warm_total, 2), round(speedup, 2)])
    print()
    print(render_table(
        ["benchmark (x8)", "branches", "persisted", "warm hits/misses",
         "cold [s]", "warm [s]", "speedup"], rows,
        title=f"Summary store at scale {SCALE} "
              f"(identical answers cold and warm)"))
    assert speedup >= MIN_SUITE_SPEEDUP, (
        f"warm-store suite speedup {speedup:.2f}x < {MIN_SUITE_SPEEDUP}x")
