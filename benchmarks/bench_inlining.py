"""Inlining-based ICBE vs entry/exit splitting (paper §5).

The paper argues most interprocedural branch-elimination opportunities
can be exploited by exhaustive pre-pass inlining plus intraprocedural
elimination, but that this "incurs large code growth" compared with the
restructuring approach, whose duplication is confined to correlated
paths.  This bench measures both pipelines on the suite:

- **split**: interprocedural ICBE (entry/exit splitting), limit 100;
- **inline**: exhaustive inlining (non-recursive call sites), then the
  intraprocedural eliminator with the same limit.

Run:  pytest benchmarks/bench_inlining.py --benchmark-only
"""

from repro.analysis import AnalysisConfig
from repro.benchgen.suite import benchmark_names
from repro.harness.metrics import prepare_benchmark
from repro.interp import run_icfg
from repro.transform import ICBEOptimizer, OptimizerOptions
from repro.transform.inline import inline_exhaustively
from repro.utils.tables import render_table

LIMIT = 100


def measure(context):
    baseline_nodes = context.icfg.executable_node_count()
    baseline_conds = context.profile.executed_conditionals

    split_opt = ICBEOptimizer(OptimizerOptions(
        config=AnalysisConfig(interprocedural=True), duplication_limit=LIMIT))
    split = split_opt.optimize(context.icfg)
    split_run = run_icfg(split.optimized, context.bench.workload)
    assert split_run.observable == context.execution.observable

    flattened = context.icfg.clone()
    inline_exhaustively(flattened, node_budget=50_000)
    intra_opt = ICBEOptimizer(OptimizerOptions(
        config=AnalysisConfig(interprocedural=False),
        duplication_limit=LIMIT))
    inlined = intra_opt.optimize(flattened)
    inlined_run = run_icfg(inlined.optimized, context.bench.workload)
    assert inlined_run.observable == context.execution.observable

    def pct(value, base):
        return 100.0 * value / base if base else 0.0

    return {
        "split_growth": pct(split.optimized.executable_node_count()
                            - baseline_nodes, baseline_nodes),
        "inline_growth": pct(inlined.optimized.executable_node_count()
                             - baseline_nodes, baseline_nodes),
        "split_reduction": pct(baseline_conds
                               - split_run.profile.executed_conditionals,
                               baseline_conds),
        "inline_reduction": pct(baseline_conds
                                - inlined_run.profile.executed_conditionals,
                                baseline_conds),
    }


def test_inlining_vs_splitting(benchmark):
    def sweep():
        return {name: measure(prepare_benchmark(name))
                for name in benchmark_names()}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [[name, r["split_growth"], r["inline_growth"],
             r["split_reduction"], r["inline_reduction"]]
            for name, r in results.items()]
    print()
    print(render_table(
        ["benchmark", "split growth %", "inline growth %",
         "split reduction %", "inline reduction %"], rows,
        title="Paper §5: splitting vs exhaustive inlining"))
    # The paper's claim: inlining costs more code growth on average,
    # while both pipelines reach comparable elimination.
    mean_split = sum(r["split_growth"] for r in results.values()) / 6
    mean_inline = sum(r["inline_growth"] for r in results.values()) / 6
    assert mean_inline > mean_split
    for r in results.values():
        assert r["inline_reduction"] >= 0
        assert r["split_reduction"] >= 0
