"""CI gate: SIGKILL the serve daemon mid-request, restart, recover.

Stands up ``icbe serve``, submits the six-benchmark suite at scale 2
plus one hang-injected job, SIGKILLs the daemon while work is still in
flight, restarts it on the same run directory, and fails the build if:

- any admitted job fails to reach a definite result under its original
  id after the restart (journal recovery lost work), or
- the hang-injected job does not land DEGRADED exactly one tier down
  (the ladder did not survive the restart), or
- resubmitting an already-completed benchmark is not answered from the
  content-addressed cache (the disk cache did not survive), or
- the restarted daemon cannot drain cleanly (exit 0) afterwards.

Run:  PYTHONPATH=src python benchmarks/ci_chaos_serve.py
"""

import os
import subprocess
import sys
import tempfile
import time

from repro.benchgen.suite import benchmark_names
from repro.serve.app import read_discovery
from repro.serve.client import ServeClient

SCALE = 2
WORKERS = 2
SEED = 97
ATTEMPT_TIMEOUT_S = 60.0
JOB_WAIT_S = 420.0


def spawn(run_dir):
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
         "--workers", str(WORKERS), "--run-dir", run_dir,
         "--timeout", str(ATTEMPT_TIMEOUT_S), "--seed", str(SEED)],
        stdout=subprocess.DEVNULL, stderr=subprocess.PIPE)
    deadline = time.monotonic() + 120.0
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise SystemExit("serve daemon died on startup:\n"
                             + process.stderr.read().decode())
        info = read_discovery(run_dir)
        if info is not None and info.get("pid") == process.pid:
            client = ServeClient(info["host"], info["port"],
                                 timeout_s=60.0)
            try:
                if client.readyz()[0] == 200:
                    return process, client
            except OSError:
                pass
        time.sleep(0.05)
    raise SystemExit("serve daemon never became ready")


def main():
    scratch = tempfile.mkdtemp(prefix="icbe-ci-chaos-serve-")
    run_dir = os.path.join(scratch, "run")
    process, client = spawn(run_dir)

    expectations = {}            # job id -> expected status
    for name in benchmark_names():
        status, payload, _ = client.submit(suite=f"{name}@{SCALE}")
        if status != 202:
            raise SystemExit(f"submission refused: {status} {payload}")
        expectations[payload["id"]] = "OK"
    status, payload, _ = client.submit(
        suite=f"li_like@{SCALE}",
        inject={"kind": "hang", "tiers": [0]})
    if status != 202:
        raise SystemExit(f"chaos submission refused: {status} {payload}")
    expectations[payload["id"]] = "DEGRADED"
    print(f"admitted {len(expectations)} jobs "
          f"(1 hang-injected), waiting for first completion...")

    deadline = time.monotonic() + JOB_WAIT_S
    while client.stats()["jobs"]["completed"] == 0:
        if time.monotonic() > deadline:
            raise SystemExit("no job completed before the kill window")
        time.sleep(0.1)

    print("SIGKILL mid-request")
    process.kill()
    process.wait(timeout=30)

    process, client = spawn(run_dir)
    recovered = client.stats()["jobs"]["recovered"]
    print(f"restarted: {recovered} interrupted job(s) recovered "
          f"from the journal")
    if recovered < 1:
        raise SystemExit("restart recovered nothing; the kill landed "
                         "after all jobs finished (widen the window)")

    failures = []
    for job_id, expected in expectations.items():
        final = client.wait(job_id, timeout_s=JOB_WAIT_S)
        got = final["result"]["status"]
        tier = final["result"]["tier"]
        print(f"  {job_id} {final['name']:<16} {got:<9} tier {tier}")
        if got != expected:
            failures.append(f"{job_id} ({final['name']}): expected "
                            f"{expected}, got {got}")
        if expected == "DEGRADED" and tier != 1:
            failures.append(f"{job_id}: hang cost {tier} tiers, not 1")
    if failures:
        raise SystemExit("jobs lost or mis-recovered after SIGKILL:\n  "
                         + "\n  ".join(failures))

    status, payload, _ = client.submit(suite=f"go_like@{SCALE}")
    if status != 200 or not payload.get("cached"):
        raise SystemExit(f"resubmission was not cache-served: "
                         f"{status} {payload}")
    print("resubmission of a completed benchmark: cache hit")

    client.drain()
    code = process.wait(timeout=120)
    if code != 0:
        raise SystemExit(f"drained daemon exited {code}, expected 0")
    print("chaos-serve gate passed: no lost results, cache intact, "
          "clean drain")


if __name__ == "__main__":
    main()
