"""Ablation: correlation sources (paper §3.1 vs §4).

The paper describes four correlation sources but its implementation
enabled two (constant assignments and conditional branches).  This
bench compares: paper-implementation sources, each extra source alone,
and everything (including the off-by-default offset substitution).

Run:  pytest benchmarks/bench_ablation_sources.py --benchmark-only
"""

from repro.analysis import AnalysisConfig
from repro.analysis.config import (ALL_SOURCES, CorrelationSource,
                                   PAPER_SOURCES)
from repro.benchgen.suite import benchmark_names
from repro.harness.metrics import branch_population, prepare_benchmark
from repro.utils.tables import render_table

CONFIGS = {
    "paper (const+branch)": AnalysisConfig(sources=PAPER_SOURCES),
    "+unsigned ranges": AnalysisConfig(sources=frozenset(
        PAPER_SOURCES | {CorrelationSource.UNSIGNED_CONVERSION})),
    "+dereference": AnalysisConfig(sources=frozenset(
        PAPER_SOURCES | {CorrelationSource.POINTER_DEREFERENCE})),
    "all four": AnalysisConfig(sources=ALL_SOURCES),
    "all + offset subst": AnalysisConfig(sources=ALL_SOURCES,
                                         offset_substitution=True),
}


def correlation_counts(config):
    """(some, fully) correlated conditional counts across the suite."""
    some = fully = 0
    for name in benchmark_names():
        context = prepare_benchmark(name)
        for info in branch_population(context, config):
            some += info.correlated
            fully += info.fully_correlated
    return some, fully


def test_source_ablation(benchmark):
    def sweep():
        return {label: correlation_counts(config)
                for label, config in CONFIGS.items()}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [[label, some, fully]
            for label, (some, fully) in results.items()]
    print()
    print(render_table(
        ["configuration", "some correlation", "full correlation"], rows,
        title="Ablation: correlation sources"))
    paper = results["paper (const+branch)"]
    # Each added source can only help (on both metrics).
    for label, counts in results.items():
        assert counts[0] >= paper[0]
        assert counts[1] >= paper[1]
    # The extra sources convert partial correlation into full
    # correlation: unsigned ranges prove the non-error return range,
    # dereferences prove pointer guards redundant.
    assert results["+unsigned ranges"][1] > paper[1]
    assert results["+dereference"][1] > paper[1]
    assert results["all four"][1] >= results["+unsigned ranges"][1]
