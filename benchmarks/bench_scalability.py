"""Scalability: demand-driven analysis cost vs program size (paper §3.3).

The paper argues the analysis is polynomial (O(P*N*V)) because it is
demand driven.  This bench grows random programs and measures total
node-query pairs per conditional, which should stay bounded by the
budget and grow sublinearly with program size for local correlations.

Run:  pytest benchmarks/bench_scalability.py --benchmark-only
"""

import time

from repro.analysis import AnalysisConfig, analyze_branch
from repro.benchgen import GeneratorOptions, generate_program
from repro.ir import lower_program
from repro.utils.tables import render_table

SIZES = (2, 4, 8, 16)
CONFIG = AnalysisConfig(budget=1000)


def measure(procedures):
    options = GeneratorOptions(procedures=procedures,
                               statements_per_proc=10)
    icfg = lower_program(generate_program(seed=procedures, options=options))
    started = time.perf_counter()
    pairs = 0
    branches = icfg.branch_nodes()
    for branch in branches:
        pairs += analyze_branch(icfg, branch.id, CONFIG).stats.pairs_examined
    elapsed = time.perf_counter() - started
    return {
        "nodes": icfg.node_count(),
        "conds": len(branches),
        "pairs_per_cond": pairs / max(1, len(branches)),
        "seconds": elapsed,
    }


def test_analysis_scales(benchmark):
    def sweep():
        return {size: measure(size) for size in SIZES}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [[size, r["nodes"], r["conds"], r["pairs_per_cond"],
             round(r["seconds"], 4)]
            for size, r in results.items()]
    print()
    print(render_table(
        ["procedures", "nodes", "conditionals", "pairs/cond", "seconds"],
        rows, title="Scalability: demand-driven analysis"))
    # Demand-driven: per-conditional work bounded by the budget and not
    # exploding with program size.
    for r in results.values():
        assert r["pairs_per_cond"] <= CONFIG.budget
    small = results[SIZES[0]]["pairs_per_cond"]
    large = results[SIZES[-1]]["pairs_per_cond"]
    node_growth = results[SIZES[-1]]["nodes"] / results[SIZES[0]]["nodes"]
    assert large <= small * node_growth, (
        "per-conditional analysis work grew faster than program size")
