"""Regenerates paper Table 2 (cost of correlation analysis) and times it.

Run:  pytest benchmarks/bench_table2.py --benchmark-only
"""

from repro.harness.table2 import compute_table2, render_table2


def test_table2(benchmark):
    rows = benchmark(compute_table2)
    print()
    print(render_table2(rows))
    assert len(rows) == 6
    for row in rows:
        # The paper's point: analysis cost is modest.  Demand-driven
        # analysis examines a bounded number of pairs per conditional
        # (budget 1000), and memory for queries is within the same
        # order as the program representation.
        assert row.pairs_per_conditional <= 1000
        assert row.analysis_kb < row.progrep_kb * 10
        assert row.analysis_seconds < 5.0
