"""The query-cache tradeoff (paper §3.3).

"The analysis cost can be reduced by caching at all nodes the results
of all queries resolved in previous analyses...  However, maintaining
the cache proved counterproductive in our implementation due to
increased memory requirements."

This bench measures both sides on the suite: total node-query pairs
processed (work saved by the cache) and peak live pairs (the memory the
paper worried about; fresh engines hold only one conditional's pairs at
a time).

Run:  pytest benchmarks/bench_query_cache.py --benchmark-only
"""

from repro.analysis import AnalysisConfig, analyze_branch
from repro.analysis.engine import CorrelationEngine
from repro.benchgen.suite import benchmark_names
from repro.harness.metrics import prepare_benchmark
from repro.utils.tables import render_table

CONFIG = AnalysisConfig(budget=50_000)


def measure(name):
    context = prepare_benchmark(name)
    branches = [b.id for b in context.icfg.branch_nodes()]

    fresh_pairs = 0
    fresh_peak = 0
    for bid in branches:
        result = analyze_branch(context.icfg, bid, CONFIG)
        fresh_pairs += result.stats.pairs_examined
        fresh_peak = max(fresh_peak, result.stats.queries_raised)

    engine = CorrelationEngine(context.icfg, CONFIG)
    cached_pairs = 0
    for bid in branches:
        result = analyze_branch(context.icfg, bid, CONFIG, engine=engine)
        cached_pairs += result.stats.pairs_examined
    cached_peak = sum(len(qs) for qs in engine.raised.values())

    return {"fresh_pairs": fresh_pairs, "cached_pairs": cached_pairs,
            "fresh_peak": fresh_peak, "cached_peak": cached_peak}


def test_query_cache_tradeoff(benchmark):
    def sweep():
        return {name: measure(name) for name in benchmark_names()}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [[name, r["fresh_pairs"], r["cached_pairs"], r["fresh_peak"],
             r["cached_peak"]] for name, r in results.items()]
    print()
    print(render_table(
        ["benchmark", "pairs (fresh)", "pairs (cached)",
         "peak live pairs (fresh)", "peak live pairs (cached)"], rows,
        title="Paper §3.3: query caching tradeoff"))
    for name, r in results.items():
        # The cache always saves work...
        assert r["cached_pairs"] <= r["fresh_pairs"], name
        # ...at a memory cost: the cached engine retains more live
        # pairs than any single fresh analysis needed.
        assert r["cached_peak"] >= r["fresh_peak"], name
