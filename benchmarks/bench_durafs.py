"""The durable-I/O layer must be free when nothing is armed.

Every store entry, journal append, and cache write now routes through
:mod:`repro.utils.durafs`.  The layer buys injectable faults and
centralized recovery, and it must cost essentially nothing in exchange:
with no plan armed the gate is one ``None`` check, and even with a
plan armed (the chaos-CI configuration) every consult is a short list
scan.

Two measurements, median of N rounds each:

- **warm-store sweep**: the suite optimized against a fully warm
  summary store, once with the production adapter (no plan — the gate
  short-circuits) and once with a worst-case armed adapter (a fault
  plan for an irrelevant site, so *every* gated op pays a full consult
  that never fires).  The armed sweep must be within 2% of the plain
  one: arming chaos in CI may not change what it measures.
- **gated-vs-raw micro**: 1000 atomic JSON writes through durafs
  versus a hand-rolled tmp+rename loop doing identical syscalls
  (fsync off in both, so the constant disk cost does not drown the
  bookkeeping being measured).  Reported for visibility; the macro
  number above is the gate.

Run:  pytest benchmarks/bench_durafs.py --benchmark-only -s
"""

import json
import os
import statistics
import time

from repro.analysis import AnalysisConfig
from repro.benchgen.suite import benchmark_names, load_benchmark
from repro.ir import dump_icfg, lower_program, verify_icfg
from repro.transform import ICBEOptimizer, OptimizerOptions
from repro.utils import durafs
from repro.utils.durafs import Filesystem, FsFaultPlan, FsFaultSpec
from repro.utils.tables import render_table

SCALE = 4
BUDGET = 1000
ROUNDS = 5
MICRO_WRITES = 1000
MAX_OVERHEAD = 0.02          # armed sweep within 2% of the plain sweep


def _optimize_all(store_dir, fs):
    dumps = []
    for name in benchmark_names():
        icfg = lower_program(load_benchmark(name, scale=SCALE).program)
        options = OptimizerOptions(config=AnalysisConfig(budget=BUDGET),
                                   summary_store_dir=store_dir)
        durafs.DEFAULT_FS = fs
        try:
            result = ICBEOptimizer(options).optimize(icfg)
        finally:
            durafs.DEFAULT_FS = Filesystem()
        dumps.append(dump_icfg(result.optimized))
    return dumps


def _median_sweep_s(store_dir, fs):
    samples = []
    for _ in range(ROUNDS):
        started = time.perf_counter()
        _optimize_all(store_dir, fs)
        samples.append(time.perf_counter() - started)
    return statistics.median(samples)


def test_armed_gate_overhead_on_warm_store_sweep(tmp_path, benchmark):
    store_dir = str(tmp_path / "store")
    plain_fs = Filesystem()
    # Worst case that still measures the same work: a plan is armed, so
    # every gated op runs a full consult, but the spec can never fire.
    armed_fs = Filesystem(FsFaultPlan(
        [FsFaultSpec("no.such.site", "write", hit=1)]))

    def sweep():
        # Warm the store once (cold run), then measure warm sweeps.
        cold = _optimize_all(store_dir, plain_fs)
        plain_s = _median_sweep_s(store_dir, plain_fs)
        armed_s = _median_sweep_s(store_dir, armed_fs)
        warm = _optimize_all(store_dir, armed_fs)
        assert warm == cold          # the armed gate changes nothing
        return cold, plain_s, armed_s

    cold, plain_s, armed_s = benchmark.pedantic(sweep, rounds=1,
                                                iterations=1)
    overhead = armed_s / plain_s - 1.0
    print()
    print(render_table(
        ["sweep", "median [s]", "vs plain"],
        [["plain gate (no plan)", round(plain_s, 3), "1.00x"],
         ["armed gate (never fires)", round(armed_s, 3),
          f"{armed_s / plain_s:.3f}x"]],
        title=f"Warm-store suite sweep at scale {SCALE} "
              f"(median of {ROUNDS}, {len(cold)} benchmarks)"))
    assert overhead < MAX_OVERHEAD, (
        f"armed durafs gate costs {overhead * 100:.1f}% on the warm "
        f"sweep (budget {MAX_OVERHEAD * 100:.0f}%)")


def _raw_atomic_write(path, payload):
    data = json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
    os.replace(tmp, path)


def test_gated_vs_raw_micro(tmp_path, benchmark):
    payload = {"format": 1, "answers": [{"kind": "true"}] * 8}
    gated_dir = str(tmp_path / "gated")
    raw_dir = str(tmp_path / "raw")
    os.makedirs(gated_dir)
    os.makedirs(raw_dir)

    def measure():
        samples_gated, samples_raw = [], []
        for _ in range(ROUNDS):
            started = time.perf_counter()
            for index in range(MICRO_WRITES):
                durafs.atomic_write_json(
                    os.path.join(gated_dir, f"{index}.json"), payload,
                    site="bench.micro", do_fsync=False)
            samples_gated.append(time.perf_counter() - started)
            started = time.perf_counter()
            for index in range(MICRO_WRITES):
                _raw_atomic_write(os.path.join(raw_dir, f"{index}.json"),
                                  payload)
            samples_raw.append(time.perf_counter() - started)
        return statistics.median(samples_gated), statistics.median(samples_raw)

    gated_s, raw_s = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    print(render_table(
        ["path", "median [s]", "per write [us]"],
        [["durafs (gated, fsync off)", round(gated_s, 4),
          round(gated_s / MICRO_WRITES * 1e6, 1)],
         ["raw tmp+rename", round(raw_s, 4),
          round(raw_s / MICRO_WRITES * 1e6, 1)]],
        title=f"Atomic JSON writes x{MICRO_WRITES} "
              f"(median of {ROUNDS}; bookkeeping only)"))
    # Visibility, not a hard gate: the adapter indirection should stay
    # within the same order of magnitude as the raw loop.
    assert gated_s < raw_s * 3
