"""Full ICBE followed by partial inlining (paper §5).

The paper's recommended combination: restructure first (splitting keeps
growth low), then inline only the frequently executed call sites of the
optimized program to also recover call overhead on hot paths.  This
bench measures, per suite program, the call executions removed and the
growth of partial vs exhaustive inlining.

Run:  pytest benchmarks/bench_partial_inline.py --benchmark-only
"""

from repro.analysis import AnalysisConfig
from repro.benchgen.suite import benchmark_names
from repro.harness.metrics import prepare_benchmark
from repro.interp import run_icfg
from repro.ir.nodes import CallNode
from repro.transform import ICBEOptimizer, OptimizerOptions
from repro.transform.inline import inline_exhaustively, inline_hot_calls
from repro.utils.tables import render_table


def call_executions(icfg, result):
    return sum(count for node_id, count in result.profile.node_counts.items()
               if isinstance(icfg.nodes.get(node_id), CallNode))


def measure(name):
    context = prepare_benchmark(name)
    optimizer = ICBEOptimizer(OptimizerOptions(
        config=AnalysisConfig(interprocedural=True), duplication_limit=100))
    optimized = optimizer.optimize(context.icfg).optimized
    opt_run = run_icfg(optimized, context.bench.workload)
    assert opt_run.observable == context.execution.observable
    base_nodes = optimized.executable_node_count()
    base_calls = call_executions(optimized, opt_run)

    counts = sorted((opt_run.profile.count_of(c.id)
                     for c in optimized.call_nodes()), reverse=True)
    threshold = counts[0] // 2 + 1 if counts else 1

    partial = optimized.clone()
    inlined = inline_hot_calls(partial, opt_run.profile, threshold)
    partial_run = run_icfg(partial, context.bench.workload)
    assert partial_run.observable == context.execution.observable

    full = optimized.clone()
    inline_exhaustively(full, node_budget=100_000)
    full_run = run_icfg(full, context.bench.workload)
    assert full_run.observable == context.execution.observable

    def growth(graph):
        return (100.0 * (graph.executable_node_count() - base_nodes)
                / base_nodes)

    return {
        "inlined": inlined,
        "base_calls": base_calls,
        "partial_calls": call_executions(partial, partial_run),
        "partial_growth": growth(partial),
        "full_growth": growth(full),
    }


def test_partial_inlining(benchmark):
    def sweep():
        return {name: measure(name) for name in benchmark_names()}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [[name, r["inlined"], r["base_calls"], r["partial_calls"],
             r["partial_growth"], r["full_growth"]]
            for name, r in results.items()]
    print()
    print(render_table(
        ["benchmark", "sites inlined", "call execs before",
         "call execs after", "partial growth %", "full growth %"], rows,
        title="Paper §5: ICBE + partial inlining"))
    for name, r in results.items():
        # Partial inlining removes hot call executions at a fraction of
        # exhaustive inlining's growth.
        if r["inlined"]:
            assert r["partial_calls"] < r["base_calls"], name
        assert r["partial_growth"] <= r["full_growth"] + 1e-9, name