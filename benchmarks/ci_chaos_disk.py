"""CI gate: deterministic disk chaos against every durable surface.

Arms seeded :class:`~repro.utils.durafs.FsFaultPlan` faults — an
ENOSPC storm, torn writes, a crash before the atomic rename — under
the summary store, the batch journal, the batch report, and the serve
result cache, then fails the build unless the durability contract
holds:

- **store under ENOSPC storm**: optimized output byte-identical to a
  store-off run; the health machine parks the store read-only; zero
  entries persisted, zero exceptions;
- **batch journal ENOSPC**: the CLI exits 2 with structured context
  (definite operator error, not a DEGRADED limp-on), and ``--resume``
  on a healed disk produces a journal and report byte-identical to an
  uninterrupted run;
- **report crash-before-rename**: the half-written report never
  occupies the report name, and the resume regenerates it
  byte-identically;
- **cache torn write**: a restarted cache reads the entry as a miss,
  never garbage, and the orphan sweep reclaims the debris.

Everything is in-process and seeded — no timing, no real subprocess
kills (``ci_chaos_batch.py`` covers real SIGKILL) — so a failure here
reproduces locally with no flake margin.

Run:  PYTHONPATH=src python benchmarks/ci_chaos_disk.py
"""

import os
import sys
import tempfile

from repro.analysis import AnalysisConfig
from repro.analysis.store import HEALTH_READ_ONLY
from repro.benchgen.suite import load_benchmark
from repro.cli import main as icbe_main
from repro.ir import dump_icfg, lower_program, verify_icfg
from repro.robustness.journal import JOURNAL_NAME
from repro.robustness.supervisor import REPORT_NAME
from repro.serve.cache import ResultCache
from repro.transform import ICBEOptimizer, OptimizerOptions
from repro.utils import durafs
from repro.utils.durafs import (Filesystem, FsFaultPlan, FsFaultSpec,
                                SimulatedCrash)

SCALE = 2
SEED = 311
BENCH = "li_like"
FINGERPRINT = {"budget": 1000}

PROGRAM = """
proc classify(v) {
    if (v <= 0) { return 0; }
    return v;
}
proc main() {
    var r = classify(input());
    if (r == 0) { print 0; } else { print r; }
    return 0;
}
"""


def _optimize(store_dir=None):
    icfg = lower_program(load_benchmark(BENCH, scale=SCALE).program)
    verify_icfg(icfg)
    options = OptimizerOptions(config=AnalysisConfig(budget=1000),
                               summary_store_dir=store_dir)
    result = ICBEOptimizer(options).optimize(icfg)
    verify_icfg(result.optimized)
    return dump_icfg(result.optimized), result


def check_store_enospc_storm(scratch, failures):
    print(f"== store ENOSPC storm ({BENCH}@{SCALE})")
    baseline, _ = _optimize(store_dir=None)
    durafs.DEFAULT_FS = Filesystem(FsFaultPlan(
        [FsFaultSpec("store.entry", "write", hit=0)]))   # every write fails
    try:
        sick, result = _optimize(store_dir=os.path.join(scratch, "store"))
    finally:
        durafs.DEFAULT_FS = Filesystem()
    stats = result.store.snapshot() if result.store is not None else {}
    if sick != baseline:
        failures.append("store ENOSPC storm changed the optimized output")
    if stats.get("health") != HEALTH_READ_ONLY:
        failures.append(f"expected a read-only store under the storm, "
                        f"got {stats.get('health')!r}")
    if stats.get("stores", 0) != 0:
        failures.append("a failing store claimed to persist entries")
    entries = [name for name in os.listdir(os.path.join(scratch, "store"))
               if name.endswith(".json")]
    if entries:
        failures.append(f"{len(entries)} entries appeared despite ENOSPC")
    print(f"output identical to store-off; health={stats.get('health')}, "
          f"io_errors={stats.get('io_errors')}")


def _run_batch_cli(prog, run_dir, resume=False):
    if resume:
        return icbe_main(["batch", prog, "--resume", run_dir])
    return icbe_main(["batch", prog, "--run-dir", run_dir,
                      "--seed", str(SEED), "--backoff", "0"])


def check_batch_journal_enospc(scratch, failures):
    print("\n== batch journal ENOSPC mid-run, then --resume")
    prog = os.path.join(scratch, "prog.mc")
    with open(prog, "w", encoding="utf-8") as handle:
        handle.write(PROGRAM)
    clean_dir = os.path.join(scratch, "clean")
    if _run_batch_cli(prog, clean_dir) != 0:
        failures.append("uninterrupted batch run failed")
        return
    cut_dir = os.path.join(scratch, "cut")
    durafs.DEFAULT_FS = Filesystem(FsFaultPlan.erroring(
        "batch.journal", op="write", hit=2))   # hit 1 is the meta header
    try:
        code = _run_batch_cli(prog, cut_dir)
    finally:
        durafs.DEFAULT_FS = Filesystem()
    if code != 2:
        failures.append(f"journal ENOSPC exited {code}, expected the "
                        f"definite operator-error exit 2")
    if _run_batch_cli(prog, cut_dir, resume=True) != 0:
        failures.append("--resume after the disk healed failed")
        return
    for name in (JOURNAL_NAME, REPORT_NAME):
        with open(os.path.join(clean_dir, name), "rb") as handle:
            reference = handle.read()
        with open(os.path.join(cut_dir, name), "rb") as handle:
            resumed = handle.read()
        if reference != resumed:
            failures.append(f"resumed {name} diverges from the "
                            f"uninterrupted run")
    print("exit 2 on ENOSPC; resumed journal and report byte-identical")


def check_report_crash_before_rename(scratch, failures):
    print("\n== report crash-before-rename, then --resume")
    prog = os.path.join(scratch, "prog2.mc")
    with open(prog, "w", encoding="utf-8") as handle:
        handle.write(PROGRAM)
    run_dir = os.path.join(scratch, "crashed")
    durafs.DEFAULT_FS = Filesystem(FsFaultPlan.crashing(
        "batch.report", op="rename"))
    try:
        _run_batch_cli(prog, run_dir)
        failures.append("the armed report crash never fired")
        return
    except SimulatedCrash:
        pass
    finally:
        durafs.DEFAULT_FS = Filesystem()
    report_path = os.path.join(run_dir, REPORT_NAME)
    if os.path.exists(report_path):
        failures.append("a crash before the rename still published "
                        "a report")
    if _run_batch_cli(prog, run_dir, resume=True) != 0:
        failures.append("--resume after the report crash failed")
        return
    if not os.path.exists(report_path):
        failures.append("--resume did not regenerate the report")
    debris = [name for name in os.listdir(run_dir) if ".tmp." in name]
    print(f"no torn report published; resume regenerated it "
          f"({len(debris)} temp orphan(s) left for the sweeper)")


def check_cache_torn_write(scratch, failures):
    print("\n== serve cache torn write, restart, orphan sweep")
    run_dir = os.path.join(scratch, "serve")
    sick = ResultCache(run_dir, fingerprint=FINGERPRINT,
                       fs=Filesystem(FsFaultPlan.tearing("serve.cache",
                                                         keep_bytes=11)))
    try:
        sick.put("deadbeef" * 8, {"status": "OK", "tier": 0})
        failures.append("the armed torn cache write never fired")
    except SimulatedCrash:
        pass
    cache_dir = os.path.join(run_dir, "cache")
    debris = [name for name in os.listdir(cache_dir) if ".tmp." in name]
    if not debris:
        failures.append("torn write left no debris to sweep")
    for name in debris:                       # age past the orphan TTL
        os.utime(os.path.join(cache_dir, name), (1, 1))
    fresh = ResultCache(run_dir, fingerprint=FINGERPRINT)
    if fresh.get("deadbeef" * 8) is not None:
        failures.append("a torn cache entry was served instead of missing")
    if fresh.orphans_swept < 1:
        failures.append("the reopened cache did not sweep the torn debris")
    print(f"torn entry read as a miss; {fresh.orphans_swept} orphan(s) "
          f"swept at reopen")


def main():
    failures = []
    with tempfile.TemporaryDirectory(prefix="icbe-ci-disk-") as scratch:
        check_store_enospc_storm(scratch, failures)
        check_batch_journal_enospc(scratch, failures)
        check_report_crash_before_rename(scratch, failures)
        check_cache_torn_write(scratch, failures)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures:
        return 1
    print("\ndisk chaos: every surface recovered; zero wrong answers: ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
