"""Regenerates paper Figure 9 (correlation characteristics) and times it.

Run:  pytest benchmarks/bench_fig9.py --benchmark-only
"""

from repro.harness.fig9 import compute_fig9, render_fig9, summary_ratios


def test_fig9(benchmark):
    rows = benchmark(compute_fig9)
    print()
    print(render_fig9(rows))
    ratios = summary_ratios(rows)
    print(f"\ninter/intra static detection ratio: "
          f"{ratios['static_ratio']:.2f} (paper: at least 2)")
    # The paper's finding: interprocedural analysis detects at least
    # twice as many correlated conditionals.
    assert ratios["static_ratio"] >= 2.0
    # And full correlation is markedly more common interprocedurally.
    for row in rows:
        assert row.inter_full_pct >= row.intra_full_pct
