"""Batch-supervisor chaos drill at suite scale.

Runs the six-benchmark suite at scale 8 through ``icbe batch`` with all
three process-level pathologies injected at tier 0 — a hang (killed on
timeout), a hard crash, and an OOM under the worker's address-space
rlimit — and asserts the supervisor contract end to end:

- every job terminates with a definite outcome (OK/DEGRADED/FAILED);
- chaos costs exactly one tier: each injected job lands DEGRADED at
  tier 1 ("no job downgrades more than one tier beyond necessity"),
  clean jobs stay OK at tier 0;
- an interrupted run (journal truncated mid-batch, as a SIGKILL would
  leave it) finished with ``--resume`` produces a journal and report
  **byte-identical** to the uninterrupted run.

Run:  pytest benchmarks/bench_supervisor.py --benchmark-only -s
"""

import os
import shutil
import tempfile

from repro.benchgen.suite import benchmark_names
from repro.robustness.degrade import STATUS_DEGRADED, STATUS_OK
from repro.robustness.supervisor import (REPORT_NAME, SupervisorOptions,
                                         run_batch)
from repro.utils.tables import render_table

SCALE = 8
SEED = 2026
#: Above the slowest clean job (perl_like, ~45s at scale 8) with margin;
#: the injected hang burns exactly one timeout, overlapped by --jobs.
TIMEOUT_S = 120.0

INJECTIONS = {
    "go_like": {"kind": "hang", "tiers": [0]},
    "m88ksim_like": {"kind": "crash", "tiers": [0]},
    "compress_like": {"kind": "oom", "tiers": [0]},
}
EXPECTED_FIRST_RESULT = {"go_like": "timeout", "m88ksim_like": "crash",
                         "compress_like": "oom"}


def _options():
    return SupervisorOptions(jobs=4, timeout_s=TIMEOUT_S, memory_mb=768,
                             seed=SEED, duplication_limit=100,
                             backoff_base_s=0.05)


def _read(run_dir, name):
    with open(os.path.join(run_dir, name), "rb") as handle:
        return handle.read()


def _truncate_journal(src_dir, dst_dir, keep_jobs):
    """Plant ``dst_dir`` with ``src_dir``'s journal cut after
    ``keep_jobs`` job records — the on-disk state a SIGKILL mid-batch
    leaves behind (plus a torn final line for good measure)."""
    os.makedirs(dst_dir, exist_ok=True)
    with open(os.path.join(src_dir, "journal.jsonl"), "rb") as handle:
        lines = handle.read().splitlines(keepends=True)
    kept = lines[:1 + keep_jobs]
    torn = lines[1 + keep_jobs][:23] if len(lines) > 1 + keep_jobs else b""
    with open(os.path.join(dst_dir, "journal.jsonl"), "wb") as handle:
        handle.write(b"".join(kept) + torn)


def chaos_drill():
    sources = [f"suite:{name}@{SCALE}" for name in benchmark_names()]
    scratch = tempfile.mkdtemp(prefix="icbe-bench-supervisor-")
    try:
        full_dir = os.path.join(scratch, "full")
        report = run_batch(sources, full_dir, options=_options(),
                           injections=INJECTIONS)

        assert len(report.outcomes) == len(sources)
        assert report.all_definite, [o.describe() for o in report.outcomes]
        for outcome in report.outcomes:
            if outcome.job in INJECTIONS:
                assert outcome.status == STATUS_DEGRADED, outcome.describe()
                assert outcome.tier == 1, outcome.describe()
                assert (outcome.attempts[0].result
                        == EXPECTED_FIRST_RESULT[outcome.job]), (
                    outcome.describe())
            else:
                assert outcome.status == STATUS_OK, outcome.describe()
                assert outcome.tier == 0
        assert report.total_kills == 1  # the hang, nothing else

        # Interrupted + --resume == uninterrupted, byte for byte.  The
        # cut keeps the two chaos-heavy jobs so the resume replays the
        # OOM job and the clean tail.
        cut_dir = os.path.join(scratch, "cut")
        _truncate_journal(full_dir, cut_dir, keep_jobs=2)
        resumed = run_batch(sources, cut_dir, options=_options(),
                            injections=INJECTIONS, resume=True)
        assert resumed.resumed_jobs == 2
        assert (_read(full_dir, "journal.jsonl")
                == _read(cut_dir, "journal.jsonl")), "journal diverged"
        assert (_read(full_dir, REPORT_NAME)
                == _read(cut_dir, REPORT_NAME)), "report diverged"

        return report
    finally:
        shutil.rmtree(scratch, ignore_errors=True)


def test_supervisor_chaos_drill(benchmark):
    report = benchmark.pedantic(chaos_drill, rounds=1, iterations=1)
    rows = [[o.job, o.status, f"{o.tier}/{o.tier_name}",
             len(o.attempts), o.attempts[0].result]
            for o in report.outcomes]
    print()
    print(render_table(
        ["benchmark (x%d)" % SCALE, "status", "tier", "attempts",
         "first attempt"], rows,
        title="Batch supervisor under hang/crash/OOM injection"))
    statuses = report.status_counts()
    assert statuses[STATUS_OK] == 3 and statuses[STATUS_DEGRADED] == 3
    assert report.total_retries == 3  # one per injected pathology
