"""The profile-guided benefit heuristic vs the pure growth gate.

Paper §4 closes: "A better heuristic for deciding whether to apply the
optimization would also consider the amount of conditionals eliminated,
as opposed to the incurred code growth alone, as was done in our
experiments."  This bench implements that suggestion and measures the
efficiency frontier it buys: eliminated executed conditionals per
percent of code growth, across the suite.

Run:  pytest benchmarks/bench_benefit_gate.py --benchmark-only
"""

from repro.analysis import AnalysisConfig
from repro.benchgen.suite import benchmark_names
from repro.harness.metrics import prepare_benchmark
from repro.interp import run_icfg
from repro.transform import ICBEOptimizer, OptimizerOptions
from repro.utils.tables import render_table

GATES = (None, 0.5, 2.0, 10.0)


def measure(context, min_benefit):
    options = OptimizerOptions(
        config=AnalysisConfig(interprocedural=True, budget=1000),
        duplication_limit=100)
    if min_benefit is not None:
        options.profile = context.profile
        options.min_benefit_per_node = min_benefit
    report = ICBEOptimizer(options).optimize(context.icfg)
    rerun = run_icfg(report.optimized, context.bench.workload)
    assert rerun.observable == context.execution.observable
    baseline = context.profile.executed_conditionals
    reduction = 100.0 * (baseline - rerun.profile.executed_conditionals) \
        / baseline
    base_nodes = context.icfg.executable_node_count()
    growth = 100.0 * (report.optimized.executable_node_count()
                      - base_nodes) / base_nodes
    return reduction, growth


def test_benefit_gate_frontier(benchmark):
    def sweep():
        results = {}
        for name in benchmark_names():
            context = prepare_benchmark(name)
            results[name] = {gate: measure(context, gate)
                             for gate in GATES}
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for name, by_gate in results.items():
        for gate in GATES:
            reduction, growth = by_gate[gate]
            rows.append([name, "off" if gate is None else gate,
                         reduction, growth])
    print()
    print(render_table(
        ["benchmark", "min benefit/node", "reduction %", "growth %"],
        rows, title="Paper §4 heuristic: benefit-per-node gating"))

    for name, by_gate in results.items():
        # Tightening the gate only removes optimizations, so the
        # dynamic reduction decreases monotonically...
        reductions = [by_gate[g][0] for g in GATES]
        assert all(a >= b - 1.0 for a, b in zip(reductions, reductions[1:])), \
            (name, reductions)
        # ...and growth stays controlled under the strict gate.
        assert by_gate[10.0][1] <= max(by_gate[None][1], 10.0), name

    # The heuristic's selling point shows on at least one benchmark: a
    # large growth cut while keeping most of the reduction.
    assert any(
        by_gate[None][1] - by_gate[10.0][1] > 10.0
        and by_gate[10.0][0] >= 0.5 * by_gate[None][0]
        for by_gate in results.values())
