"""Correlation-assisted static branch prediction (paper §5).

Measures, across the suite, the accuracy of a static predictor with and
without correlation hints, and verifies the paper's qualitative claim:
statically detectable correlation identifies branches the predictor can
get exactly right, lifting overall accuracy.

Run:  pytest benchmarks/bench_prediction.py --benchmark-only
"""

from repro.analysis import AnalysisConfig
from repro.analysis.prediction import (baseline_predictions,
                                       evaluate_predictor, predict_all)
from repro.benchgen.suite import benchmark_names
from repro.harness.metrics import prepare_benchmark
from repro.utils.tables import render_table

CONFIG = AnalysisConfig(budget=10_000)


def measure(name):
    context = prepare_benchmark(name)
    profile = context.profile
    assisted = evaluate_predictor(predict_all(context.icfg, CONFIG), profile)
    baseline = evaluate_predictor(baseline_predictions(context.icfg),
                                  profile)
    return {
        "baseline": baseline.accuracy,
        "assisted": assisted.accuracy,
        "hint_share": (assisted.hint_executed / assisted.executed
                       if assisted.executed else 0.0),
        "hint_accuracy": assisted.hint_accuracy,
        "hint_executed": assisted.hint_executed,
    }


def test_prediction_assist(benchmark):
    def sweep():
        return {name: measure(name) for name in benchmark_names()}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [[name, 100 * r["baseline"], 100 * r["assisted"],
             100 * r["hint_share"], 100 * r["hint_accuracy"]]
            for name, r in results.items()]
    print()
    print(render_table(
        ["benchmark", "baseline acc %", "assisted acc %",
         "certain-hint share %", "certain-hint acc %"], rows,
        title="Paper §5: correlation-assisted static prediction"))
    for name, r in results.items():
        assert r["assisted"] >= r["baseline"], name
        if r["hint_executed"]:
            assert r["hint_accuracy"] == 1.0, name
    # Somewhere in the suite the hints actually fire.
    assert any(r["hint_executed"] for r in results.values())
