"""End-to-end optimizer throughput on the suite (both scopes).

Not a paper table per se: this is the engineering-health benchmark that
times the full ICBE pipeline (analysis + restructuring + verification)
the way Table 2 times analysis alone.

Run:  pytest benchmarks/bench_optimizer.py --benchmark-only
"""

import pytest

from repro.analysis import AnalysisConfig
from repro.benchgen.suite import benchmark_names
from repro.harness.metrics import prepare_benchmark
from repro.transform import ICBEOptimizer, OptimizerOptions


@pytest.mark.parametrize("name", benchmark_names())
def test_optimize_benchmark_interprocedural(benchmark, name):
    context = prepare_benchmark(name)
    optimizer = ICBEOptimizer(OptimizerOptions(
        config=AnalysisConfig(interprocedural=True, budget=1000),
        duplication_limit=100))

    report = benchmark(lambda: optimizer.optimize(context.icfg))
    assert report.optimized_count > 0


def test_optimize_suite_intraprocedural_baseline(benchmark):
    contexts = [prepare_benchmark(name) for name in benchmark_names()]
    optimizer = ICBEOptimizer(OptimizerOptions(
        config=AnalysisConfig(interprocedural=False, budget=1000),
        duplication_limit=100))

    def run_all():
        return [optimizer.optimize(c.icfg) for c in contexts]

    reports = benchmark.pedantic(run_all, rounds=1, iterations=1)
    assert len(reports) == len(contexts)
