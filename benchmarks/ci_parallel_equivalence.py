"""CI gate: serial vs --analysis-jobs vs summary-store equivalence.

Runs the six suite benchmarks at scale 2 through the optimizer four
ways — serial, with a 4-way sharded analysis prewarm, with a cold
summary store, and again warm on the same store — all under
differential validation, and fails on any divergence in per-branch
outcomes or in the final optimized graph.  No timing assertions (CI
machines are noisy); the warm-store speedup gate lives in
``bench_parallel.py``.

Run:  PYTHONPATH=src python benchmarks/ci_parallel_equivalence.py
"""

import shutil
import sys
import tempfile

from repro.analysis import AnalysisConfig
from repro.benchgen.suite import benchmark_names, load_benchmark
from repro.ir import dump_icfg, lower_program, verify_icfg
from repro.transform import ICBEOptimizer, OptimizerOptions

SCALE = 2
BUDGET = 1000
LIMIT = 40


def optimize(icfg, jobs=1, store=None):
    return ICBEOptimizer(OptimizerOptions(
        config=AnalysisConfig(budget=BUDGET), duplication_limit=LIMIT,
        diff_check=True, analysis_jobs=jobs,
        summary_store_dir=store)).optimize(icfg)


def check(name):
    icfg = lower_program(load_benchmark(name, scale=SCALE).program)
    verify_icfg(icfg)
    store_root = tempfile.mkdtemp(prefix="icbe-ci-store-")
    try:
        serial = optimize(icfg)
        modes = {"jobs=4": optimize(icfg, jobs=4),
                 "store(cold)": optimize(icfg, store=store_root),
                 "store(warm)": optimize(icfg, store=store_root),
                 "jobs=4+store": optimize(icfg, jobs=4, store=store_root)}
    finally:
        shutil.rmtree(store_root, ignore_errors=True)
    failures = []
    baseline = [(r.branch_id, r.outcome.value) for r in serial.records]
    baseline_dump = dump_icfg(serial.optimized)
    verify_icfg(serial.optimized)
    for mode, report in modes.items():
        outcomes = [(r.branch_id, r.outcome.value) for r in report.records]
        if outcomes != baseline:
            divergent = [(a, b) for a, b in zip(baseline, outcomes)
                         if a != b]
            failures.append(f"{mode}: outcome divergence {divergent[:5]}")
        if dump_icfg(report.optimized) != baseline_dump:
            failures.append(f"{mode}: optimized graph differs from serial")
        verify_icfg(report.optimized)
    warm = modes["store(warm)"].store
    store_note = (f"{warm.hits} warm store hits"
                  if warm is not None else "store stats missing")
    print(f"{name:15s} {len(serial.records)} conditionals, "
          f"{serial.optimized_count} optimized, {store_note}: "
          f"{'ok' if not failures else 'FAIL'}")
    return failures


def main():
    failed = False
    for name in benchmark_names():
        for failure in check(name):
            print(f"  {name}: {failure}", file=sys.stderr)
            failed = True
    if failed:
        print("parallel/store runs diverged from serial", file=sys.stderr)
        return 1
    print("serial, sharded-prewarm, and store-backed runs are identical "
          "on every benchmark")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
