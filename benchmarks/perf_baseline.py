"""CI perf gate: the suite's canonical performance baseline.

Runs the six suite benchmarks at a fixed scale through the optimizer
under an observability session and compares against the checked-in
``benchmarks/BENCH_BASELINE.json``:

- **counter/gauge/histogram metrics compare exactly** — they are pure
  functions of the algorithm (no timings ever enter the registry; see
  docs/OBSERVABILITY.md), so any drift means the optimizer's behaviour
  changed: more pairs examined, fewer branches eliminated, a cache that
  stopped hitting.  That is a correctness-adjacent regression even when
  wall clock looks fine.
- **wall time compares within a configurable tolerance**, and as a
  *calibrated ratio* rather than absolute seconds: each benchmark's
  best-of-N optimize time is divided by the time of a fixed pure-Python
  spin loop measured on the same machine in the same process, which
  cancels most of the hardware and interpreter-version variance between
  the laptop that wrote the baseline and the CI runner that checks it.

Usage::

    PYTHONPATH=src python benchmarks/perf_baseline.py --check
    PYTHONPATH=src python benchmarks/perf_baseline.py --update
    PYTHONPATH=src python benchmarks/perf_baseline.py --check \
        --tolerance 1.0 --trace perf_trace.jsonl

``--update`` rewrites the baseline (run it on purpose, review the diff,
commit it — see docs/OBSERVABILITY.md, "Re-baselining").  ``--trace``
writes the full span tree of the measured runs; the CI perf-gate job
uploads it as an artifact when the gate fails.
"""

import argparse
import json
import os
import sys
import time

from repro import obs
from repro.benchgen.suite import benchmark_names, load_benchmark
from repro.ir import lower_program
from repro.transform import ICBEOptimizer, OptimizerOptions

BASELINE_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                             "BENCH_BASELINE.json")
SCALE = 4
BUDGET = 1000
LIMIT = 100
#: Best-of-N wall measurements (first iteration also warms caches).
REPEATS = 3
#: Allowed fractional increase of the calibrated wall ratio before the
#: gate fails (1.5 = may take up to 2.5x the baseline ratio).  Wide by
#: design: the ratio cancels machine speed, not scheduler noise.
DEFAULT_TOLERANCE = 1.5
BASELINE_VERSION = 1


def calibrate() -> float:
    """Seconds for a fixed pure-Python spin, best of three.

    The reference workload against which benchmark wall times are
    normalized; it runs in-process immediately before measuring, so the
    stored ``wall_ratio`` is roughly machine-independent.
    """
    best = float("inf")
    for _ in range(3):
        started = time.perf_counter()
        acc = 0
        for i in range(300_000):
            acc = (acc * 1103515245 + i) & 0xFFFFFFFF
        best = min(best, time.perf_counter() - started)
    return best


def measure(name: str, calibration_s: float):
    """One benchmark's (metrics snapshot, wall ratio, spans)."""
    icfg = lower_program(load_benchmark(name, scale=SCALE).program)
    best_wall = float("inf")
    snapshot = None
    spans = []
    for _ in range(REPEATS):
        with obs.suspended(), obs.session() as active:
            started = time.perf_counter()
            with obs.span("perf.benchmark", benchmark=name, scale=SCALE):
                ICBEOptimizer(OptimizerOptions(
                    duplication_limit=LIMIT)).optimize(icfg)
            best_wall = min(best_wall, time.perf_counter() - started)
        if snapshot is not None and active.metrics.snapshot() != snapshot:
            raise AssertionError(
                f"{name}: metrics differ between identical runs — the "
                f"registry is supposed to be deterministic")
        snapshot = active.metrics.snapshot()
        spans = active.export_spans()
    return snapshot, best_wall / calibration_s, best_wall, spans


def measure_store(calibration_s: float):
    """The summary-store pseudo-benchmark: a cold-then-warm analysis
    sweep over ``li_like`` with an on-disk store.

    The counters are the store's exact hit/miss/store accounting in
    each phase — behavioural drift (a key scheme change that stops
    hitting, an entry class that stops persisting) fails the gate even
    when wall clock looks fine.  The suite-scale warm-over-cold speedup
    gate lives in ``bench_parallel.py``.
    """
    import shutil
    import tempfile
    from repro.analysis import AnalysisConfig, analyze_branch
    from repro.analysis.context import AnalysisContext
    from repro.analysis.store import SummaryStore
    config = AnalysisConfig(budget=BUDGET)
    icfg = lower_program(load_benchmark("li_like", scale=SCALE).program)
    branch_ids = sorted(b.id for b in icfg.branch_nodes())
    best_wall = float("inf")
    snapshot = None
    spans = []
    for _ in range(REPEATS):
        root = tempfile.mkdtemp(prefix="icbe-perf-store-")
        try:
            with obs.suspended(), obs.session() as active:
                started = time.perf_counter()
                with obs.span("perf.benchmark", benchmark="summary_store",
                              scale=SCALE):
                    for phase in ("cold", "warm"):
                        context = AnalysisContext()
                        context.bind(icfg)
                        context.attach_store(SummaryStore(root, config))
                        with obs.span(f"store.sweep.{phase}"):
                            for branch_id in branch_ids:
                                analyze_branch(icfg, branch_id, config,
                                               context=context)
                        for key, value in (context.store.stats.snapshot()
                                           .items()):
                            obs.add(f"store.{phase}.{key}", value)
                best_wall = min(best_wall, time.perf_counter() - started)
            if (snapshot is not None
                    and active.metrics.snapshot() != snapshot):
                raise AssertionError(
                    "summary_store: metrics differ between identical runs")
            snapshot = active.metrics.snapshot()
            spans = active.export_spans()
        finally:
            shutil.rmtree(root, ignore_errors=True)
    return snapshot, best_wall / calibration_s, best_wall, spans


def run_suite(trace_path=None):
    """Measure every benchmark; optionally write the combined trace."""
    calibration_s = calibrate()
    results = {}
    # All measured sessions share the process clock, so their spans can
    # be collected into one tracer (lane per benchmark) with no rebase.
    tracer = obs.Tracer()
    for name in benchmark_names():
        snapshot, ratio, wall_s, spans = measure(name, calibration_s)
        results[name] = {"metrics": snapshot,
                         "wall_ratio": round(ratio, 3),
                         "wall_s": round(wall_s, 4)}
        tracer.adopt(spans, origin=name)
    snapshot, ratio, wall_s, spans = measure_store(calibration_s)
    results["summary_store"] = {"metrics": snapshot,
                                "wall_ratio": round(ratio, 3),
                                "wall_s": round(wall_s, 4)}
    tracer.adopt(spans, origin="summary_store")
    if trace_path:
        from repro.obs.export import write_jsonl
        write_jsonl(trace_path, tracer.export(),
                    meta={"harness": "perf_baseline", "scale": SCALE,
                          "calibration_s": round(calibration_s, 6)})
        print(f"trace written to {trace_path}")
    return results, calibration_s


def check(results, baseline, tolerance: float) -> list:
    """Every gate violation as a human-readable string."""
    failures = []
    if baseline.get("version") != BASELINE_VERSION:
        return [f"baseline version {baseline.get('version')!r} != "
                f"{BASELINE_VERSION}; re-run with --update"]
    if baseline.get("scale") != SCALE:
        return [f"baseline scale {baseline.get('scale')!r} != {SCALE}; "
                f"re-run with --update"]
    recorded = baseline.get("benchmarks", {})
    for name, measured in results.items():
        expected = recorded.get(name)
        if expected is None:
            failures.append(f"{name}: not in baseline (re-run --update)")
            continue
        failures.extend(_diff_metrics(name, expected["metrics"],
                                      measured["metrics"]))
        allowed = expected["wall_ratio"] * (1.0 + tolerance)
        if measured["wall_ratio"] > allowed:
            failures.append(
                f"{name}: wall ratio {measured['wall_ratio']:.2f} exceeds "
                f"baseline {expected['wall_ratio']:.2f} "
                f"+{tolerance:.0%} tolerance (= {allowed:.2f})")
    for name in recorded:
        if name not in results:
            failures.append(f"{name}: in baseline but no longer measured")
    return failures


def _diff_metrics(name: str, expected: dict, measured: dict) -> list:
    """Exact comparison, reported per diverging metric (not as one blob)."""
    diffs = []
    for kind in ("counters", "gauges", "histograms"):
        want, got = expected.get(kind, {}), measured.get(kind, {})
        for key in sorted(set(want) | set(got)):
            if want.get(key) != got.get(key):
                diffs.append(f"{name}: {kind[:-1]} {key!r} = "
                             f"{got.get(key)!r}, baseline {want.get(key)!r}")
    return diffs


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    action = parser.add_mutually_exclusive_group(required=True)
    action.add_argument("--check", action="store_true",
                        help="compare against BENCH_BASELINE.json")
    action.add_argument("--update", action="store_true",
                        help="rewrite BENCH_BASELINE.json from this machine")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="allowed fractional wall-ratio increase "
                             f"(default {DEFAULT_TOLERANCE})")
    parser.add_argument("--trace", default=None, metavar="FILE.jsonl",
                        help="write the measured runs' span tree as JSONL")
    args = parser.parse_args(argv)

    results, calibration_s = run_suite(trace_path=args.trace)
    for name, entry in results.items():
        counters = entry["metrics"]["counters"]
        print(f"{name:15s} wall {entry['wall_s']*1000:7.1f}ms "
              f"ratio {entry['wall_ratio']:6.2f}  "
              f"optimized {counters.get('optimize.optimized', 0)}  "
              f"pairs {counters.get('analysis.pairs_examined', 0)}")
    print(f"calibration: {calibration_s*1000:.1f}ms")

    if args.update:
        payload = {"version": BASELINE_VERSION, "scale": SCALE,
                   "budget": BUDGET, "duplication_limit": LIMIT,
                   "benchmarks": results}
        with open(BASELINE_PATH, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"baseline written to {BASELINE_PATH}")
        return 0

    if not os.path.exists(BASELINE_PATH):
        print(f"no baseline at {BASELINE_PATH}; run --update first",
              file=sys.stderr)
        return 1
    with open(BASELINE_PATH, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    failures = check(results, baseline, args.tolerance)
    for failure in failures:
        print(f"PERF GATE: {failure}", file=sys.stderr)
    if failures:
        print(f"perf gate FAILED ({len(failures)} violation(s)); if the "
              f"change is intentional, re-baseline with --update",
              file=sys.stderr)
        return 1
    print("perf gate passed: metrics exact, wall ratios within "
          f"{args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
