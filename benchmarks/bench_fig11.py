"""Regenerates paper Figure 11 (branch reduction vs code growth over the
per-conditional duplication-limit sweep).  The heaviest experiment: it
runs the whole optimizer 72 times (6 benchmarks x 6 limits x 2 scopes),
so it is timed with a single round.

Run:  pytest benchmarks/bench_fig11.py --benchmark-only
"""

from repro.harness.fig11 import compute_fig11, render_fig11


def test_fig11(benchmark):
    points = benchmark.pedantic(compute_fig11, rounds=1, iterations=1)
    print()
    print(render_fig11(points))
    benchmarks = {p.benchmark for p in points}
    assert len(benchmarks) == 6
    for name in benchmarks:
        inter = {p.duplication_limit: p for p in points
                 if p.benchmark == name and p.interprocedural}
        intra = {p.duplication_limit: p for p in points
                 if p.benchmark == name and not p.interprocedural}
        # Paper conclusion 1: at every duplication limit, ICBE
        # eliminates at least as many executed conditionals.
        for limit in inter:
            assert inter[limit].reduction_pct >= intra[limit].reduction_pct
        # Paper conclusion 2: more allowed growth never hurts.
        limits = sorted(inter)
        for small, large in zip(limits, limits[1:]):
            assert (inter[large].reduction_pct
                    >= inter[small].reduction_pct - 1e-9)
