"""CI gate: cache-on vs cache-off equivalence under --diff-check.

Runs the six suite benchmarks at scale 2 through the optimizer twice —
with the shared analysis context and with ``analysis_cache=False`` —
both under differential validation, and fails on any divergence in
per-branch outcomes or in the final optimized graph.  No timing
assertions (CI machines are noisy); the speedup gate lives in
``bench_cache.py``.

Run:  PYTHONPATH=src python benchmarks/ci_cache_equivalence.py
"""

import sys

from repro.analysis import AnalysisConfig
from repro.benchgen.suite import benchmark_names, load_benchmark
from repro.ir import dump_icfg, lower_program, verify_icfg
from repro.transform import ICBEOptimizer, OptimizerOptions

SCALE = 2
BUDGET = 1000
LIMIT = 40


def check(name):
    icfg = lower_program(load_benchmark(name, scale=SCALE).program)
    verify_icfg(icfg)
    reports = {}
    for cache in (True, False):
        reports[cache] = ICBEOptimizer(OptimizerOptions(
            config=AnalysisConfig(budget=BUDGET), duplication_limit=LIMIT,
            diff_check=True, analysis_cache=cache)).optimize(icfg)
    cached, plain = reports[True], reports[False]
    failures = []
    cached_outcomes = [(r.branch_id, r.outcome.value) for r in cached.records]
    plain_outcomes = [(r.branch_id, r.outcome.value) for r in plain.records]
    if cached_outcomes != plain_outcomes:
        divergent = [(a, b) for a, b in zip(cached_outcomes, plain_outcomes)
                     if a != b]
        failures.append(f"outcome divergence: {divergent[:5]}")
    if dump_icfg(cached.optimized) != dump_icfg(plain.optimized):
        failures.append("optimized graphs differ")
    verify_icfg(cached.optimized)
    verify_icfg(plain.optimized)
    print(f"{name:15s} {len(cached.records)} conditionals, "
          f"{cached.optimized_count} optimized, "
          f"{cached.cache.summary_hits} summary hits: "
          f"{'ok' if not failures else 'FAIL'}")
    return failures


def main():
    failed = False
    for name in benchmark_names():
        for failure in check(name):
            print(f"  {name}: {failure}", file=sys.stderr)
            failed = True
    if failed:
        print("cache-on and cache-off runs diverged", file=sys.stderr)
        return 1
    print("cache-on and cache-off runs are identical on every benchmark")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
