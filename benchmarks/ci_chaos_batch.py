"""CI gate: SIGKILL the batch supervisor mid-run, resume, compare.

Runs the six-benchmark suite at scale 2 through ``icbe batch`` (fixed
seed, one injected worker crash so the degradation ladder is exercised
in CI), SIGKILLs the *supervisor process itself* once two jobs are in
the journal, finishes the batch with ``--resume``, and fails the build
if:

- any job lacks a definite OK/DEGRADED/FAILED outcome, or
- the resumed run's journal or report diverges by a single byte from an
  uninterrupted run with the same seed.

Run:  PYTHONPATH=src python benchmarks/ci_chaos_batch.py
"""

import os
import signal
import subprocess
import sys
import tempfile
import time

from repro.robustness.journal import Journal, load_outcomes
from repro.robustness.supervisor import REPORT_NAME

SCALE = 2
SEED = 97
KILL_AFTER_JOBS = 2          # SIGKILL once this many jobs are journaled
KILL_DEADLINE_S = 600.0

SUITE = ["go_like", "m88ksim_like", "compress_like", "li_like",
         "perl_like", "icc_like"]


def batch_argv(run_dir, resume=False):
    argv = [sys.executable, "-m", "repro.cli", "batch"]
    if resume:
        argv += ["--resume", run_dir]
    else:
        argv += [f"suite:{name}@{SCALE}" for name in SUITE]
        argv += ["--run-dir", run_dir, "--seed", str(SEED),
                 "--inject", "crash:li_like"]
    return argv


def journaled_jobs(run_dir):
    path = os.path.join(run_dir, "journal.jsonl")
    if not os.path.exists(path):
        return 0
    with open(path, "rb") as handle:
        return sum(1 for line in handle if b'"type":"job"' in line)


def run_to_completion(run_dir, resume=False):
    completed = subprocess.run(batch_argv(run_dir, resume=resume),
                               stdout=subprocess.PIPE,
                               stderr=subprocess.STDOUT)
    sys.stdout.buffer.write(completed.stdout)
    if completed.returncode != 0:
        raise SystemExit(f"batch exited {completed.returncode}")


def run_and_sigkill(run_dir):
    """Start a batch and SIGKILL the supervisor once the journal shows
    KILL_AFTER_JOBS completed jobs; returns how many it had."""
    process = subprocess.Popen(batch_argv(run_dir),
                               stdout=subprocess.DEVNULL,
                               stderr=subprocess.DEVNULL)
    deadline = time.monotonic() + KILL_DEADLINE_S
    try:
        while time.monotonic() < deadline:
            if process.poll() is not None:
                raise SystemExit(
                    "batch finished before the chaos kill fired; "
                    "lower KILL_AFTER_JOBS")
            if journaled_jobs(run_dir) >= KILL_AFTER_JOBS:
                process.send_signal(signal.SIGKILL)
                process.wait(30.0)
                return journaled_jobs(run_dir)
            time.sleep(0.05)
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(30.0)
    raise SystemExit("journal never reached the kill point")


def read(run_dir, name):
    with open(os.path.join(run_dir, name), "rb") as handle:
        return handle.read()


def main():
    with tempfile.TemporaryDirectory(prefix="icbe-ci-chaos-") as scratch:
        full_dir = os.path.join(scratch, "full")
        cut_dir = os.path.join(scratch, "cut")

        print(f"== uninterrupted run (seed {SEED}, scale {SCALE})")
        run_to_completion(full_dir)

        print(f"\n== chaos run: SIGKILL supervisor after "
              f"{KILL_AFTER_JOBS} journaled jobs, then --resume")
        survived = run_and_sigkill(cut_dir)
        print(f"killed supervisor with {survived} jobs journaled "
              f"(torn tail: {Journal.recover(cut_dir).torn_tail})")
        run_to_completion(cut_dir, resume=True)

        failures = []
        outcomes = load_outcomes(full_dir)
        if len(outcomes) != len(SUITE):
            failures.append(f"expected {len(SUITE)} outcomes, "
                            f"got {len(outcomes)}")
        for outcome in outcomes:
            if not outcome.definite:
                failures.append(f"indefinite outcome: {outcome.describe()}")
        degraded = [o for o in outcomes if o.job == "li_like"]
        if not degraded or degraded[0].status != "DEGRADED":
            failures.append("injected crash on li_like did not exercise "
                            "the degradation ladder")
        if read(full_dir, "journal.jsonl") != read(cut_dir, "journal.jsonl"):
            failures.append("resumed journal diverges from the "
                            "uninterrupted run")
        if read(full_dir, REPORT_NAME) != read(cut_dir, REPORT_NAME):
            failures.append("resumed report diverges from the "
                            "uninterrupted run")

        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        if failures:
            return 1
        print("\nresume is byte-identical; all outcomes definite: ok")
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
