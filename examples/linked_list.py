#!/usr/bin/env python3
"""The paper's introduction idiom: list removal and the nil re-check.

"Consider a call to a procedure that removes an element from a linked
list.  The procedure tests whether the list is empty and, if so,
returns nil.  The caller performs an identical test on the return
value...  The later test is fully correlated with the earlier one."

This example builds cons cells on the MiniC heap, pops elements in a
loop, and shows the caller's nil re-check disappearing under ICBE while
the intraprocedural baseline cannot touch it.

Run:  python examples/linked_list.py
"""

from repro import (AnalysisConfig, ICBEOptimizer, OptimizerOptions,
                   Workload, lower_program, parse_program, run_icfg)

SOURCE = """
global popped_value = 0;

proc cons(value, tail) {
    var cell = alloc(2);
    store(cell, value);
    store(cell + 1, tail);
    return cell;
}

// Remove the head; returns the new list, or 0 (nil) when empty.
// Also publishes the removed value through a global.
proc pop(list) {
    if (list == 0) {                  // the callee's empty test
        popped_value = -1;
        return 0;
    }
    popped_value = load(list);
    return load(list + 1);
}

proc main() {
    var list = 0;
    var n = input();
    var i = 0;
    while (i < n) {
        list = cons(input(), list);
        i = i + 1;
    }
    // Drain the list; the `list != 0` test re-checks what pop decided.
    var draining = 1;
    while (draining == 1) {
        list = pop(list);
        if (popped_value == -1) {     // correlated with pop's empty test
            draining = 0;
        } else {
            print popped_value;
        }
    }
    print -999;
    return 0;
}
"""


def measure(icfg, workload, label):
    result = run_icfg(icfg, workload)
    print(f"{label}: conditionals executed = "
          f"{result.profile.executed_conditionals}, "
          f"output length = {len(result.output)}")
    return result


def main() -> None:
    icfg = lower_program(parse_program(SOURCE))
    workload = Workload([10, 5, 3, 8, 1, 4, 1, 5, 9, 2, 6])

    before = measure(icfg, workload, "original          ")

    for interprocedural, label in ((False, "intraprocedural   "),
                                   (True, "interprocedural   ")):
        optimizer = ICBEOptimizer(OptimizerOptions(
            config=AnalysisConfig(interprocedural=interprocedural),
            duplication_limit=200))
        report = optimizer.optimize(icfg)
        after = measure(report.optimized, workload, label)
        assert after.observable == before.observable
        if interprocedural:
            inter_conds = after.profile.executed_conditionals
        else:
            intra_conds = after.profile.executed_conditionals

    assert inter_conds < intra_conds <= before.profile.executed_conditionals
    print("\nthe nil re-check is invisible to the intraprocedural baseline "
          "but eliminated by ICBE.")


if __name__ == "__main__":
    main()
