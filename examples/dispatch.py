#!/usr/bin/env python3
"""Dynamic-dispatch flavoured optimization (paper §5, OO languages).

The paper argues ICBE helps virtual call sites that concrete type
inference cannot devirtualize: "Each procedure that may be invoked from
a virtual call site can be independently analyzed and optimized by
entry/exit splitting... ICBE thus allows both optimized and unoptimized
procedures to be called from a single call site."

MiniC has no function pointers, so we model a dispatch site the way a
VM's interpreter loop does: a type tag selects one of several method
bodies, each of which validates the receiver and classifies its result.
ICBE eliminates both the methods' receiver checks (entry splitting —
the dispatcher already validated the receiver) and the call site's
result re-check (exit splitting).

Run:  python examples/dispatch.py
"""

from repro import (AnalysisConfig, ICBEOptimizer, OptimizerOptions,
                   Workload, lower_program, parse_program, run_icfg)

SOURCE = """
global vtable_misses = 0;

// Two "methods" of different "classes"; both defensively re-check the
// receiver their caller already validated.
proc method_circle(obj) {
    if (obj == 0) { return -1; }
    return load(obj) * 3;
}

proc method_square(obj) {
    if (obj == 0) { return -1; }
    var side = load(obj);
    return side * side;
}

// The dispatch site: validate the receiver once, then select a method
// by type tag.  The -1 re-check after the dispatch is correlated with
// the methods' guards.
proc dispatch_area(obj, tag) {
    if (obj == 0) {
        vtable_misses = vtable_misses + 1;
        return 0;
    }
    var area = 0;
    if (tag == 1) {
        area = method_circle(obj);
    } else {
        area = method_square(obj);
    }
    if (area == -1) { return 0; }     // can never fire on this path
    return area;
}

proc main() {
    var total = 0;
    var i = 0;
    while (i < 10) {
        var obj = alloc(1);
        store(obj, input());
        total = total + dispatch_area(obj, input());
        i = i + 1;
    }
    total = total + dispatch_area(0, 1);   // one genuine miss
    print total;
    print vtable_misses;
    return 0;
}
"""


def main() -> None:
    icfg = lower_program(parse_program(SOURCE))
    workload = Workload([v for pair in zip(range(1, 11), [1, 2] * 5)
                         for v in pair])

    before = run_icfg(icfg, workload)
    optimizer = ICBEOptimizer(OptimizerOptions(
        config=AnalysisConfig(interprocedural=True), duplication_limit=300))
    report = optimizer.optimize(icfg)
    after = run_icfg(report.optimized, workload)

    print(f"output: {before.output}")
    print(f"executed conditionals: {before.profile.executed_conditionals} "
          f"-> {after.profile.executed_conditionals}")
    for proc in ("method_circle", "method_square", "dispatch_area"):
        info = report.optimized.procs[proc]
        print(f"  {proc}: {len(info.entries)} entries, "
              f"{len(info.exits)} exits")

    assert after.observable == before.observable
    assert (after.profile.executed_conditionals
            < before.profile.executed_conditionals)
    print("\nreceiver checks and the result re-check were eliminated "
          "across the dispatch boundary.")


if __name__ == "__main__":
    main()
