#!/usr/bin/env python3
"""Quickstart: analyze and optimize one conditional branch.

This walks the full pipeline on a 15-line MiniC program: parse, lower
to the interprocedural CFG, profile a run, ask the demand-driven
analysis about a branch, then let the ICBE optimizer eliminate it and
measure the dynamic effect.

Run:  python examples/quickstart.py
"""

from repro import (AnalysisConfig, ICBEOptimizer, OptimizerOptions,
                   Workload, analyze_branch, duplication_upper_bound,
                   lower_program, parse_program, run_icfg)

SOURCE = """
// A callee that classifies its input, and a caller that re-tests the
// classification -- the correlated-branch idiom ICBE removes.
proc classify(v) {
    if (v <= 0) { return -1; }       // error marker
    return (unsigned) v;             // provably non-negative
}

proc main() {
    var i = 0;
    while (i < 8) {
        var r = classify(input());
        if (r == -1) { print 0; } else { print r; }
        i = i + 1;
    }
    return 0;
}
"""


def main() -> None:
    icfg = lower_program(parse_program(SOURCE))
    workload = Workload([3, -1, 5, 0, 2, 9, -7, 4])

    before = run_icfg(icfg, workload)
    print(f"before: output={before.output}")
    print(f"before: executed conditionals = "
          f"{before.profile.executed_conditionals}")

    # Ask the analysis about the caller's re-test (r == -1).
    target = next(b for b in icfg.branch_nodes() if "r == -1" in b.label())
    result = analyze_branch(icfg, target.id, AnalysisConfig())
    print(f"\nanalysis of `{target.label()}`:")
    print(f"  {result.describe()}")
    print(f"  fully correlated: {result.fully_correlated}")
    print(f"  duplication upper bound: {duplication_upper_bound(result)}")

    # Optimize the whole program.
    optimizer = ICBEOptimizer(OptimizerOptions(
        config=AnalysisConfig(interprocedural=True), duplication_limit=100))
    report = optimizer.optimize(icfg)
    after = run_icfg(report.optimized, workload)

    print(f"\noptimized {report.optimized_count} conditionals; "
          f"nodes {report.nodes_before} -> {report.nodes_after}")
    print(f"after: output={after.output}")
    print(f"after: executed conditionals = "
          f"{after.profile.executed_conditionals}")

    assert after.observable == before.observable, "semantics changed!"
    assert (after.profile.executed_conditionals
            < before.profile.executed_conditionals)
    print("\nsemantics preserved; dynamic branches reduced.")


if __name__ == "__main__":
    main()
