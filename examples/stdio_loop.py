#!/usr/bin/env python3
"""The paper's motivating example (Figures 1 and 2): the stdio loop.

MAIN reads characters through an fgetc-like procedure until EOF.  In
the original loop every iteration executes several conditionals: the
EOF re-test in the caller plus the stream/buffer checks inside fgetc.
The paper shows ICBE reduces the steady-state loop to a single
remaining conditional per iteration via exit splitting of fgetc.

This script reproduces that reduction and asserts the steady-state
per-iteration conditional count drops to 1, exactly as in paper Fig. 2.

Run:  python examples/stdio_loop.py
"""

from repro import (AnalysisConfig, ICBEOptimizer, OptimizerOptions,
                   Workload, lower_program, parse_program, run_icfg)

# A faithful miniature of paper Fig. 1: fgetc checks the stream, checks
# the buffered count, refills on exhaustion (the unknown path), and
# returns either EOF (-1) or an unsigned character.
SOURCE = """
global bufcount = 0;

proc fillbuf(stream) {
    var n = input();                 // bytes "read from the file"
    if (n <= 0) { return -1; }       // end of file
    bufcount = n;
    return (unsigned) load(stream);
}

proc fgetc(stream) {
    if (stream == 0) { return -1; }          // P1: validity check
    if (bufcount == 0) {                     // P2: buffer empty?
        return fillbuf(stream);
    }
    bufcount = bufcount - 1;
    return (unsigned) load(stream);          // P3: fetch (unsigned char)
}

proc main() {
    var stream = alloc(1);
    store(stream, 65);
    var c = fgetc(stream);
    while (c != -1) {                        // P0: the EOF test
        print c;
        c = fgetc(stream);
    }
    return 0;
}
"""


def conditionals_per_iteration(result, iterations):
    return result.profile.executed_conditionals / max(1, iterations)


def main() -> None:
    icfg = lower_program(parse_program(SOURCE))
    # 3 refills of 40 characters each, then EOF.
    workload = Workload([40, 40, 40, 0])

    before = run_icfg(icfg, workload)
    iterations = len(before.output)
    print(f"loop iterations (characters read): {iterations}")
    print(f"before: executed conditionals = "
          f"{before.profile.executed_conditionals} "
          f"(~{conditionals_per_iteration(before, iterations):.2f} "
          f"per character)")

    optimizer = ICBEOptimizer(OptimizerOptions(
        config=AnalysisConfig(interprocedural=True), duplication_limit=200))
    report = optimizer.optimize(icfg)
    after = run_icfg(report.optimized, workload)

    per_iter = conditionals_per_iteration(after, iterations)
    print(f"after:  executed conditionals = "
          f"{after.profile.executed_conditionals} (~{per_iter:.2f} "
          f"per character)")
    print(f"fgetc now has {len(report.optimized.procs['fgetc'].exits)} "
          f"exits and {len(report.optimized.procs['fgetc'].entries)} "
          f"entries (exit/entry splitting)")

    assert after.observable == before.observable
    # Paper Fig. 2: one conditional left in the steady-state loop.
    assert per_iter <= 1.5, f"expected ~1 conditional/char, got {per_iter}"
    print("\nreproduced the paper's 5-to-1 loop conditional reduction.")


if __name__ == "__main__":
    main()
