#!/usr/bin/env python3
"""Library pre-splitting (paper §5, "Library procedures").

"Even when it is not possible to compile the library procedures
together with the application program, we can take advantage of
correlation that crosses the application-library boundary.  The library
procedures can be pre-split by optimization with respect to
characteristic application programs... For example, a separate exit
from malloc would exist that would be taken when the return value is
NULL.  The original unoptimized procedure entry must be maintained."

This example:

1. optimizes a malloc-like library against a tiny *characteristic
   program* — producing a pre-split library whose exits separate the
   NULL return from the success return;
2. verifies the pre-split library still serves an *unoptimized* caller
   through its original entry (the compatibility requirement);
3. shows a second application reusing the pre-split exits.

Run:  python examples/library_split.py
"""

from repro import (AnalysisConfig, ICBEOptimizer, OptimizerOptions,
                   Workload, lower_program, parse_program, run_icfg)

# The library: xmalloc returns 0 (NULL) on failure, non-zero otherwise.
LIBRARY = """
proc xmalloc(size) {
    if (size <= 0) { return 0; }      // allocation failure -> NULL
    return alloc(size);
}
"""

# The characteristic program the library is pre-split against — small,
# but it exhibits the canonical use: allocate, then test for NULL.
CHARACTERISTIC = LIBRARY + """
proc main() {
    var p = xmalloc(input());
    if (p == 0) { print -1; } else { print 1; }
    return 0;
}
"""

# A second application with the same idiom (plus real work).
APPLICATION = LIBRARY + """
proc main() {
    var total = 0;
    var i = 0;
    while (i < 6) {
        var p = xmalloc(input());
        if (p == 0) {                 // correlated with xmalloc's guard
            total = total - 1;
        } else {
            store(p, i);
            total = total + load(p);
        }
        i = i + 1;
    }
    print total;
    return 0;
}
"""


def main() -> None:
    # Step 1: pre-split the library against the characteristic program.
    char_icfg = lower_program(parse_program(CHARACTERISTIC))
    optimizer = ICBEOptimizer(OptimizerOptions(
        config=AnalysisConfig(interprocedural=True), duplication_limit=100))
    pre_split = optimizer.optimize(char_icfg).optimized
    exits = len(pre_split.procs["xmalloc"].exits)
    print(f"pre-split xmalloc has {exits} exits "
          f"(one taken exactly when the result is NULL)")
    assert exits >= 2

    # Step 2: the characteristic program still behaves identically.
    for inputs in ([4], [0], [-2]):
        before = run_icfg(char_icfg, Workload(inputs))
        after = run_icfg(pre_split, Workload(inputs))
        assert after.observable == before.observable

    # Step 3: a full application enjoys the same split.
    app_icfg = lower_program(parse_program(APPLICATION))
    app_report = optimizer.optimize(app_icfg)
    workload = Workload([2, 0, 3, -1, 5, 1])
    before = run_icfg(app_icfg, workload)
    after = run_icfg(app_report.optimized, workload)
    assert after.observable == before.observable
    print(f"application: executed conditionals "
          f"{before.profile.executed_conditionals} -> "
          f"{after.profile.executed_conditionals}")
    assert (after.profile.executed_conditionals
            < before.profile.executed_conditionals)
    print("\nthe NULL re-check rides the library's split exits; the "
          "original entry remains for non-ICBE callers.")


if __name__ == "__main__":
    main()
