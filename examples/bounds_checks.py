#!/usr/bin/env python3
"""Array bounds-check elimination via ICBE (paper §5).

"The ICBE optimization can be used to optimize array bounds checks
[Kolte-Wolfe, Gupta] which typically exhibit correlation."

A safe-array module re-validates every index; callers that already
validated their indices make those checks fully correlated.  Entry
splitting gives the checked accessor a fast entry for validated call
sites while unvalidated call sites keep the checking entry.

Like the paper's implementation (which analyzed the 45% of conditionals
comparing a scalar to a constant), the eliminated check is the
``idx < 0`` lower-bound test: the upper-bound test compares two
variables (``idx >= len``), outside the ``(v relop c)`` query language.

Run:  python examples/bounds_checks.py
"""

from repro import (AnalysisConfig, ICBEOptimizer, OptimizerOptions,
                   Workload, lower_program, parse_program, run_icfg)

SOURCE = """
global bounds_errors = 0;

// The safe-array module: every access is bounds checked.
proc safe_get(arr, idx, len) {
    if (idx < 0)    { bounds_errors = bounds_errors + 1; return -1; }
    if (idx >= len) { bounds_errors = bounds_errors + 1; return -1; }
    return load(arr + idx);
}

proc sum_validated(arr, len) {
    // This caller validates the index itself (it is the loop bound),
    // making safe_get's checks redundant on this path.
    var total = 0;
    var i = 0;
    while (i < len) {
        if (i >= 0) {
            total = total + safe_get(arr, i, len);
        }
        i = i + 1;
    }
    return total;
}

proc probe_unvalidated(arr, len) {
    // This caller passes raw input: the checks must stay.
    var idx = input();
    return safe_get(arr, idx, len);
}

proc main() {
    var len = 8;
    var arr = alloc(len);
    var i = 0;
    while (i < len) {
        store(arr + i, input());
        i = i + 1;
    }
    print sum_validated(arr, len);
    print probe_unvalidated(arr, len);
    print probe_unvalidated(arr, len);
    print bounds_errors;
    return 0;
}
"""


def bounds_check_executions(icfg, result):
    from repro.ir.nodes import BranchNode
    return sum(
        count for node_id, count in result.profile.node_counts.items()
        if isinstance(icfg.nodes.get(node_id), BranchNode)
        and ("idx" in icfg.nodes[node_id].label()))


def main() -> None:
    icfg = lower_program(parse_program(SOURCE))
    workload = Workload([5, 3, 8, 1, 9, 2, 7, 4, 3, -1])

    before = run_icfg(icfg, workload)
    checks_before = bounds_check_executions(icfg, before)
    print(f"bounds-check executions before: {checks_before}")

    optimizer = ICBEOptimizer(OptimizerOptions(
        config=AnalysisConfig(interprocedural=True), duplication_limit=200))
    report = optimizer.optimize(icfg)
    after = run_icfg(report.optimized, workload)
    checks_after = bounds_check_executions(report.optimized, after)
    print(f"bounds-check executions after:  {checks_after}")
    entries = len(report.optimized.procs["safe_get"].entries)
    print(f"safe_get now has {entries} entries "
          f"(fast entry for validated callers)")

    assert after.observable == before.observable
    assert checks_after < checks_before
    assert entries >= 2
    print("\nvalidated call sites skip the bounds checks; the raw-input "
          "call site still checks.")


if __name__ == "__main__":
    main()
