"""Pytest fixtures (helpers live in tests.helpers)."""

import pytest

from repro.ir import ICFG
from tests.helpers import FGETC_LIKE, build


@pytest.fixture
def fgetc_icfg() -> ICFG:
    return build(FGETC_LIKE)
