from repro.harness.__main__ import EXPERIMENTS, main


def test_usage_without_arguments(capsys):
    assert main([]) == 2
    assert "usage" in capsys.readouterr().out


def test_help_flag(capsys):
    assert main(["--help"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out


def test_unknown_experiment(capsys):
    assert main(["bogus"]) == 2
    assert "unknown experiment" in capsys.readouterr().out


def test_dispatch_runs_table1(capsys):
    assert main(["table1"]) == 0
    assert "Table 1" in capsys.readouterr().out


def test_experiment_registry_is_complete():
    assert set(EXPERIMENTS) == {"table1", "table2", "fig9", "fig10",
                                "fig11", "headline"}
