from repro.harness.fig9 import compute_fig9, render_fig9, summary_ratios


def test_fig9_shape_and_invariants():
    rows = compute_fig9(["compress_like", "li_like"], budget=50_000)
    assert [r.name for r in rows] == ["compress_like", "li_like"]
    for row in rows:
        # Correlated requires analyzable.
        assert row.inter_pct <= row.analyzable_pct
        assert row.intra_pct <= row.analyzable_pct
        # Interprocedural analysis only adds knowledge.
        assert row.inter_pct >= row.intra_pct
        assert row.inter_full_pct >= row.intra_full_pct
        assert row.inter_dyn_pct >= row.intra_dyn_pct
        # Full correlation is a subset of some correlation.
        assert row.inter_full_pct <= row.inter_pct
        assert row.intra_full_pct <= row.intra_pct
        # Percentages are percentages.
        for value in vars(row).values():
            if isinstance(value, float):
                assert 0.0 <= value <= 100.0


def test_paper_headline_ratio_direction():
    rows = compute_fig9(["compress_like", "li_like", "perl_like"],
                        budget=50_000)
    ratios = summary_ratios(rows)
    # The paper reports at least 2x more correlated branches found
    # interprocedurally; our suite reproduces the direction with margin.
    assert ratios["static_ratio"] >= 1.5


def test_render_has_four_panels():
    rows = compute_fig9(["compress_like"], budget=20_000)
    text = render_fig9(rows)
    assert text.count("Fig 9") == 4
    assert "dynamic" in text and "static" in text
