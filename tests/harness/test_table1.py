from repro.harness.table1 import compute_table1, render_table1


def test_rows_have_consistent_counts():
    rows = compute_table1(["compress_like", "go_like"])
    assert [r.name for r in rows] == ["compress_like", "go_like"]
    for row in rows:
        assert 0 < row.nodes_conditional < row.nodes_executable
        assert row.nodes_executable < row.nodes_all
        assert 0 < row.static_cond_pct < 100
        assert 0 < row.dynamic_cond_pct < 100
        assert row.procedures >= 3
        assert 0 < row.leaf_procedures < row.procedures
        assert row.source_lines > 20


def test_render_contains_all_benchmarks():
    rows = compute_table1(["compress_like"])
    text = render_table1(rows)
    assert "Table 1" in text
    assert "compress_like" in text
