import pytest

from repro.harness.fig11 import compute_fig11, render_fig11, sweep_benchmark
from repro.harness.metrics import prepare_benchmark


@pytest.fixture(scope="module")
def compress_points():
    context = prepare_benchmark("compress_like")
    inter = sweep_benchmark(context, True, limits=(5, 50))
    intra = sweep_benchmark(context, False, limits=(5, 50))
    return inter + intra


def test_points_cover_the_sweep(compress_points):
    combos = {(p.interprocedural, p.duplication_limit)
              for p in compress_points}
    assert combos == {(True, 5), (True, 50), (False, 5), (False, 50)}


def test_reduction_monotone_in_limit(compress_points):
    by_scope = {}
    for point in compress_points:
        by_scope.setdefault(point.interprocedural, {})[
            point.duplication_limit] = point
    for scope_points in by_scope.values():
        assert (scope_points[50].reduction_pct
                >= scope_points[5].reduction_pct - 1e-9)


def test_inter_beats_intra_at_every_limit(compress_points):
    inter = {p.duplication_limit: p for p in compress_points
             if p.interprocedural}
    intra = {p.duplication_limit: p for p in compress_points
             if not p.interprocedural}
    for limit in (5, 50):
        assert inter[limit].reduction_pct >= intra[limit].reduction_pct


def test_semantics_guard_is_active(compress_points):
    # sweep_benchmark re-runs the workload and raises on divergence;
    # reaching this point means every optimized variant matched.
    for point in compress_points:
        assert point.executed_after <= point.executed_before


def test_render_fig11_groups_by_benchmark(compress_points):
    text = render_fig11(compress_points)
    assert "Fig 11: compress_like" in text
    assert "dup limit" in text


def test_compute_fig11_single_benchmark():
    points = compute_fig11(["go_like"], limits=(10,))
    assert len(points) == 2  # one inter + one intra point
