from repro.harness.fig11 import Fig11Point
from repro.harness.headline import (compute_headline, matched_growth_ratio,
                                    render_headline)


def point(benchmark, inter, limit, reduction, growth):
    before = 1000
    return Fig11Point(
        benchmark=benchmark, interprocedural=inter, duplication_limit=limit,
        optimized_branches=1, executed_before=before,
        executed_after=int(before * (1 - reduction / 100.0)),
        nodes_before=100, nodes_after=int(100 * (1 + growth / 100.0)))


def synthetic_points():
    return [
        # intra achieves 10% reduction at 10% growth
        point("b", False, 5, 10.0, 10.0),
        # inter achieves 25% at the same growth — a 2.5x ratio
        point("b", True, 5, 25.0, 10.0),
        point("b", True, 50, 40.0, 30.0),
    ]


def test_matched_growth_ratio_on_synthetic_data():
    ratio = matched_growth_ratio(synthetic_points(), "b")
    assert ratio is not None
    assert abs(ratio - 2.5) < 0.05


def test_ratio_none_when_intra_achieves_nothing():
    points = [point("b", False, 5, 0.0, 0.0),
              point("b", True, 5, 20.0, 5.0)]
    assert matched_growth_ratio(points, "b") is None


def test_compute_headline_summary_fields():
    summary = compute_headline(synthetic_points())
    assert summary.per_benchmark_ratio["b"] > 1.0
    assert summary.reduction_max_pct == 40.0
    assert summary.reduction_min_pct == 40.0


def test_render_headline_mentions_paper_claims():
    text = render_headline(compute_headline(synthetic_points()))
    assert "2.5x" in text
    assert "paper" in text


def test_headline_on_real_benchmark():
    from repro.harness.fig11 import compute_fig11
    points = compute_fig11(["compress_like"], limits=(5, 20, 100))
    summary = compute_headline(points)
    # The suite must reproduce the direction: inter wins at equal growth.
    if summary.per_benchmark_ratio:
        assert summary.mean_ratio >= 1.0
    assert summary.reduction_max_pct > 0.0
