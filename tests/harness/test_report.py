import pathlib

from repro.harness.report import generate


def test_report_generates_complete_markdown(tmp_path):
    path = tmp_path / "EXPERIMENTS.md"
    text = generate(str(path))
    assert path.exists()
    assert path.read_text() == text
    for heading in ("Table 1", "Table 2", "Figure 9", "Figure 10",
                    "Figure 11", "Headline claims", "Extension claims"):
        assert heading in text, f"missing section {heading!r}"
    # Paper-vs-measured juxtaposition present.
    assert "Paper reports" in text
    assert "2.5" in text


def test_checked_in_report_is_current_format():
    repo_root = pathlib.Path(__file__).resolve().parents[2]
    checked_in = (repo_root / "EXPERIMENTS.md").read_text()
    assert "# EXPERIMENTS" in checked_in
    assert "Figure 11" in checked_in
