from repro.harness.fig10 import (compute_fig10, quadrant_counts,
                                 render_fig10)


def test_points_only_for_correlated_conditionals():
    data = compute_fig10(["compress_like"], budget=50_000)
    assert data.inter, "interprocedural analysis must find correlation"
    for point in data.inter + data.intra:
        assert point.duplication >= 0
        assert point.avoided_executions >= 0


def test_inter_has_at_least_as_many_points_as_intra():
    data = compute_fig10(["li_like"], budget=50_000)
    assert len(data.inter) >= len(data.intra)


def test_quadrant_counts_partition_points():
    data = compute_fig10(["compress_like"], budget=50_000)
    counts = quadrant_counts(data.inter)
    assert sum(counts.values()) == len(data.inter)


def test_render_mentions_both_scopes():
    data = compute_fig10(["compress_like"], budget=20_000)
    text = render_fig10(data)
    assert "intraprocedural" in text and "interprocedural" in text
