from repro.analysis import AnalysisConfig
from repro.harness.table2 import (compute_table2, measure_benchmark,
                                  render_table2)


def test_measurement_fields_consistent():
    row = measure_benchmark("compress_like")
    assert row.analysis_seconds <= row.overall_seconds
    assert row.pairs_total > 0
    assert row.conditionals > 0
    assert row.pairs_per_conditional > 0
    assert row.progrep_kb > 0
    assert row.analysis_kb > 0


def test_budget_limits_pairs_per_conditional():
    generous = measure_benchmark("perl_like",
                                 AnalysisConfig(budget=50_000))
    tight = measure_benchmark("perl_like", AnalysisConfig(budget=5))
    assert tight.pairs_per_conditional <= generous.pairs_per_conditional
    assert tight.budget_hits > 0
    assert generous.budget_hits == 0


def test_render_table2():
    rows = compute_table2(["compress_like"])
    text = render_table2(rows)
    assert "Table 2" in text and "compress_like" in text
