from repro.analysis import AnalysisConfig
from repro.harness.metrics import (branch_population, percent,
                                   population_summary, prepare_benchmark)


def test_prepare_benchmark_profiles_ref_workload():
    context = prepare_benchmark("compress_like")
    assert context.name == "compress_like"
    assert context.execution.status == "ok"
    assert context.profile.executed_conditionals > 50


def test_branch_population_covers_every_conditional():
    context = prepare_benchmark("compress_like")
    infos = branch_population(context, AnalysisConfig(budget=5000))
    assert len(infos) == context.icfg.conditional_node_count()
    assert all(info.pairs_examined >= 0 for info in infos)


def test_inter_dominates_intra_on_every_benchmark_field():
    context = prepare_benchmark("li_like")
    inter = population_summary(branch_population(
        context, AnalysisConfig(interprocedural=True, budget=50_000)))
    intra = population_summary(branch_population(
        context, AnalysisConfig(interprocedural=False, budget=50_000)))
    assert inter["correlated_pct"] >= intra["correlated_pct"]
    assert inter["fully_pct"] >= intra["fully_pct"]
    assert inter["correlated_dyn_pct"] >= intra["correlated_dyn_pct"]


def test_fully_correlated_implies_correlated():
    context = prepare_benchmark("perl_like")
    for info in branch_population(context, AnalysisConfig(budget=50_000)):
        if info.fully_correlated:
            assert info.correlated
        if info.correlated:
            assert info.analyzable


def test_percent_helper():
    assert percent(1, 4) == 25.0
    assert percent(1, 0) == 0.0
