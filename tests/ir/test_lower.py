from tests.helpers import build, run

from repro.ir import (AssignNode, BranchNode, CallExitNode, CallNode,
                      EntryNode, ExitNode)
from repro.ir.expr import Alloc, Const, Convert, InputRead, Load, VarId
from repro.ir.icfg import EdgeKind
from repro.ir.nodes import StoreNode


def nodes_of(icfg, cls):
    return [n for n in icfg.iter_nodes() if isinstance(n, cls)]


def test_every_proc_gets_entry_and_exit():
    icfg = build("proc f() { return 1; } proc main() { var x = f(); }")
    for name in ("f", "main"):
        info = icfg.procs[name]
        assert len(info.entries) == 1
        assert len(info.exits) == 1
        assert isinstance(icfg.nodes[info.entries[0]], EntryNode)
        assert isinstance(icfg.nodes[info.exits[0]], ExitNode)


def test_call_site_normal_form_wiring():
    icfg = build("proc f() { return 1; } proc main() { var x = f(); }")
    call = nodes_of(icfg, CallNode)[0]
    call_exit = nodes_of(icfg, CallExitNode)[0]
    f = icfg.procs["f"]
    assert call.entry_id == f.entries[0]
    assert icfg.call_exits_of(call.id) == (call_exit.id,)
    assert icfg.call_pred_of_call_exit(call_exit.id) == call.id
    assert icfg.exit_pred_of_call_exit(call_exit.id) == f.exits[0]
    assert call.return_map == {f.exits[0]: call_exit.id}
    assert call_exit.result == VarId.local("main", "x")


def test_call_for_effect_has_no_result_binding():
    icfg = build("proc f() { return 1; } proc main() { f(); }")
    assert nodes_of(icfg, CallExitNode)[0].result is None


def test_nested_call_hoisted_to_temp():
    icfg = build("proc f(a) { return a; } proc main() { var x = f(1) + 2; }")
    calls = nodes_of(icfg, CallNode)
    assert len(calls) == 1
    call_exit = nodes_of(icfg, CallExitNode)[0]
    assert call_exit.result is not None
    assert call_exit.result.name.startswith("$t")


def test_effectful_primitives_stay_top_level():
    icfg = build("""
        proc main() {
            var a = input();
            var p = alloc(2);
            var v = load(p);
            var w = load(p) + 1;
        }
    """)
    assigns = {str(n.target): n.rhs for n in nodes_of(icfg, AssignNode)}
    assert isinstance(assigns["main::a"], InputRead)
    assert isinstance(assigns["main::p"], Alloc)
    assert isinstance(assigns["main::v"], Load)
    # The load inside the sum is hoisted into a temp.
    assert isinstance(assigns["main::$t0"], Load)


def test_shortcircuit_and_lowers_to_two_branches():
    icfg = build("""
        proc main() {
            var a = 1; var b = 2;
            if (a == 1 && b == 2) { print 1; }
        }
    """)
    branches = nodes_of(icfg, BranchNode)
    assert len(branches) == 2
    # Dynamic check: both orderings of truth values behave like &&.
    assert run("""
        proc main() {
            var a = input(); var b = input();
            if (a == 1 && b == 2) { print 1; } else { print 0; }
        }
    """, [1, 2]).output == [1]


def test_shortcircuit_or_and_not():
    result = run("""
        proc main() {
            var a = input();
            if (!(a == 1) || a > 10) { print 7; } else { print 8; }
        }
    """, [1])
    assert result.output == [8]


def test_constant_condition_folds_away():
    icfg = build("proc main() { if (1) { print 1; } else { print 2; } }")
    assert nodes_of(icfg, BranchNode) == []
    assert run(icfg).output == [1]


def test_constant_false_condition_keeps_else_only():
    icfg = build("proc main() { if (0) { print 1; } else { print 2; } }")
    assert nodes_of(icfg, BranchNode) == []
    assert run(icfg).output == [2]


def test_implicit_return_zero_appended():
    icfg = build("proc f() { print 1; } proc main() { var x = f(); print x; }")
    rets = [n for n in nodes_of(icfg, AssignNode)
            if n.target == VarId.ret("f")]
    assert len(rets) == 1
    assert rets[0].rhs == Const(0)


def test_unreachable_code_after_return_skipped():
    icfg = build("proc main() { return 1; print 2; }")
    assert not any("2" == str(getattr(n, "value", ""))
                   for n in icfg.iter_nodes())


def test_while_loop_shape_and_execution():
    result = run("""
        proc main() {
            var i = 0;
            var sum = 0;
            while (i < 4) { sum = sum + i; i = i + 1; }
            print sum;
        }
    """)
    assert result.output == [6]


def test_break_and_continue_execution():
    result = run("""
        proc main() {
            var i = 0;
            while (i < 10) {
                i = i + 1;
                if (i == 3) { continue; }
                if (i == 5) { break; }
                print i;
            }
            print i;
        }
    """)
    assert result.output == [1, 2, 4, 5]


def test_while_true_with_break_terminates():
    result = run("""
        proc main() {
            var i = 0;
            while (1) {
                i = i + 1;
                if (i >= 2) { break; }
            }
            print i;
        }
    """)
    assert result.output == [2]


def test_globals_lowered_with_initializers():
    icfg = build("global a = 7; global b; proc main() { print a + b; }")
    assert icfg.globals[VarId.global_("a")] == 7
    assert icfg.globals[VarId.global_("b")] == 0


def test_store_and_unsigned_cast_lowering():
    icfg = build("""
        proc main() {
            var p = alloc(1);
            store(p, 3);
            var c = (unsigned) load(p);
            print c;
        }
    """)
    assert len(nodes_of(icfg, StoreNode)) == 1
    converted = [n for n in nodes_of(icfg, AssignNode)
                 if isinstance(n.rhs, Convert)]
    assert len(converted) == 1
    assert run(icfg).output == [3]


def test_branch_correlation_pattern_extraction():
    icfg = build("""
        proc main() {
            var x = input();
            if (x == 3) { print 1; }
            if (5 > x) { print 2; }
            if (x) { print 3; }
            if (x + 1 == 2) { print 4; }
        }
    """)
    patterns = [b.correlation_pattern() for b in nodes_of(icfg, BranchNode)]
    as_text = [None if p is None else (str(p[0]), str(p[1]), p[2])
               for p in patterns]
    assert as_text[0] == ("main::x", "==", 3)
    assert as_text[1] == ("main::x", "<", 5)     # const-left swapped
    assert as_text[2] == ("main::x", "!=", 0)    # bare variable
    assert as_text[3] is None                    # compound lhs


def test_main_entry_is_first_entry():
    icfg = build("proc main() { return 0; }")
    assert icfg.main_entry() == icfg.procs["main"].entries[0]


def test_edges_out_of_branches_are_true_false():
    icfg = build("proc main() { var x = 1; if (x == 1) { print 1; } }")
    branch = nodes_of(icfg, BranchNode)[0]
    kinds = sorted(e.kind.value for e in icfg.succ_edges(branch.id))
    assert kinds == ["false", "true"]


def test_remove_unreachable_prunes_uncalled_code():
    icfg = build("""
        proc unused() { print 42; return 0; }
        proc main() { print 1; }
    """)
    removed = icfg.remove_unreachable()
    assert removed > 0
    assert all(n.proc != "unused" for n in icfg.iter_nodes())
