import pytest

from tests.helpers import build

from repro.errors import VerificationError
from repro.ir import verify_icfg
from repro.ir.icfg import EdgeKind
from repro.ir.nodes import BranchNode, CallExitNode, CallNode, NopNode


SOURCE = """
proc f(a) { if (a == 0) { return 1; } return 2; }
proc main() { var x = f(3); print x; }
"""


def test_lowered_program_verifies(fgetc_icfg):
    verify_icfg(fgetc_icfg)


def branch_of(icfg):
    return [n for n in icfg.iter_nodes() if isinstance(n, BranchNode)][0]


def test_detects_branch_missing_false_edge():
    icfg = build(SOURCE)
    branch = branch_of(icfg)
    for edge in icfg.succ_edges(branch.id):
        if edge.kind is EdgeKind.FALSE:
            icfg.remove_edge(edge)
    with pytest.raises(VerificationError, match="branch"):
        verify_icfg(icfg)


def test_detects_flowthrough_with_two_successors():
    icfg = build(SOURCE)
    nop = [n for n in icfg.iter_nodes() if isinstance(n, NopNode)][0]
    other = icfg.procs[nop.proc].exits[0]
    icfg.add_edge(nop.id, other, EdgeKind.NORMAL)
    with pytest.raises(VerificationError):
        verify_icfg(icfg)


def test_detects_cross_procedure_normal_edge():
    icfg = build(SOURCE)
    main_nodes = [n for n in icfg.iter_nodes()
                  if n.proc == "main" and isinstance(n, NopNode)]
    f_exit = icfg.procs["f"].exits[0]
    source = main_nodes[0] if main_nodes else icfg.nodes[icfg.main_entry()]
    icfg.add_edge(source.id, f_exit, EdgeKind.NORMAL)
    with pytest.raises(VerificationError):
        verify_icfg(icfg)


def test_detects_call_exit_without_return_edge():
    icfg = build(SOURCE)
    call_exit = [n for n in icfg.iter_nodes()
                 if isinstance(n, CallExitNode)][0]
    return_edge = [e for e in icfg.pred_edges(call_exit.id)
                   if e.kind is EdgeKind.RETURN][0]
    icfg.remove_edge(return_edge)
    with pytest.raises(VerificationError, match="call-exit"):
        verify_icfg(icfg)


def test_detects_return_map_value_mismatch():
    icfg = build(SOURCE)
    call = [n for n in icfg.iter_nodes() if isinstance(n, CallNode)][0]
    exit_id = icfg.procs["f"].exits[0]
    call.return_map[exit_id] = 999999
    with pytest.raises(VerificationError, match="return_map"):
        verify_icfg(icfg)


def test_detects_missing_return_address_for_reachable_exit():
    icfg = build(SOURCE)
    call = [n for n in icfg.iter_nodes() if isinstance(n, CallNode)][0]
    # Pretend the exit is unmapped by removing both the map entry and
    # the LOCAL/RETURN edges so value consistency still holds.
    exit_id = icfg.procs["f"].exits[0]
    call_exit_id = call.return_map.pop(exit_id)
    for edge in list(icfg.succ_edges(call.id)):
        if edge.kind is EdgeKind.LOCAL and edge.dst == call_exit_id:
            icfg.remove_edge(edge)
    with pytest.raises(VerificationError):
        verify_icfg(icfg)


def test_detects_call_to_wrong_entry():
    icfg = build(SOURCE + "proc g() { return 0; }")
    call = [n for n in icfg.iter_nodes() if isinstance(n, CallNode)][0]
    call.entry_id = icfg.procs["g"].entries[0]
    with pytest.raises(VerificationError):
        verify_icfg(icfg)


def test_detects_unregistered_entry_node():
    icfg = build(SOURCE)
    icfg.procs["f"].entries.remove(icfg.procs["f"].entries[0])
    with pytest.raises(VerificationError):
        verify_icfg(icfg)


def test_detects_missing_exit_list():
    icfg = build(SOURCE)
    icfg.procs["f"].exits.clear()
    with pytest.raises(VerificationError, match="no exit"):
        verify_icfg(icfg)


def test_detects_asymmetric_edge_indices():
    icfg = build(SOURCE)
    node_id = icfg.main_entry()
    edge = icfg.succ_edges(node_id)[0]
    # Corrupt the internal index directly (white-box).
    icfg._preds[edge.dst].remove(edge)
    with pytest.raises(VerificationError, match="disagree"):
        verify_icfg(icfg)


# ---------------------------------------------------------------------------
# One deliberately corrupted graph per checked invariant class (the six
# classes in the module docstring of repro/ir/verify.py), asserting the
# specific VerificationError message so a future refactor cannot
# silently weaken a check.
# ---------------------------------------------------------------------------


def test_invariant1_duplicate_out_edges_named():
    icfg = build(SOURCE)
    node_id = icfg.main_entry()
    # Bypass add_edge's own duplicate rejection (white-box).
    icfg._succs[node_id].append(icfg.succ_edges(node_id)[0])
    with pytest.raises(VerificationError, match="duplicate out-edges"):
        verify_icfg(icfg)


def test_invariant1_dangling_edge_target_named():
    icfg = build(SOURCE)
    victim = [n.id for n in icfg.iter_nodes() if isinstance(n, NopNode)][0]
    del icfg.nodes[victim]  # leave every incident edge dangling
    with pytest.raises(VerificationError, match="targets unknown node"):
        verify_icfg(icfg)


def test_invariant2_unknown_procedure_named():
    icfg = build(SOURCE)
    del icfg.procs["f"]  # every node of f now floats proc-less
    with pytest.raises(VerificationError,
                       match="unknown procedure 'f'"):
        verify_icfg(icfg)


def test_invariant3_branch_out_edge_arity_named():
    icfg = build(SOURCE)
    branch = branch_of(icfg)
    for edge in list(icfg.succ_edges(branch.id)):
        if edge.kind is EdgeKind.TRUE:
            icfg.remove_edge(edge)
    with pytest.raises(VerificationError,
                       match=rf"branch {branch.id} has out-edges"):
        verify_icfg(icfg)


def test_invariant3_flowthrough_out_edge_arity_named():
    icfg = build(SOURCE)
    nop = [n for n in icfg.iter_nodes() if isinstance(n, NopNode)][0]
    for edge in list(icfg.succ_edges(nop.id)):
        icfg.remove_edge(edge)
    with pytest.raises(VerificationError,
                       match="expected exactly one NORMAL"):
        verify_icfg(icfg)


def test_invariant4_call_without_call_site_exit_named():
    icfg = build(SOURCE)
    call = [n for n in icfg.iter_nodes() if isinstance(n, CallNode)][0]
    for edge in list(icfg.succ_edges(call.id)):
        if edge.kind is EdgeKind.LOCAL:
            icfg.remove_edge(edge)
    with pytest.raises(VerificationError, match="no call-site exit"):
        verify_icfg(icfg)


def test_invariant5_return_map_key_not_an_exit_named():
    icfg = build(SOURCE)
    call = [n for n in icfg.iter_nodes() if isinstance(n, CallNode)][0]
    exit_id = icfg.procs["f"].exits[0]
    call_exit = call.return_map.pop(exit_id)
    call.return_map[icfg.main_entry()] = call_exit
    with pytest.raises(VerificationError,
                       match="return_map key .* is not an exit"):
        verify_icfg(icfg)


def test_invariant6_entry_with_non_call_in_edge_named():
    icfg = build(SOURCE)
    entry = icfg.procs["f"].entries[0]
    nop = [n for n in icfg.iter_nodes()
           if isinstance(n, NopNode) and n.proc == "f"][0]
    for edge in list(icfg.succ_edges(nop.id)):
        icfg.remove_edge(edge)
    icfg.add_edge(nop.id, entry, EdgeKind.NORMAL)
    with pytest.raises(VerificationError, match="non-CALL in-edges"):
        verify_icfg(icfg)


def test_invariant6_exit_with_non_return_out_edge_named():
    icfg = build(SOURCE)
    exit_id = icfg.procs["f"].exits[0]
    nop = [n for n in icfg.iter_nodes()
           if isinstance(n, NopNode) and n.proc == "f"][0]
    icfg.add_edge(exit_id, nop.id, EdgeKind.NORMAL)
    with pytest.raises(VerificationError, match="non-RETURN out-edges"):
        verify_icfg(icfg)
