from repro.ir.expr import (Alloc, BinaryExpr, Const, Convert, InputRead,
                           Load, UnaryExpr, VarExpr, VarId, as_const, as_var,
                           as_var_plus_const, direct_deref_vars)


G = VarId.global_("g")
X = VarId.local("f", "x")
W = VarId.local("f", "w")


def test_varid_scoping():
    assert G.is_global and not X.is_global
    assert VarId.ret("f").is_ret
    assert str(G) == "g" and str(X) == "f::x"


def test_varid_identity_is_value_based():
    assert VarId.local("f", "x") == X
    assert VarId.local("other", "x") != X


def test_free_vars_collects_all_occurrences():
    expr = BinaryExpr("+", VarExpr(X), BinaryExpr("*", VarExpr(G),
                                                  VarExpr(X)))
    assert expr.free_vars() == (X, G, X)


def test_purity_classification():
    assert Const(1).is_pure
    assert VarExpr(X).is_pure
    assert Convert(VarExpr(X)).is_pure
    assert not InputRead().is_pure
    assert not Alloc(Const(1)).is_pure
    assert not Load(VarExpr(X)).is_pure


def test_as_var_and_as_const_matchers():
    assert as_var(VarExpr(X)) == X
    assert as_var(Const(1)) is None
    assert as_const(Const(7)) == 7
    assert as_const(VarExpr(X)) is None


def test_var_plus_const_matches_copy():
    assert as_var_plus_const(VarExpr(W)) == (W, 0)


def test_var_plus_const_matches_offsets():
    assert as_var_plus_const(BinaryExpr("+", VarExpr(W), Const(3))) == (W, 3)
    assert as_var_plus_const(BinaryExpr("-", VarExpr(W), Const(3))) == (W, -3)
    assert as_var_plus_const(BinaryExpr("+", Const(4), VarExpr(W))) == (W, 4)


def test_var_plus_const_rejects_other_shapes():
    assert as_var_plus_const(BinaryExpr("-", Const(4), VarExpr(W))) is None
    assert as_var_plus_const(BinaryExpr("*", VarExpr(W), Const(2))) is None
    assert as_var_plus_const(BinaryExpr("+", VarExpr(W), VarExpr(X))) is None
    assert as_var_plus_const(Const(2)) is None


def test_direct_deref_vars_finds_loads_of_variables():
    expr = BinaryExpr("+", Load(VarExpr(X)), Load(BinaryExpr("+",
                                                             VarExpr(W),
                                                             Const(1))))
    assert direct_deref_vars([expr]) == (X,)


def test_direct_deref_vars_looks_inside_converts_and_allocs():
    assert direct_deref_vars([Convert(Load(VarExpr(G)))]) == (G,)
    assert direct_deref_vars([Alloc(Load(VarExpr(X)))]) == (X,)


def test_expression_rendering():
    assert str(BinaryExpr("+", Const(1), VarExpr(X))) == "(1 + f::x)"
    assert str(Convert(VarExpr(X))) == "(unsigned)f::x"
    assert str(Load(VarExpr(G))) == "load(g)"
