from tests.helpers import FGETC_LIKE, build

from repro.ir.printer import dump_icfg, to_dot


def test_dump_lists_every_node_once(fgetc_icfg):
    text = dump_icfg(fgetc_icfg)
    for node_id in fgetc_icfg.nodes:
        assert f"[{node_id}]" in text


def test_dump_groups_by_procedure(fgetc_icfg):
    text = dump_icfg(fgetc_icfg)
    assert text.index("proc fgetc") < text.index("proc main")


def test_dump_is_deterministic(fgetc_icfg):
    assert dump_icfg(fgetc_icfg) == dump_icfg(fgetc_icfg)
    assert dump_icfg(fgetc_icfg) == dump_icfg(fgetc_icfg.clone())


def test_dump_shows_edge_kinds(fgetc_icfg):
    text = dump_icfg(fgetc_icfg)
    for kind in ("true->", "false->", "call->", "local->", "return->"):
        assert kind in text


def test_dot_output_has_clusters_and_edges(fgetc_icfg):
    dot = to_dot(fgetc_icfg)
    assert dot.startswith("digraph")
    assert "subgraph cluster_0" in dot
    assert 'label="fgetc"' in dot
    assert "->" in dot
    # Branches are diamonds.
    assert "shape=diamond" in dot


def test_dot_escapes_quotes():
    icfg = build('proc main() { var x = 1; if (x == 1) { print 1; } }')
    assert '\\"' not in to_dot(icfg)
