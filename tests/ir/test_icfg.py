import pytest

from repro.errors import LoweringError
from repro.ir.expr import Const, VarId
from repro.ir.icfg import Edge, EdgeKind, ICFG, ProcInfo
from repro.ir.nodes import (AssignNode, BranchNode, EntryNode, ExitNode,
                            NopNode)


def tiny_graph():
    icfg = ICFG()
    icfg.add_proc(ProcInfo("main"))
    entry = icfg.add_node(EntryNode(icfg.new_id(), "main"))
    exit_node = icfg.add_node(ExitNode(icfg.new_id(), "main"))
    icfg.procs["main"].entries.append(entry.id)
    icfg.procs["main"].exits.append(exit_node.id)
    return icfg, entry, exit_node


def test_add_node_rejects_duplicate_ids():
    icfg, entry, _ = tiny_graph()
    with pytest.raises(LoweringError):
        icfg.add_node(NopNode(entry.id, "main"))


def test_new_ids_never_collide_with_added_nodes():
    icfg, _, _ = tiny_graph()
    icfg.add_node(NopNode(100, "main"))
    assert icfg.new_id() > 100


def test_edges_are_symmetric():
    icfg, entry, exit_node = tiny_graph()
    icfg.add_edge(entry.id, exit_node.id, EdgeKind.NORMAL)
    assert icfg.successors(entry.id) == (exit_node.id,)
    assert icfg.predecessors(exit_node.id) == (entry.id,)


def test_duplicate_edge_rejected():
    icfg, entry, exit_node = tiny_graph()
    icfg.add_edge(entry.id, exit_node.id, EdgeKind.NORMAL)
    with pytest.raises(LoweringError):
        icfg.add_edge(entry.id, exit_node.id, EdgeKind.NORMAL)


def test_parallel_edges_of_different_kinds_allowed():
    icfg, _, _ = tiny_graph()
    branch = icfg.add_node(BranchNode(icfg.new_id(), "main", Const(1)))
    join = icfg.add_node(NopNode(icfg.new_id(), "main"))
    icfg.add_edge(branch.id, join.id, EdgeKind.TRUE)
    icfg.add_edge(branch.id, join.id, EdgeKind.FALSE)
    assert icfg.branch_targets(branch.id) == (join.id, join.id)


def test_remove_node_drops_incident_edges():
    icfg, entry, exit_node = tiny_graph()
    middle = icfg.add_node(NopNode(icfg.new_id(), "main"))
    icfg.add_edge(entry.id, middle.id, EdgeKind.NORMAL)
    icfg.add_edge(middle.id, exit_node.id, EdgeKind.NORMAL)
    icfg.remove_node(middle.id)
    assert icfg.successors(entry.id) == ()
    assert icfg.predecessors(exit_node.id) == ()


def test_remove_entry_updates_proc_lists():
    icfg, entry, _ = tiny_graph()
    icfg.remove_node(entry.id)
    assert icfg.procs["main"].entries == []


def test_duplicate_node_registers_entries_and_exits():
    icfg, entry, exit_node = tiny_graph()
    entry_copy = icfg.duplicate_node(entry)
    exit_copy = icfg.duplicate_node(exit_node)
    assert icfg.procs["main"].entries == [entry.id, entry_copy.id]
    assert icfg.procs["main"].exits == [exit_node.id, exit_copy.id]
    # Copies carry no edges.
    assert icfg.succ_edges(entry_copy.id) == ()


def test_only_succ_requires_uniqueness():
    icfg, entry, exit_node = tiny_graph()
    with pytest.raises(LoweringError):
        icfg.only_succ(entry.id, EdgeKind.NORMAL)
    icfg.add_edge(entry.id, exit_node.id, EdgeKind.NORMAL)
    assert icfg.only_succ(entry.id, EdgeKind.NORMAL) == exit_node.id


def test_iter_nodes_sorted_by_id():
    icfg, _, _ = tiny_graph()
    icfg.add_node(NopNode(50, "main"))
    icfg.add_node(NopNode(7, "main"))
    ids = [n.id for n in icfg.iter_nodes()]
    assert ids == sorted(ids)


def test_clone_is_deep_for_structure():
    icfg, entry, exit_node = tiny_graph()
    icfg.globals[VarId.global_("g")] = 5
    assign = icfg.add_node(AssignNode(icfg.new_id(), "main",
                                      VarId.local("main", "x"), Const(1)))
    icfg.add_edge(entry.id, assign.id, EdgeKind.NORMAL)
    icfg.add_edge(assign.id, exit_node.id, EdgeKind.NORMAL)

    copy = icfg.clone()
    copy.remove_node(assign.id)
    copy.globals[VarId.global_("g")] = 99
    copy.procs["main"].entries.append(12345)

    assert assign.id in icfg.nodes
    assert icfg.globals[VarId.global_("g")] == 5
    assert icfg.procs["main"].entries == [entry.id]
    assert icfg.successors(entry.id) == (assign.id,)


def test_clone_preserves_node_count_metrics():
    icfg, _, _ = tiny_graph()
    icfg.add_node(BranchNode(icfg.new_id(), "main", Const(1)))
    copy = icfg.clone()
    assert copy.node_count() == icfg.node_count()
    assert copy.conditional_node_count() == 1
    assert copy.executable_node_count() == 1


def test_edge_str_and_value_identity():
    edge = Edge(1, 2, EdgeKind.TRUE)
    assert edge == Edge(1, 2, EdgeKind.TRUE)
    assert edge != Edge(1, 2, EdgeKind.FALSE)
    assert "true" in str(edge)
