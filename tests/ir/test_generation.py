"""Generation counter and per-procedure dirty sets on the ICFG.

Every mutator must bump the generation and mark the touched procedures,
clones and snapshots must carry both, and a snapshot restore must put
the generation back — that last property is what lets the optimizer's
analysis context keep its caches across a rolled-back transaction.
"""

import pytest

from repro.ir.expr import Const
from repro.ir.icfg import EdgeKind, ICFG, ProcInfo
from repro.ir.nodes import BranchNode, EntryNode, ExitNode, NopNode
from repro.robustness.snapshot import ICFGSnapshot


def two_proc_graph():
    icfg = ICFG()
    for name in ("main", "helper"):
        icfg.add_proc(ProcInfo(name))
        entry = icfg.add_node(EntryNode(icfg.new_id(), name))
        exit_node = icfg.add_node(ExitNode(icfg.new_id(), name))
        icfg.procs[name].entries.append(entry.id)
        icfg.procs[name].exits.append(exit_node.id)
        icfg.add_edge(entry.id, exit_node.id, EdgeKind.NORMAL)
    return icfg


def test_every_mutator_bumps_the_generation():
    icfg = two_proc_graph()
    seen = icfg.generation
    node = icfg.add_node(NopNode(icfg.new_id(), "main"))
    assert icfg.generation > seen
    seen = icfg.generation
    entry_id = icfg.procs["main"].entries[0]
    edge = icfg.add_edge(entry_id, node.id, EdgeKind.NORMAL)
    assert icfg.generation > seen
    seen = icfg.generation
    icfg.remove_edge(edge)
    assert icfg.generation > seen
    seen = icfg.generation
    icfg.remove_node(node.id)
    assert icfg.generation > seen
    seen = icfg.generation
    icfg.duplicate_node(icfg.nodes[icfg.procs["main"].exits[0]])
    assert icfg.generation > seen
    seen = icfg.generation
    icfg.remove_unreachable()
    assert icfg.generation > seen


def test_dirty_sets_name_exactly_the_touched_procedures():
    icfg = two_proc_graph()
    base = icfg.generation
    icfg.add_node(NopNode(icfg.new_id(), "helper"))
    assert icfg.dirty_procs_since(base) == {"helper"}
    assert icfg.dirty_procs_since(icfg.generation) == set()


def test_cross_procedure_edge_dirties_both_endpoints():
    icfg = two_proc_graph()
    base = icfg.generation
    icfg.add_edge(icfg.procs["main"].entries[0],
                  icfg.procs["helper"].entries[0], EdgeKind.CALL)
    assert icfg.dirty_procs_since(base) == {"main", "helper"}


def test_mark_all_dirty_taints_every_procedure():
    icfg = two_proc_graph()
    base = icfg.generation
    icfg.mark_all_dirty()
    assert icfg.dirty_procs_since(base) == {"main", "helper"}


def test_clone_carries_generation_and_dirty_sets():
    icfg = two_proc_graph()
    base = icfg.generation
    icfg.add_node(NopNode(icfg.new_id(), "main"))
    copy = icfg.clone()
    assert copy.generation == icfg.generation
    assert copy.dirty_procs_since(base) == icfg.dirty_procs_since(base)
    # Divergent mutation after the clone stays divergent.
    copy.add_node(NopNode(copy.new_id(), "helper"))
    assert copy.generation > icfg.generation


def test_snapshot_restore_restores_the_generation():
    icfg = two_proc_graph()
    snapshot = ICFGSnapshot.take(icfg)
    taken_at = icfg.generation
    icfg.add_node(NopNode(icfg.new_id(), "main"))
    assert icfg.generation > taken_at
    restored = snapshot.restore()
    assert restored.generation == taken_at
    assert restored.dirty_procs_since(taken_at) == set()


def test_restore_after_rollback_leaves_cached_analyses_valid():
    """The satellite regression: a rolled-back transaction must not
    cost the analysis context its caches.  After restore, the context
    bound to the pre-transaction generation is in sync again and its
    stored summaries answer exactly as a fresh analysis would."""
    from tests.helpers import build

    from repro.analysis import AnalysisConfig, analyze_branch
    from repro.analysis.context import AnalysisContext

    icfg = build("""
        global err = 0;
        proc may_fail(v) {
            if (v < 0) { err = 1; return 0; }
            err = 0;
            return v;
        }
        proc main() {
            var a = may_fail(input());
            if (err == 1) { print 1; }
            var b = may_fail(input());
            if (err == 1) { print 2; }
        }
    """)
    config = AnalysisConfig(budget=100_000)
    branches = [b.id for b in icfg.branch_nodes() if b.proc == "main"]
    context = AnalysisContext()
    context.bind(icfg)
    analyze_branch(icfg, branches[0], config, context=context)
    assert context.summary_count() > 0

    # A transaction mutates the graph, then rolls back via snapshot.
    snapshot = ICFGSnapshot.take(icfg)
    doomed = icfg.add_node(NopNode(icfg.new_id(), "main"))
    icfg.add_edge(icfg.procs["main"].entries[0], doomed.id, EdgeKind.CALL)
    assert not context.in_sync(icfg)
    restored = snapshot.restore()
    context.rollback(restored)
    assert context.in_sync(restored)
    assert context.summary_count() > 0  # nothing was invalidated

    # And the surviving cache still answers exactly: a cache-assisted
    # re-analysis of a later branch agrees with a cache-free one.
    with_cache = analyze_branch(restored, branches[1], config,
                                context=context)
    fresh = analyze_branch(restored, branches[1], config)
    assert with_cache.stats.summary_cache_hits > 0
    assert with_cache.has_correlation == fresh.has_correlation
    assert with_cache.branch_answers == fresh.branch_answers


def test_branch_node_alone_does_not_dirty_other_procs():
    icfg = two_proc_graph()
    base = icfg.generation
    icfg.add_node(BranchNode(icfg.new_id(), "main", Const(1)))
    assert icfg.dirty_procs_since(base) == {"main"}
