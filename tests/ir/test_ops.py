import pytest

from repro.ir.ops import (RelOp, eval_binary, eval_convert, eval_unary)


def test_relop_evaluation_matrix():
    cases = [
        (RelOp.EQ, 3, 3, True), (RelOp.EQ, 3, 4, False),
        (RelOp.NE, 3, 4, True), (RelOp.NE, 3, 3, False),
        (RelOp.LT, 2, 3, True), (RelOp.LT, 3, 3, False),
        (RelOp.LE, 3, 3, True), (RelOp.LE, 4, 3, False),
        (RelOp.GT, 4, 3, True), (RelOp.GT, 3, 3, False),
        (RelOp.GE, 3, 3, True), (RelOp.GE, 2, 3, False),
    ]
    for relop, a, b, expected in cases:
        assert relop.evaluate(a, b) is expected


def test_negated_is_complement_for_all_values():
    for relop in RelOp:
        for a in range(-2, 3):
            for b in range(-2, 3):
                assert relop.evaluate(a, b) != relop.negated().evaluate(a, b)


def test_swapped_flips_operand_order():
    for relop in RelOp:
        for a in range(-2, 3):
            for b in range(-2, 3):
                assert relop.evaluate(a, b) == relop.swapped().evaluate(b, a)


def test_from_symbol_roundtrip():
    for relop in RelOp:
        assert RelOp.from_symbol(relop.value) is relop


def test_arithmetic_operators():
    assert eval_binary("+", 2, 3) == 5
    assert eval_binary("-", 2, 3) == -1
    assert eval_binary("*", -2, 3) == -6


def test_division_truncates_toward_zero_like_c():
    assert eval_binary("/", 7, 2) == 3
    assert eval_binary("/", -7, 2) == -3
    assert eval_binary("/", 7, -2) == -3
    assert eval_binary("/", -7, -2) == 3


def test_modulo_sign_follows_dividend():
    assert eval_binary("%", 7, 3) == 1
    assert eval_binary("%", -7, 3) == -1
    assert eval_binary("%", 7, -3) == 1


def test_division_and_modulo_by_zero_are_total():
    assert eval_binary("/", 5, 0) == 0
    assert eval_binary("%", 5, 0) == 0


def test_logical_operators_yield_zero_one():
    assert eval_binary("&&", 2, 3) == 1
    assert eval_binary("&&", 2, 0) == 0
    assert eval_binary("||", 0, 0) == 0
    assert eval_binary("||", 0, 7) == 1


def test_relational_binary_yields_zero_one():
    assert eval_binary("<", 1, 2) == 1
    assert eval_binary(">=", 1, 2) == 0


def test_unknown_binary_operator_rejected():
    with pytest.raises(ValueError):
        eval_binary("**", 1, 2)


def test_unary_operators():
    assert eval_unary("-", 5) == -5
    assert eval_unary("!", 0) == 1
    assert eval_unary("!", 9) == 0
    with pytest.raises(ValueError):
        eval_unary("~", 1)


def test_convert_masks_to_unsigned_byte():
    assert eval_convert(0) == 0
    assert eval_convert(255) == 255
    assert eval_convert(256) == 0
    assert eval_convert(-1) == 255
    assert 0 <= eval_convert(-12345) <= 255
