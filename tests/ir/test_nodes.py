from repro.ir.expr import BinaryExpr, Const, VarExpr, VarId
from repro.ir.nodes import (AssignNode, BranchNode, CallExitNode, CallNode,
                            EntryNode, ExitNode, NopNode, PrintNode,
                            StoreNode)

X = VarId.local("f", "x")


def test_executability_classification():
    assert AssignNode(0, "f", X, Const(1)).is_executable
    assert BranchNode(0, "f", Const(1)).is_executable
    assert StoreNode(0, "f", Const(1), Const(2)).is_executable
    assert PrintNode(0, "f", Const(1)).is_executable
    assert CallNode(0, "f").is_executable
    assert not EntryNode(0, "f").is_executable
    assert not ExitNode(0, "f").is_executable
    assert not NopNode(0, "f").is_executable
    assert not CallExitNode(0, "f").is_executable


def test_defined_var():
    assert AssignNode(0, "f", X, Const(1)).defined_var() == X
    assert CallExitNode(0, "f", result=X).defined_var() == X
    assert CallExitNode(0, "f").defined_var() is None
    assert BranchNode(0, "f", Const(1)).defined_var() is None


def test_copy_with_id_is_deep_enough():
    call = CallNode(1, "f", callee="g", args=[VarExpr(X)], entry_id=9,
                    return_map={5: 6})
    copy = call.copy_with_id(42)
    assert copy.id == 42
    copy.return_map[7] = 8
    copy.args.append(Const(0))
    assert call.return_map == {5: 6}
    assert len(call.args) == 1


def test_labels_are_informative():
    assert "x := 1" in AssignNode(0, "f", X, Const(1)).label()
    assert "if" in BranchNode(0, "f", VarExpr(X)).label()
    assert "call g(" in CallNode(0, "f", callee="g").label()
    assert "$ret" in CallExitNode(0, "f", result=X).label()
    assert "entry f" == EntryNode(0, "f").label()
    assert "exit f" == ExitNode(0, "f").label()


def test_used_exprs_cover_operands():
    store = StoreNode(0, "f", VarExpr(X), BinaryExpr("+", Const(1),
                                                     Const(2)))
    assert len(store.used_exprs()) == 2
    call = CallNode(0, "f", callee="g", args=[Const(1), Const(2)])
    assert len(call.used_exprs()) == 2
    assert EntryNode(0, "f").used_exprs() == []
