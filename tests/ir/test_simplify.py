from tests.helpers import FGETC_LIKE, build, check_equivalent

from repro.ir import verify_icfg
from repro.ir.nodes import NopNode
from repro.ir.simplify import simplify_nops


def nop_count(icfg):
    return sum(1 for n in icfg.iter_nodes() if isinstance(n, NopNode))


def test_simplify_removes_forwarding_nops_and_preserves_semantics():
    icfg = build(FGETC_LIKE)
    original = icfg.clone()
    removed = simplify_nops(icfg)
    assert removed > 0
    verify_icfg(icfg)
    check_equivalent(original, icfg, [[], [3, 0], [1, 5, 0]])


def test_simplify_is_idempotent():
    icfg = build(FGETC_LIKE)
    simplify_nops(icfg)
    again = simplify_nops(icfg)
    assert again == 0


def test_simplify_keeps_diamond_joins_that_would_duplicate_edges():
    # if/else whose arms are empty: the branch reaches the join nop on
    # both edges.  Bypassing the single arm nops is fine; the graph
    # must stay verifier-clean whatever is removed.
    icfg = build("""
        proc main() {
            var x = input();
            if (x == 1) { } else { }
            print x;
        }
    """)
    original = icfg.clone()
    simplify_nops(icfg)
    verify_icfg(icfg)
    check_equivalent(original, icfg, [[1], [2]])


def test_simplify_handles_loops():
    icfg = build("""
        proc main() {
            var i = 0;
            while (i < 3) {
                i = i + 1;
            }
            print i;
        }
    """)
    original = icfg.clone()
    simplify_nops(icfg)
    verify_icfg(icfg)
    check_equivalent(original, icfg, [[]])
    assert nop_count(icfg) < nop_count(original)


def test_executable_count_unchanged():
    icfg = build(FGETC_LIKE)
    before = icfg.executable_node_count()
    simplify_nops(icfg)
    assert icfg.executable_node_count() == before


def test_optimizer_pipeline_simplifies_by_default():
    from repro.transform import ICBEOptimizer, OptimizerOptions
    icfg = build(FGETC_LIKE)
    with_simplify = ICBEOptimizer(OptimizerOptions()).optimize(icfg)
    without = ICBEOptimizer(
        OptimizerOptions(simplify=False)).optimize(icfg)
    assert (nop_count(with_simplify.optimized)
            <= nop_count(without.optimized))
    check_equivalent(with_simplify.optimized, without.optimized,
                     [[], [2, 0]])
