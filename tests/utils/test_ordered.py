from repro.utils.ordered import OrderedSet


def test_preserves_insertion_order():
    items = OrderedSet(["b", "a", "c", "a"])
    assert list(items) == ["b", "a", "c"]


def test_add_reports_novelty():
    items = OrderedSet()
    assert items.add(1) is True
    assert items.add(1) is False
    assert len(items) == 1


def test_discard_and_remove():
    items = OrderedSet([1, 2, 3])
    items.discard(2)
    items.discard(99)  # absent: no error
    assert list(items) == [1, 3]
    items.remove(1)
    assert list(items) == [3]


def test_remove_missing_raises():
    import pytest
    with pytest.raises(KeyError):
        OrderedSet().remove("ghost")


def test_pop_first_is_fifo():
    items = OrderedSet(["x", "y"])
    assert items.pop_first() == "x"
    assert items.pop_first() == "y"
    assert not items


def test_update_and_contains():
    items = OrderedSet([1])
    items.update([2, 3])
    assert 3 in items and 0 not in items


def test_copy_is_independent():
    items = OrderedSet([1, 2])
    copy = items.copy()
    copy.add(3)
    assert 3 not in items


def test_equality_with_sets_ignores_order():
    assert OrderedSet([3, 1]) == {1, 3}
    assert OrderedSet([1]) == OrderedSet([1])
    assert OrderedSet([1]) != OrderedSet([2])


def test_bool_and_len():
    assert not OrderedSet()
    assert len(OrderedSet("ab")) == 2
