from repro.utils.worklist import Worklist


def test_fifo_order():
    work = Worklist([1, 2, 3])
    assert [work.pop(), work.pop(), work.pop()] == [1, 2, 3]


def test_duplicates_suppressed_while_queued():
    work = Worklist()
    assert work.push("a") is True
    assert work.push("a") is False
    assert len(work) == 1


def test_requeue_after_pop_allowed():
    work = Worklist(["a"])
    work.pop()
    assert work.push("a") is True


def test_total_pushed_counts_successful_pushes_only():
    work = Worklist()
    work.push(1)
    work.push(1)
    work.pop()
    work.push(1)
    assert work.total_pushed == 2


def test_contains_reflects_queued_state():
    work = Worklist([5])
    assert 5 in work
    work.pop()
    assert 5 not in work


def test_bool_conversion():
    work = Worklist()
    assert not work
    work.push(0)
    assert work
