"""The durable-I/O layer: atomic writes, journal appends, fault gates."""

import errno
import json
import os

import pytest

from repro import obs
from repro.utils import durafs
from repro.utils.durafs import (AppendFile, Filesystem, FsFaultPlan,
                                FsFaultSpec, SimulatedCrash,
                                atomic_write_bytes, atomic_write_json,
                                atomic_write_text, parse_size, safe_scan,
                                sweep_orphans)

SITE = "test.site"


def _no_debris(directory):
    """No temp files or evict markers survive outside a crash."""
    return [name for name in os.listdir(directory)
            if ".tmp." in name or name.endswith(".evict")] == []


# ---------------------------------------------------------------------------
# Happy paths.
# ---------------------------------------------------------------------------


def test_atomic_write_roundtrip(tmp_path):
    path = str(tmp_path / "sub" / "entry.json")   # parent dir auto-created
    assert atomic_write_json(path, {"b": 2, "a": 1}, site=SITE)
    with open(path, encoding="utf-8") as handle:
        assert json.load(handle) == {"a": 1, "b": 2}
    # Canonical bytes: sorted keys, compact separators.
    assert open(path, "rb").read() == b'{"a":1,"b":2}'
    assert _no_debris(str(tmp_path / "sub"))


def test_atomic_write_overwrites_atomically(tmp_path):
    path = str(tmp_path / "entry.txt")
    assert atomic_write_text(path, "first", site=SITE)
    assert atomic_write_text(path, "second", site=SITE)
    assert open(path, encoding="utf-8").read() == "second"
    assert _no_debris(str(tmp_path))


def test_append_file_accumulates_and_survives_reopen(tmp_path):
    path = str(tmp_path / "log.jsonl")
    handle = AppendFile(path, site=SITE, fresh=True)
    handle.append("one\n")
    handle.append("two\n")
    handle.close()
    assert handle.closed
    reopened = AppendFile(path, site=SITE)        # append mode
    reopened.append("three\n")
    reopened.close()
    assert open(path, encoding="utf-8").read() == "one\ntwo\nthree\n"
    fresh = AppendFile(path, site=SITE, fresh=True)   # truncates
    fresh.close()
    assert open(path, encoding="utf-8").read() == ""


def test_safe_scan_sorts_filters_and_never_raises(tmp_path):
    for name in ("b.json", "a.json", "c.txt"):
        (tmp_path / name).write_text("x")
    assert safe_scan(str(tmp_path), site=SITE) == ["a.json", "b.json",
                                                   "c.txt"]
    assert safe_scan(str(tmp_path), site=SITE,
                     suffix=".json") == ["a.json", "b.json"]
    assert safe_scan(str(tmp_path / "missing"), site=SITE) == []


def test_obs_counters_track_writes_and_appends(tmp_path):
    with obs.session() as active:
        atomic_write_text(str(tmp_path / "a"), "x", site=SITE)
        handle = AppendFile(str(tmp_path / "log"), site=SITE, fresh=True)
        handle.append("y\n")
        handle.close()
        counters = active.metrics.snapshot()["counters"]
    assert counters["fsio.writes"] == 1
    assert counters["fsio.appends"] == 1
    assert "fsio.write_errors" not in counters


# ---------------------------------------------------------------------------
# The fault plan.
# ---------------------------------------------------------------------------


def test_fault_spec_validates_op_and_action():
    with pytest.raises(ValueError):
        FsFaultSpec(SITE, op="chmod")
    with pytest.raises(ValueError):
        FsFaultSpec(SITE, action="explode")


def test_errno_fault_is_best_effort_false_and_cleans_up(tmp_path):
    plan = FsFaultPlan.erroring(SITE, op="write")
    fs = Filesystem(plan)
    path = str(tmp_path / "entry.json")
    with obs.session() as active:
        assert not atomic_write_json(path, {"k": 1}, site=SITE, fs=fs)
        counters = active.metrics.snapshot()["counters"]
    assert counters["fsio.write_errors"] == 1
    assert not os.path.exists(path)
    assert _no_debris(str(tmp_path))              # temp file reclaimed
    assert [f.action for f in plan.fired] == ["errno"]


def test_must_write_reraises_the_original_errno(tmp_path):
    fs = Filesystem(FsFaultPlan.erroring(SITE, op="fsync",
                                         err=errno.EIO))
    path = str(tmp_path / "entry.json")
    with pytest.raises(OSError) as caught:
        atomic_write_json(path, {"k": 1}, site=SITE, fs=fs, must=True)
    assert caught.value.errno == errno.EIO
    assert not os.path.exists(path)
    assert _no_debris(str(tmp_path))


def test_faults_key_on_site_and_op(tmp_path):
    # A write fault at another site never fires here.
    fs = Filesystem(FsFaultPlan.erroring("other.site", op="write"))
    assert atomic_write_text(str(tmp_path / "a"), "x", site=SITE, fs=fs)
    # A rename fault does not trip the write that precedes it.
    fs = Filesystem(FsFaultPlan.erroring(SITE, op="rename"))
    assert not atomic_write_text(str(tmp_path / "b"), "x", site=SITE,
                                 fs=fs)
    assert not os.path.exists(str(tmp_path / "b"))


def test_exact_hit_counts(tmp_path):
    # hit=2: the first write succeeds, the second fails, the third
    # succeeds again (the spec fired and is spent).
    fs = Filesystem(FsFaultPlan([FsFaultSpec(SITE, "write", hit=2)]))
    results = [atomic_write_text(str(tmp_path / f"f{i}"), "x",
                                 site=SITE, fs=fs) for i in range(3)]
    assert results == [True, False, True]


def test_hit_zero_fires_forever(tmp_path):
    # hit=0 models a persistently failing device: every hit fires.
    fs = Filesystem(FsFaultPlan([FsFaultSpec(SITE, "write", hit=0)]))
    results = [atomic_write_text(str(tmp_path / f"f{i}"), "x",
                                 site=SITE, fs=fs) for i in range(4)]
    assert results == [False] * 4
    assert len(fs.plan.fired) == 4


def test_plan_reset_rearms(tmp_path):
    plan = FsFaultPlan.erroring(SITE, op="write")
    fs = Filesystem(plan)
    assert not atomic_write_text(str(tmp_path / "a"), "x", site=SITE,
                                 fs=fs)
    assert atomic_write_text(str(tmp_path / "b"), "x", site=SITE, fs=fs)
    plan.reset()
    assert not atomic_write_text(str(tmp_path / "c"), "x", site=SITE,
                                 fs=fs)


# ---------------------------------------------------------------------------
# Crash faults: SimulatedCrash is unswallowable and leaves real debris.
# ---------------------------------------------------------------------------


def test_crash_before_rename_leaves_orphan_and_no_target(tmp_path):
    fs = Filesystem(FsFaultPlan.crashing(SITE, op="rename"))
    path = str(tmp_path / "entry.json")
    with pytest.raises(SimulatedCrash):
        atomic_write_json(path, {"k": 1}, site=SITE, fs=fs)
    assert not os.path.exists(path)               # target never appeared
    orphans = [name for name in os.listdir(str(tmp_path))
               if ".tmp." in name]
    assert len(orphans) == 1                      # the debris a real
    assert orphans[0].startswith("entry.json.tmp.")   # crash leaves


def test_simulated_crash_is_not_an_oserror():
    # No `except OSError` recovery path may swallow a crash.
    assert not issubclass(SimulatedCrash, Exception)
    assert issubclass(SimulatedCrash, BaseException)


def test_torn_write_persists_prefix_then_crashes(tmp_path):
    path = str(tmp_path / "log.jsonl")
    handle = AppendFile(path, site=SITE,
                        fs=Filesystem(FsFaultPlan.tearing(SITE,
                                                          keep_bytes=3)),
                        fresh=True)
    with pytest.raises(SimulatedCrash):
        handle.append('{"type":"job"}\n')
    assert open(path, "rb").read() == b'{"t'      # the classic torn tail


def test_lying_fsync_loses_bytes_at_the_next_crash(tmp_path):
    path = str(tmp_path / "log.jsonl")
    plan = FsFaultPlan([FsFaultSpec(SITE, "fsync", hit=2,
                                    action="lying-fsync"),
                        FsFaultSpec(SITE, "write", hit=3,
                                    action="crash")])
    handle = AppendFile(path, site=SITE, fs=Filesystem(plan), fresh=True)
    handle.append("durable\n")                    # honest fsync
    handle.append("volatile\n")                   # fsync lies
    with pytest.raises(SimulatedCrash):
        handle.append("never\n")                  # crash: cache lost
    assert open(path, "rb").read() == b"durable\n"


def test_honest_fsync_clears_a_previous_lie(tmp_path):
    path = str(tmp_path / "log.jsonl")
    plan = FsFaultPlan([FsFaultSpec(SITE, "fsync", hit=1,
                                    action="lying-fsync"),
                        FsFaultSpec(SITE, "write", hit=3,
                                    action="crash")])
    handle = AppendFile(path, site=SITE, fs=Filesystem(plan), fresh=True)
    handle.append("one\n")                        # fsync lies...
    handle.append("two\n")                        # ...then syncs honestly
    with pytest.raises(SimulatedCrash):
        handle.append("never\n")
    assert open(path, "rb").read() == b"one\ntwo\n"


# ---------------------------------------------------------------------------
# Orphan sweeping.
# ---------------------------------------------------------------------------


def test_sweep_respects_the_ttl(tmp_path):
    fresh = tmp_path / "entry.json.tmp.12345"
    stale = tmp_path / "old.json.tmp.99"
    for f in (fresh, stale):
        f.write_text("debris")
    now = os.stat(str(stale)).st_mtime + durafs.ORPHAN_TTL_S + 1
    os.utime(str(fresh), (now - 10, now - 10))    # 10s old: a live writer
    swept = sweep_orphans(str(tmp_path), site=SITE, now=now)
    assert swept == 1
    assert fresh.exists() and not stale.exists()


def test_sweep_reclaims_evict_markers_unconditionally(tmp_path):
    marker = tmp_path / "deadbeef.evict"
    entry = tmp_path / "cafef00d.json"
    marker.write_text("half-evicted")
    entry.write_text("live entry")
    # now == mtime: zero age, yet the marker goes (phase one of the
    # two-phase delete already unlinked it from its readable name).
    swept = sweep_orphans(str(tmp_path), site=SITE,
                          now=os.stat(str(marker)).st_mtime)
    assert swept == 1
    assert not marker.exists() and entry.exists()


def test_sweep_counts_in_obs(tmp_path):
    (tmp_path / "a.evict").write_text("x")
    (tmp_path / "b.evict").write_text("x")
    with obs.session() as active:
        assert sweep_orphans(str(tmp_path), site=SITE) == 2
        counters = active.metrics.snapshot()["counters"]
    assert counters["fsio.orphans_swept"] == 2


def test_sweep_of_a_missing_directory_is_zero(tmp_path):
    assert sweep_orphans(str(tmp_path / "nope"), site=SITE) == 0


# ---------------------------------------------------------------------------
# parse_size.
# ---------------------------------------------------------------------------


def test_parse_size_suffixes():
    assert parse_size("4096") == 4096
    assert parse_size("64k") == 64 * 1024
    assert parse_size("64M") == 64 * 1024 ** 2
    assert parse_size(" 1g ") == 1024 ** 3
    assert parse_size("0") == 0


@pytest.mark.parametrize("bad", ["", "lots", "12q", "-5", "1.5m"])
def test_parse_size_rejects_garbage(bad):
    with pytest.raises(ValueError):
        parse_size(bad)
