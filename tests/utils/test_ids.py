from repro.utils.ids import IdAllocator


def test_allocates_consecutive_ids():
    ids = IdAllocator()
    assert [ids.allocate() for _ in range(4)] == [0, 1, 2, 3]


def test_custom_start():
    ids = IdAllocator(10)
    assert ids.allocate() == 10


def test_reserve_through_skips_used_ids():
    ids = IdAllocator()
    ids.reserve_through(5)
    assert ids.allocate() == 6


def test_reserve_through_below_watermark_is_noop():
    ids = IdAllocator()
    ids.allocate()
    ids.allocate()
    ids.reserve_through(0)
    assert ids.allocate() == 2


def test_next_id_peeks_without_allocating():
    ids = IdAllocator()
    assert ids.next_id == 0
    assert ids.allocate() == 0


def test_clone_continues_independently():
    ids = IdAllocator()
    ids.allocate()
    other = ids.clone()
    assert other.allocate() == 1
    assert ids.allocate() == 1  # original not affected by the clone
