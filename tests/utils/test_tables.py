import pytest

from repro.utils.tables import render_markdown_table, render_table


def test_renders_title_and_alignment():
    text = render_table(["name", "count"], [["alpha", 10], ["b", 2]],
                        title="Demo")
    lines = text.splitlines()
    assert lines[0] == "Demo"
    # Text column left-aligned, numeric column right-aligned.
    assert "| alpha |    10 |" in text
    assert "| b     |     2 |" in text


def test_floats_render_with_two_decimals():
    text = render_table(["x"], [[1.2345]])
    assert "1.23" in text


def test_none_renders_as_dash():
    text = render_table(["x"], [[None]])
    assert "| -" in text


def test_mismatched_row_width_rejected():
    with pytest.raises(ValueError):
        render_table(["a", "b"], [[1]])


def test_empty_rows_render_header_only():
    text = render_table(["only"], [])
    assert "only" in text


def test_markdown_table_shape():
    text = render_markdown_table(["a", "b"], [[1, 2]])
    lines = text.splitlines()
    assert lines[0] == "| a | b |"
    assert lines[1] == "|---|---|"
    assert lines[2] == "| 1 | 2 |"
