"""Fidelity tests: the paper's own worked examples, reproduced exactly.

Each test encodes a figure from the paper as a MiniC program and checks
that our analysis/transformation produces the outcome the paper
describes for it.
"""

import re

from tests.helpers import build, check_equivalent

from repro.analysis import AnalysisConfig, analyze_branch
from repro.analysis.rollback import answers_at
from repro.interp import Workload, run_icfg
from repro.ir.nodes import BranchNode
from repro.transform import ICBEOptimizer, OptimizerOptions

CONFIG = AnalysisConfig(budget=100_000)


def branch_matching(icfg, fragment):
    return [n for n in icfg.iter_nodes() if isinstance(n, BranchNode)
            and fragment in re.sub(r"\w+::", "", n.label())][0]


# -- Figure 5: interprocedural correlation analysis ------------------------
#
# The paper's example: conditional P tests a global x after a call to
# procedure f.  Inside f, one path assigns x an unknown value (node F,
# resolving the summary query to UNDEF) and another path is transparent
# (TRANS).  In the caller, the paths before the call assign x an
# unknown value (node A -> UNDEF) or a non-zero constant (node B ->
# FALSE).  The rollback at P therefore collects {UNDEF, FALSE}: UNDEF
# from F and from A-through-TRANS, FALSE from B-through-TRANS.

FIGURE5 = """
global x = 0;

proc f(c) {
    if (c > 0) {
        x = input();          // node F: x := unknown  -> UNDEF
    }
    return 0;                 // other path: f transparent for x -> TRANS
}

proc main() {
    var c = input();
    if (c == 0) {
        x = input();          // node A: unknown       -> UNDEF
    } else {
        x = 5;                // node B: x := 5        -> FALSE for x==0
    }
    var r = f(c);             // node C/D: call and call-site exit
    if (x == 0) { print 1; }  // node P: the analyzed conditional
}
"""


def test_figure5_answer_set():
    icfg = build(FIGURE5)
    branch = branch_matching(icfg, "x == 0")
    result = analyze_branch(icfg, branch.id, CONFIG)
    kinds = {a.kind for a in result.branch_answers}
    assert kinds == {"undef", "false"}
    assert result.has_correlation and not result.fully_correlated


def test_figure5_summary_node_answers():
    icfg = build(FIGURE5)
    branch = branch_matching(icfg, "x == 0")
    result = analyze_branch(icfg, branch.id, CONFIG)
    engine = result.engine
    exit_id = icfg.procs["f"].exits[0]
    summary_queries = [q for q in engine.raised.get(exit_id, ())
                       if q.is_summary]
    assert len(summary_queries) == 1
    summary_answers = answers_at(result.answers, exit_id,
                                 summary_queries[0])
    kinds = {("trans" if a.is_trans else a.kind) for a in summary_answers}
    # Exactly the paper's Figure 5(b): the summary resolves to UNDEF at
    # node F and TRANS at the entry.
    assert kinds == {"undef", "trans"}


def test_figure7_restructuring_outcome():
    """Figure 7: splitting C, D, and f's exit separates the correlated
    (FALSE) path so the copy of P on it disappears."""
    icfg = build(FIGURE5)
    optimizer = ICBEOptimizer(OptimizerOptions(config=CONFIG))
    report = optimizer.optimize(icfg)
    check_equivalent(icfg, report.optimized,
                     [[0, 1], [3, 9], [0, -2], [7, 0]])
    # Exit splitting happened on f (the paper's figure splits node G).
    assert len(report.optimized.procs["f"].exits) >= 2
    # On the correlated path — node B (c != 0, so x = 5) followed by
    # the transparent path through f (c <= 0) — P never executes.
    run = run_icfg(report.optimized, Workload([-2, 1]))
    executed_p = sum(
        count for node_id, count in run.profile.node_counts.items()
        if isinstance(report.optimized.nodes.get(node_id), BranchNode)
        and "x == 0" in report.optimized.nodes[node_id].label())
    assert executed_p == 0


# -- Figure 6: intraprocedural loop restructuring ---------------------------
#
# "our restructuring techniques take advantage of correlation that
# spans nested loops.  Our algorithm is able to create two versions of
# a loop, one for each known outcome of the conditional."

FIGURE6 = """
proc main() {
    var c = input();
    var x = 0;
    if (c > 0) { x = 1; }
    var i = 0;
    while (i < 6) {
        if (x == 0) { print 0; } else { print 1; }
        i = i + 1;
    }
}
"""


def test_figure6_two_loop_versions():
    icfg = build(FIGURE6)
    optimizer = ICBEOptimizer(OptimizerOptions(config=CONFIG))
    report = optimizer.optimize(icfg)
    check_equivalent(icfg, report.optimized, [[4], [-4], [0]])
    optimized = report.optimized
    # The loop test (i < 6) now exists in two copies - one per version
    # of the loop - while the x test is gone from both.
    loop_tests = [n for n in optimized.iter_nodes()
                  if isinstance(n, BranchNode) and "i <" in n.label()]
    x_tests = [n for n in optimized.iter_nodes()
               if isinstance(n, BranchNode) and "x ==" in n.label()]
    assert len(loop_tests) == 2
    assert len(x_tests) == 0


# -- Figure 1/2: see examples/stdio_loop.py, executed by the example tests.
