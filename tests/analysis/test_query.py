from repro.analysis.query import Query
from repro.ir.expr import VarId
from repro.ir.ops import RelOp


X = VarId.local("f", "x")
W = VarId.local("f", "w")


def test_holds_for_concrete_values():
    query = Query(X, RelOp.LT, 5)
    assert query.holds_for(4)
    assert not query.holds_for(5)


def test_substitution_copy_keeps_constant():
    query = Query(X, RelOp.EQ, 3)
    assert query.substituted(W) == Query(W, RelOp.EQ, 3)


def test_substitution_offset_adjusts_constant():
    # Crossing x := w + 2 turns (x < 5) into (w < 3).
    query = Query(X, RelOp.LT, 5)
    assert query.substituted(W, 2) == Query(W, RelOp.LT, 3)


def test_substitution_preserves_summary_tag():
    query = Query(X, RelOp.EQ, 0, summary_exit=7)
    assert query.substituted(W).summary_exit == 7


def test_summary_tagging_roundtrip():
    plain = Query(X, RelOp.NE, 0)
    tagged = plain.as_summary(3)
    assert tagged.is_summary and tagged.summary_exit == 3
    assert tagged.as_plain() == plain
    assert plain.as_plain() is plain


def test_queries_are_value_hashable():
    assert Query(X, RelOp.EQ, 1) == Query(X, RelOp.EQ, 1)
    assert len({Query(X, RelOp.EQ, 1), Query(X, RelOp.EQ, 1)}) == 1
    assert Query(X, RelOp.EQ, 1) != Query(X, RelOp.EQ, 1).as_summary(2)


def test_sort_key_total_order():
    queries = [Query(X, RelOp.EQ, 2), Query(W, RelOp.EQ, 1),
               Query(X, RelOp.EQ, 1).as_summary(5), Query(X, RelOp.NE, 1)]
    ordered = sorted(queries, key=Query.sort_key)
    assert len(ordered) == 4


def test_str_rendering():
    assert str(Query(X, RelOp.LE, -1)) == "(f::x <= -1)"
    assert "@exit9" in str(Query(X, RelOp.LE, -1, summary_exit=9))
