from repro.analysis.config import (ALL_SOURCES, AnalysisConfig,
                                   CorrelationSource, DEFAULT_BUDGET,
                                   PAPER_SOURCES)


def test_default_config_enables_everything():
    config = AnalysisConfig()
    assert config.interprocedural
    assert config.budget == DEFAULT_BUDGET
    assert config.sources == ALL_SOURCES
    assert config.copy_substitution
    assert not config.offset_substitution  # paper-faithful default


def test_paper_implementation_preset():
    config = AnalysisConfig.paper_implementation()
    assert config.sources == PAPER_SOURCES
    assert config.has(CorrelationSource.CONSTANT_ASSIGNMENT)
    assert config.has(CorrelationSource.BRANCH_ASSERTION)
    assert not config.has(CorrelationSource.POINTER_DEREFERENCE)
    assert not config.has(CorrelationSource.UNSIGNED_CONVERSION)


def test_mode_presets():
    assert AnalysisConfig.interprocedural_default().interprocedural
    assert not AnalysisConfig.intraprocedural_default().interprocedural
    assert AnalysisConfig.intraprocedural_default(budget=7).budget == 7


def test_config_is_immutable():
    import dataclasses
    import pytest
    config = AnalysisConfig()
    with pytest.raises(dataclasses.FrozenInstanceError):
        config.budget = 5
