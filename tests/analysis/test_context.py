"""The shared analysis context: interning, memoization, invalidation."""

from tests.helpers import build

from repro.analysis import AnalysisConfig, analyze_branch
from repro.analysis.context import AnalysisContext
from repro.analysis.facts import ValueSet
from repro.analysis.query import Query
from repro.ir.expr import VarId
from repro.ir.nodes import NopNode

CONFIG = AnalysisConfig(budget=100_000)

SOURCE = """
    global err = 0;
    proc may_fail(v) {
        if (v < 0) { err = 1; return 0; }
        err = 0;
        return v;
    }
    proc wrapper(v) {
        return may_fail(v);
    }
    proc main() {
        var a = wrapper(input());
        if (err == 1) { print 1; }
        var b = wrapper(input());
        if (err == 1) { print 2; }
        if (err == 0) { print 3; }
    }
"""


def bound_context(icfg):
    context = AnalysisContext()
    context.bind(icfg)
    return context


def main_branches(icfg):
    return [b.id for b in icfg.branch_nodes() if b.proc == "main"]


def test_interning_returns_the_canonical_instance():
    icfg = build(SOURCE)
    context = bound_context(icfg)
    a = Query(VarId(None, "err"), "==", 1)
    b = Query(VarId(None, "err"), "==", 1)
    assert a is not b
    assert context.intern_query(a) is context.intern_query(b) is a
    va = ValueSet.from_relop("==", 1)
    assert (context.intern_value_set(va)
            is context.intern_value_set(ValueSet.from_relop("==", 1)))


def test_second_branch_hits_the_summary_cache():
    icfg = build(SOURCE)
    context = bound_context(icfg)
    branches = main_branches(icfg)
    first = analyze_branch(icfg, branches[0], CONFIG, context=context)
    assert first.stats.summary_cache_hits == 0
    assert context.summary_count() > 0
    second = analyze_branch(icfg, branches[1], CONFIG, context=context)
    assert second.stats.summary_cache_hits > 0
    # And the cached run agrees exactly with a cache-free one.
    fresh = analyze_branch(icfg, branches[1], CONFIG)
    assert second.branch_answers == fresh.branch_answers


def test_cached_analysis_examines_fewer_pairs():
    icfg = build(SOURCE)
    context = bound_context(icfg)
    branches = main_branches(icfg)
    analyze_branch(icfg, branches[0], CONFIG, context=context)
    cached = analyze_branch(icfg, branches[1], CONFIG, context=context)
    fresh = analyze_branch(icfg, branches[1], CONFIG)
    assert cached.stats.pairs_examined < fresh.stats.pairs_examined


def test_commit_with_clean_graph_invalidates_nothing():
    icfg = build(SOURCE)
    context = bound_context(icfg)
    analyze_branch(icfg, main_branches(icfg)[0], CONFIG, context=context)
    stored = context.summary_count()
    context.commit(icfg)
    assert context.summary_count() == stored
    assert context.in_sync(icfg)


def test_commit_invalidates_summaries_reaching_dirty_procs():
    icfg = build(SOURCE)
    context = bound_context(icfg)
    analyze_branch(icfg, main_branches(icfg)[0], CONFIG, context=context)
    assert context.summary_count() > 0
    # Dirty the innermost callee: every summary's closure reaches it
    # (wrapper -> may_fail), so everything is dropped.
    icfg.add_node(NopNode(icfg.new_id(), "may_fail"))
    context.commit(icfg)
    assert context.summary_count() == 0
    assert context.stats.summary_invalidated > 0
    assert context.in_sync(icfg)


def test_commit_keeps_summaries_of_untouched_closures():
    icfg = build(SOURCE)
    context = bound_context(icfg)
    analyze_branch(icfg, main_branches(icfg)[0], CONFIG, context=context)
    stored = context.summary_count()
    assert stored > 0
    # main is no summary's dependency (summaries live in callees).
    icfg.add_node(NopNode(icfg.new_id(), "main"))
    context.commit(icfg)
    assert context.summary_count() == stored


def test_preserved_summaries_survive_a_dirtying_commit():
    icfg = build(SOURCE)
    context = bound_context(icfg)
    analyze_branch(icfg, main_branches(icfg)[0], CONFIG, context=context)
    stored = context.summary_count()
    icfg.add_node(NopNode(icfg.new_id(), "may_fail"))
    context.commit(icfg, preserves=frozenset({AnalysisContext.SUMMARIES}))
    assert context.summary_count() == stored


def test_out_of_sync_context_stands_aside():
    icfg = build(SOURCE)
    context = bound_context(icfg)
    analyze_branch(icfg, main_branches(icfg)[0], CONFIG, context=context)
    icfg.add_node(NopNode(icfg.new_id(), "main"))  # no commit
    assert not context.in_sync(icfg)
    q = Query(VarId(None, "err"), "==", 1)
    assert context.lookup_summary(icfg, "wrapper", 0, q) is None
    # And an analysis given the stale context simply runs uncached.
    result = analyze_branch(icfg, main_branches(icfg)[1], CONFIG,
                            context=context)
    assert result.stats.summary_cache_hits == 0


def test_disabled_context_never_syncs():
    icfg = build(SOURCE)
    context = AnalysisContext(enabled=False)
    context.bind(icfg)
    assert not context.in_sync(icfg)


def test_rollback_to_the_cached_generation_keeps_everything():
    icfg = build(SOURCE)
    context = bound_context(icfg)
    analyze_branch(icfg, main_branches(icfg)[0], CONFIG, context=context)
    stored = context.summary_count()
    context.rollback(icfg)  # generation unchanged
    assert context.summary_count() == stored
    assert context.in_sync(icfg)


def test_memoized_mod_sets_and_call_graph_count_reuses():
    icfg = build(SOURCE)
    context = bound_context(icfg)
    first = context.mod_sets(icfg)
    assert context.mod_sets(icfg) is first
    graph = context.callees_of(icfg)
    assert context.callees_of(icfg) is graph
    assert "may_fail" in graph["wrapper"]
    assert context.stats.modref_reuses >= 2


def test_branch_index_is_cached_and_sorted():
    icfg = build(SOURCE)
    context = bound_context(icfg)
    ids = context.branch_ids(icfg)
    assert ids == sorted(b.id for b in icfg.branch_nodes())
    assert context.branch_ids(icfg) is ids
    assert context.stats.index_reuses == 1
