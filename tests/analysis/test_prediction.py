from tests.helpers import build

from repro.analysis import AnalysisConfig
from repro.analysis.prediction import (baseline_predictions,
                                       evaluate_predictor, predict_all,
                                       predict_branch)
from repro.interp import Workload, run_icfg

CONFIG = AnalysisConfig(budget=50_000)


def test_fully_correlated_single_outcome_is_certain():
    icfg = build("""
        proc main() {
            var x = 1;
            if (x == 1) { print 1; }
        }
    """)
    branch = icfg.branch_nodes()[0]
    prediction = predict_branch(icfg, branch.id, CONFIG)
    assert prediction.taken is True
    assert prediction.source == "correlation"
    assert prediction.certain


def test_partial_correlation_predicts_known_direction():
    icfg = build("""
        proc main() {
            var c = input();
            var x = 0;
            if (c > 0) { x = 5; }
            if (x == 3) { print 1; }
        }
    """)
    # x is 0 or 5: never 3 on correlated paths -> predict not-taken.
    branch = [b for b in icfg.branch_nodes() if "x == 3" in b.label()][0]
    prediction = predict_branch(icfg, branch.id, CONFIG)
    assert prediction.taken is False
    assert prediction.source == "correlation"


def test_uncorrelated_branch_falls_back_to_baseline():
    icfg = build("""
        proc main() {
            var x = input();
            if (x == 3) { print 1; }
        }
    """)
    prediction = predict_branch(icfg, icfg.branch_nodes()[0].id, CONFIG)
    assert prediction.source == "baseline"
    assert not prediction.certain


def test_certain_predictions_are_always_right():
    source = """
        proc classify(v) {
            if (v <= 0) { return -1; }
            return (unsigned) v;
        }
        proc main() {
            var i = 0;
            while (i < 6) {
                var r = classify(input());
                if (r >= -1) { print r; }
                i = i + 1;
            }
        }
    """
    icfg = build(source)
    profile = run_icfg(icfg, Workload([2, -3, 4, 0, 1, 7])).profile
    for branch_id, prediction in predict_all(icfg, CONFIG).items():
        if not prediction.certain:
            continue
        wrong = (profile.branch_false.get(branch_id, 0) if prediction.taken
                 else profile.branch_true.get(branch_id, 0))
        assert wrong == 0, f"certain prediction missed at {branch_id}"


def test_correlation_hints_beat_baseline_on_suite_program():
    from repro.benchgen.suite import load_benchmark
    from repro.ir import lower_program
    bench = load_benchmark("li_like")
    icfg = lower_program(bench.program)
    profile = run_icfg(icfg, bench.workload).profile

    assisted = evaluate_predictor(predict_all(icfg, CONFIG), profile)
    baseline = evaluate_predictor(baseline_predictions(icfg), profile)
    assert assisted.executed == baseline.executed
    assert assisted.accuracy >= baseline.accuracy
    # Certain hints (outcome known on every path) are perfectly
    # accurate by analysis soundness.
    assert assisted.hint_executed > 0
    assert assisted.hint_accuracy == 1.0


def test_evaluate_skips_never_executed_branches():
    icfg = build("""
        proc main() {
            var x = input();
            if (x == 99999) { if (x == 1) { print 1; } }
        }
    """)
    profile = run_icfg(icfg, Workload([0])).profile
    score = evaluate_predictor(predict_all(icfg, CONFIG), profile)
    assert score.executed == 1  # only the outer branch ran
