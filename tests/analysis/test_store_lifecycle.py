"""The store lifecycle: quota, two-phase eviction, health, degradation."""

import json
import os

import pytest

from tests.helpers import build

from repro.analysis import AnalysisConfig, analyze_branch
from repro.analysis.context import AnalysisContext
from repro.analysis.store import (HEALTH_DISABLED, HEALTH_HEALTHY,
                                  HEALTH_READ_ONLY, STORE_FORMAT,
                                  SummaryStore, enforce_quota,
                                  lifecycle_maintenance)
from repro.utils.durafs import (Filesystem, FsFaultPlan, FsFaultSpec,
                                SimulatedCrash)

CONFIG = AnalysisConfig(budget=100_000)

SOURCE = """
    global err = 0;
    proc may_fail(v) {
        if (v < 0) { err = 1; return 0; }
        err = 0;
        return v;
    }
    proc main() {
        var a = may_fail(input());
        if (err == 1) { print 1; }
    }
"""


def analyze_all(icfg, store=None):
    """One analysis pass over main's branches, store optionally attached."""
    context = AnalysisContext()
    context.bind(icfg)
    if store is not None:
        context.attach_store(store)
    results = []
    for branch in [b.id for b in icfg.branch_nodes() if b.proc == "main"]:
        results.append(analyze_branch(icfg, branch, CONFIG, context=context))
    return [(r.branch_id, r.branch_answers) for r in results]


def _seed_entries(root, sizes):
    """Entry files of controlled size, aged in listed order (oldest first)."""
    os.makedirs(root, exist_ok=True)
    base_ns = 1_600_000_000_000_000_000
    for rank, (name, size) in enumerate(sizes):
        path = os.path.join(root, f"{name}.json")
        with open(path, "wb") as handle:
            handle.write(b"x" * size)
        stamp = base_ns + rank * 1_000_000_000
        os.utime(path, ns=(stamp, stamp))


def _entries(root):
    return sorted(name for name in os.listdir(root)
                  if name.endswith(".json"))


# ---------------------------------------------------------------------------
# Quota enforcement: deterministic, two-phase, crash-safe.
# ---------------------------------------------------------------------------


def test_eviction_is_oldest_first(tmp_path):
    root = str(tmp_path / "store")
    _seed_entries(root, [("old", 100), ("mid", 100), ("new", 100)])
    assert enforce_quota(root, 250) == (1, 2, 200)
    assert _entries(root) == ["mid.json", "new.json"]
    assert enforce_quota(root, 150) == (1, 1, 100)
    assert _entries(root) == ["new.json"]
    # Phase two completed: no markers left behind on the happy path.
    assert not [n for n in os.listdir(root) if n.endswith(".evict")]


def test_eviction_ties_break_on_name(tmp_path):
    root = str(tmp_path / "store")
    _seed_entries(root, [("bbb", 100), ("aaa", 100)])
    stamp = 1_600_000_000_000_000_000
    for name in ("aaa.json", "bbb.json"):       # identical mtime_ns
        os.utime(os.path.join(root, name), ns=(stamp, stamp))
    evicted, _, _ = enforce_quota(root, 100)
    assert evicted == 1
    assert _entries(root) == ["bbb.json"]       # 'aaa' sorts first, goes


def test_no_quota_means_no_eviction(tmp_path):
    root = str(tmp_path / "store")
    _seed_entries(root, [("a", 500), ("b", 500)])
    assert enforce_quota(root, None) == (0, 2, 1000)
    assert len(_entries(root)) == 2


def test_crash_between_eviction_phases_is_recovered_at_next_open(tmp_path):
    root = str(tmp_path / "store")
    _seed_entries(root, [("victim", 100), ("keeper", 100)])
    # A crash fault on phase two (the marker remove) models dying
    # between the rename and the remove: only the .evict marker stays.
    fs = Filesystem(FsFaultPlan.crashing("store.maintenance", op="remove"))
    with pytest.raises(SimulatedCrash):
        enforce_quota(root, 150, fs=fs)
    assert _entries(root) == ["keeper.json"]    # entry already unreadable
    assert [n for n in os.listdir(root)
            if n.endswith(".evict")] == ["victim.evict"]
    # The next open finishes the delete unconditionally.
    report = lifecycle_maintenance(root)
    assert report["orphans_swept"] == 1
    assert sorted(os.listdir(root)) == ["keeper.json"]


def test_save_triggers_eviction_past_the_quota(tmp_path):
    store = SummaryStore(str(tmp_path / "store"), CONFIG, quota_bytes=100)
    payload = [{"kind": "true"}]
    entry_bytes = len(json.dumps({"format": STORE_FORMAT,
                                  "answers": payload},
                                 sort_keys=True, separators=(",", ":")))
    assert entry_bytes * 3 > 100 >= entry_bytes * 2
    for key in ("k1", "k2", "k3", "k4"):
        store.save(key, payload)
    assert store.stats.stores == 4
    assert store.stats.evictions >= 1
    survivors = _entries(str(tmp_path / "store"))
    assert len(survivors) * entry_bytes <= 100


# ---------------------------------------------------------------------------
# Open-time maintenance.
# ---------------------------------------------------------------------------


def test_open_sweeps_stale_orphans(tmp_path):
    root = str(tmp_path / "store")
    os.makedirs(root)
    orphan = os.path.join(root, "dead.json.tmp.424242")
    with open(orphan, "w") as handle:
        handle.write("crashed writer debris")
    os.utime(orphan, (1, 1))                    # ancient
    store = SummaryStore(root, CONFIG)
    assert store.stats.orphans_swept == 1
    assert not os.path.exists(orphan)


def test_maintain_false_skips_lifecycle_work(tmp_path):
    root = str(tmp_path / "store")
    os.makedirs(root)
    orphan = os.path.join(root, "dead.json.tmp.424242")
    with open(orphan, "w") as handle:
        handle.write("debris")
    os.utime(orphan, (1, 1))
    _seed_entries(root, [("a", 400), ("b", 400)])
    store = SummaryStore(root, CONFIG, quota_bytes=100, maintain=False)
    assert store.stats.orphans_swept == 0
    assert store.stats.evictions == 0
    assert os.path.exists(orphan)               # untouched
    assert len(_entries(root)) == 2             # quota not enforced


# ---------------------------------------------------------------------------
# The health state machine.
# ---------------------------------------------------------------------------


def test_consecutive_write_failures_park_the_store_read_only(tmp_path):
    # hit=0: every write fails — a persistently full disk.
    fs = Filesystem(FsFaultPlan([FsFaultSpec("store.entry", "write",
                                             hit=0)]))
    store = SummaryStore(str(tmp_path / "store"), CONFIG, fs=fs)
    payload = [{"kind": "true"}]
    for index in range(5):
        store.save(f"key{index}", payload)
    assert store.health == HEALTH_READ_ONLY
    assert store.stats.io_errors == 3           # attempts stop at the limit
    assert store.stats.stores == 0


def test_one_success_resets_the_write_failure_streak(tmp_path):
    fs = Filesystem(FsFaultPlan([FsFaultSpec("store.entry", "write", hit=1),
                                 FsFaultSpec("store.entry", "write",
                                             hit=2)]))
    store = SummaryStore(str(tmp_path / "store"), CONFIG, fs=fs)
    payload = [{"kind": "true"}]
    store.save("k1", payload)                   # fails (streak 1)
    store.save("k2", payload)                   # fails (streak 2)
    store.save("k3", payload)                   # succeeds: streak resets
    store.save("k4", payload)
    assert store.health == HEALTH_HEALTHY
    assert store.stats.io_errors == 2
    assert store.stats.stores == 2


def test_read_only_store_still_serves_hits(tmp_path):
    root = str(tmp_path / "store")
    warm = SummaryStore(root, CONFIG)
    warm.save("cached", [{"kind": "true"}])
    fs = Filesystem(FsFaultPlan([FsFaultSpec("store.entry", "write",
                                             hit=0)]))
    store = SummaryStore(root, CONFIG, fs=fs)
    for index in range(3):
        store.save(f"key{index}", [{"kind": "true"}])
    assert store.health == HEALTH_READ_ONLY
    assert store.load("cached") == [{"kind": "true"}]   # reads still work
    assert store.stats.hits == 1


def test_consecutive_read_failures_disable_the_store(tmp_path):
    root = str(tmp_path / "store")
    store = SummaryStore(root, CONFIG)
    store.save("good", [{"kind": "true"}])
    # A directory where an entry file should be raises IsADirectoryError
    # (an OSError that is not FileNotFoundError) — a failing device as
    # far as the health machine is concerned.
    for name in ("sick1", "sick2", "sick3"):
        os.makedirs(os.path.join(root, f"{name}.json"))
    for name in ("sick1", "sick2", "sick3"):
        assert store.load(name) is None
    assert store.health == HEALTH_DISABLED
    # Disabled: even a perfectly good entry is an instant miss, and the
    # probe never touches the (presumed failing) disk again.
    misses_before = store.stats.misses
    assert store.load("good") is None
    assert store.stats.misses == misses_before + 1


def test_garbage_content_is_a_reject_not_a_health_event(tmp_path):
    root = str(tmp_path / "store")
    store = SummaryStore(root, CONFIG)
    for index in range(5):
        path = os.path.join(root, f"garbage{index}.json")
        with open(path, "w") as handle:
            handle.write("{torn")
        assert store.load(f"garbage{index}") is None
    assert store.health == HEALTH_HEALTHY       # content != device failure
    assert store.stats.rejects == 5
    assert store.stats.io_errors == 0


# ---------------------------------------------------------------------------
# The degradation contract: a sick store only ever costs misses.
# ---------------------------------------------------------------------------


def test_enospc_storm_answers_match_store_off(tmp_path):
    baseline = analyze_all(build(SOURCE))       # no store at all
    fs = Filesystem(FsFaultPlan([FsFaultSpec("store.entry", "write",
                                             hit=0)]))
    sick_store = SummaryStore(str(tmp_path / "store"), CONFIG, fs=fs)
    sick = analyze_all(build(SOURCE), sick_store)
    assert sick == baseline                     # zero wrong answers
    assert sick_store.stats.stores == 0         # nothing persisted
    assert sick_store.stats.io_errors > 0       # and nothing hidden
