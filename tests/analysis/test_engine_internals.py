"""White-box tests of the analysis engine's bookkeeping: dispositions,
summary-node entries, TRANS records, and continuation tables."""

from tests.helpers import build

from repro.analysis import AnalysisConfig
from repro.analysis.driver import analyze_branch
from repro.analysis.engine import (CallExitDisposition, DecidedDisposition,
                                   PerEdgeDisposition)
from repro.ir.nodes import BranchNode, CallExitNode, EntryNode

CONFIG = AnalysisConfig(budget=100_000)


def analyze(source, fragment):
    icfg = build(source)
    import re
    branch = [n for n in icfg.iter_nodes() if isinstance(n, BranchNode)
              and fragment in re.sub(r"\w+::", "", n.label())][0]
    result = analyze_branch(icfg, branch.id, CONFIG)
    return icfg, result


GLOBAL_FLAG = """
    global err = 0;
    proc may_fail(v) {
        if (v < 0) { err = 1; return 0; }
        err = 0;
        return v;
    }
    proc main() {
        var r = may_fail(input());
        if (err == 1) { print -1; }
    }
"""


def test_call_exit_gets_summary_disposition():
    icfg, result = analyze(GLOBAL_FLAG, "err == 1")
    engine = result.engine
    call_exits = [n.id for n in icfg.iter_nodes()
                  if isinstance(n, CallExitNode)]
    summary_dispositions = [
        d for (nid, _q), d in engine.dispositions.items()
        if nid in call_exits and isinstance(d, CallExitDisposition)
        and d.summary_query is not None]
    assert summary_dispositions, "the global query must use a summary"
    disposition = summary_dispositions[0]
    assert disposition.exit_id in icfg.procs["may_fail"].exits
    assert disposition.summary_query.is_summary
    assert disposition.outer_tag is None


def test_summary_query_confined_to_callee():
    icfg, result = analyze(GLOBAL_FLAG, "err == 1")
    engine = result.engine
    for node_id, queries in engine.raised.items():
        node = icfg.nodes[node_id]
        for query in queries:
            if query.is_summary:
                exit_node = icfg.nodes[query.summary_exit]
                assert node.proc == exit_node.proc, (
                    f"summary query {query} leaked into {node.proc}")


def test_no_trans_for_flag_setter():
    # may_fail writes err on every path, so no transparent path exists
    # and no continuation is raised at the call node.
    icfg, result = analyze(GLOBAL_FLAG, "err == 1")
    assert result.engine.cont_table == {}


def test_transparent_callee_populates_cont_table():
    source = """
        global g = 0;
        proc noop(v) { return v; }
        proc main() {
            g = 2;
            var r = noop(5);
            if (g == 2) { print 1; }
        }
    """
    icfg, result = analyze(source, "g == 2")
    engine = result.engine
    assert len(engine.cont_table) == 1
    (call_id, variant, outer_tag), continuation = \
        next(iter(engine.cont_table.items()))
    assert outer_tag is None
    assert variant.var.is_global
    # The continuation is the plain query raised at the call node.
    from repro.analysis.query import Query
    assert isinstance(continuation, Query)
    assert not continuation.is_summary
    assert (call_id, continuation) in engine.dispositions


def test_entry_disposition_covers_every_call_site():
    source = """
        proc f(p) {
            if (p > 0) { print 1; }
            return 0;
        }
        proc main() {
            var a = f(1);
            var b = f(input());
            var c = f(-2);
        }
    """
    icfg, result = analyze(source, "p > 0")
    engine = result.engine
    entry_id = icfg.procs["f"].entries[0]
    hosted = list(engine.raised[entry_id])
    assert len(hosted) == 1
    disposition = engine.dispositions[(entry_id, hosted[0])]
    assert isinstance(disposition, PerEdgeDisposition)
    assert len(disposition.contribs) == 3  # one per call site
    # Constant arguments resolve on the CALL edge itself; the input()
    # argument is hoisted to a temp, so that edge carries a rewritten
    # query on the caller's temp instead.
    edge_answers = sorted(c.answer.kind for c in disposition.contribs
                          if c.answer is not None)
    assert edge_answers == ["false", "true"]
    forwarded = [c.pred_query for c in disposition.contribs
                 if c.pred_query is not None]
    assert len(forwarded) == 1
    assert forwarded[0].var.scope == "main"
    # And rollback merges all three into the branch's answers.
    kinds = {a.kind for a in result.branch_answers}
    assert kinds == {"true", "false", "undef"}


def test_decided_disposition_for_constant_assignment():
    source = """
        proc main() {
            var x = 3;
            if (x == 3) { print 1; }
        }
    """
    icfg, result = analyze(source, "x == 3")
    engine = result.engine
    decided = [d for d in engine.dispositions.values()
               if isinstance(d, DecidedDisposition) and d.answer.is_known]
    assert len(decided) == 1
    assert decided[0].answer.kind == "true"


def test_same_summary_reused_across_call_sites_of_same_exit():
    source = """
        global g = 0;
        proc setg(v) { g = 7; return v; }
        proc main() {
            var a = setg(1);
            if (g == 7) { print 1; }
            var b = setg(2);
            if (g == 7) { print 2; }
        }
    """
    icfg = build(source)
    import re
    branches = [n for n in icfg.iter_nodes() if isinstance(n, BranchNode)
                and "g == 7" in re.sub(r"\w+::", "", n.label())]
    result = analyze_branch(icfg, branches[0].id, CONFIG)
    # One summary entry suffices (there is one exit and one relation).
    assert result.stats.summary_entries_created == 1


def test_entry_of_main_resolves_against_global_initializers():
    source = """
        global mode = 4;
        proc main() {
            if (mode == 4) { print 1; }
        }
    """
    icfg, result = analyze(source, "mode == 4")
    engine = result.engine
    entry_id = icfg.procs["main"].entries[0]
    hosted = list(engine.raised[entry_id])
    disposition = engine.dispositions[(entry_id, hosted[0])]
    assert isinstance(disposition, DecidedDisposition)
    assert disposition.answer.kind == "true"
