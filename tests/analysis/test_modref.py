from tests.helpers import build

from repro.analysis.modref import (call_graph, direct_mod_sets,
                                   transitive_mod_sets)
from repro.ir.expr import VarId


SOURCE = """
global a = 0;
global b = 0;
global c = 0;

proc leaf_writes_a() { a = 1; return 0; }
proc middle() { var x = leaf_writes_a(); b = 2; return x; }
proc reads_only() { return a + b; }
proc binds_result() { c = reads_only(); return c; }
proc main() {
    var r = middle();
    var s = binds_result();
    print r + s;
}
"""

A, B, C = (VarId.global_(n) for n in "abc")


def test_direct_mod_sets():
    mods = direct_mod_sets(build(SOURCE))
    assert mods["leaf_writes_a"] == {A}
    assert mods["middle"] == {B}
    assert mods["reads_only"] == set()
    assert mods["binds_result"] == {C}  # via the call-exit binding
    assert mods["main"] == set()


def test_call_graph_edges():
    graph = call_graph(build(SOURCE))
    assert graph["middle"] == {"leaf_writes_a"}
    assert graph["binds_result"] == {"reads_only"}
    assert graph["main"] == {"middle", "binds_result"}
    assert graph["leaf_writes_a"] == set()


def test_transitive_closure():
    mods = transitive_mod_sets(build(SOURCE))
    assert mods["middle"] == {A, B}
    assert mods["binds_result"] == {C}
    assert mods["main"] == {A, B, C}


def test_recursion_reaches_fixpoint():
    source = """
        global g = 0;
        proc ping(n) { if (n > 0) { var x = pong(n - 1); } return 0; }
        proc pong(n) { g = n; if (n > 0) { var y = ping(n - 1); } return 0; }
        proc main() { var r = ping(3); }
    """
    mods = transitive_mod_sets(build(source))
    g = VarId.global_("g")
    assert g in mods["ping"]
    assert g in mods["pong"]
    assert g in mods["main"]


def test_local_assignments_do_not_count():
    source = """
        global g = 0;
        proc pure(n) { var t = n * 2; return t; }
        proc main() { print pure(2); }
    """
    mods = transitive_mod_sets(build(source))
    assert mods["pure"] == set()
