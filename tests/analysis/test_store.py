"""The on-disk, content-addressed summary store."""

import json
import os

from tests.helpers import build

from repro.analysis import AnalysisConfig, analyze_branch
from repro.analysis.answers import FALSE, TRUE, answer_set, trans
from repro.analysis.context import AnalysisContext
from repro.analysis.query import Query
from repro.analysis.store import (STORE_FORMAT, SummaryStore,
                                  canonical_closure_text, closure_locals,
                                  config_fingerprint, decode_answers,
                                  decode_query, encode_answers, encode_query)
from repro.ir.expr import VarId
from repro.ir.ops import RelOp

CONFIG = AnalysisConfig(budget=100_000)

SOURCE = """
    global err = 0;
    proc may_fail(v) {
        if (v < 0) { err = 1; return 0; }
        err = 0;
        return v;
    }
    proc wrapper(v) {
        return may_fail(v);
    }
    proc main() {
        var a = wrapper(input());
        if (err == 1) { print 1; }
        var b = wrapper(input());
        if (err == 1) { print 2; }
    }
"""


def analyze_all(icfg, store):
    """One full analysis pass over main's branches, store attached."""
    context = AnalysisContext()
    context.bind(icfg)
    context.attach_store(store)
    results = []
    for branch in [b.id for b in icfg.branch_nodes() if b.proc == "main"]:
        results.append(analyze_branch(icfg, branch, CONFIG, context=context))
    return [(r.branch_id, r.branch_answers) for r in results]


def test_cold_run_populates_warm_run_hits(tmp_path):
    root = str(tmp_path / "store")
    icfg = build(SOURCE)
    cold_store = SummaryStore(root, CONFIG)
    cold = analyze_all(icfg, cold_store)
    assert cold_store.stats.stores > 0
    assert cold_store.entry_count() == cold_store.stats.stores

    # A fresh process (modelled by a fresh graph + context) hits.
    warm_icfg = build(SOURCE)
    warm_store = SummaryStore(root, CONFIG)
    warm = analyze_all(warm_icfg, warm_store)
    assert warm_store.stats.hits > 0
    assert warm_store.stats.stores == 0        # nothing new to learn
    assert warm == cold                        # identical answers


def test_corrupt_entries_are_misses_not_crashes(tmp_path):
    root = str(tmp_path / "store")
    icfg = build(SOURCE)
    baseline = analyze_all(icfg, SummaryStore(root, CONFIG))
    entries = [os.path.join(root, name) for name in os.listdir(root)]
    assert entries
    # Mangle every entry a different way: torn JSON, garbage bytes,
    # wrong format stamp, wrong payload shape.
    mutations = ['{"format": 1, "answers": [',
                 "\x00\x01not json at all",
                 json.dumps({"format": STORE_FORMAT + 1, "answers": []}),
                 json.dumps({"format": STORE_FORMAT, "answers": "nope"})]
    for index, path in enumerate(sorted(entries)):
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(mutations[index % len(mutations)])

    poisoned = SummaryStore(root, CONFIG)
    warm = analyze_all(build(SOURCE), poisoned)
    assert warm == baseline
    assert poisoned.stats.hits == 0
    assert poisoned.stats.rejects > 0


def test_unresolvable_references_are_rejected(tmp_path):
    """An entry whose node references do not decode against this graph
    (e.g. written by a different program that collided somehow) is a
    reject, not a crash and not a hit."""
    root = str(tmp_path / "store")
    icfg = build(SOURCE)
    store = SummaryStore(root, CONFIG)
    analyze_all(icfg, store)
    for name in os.listdir(root):
        path = os.path.join(root, name)
        payload = {"format": STORE_FORMAT,
                   "answers": [{"kind": "trans", "entry": ["no_such", 99],
                                "query": {"var": [None, "x"], "relop": "==",
                                          "const": 0}}]}
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
    poisoned = SummaryStore(root, CONFIG)
    warm = analyze_all(build(SOURCE), poisoned)
    assert warm == analyze_all(build(SOURCE), SummaryStore(
        str(tmp_path / "clean"), CONFIG))
    assert poisoned.stats.hits == 0
    assert poisoned.stats.rejects > 0


def test_budget_is_not_part_of_the_key():
    """Stored entries are exact (only completed analyses persist), so
    runs under different budgets must share them."""
    small = config_fingerprint(AnalysisConfig(budget=10))
    large = config_fingerprint(AnalysisConfig(budget=1_000_000))
    assert small == large
    assert "budget" not in small


def test_semantic_config_changes_the_key(tmp_path):
    base = AnalysisConfig(budget=100)
    assert (config_fingerprint(base)
            != config_fingerprint(AnalysisConfig(budget=100,
                                                 interprocedural=False)))
    icfg = build(SOURCE)
    closure = frozenset(icfg.procs)
    text = canonical_closure_text(icfg, closure)
    query = Query(VarId(None, "err"), "==", 1)
    a = SummaryStore(str(tmp_path / "a"), base)
    b = SummaryStore(str(tmp_path / "b"),
                     AnalysisConfig(budget=100, interprocedural=False))
    assert (a.entry_key(text, "may_fail", 0, query)
            != b.entry_key(text, "may_fail", 0, query))
    # Same config, same everything: same content address.
    assert (a.entry_key(text, "may_fail", 0, query)
            == SummaryStore(str(tmp_path / "c"),
                            AnalysisConfig(budget=7))
            .entry_key(text, "may_fail", 0, query))


def test_closure_text_is_body_sensitive_and_name_stable():
    icfg = build(SOURCE)
    closure = frozenset({"may_fail"})
    text = canonical_closure_text(icfg, closure)
    # Stable across a fresh lowering of the same source (node ids are
    # renumbered locally, so absolute ids cannot leak in).
    assert canonical_closure_text(build(SOURCE), closure) == text
    # Sensitive to the body actually changing.
    changed = build(SOURCE.replace("err = 0;\n        return v;",
                                   "err = 2;\n        return v;"))
    assert canonical_closure_text(changed, closure) != text


def test_save_is_idempotent_and_load_round_trips(tmp_path):
    store = SummaryStore(str(tmp_path / "s"), CONFIG)
    encoded = [["true"], ["false"]]
    store.save("deadbeef", encoded)
    store.save("deadbeef", [["undef"]])        # content-addressed: kept
    assert store.stats.stores == 1
    assert store.entry_count() == 1
    assert store.load("deadbeef") == encoded
    assert store.stats.hits == 1
    assert store.load("cafebabe") is None
    assert store.stats.misses == 1


def test_codec_round_trips_every_answer_kind():
    icfg = build(SOURCE)
    local_of = closure_locals(icfg, frozenset(icfg.procs))
    node_of = {ref: nid for nid, ref in local_of.items()}
    entry = icfg.procs["may_fail"].entries[0]
    exit_id = icfg.procs["may_fail"].exits[0]
    variant = Query(VarId(None, "err"), RelOp.EQ, 1)
    summary = variant.as_summary(exit_id)
    answers = answer_set([TRUE, FALSE, trans(entry, variant)])

    encoded = encode_answers(answers, local_of)
    assert decode_answers(json.loads(json.dumps(encoded)), node_of) == answers
    q_encoded = encode_query(summary, local_of)
    decoded = decode_query(json.loads(json.dumps(q_encoded)), node_of)
    assert decoded == summary
