"""The query cache across conditionals (paper §3.3)."""

from tests.helpers import build

from repro.analysis import AnalysisConfig, analyze_branch
from repro.analysis.engine import CorrelationEngine

CONFIG = AnalysisConfig(budget=100_000)

SOURCE = """
    global err = 0;
    proc may_fail(v) {
        if (v < 0) { err = 1; return 0; }
        err = 0;
        return v;
    }
    proc main() {
        var a = may_fail(input());
        if (err == 1) { print 1; }
        var b = may_fail(input());
        if (err == 1) { print 2; }
        if (err == 0) { print 3; }
    }
"""


def test_shared_engine_produces_identical_answers():
    icfg = build(SOURCE)
    branches = [b.id for b in icfg.branch_nodes()]
    fresh = {bid: analyze_branch(icfg, bid, CONFIG).branch_answers
             for bid in branches}
    shared_engine = CorrelationEngine(icfg, CONFIG)
    shared = {bid: analyze_branch(icfg, bid, CONFIG,
                                  engine=shared_engine).branch_answers
              for bid in branches}
    assert fresh == shared


def test_cache_reduces_pairs_examined():
    icfg = build(SOURCE)
    branches = [b.id for b in icfg.branch_nodes()]
    fresh_pairs = sum(
        analyze_branch(icfg, bid, CONFIG).stats.pairs_examined
        for bid in branches)
    shared_engine = CorrelationEngine(icfg, CONFIG)
    shared_pairs = 0
    hits = 0
    for bid in branches:
        result = analyze_branch(icfg, bid, CONFIG, engine=shared_engine)
        shared_pairs += result.stats.pairs_examined
        hits += result.stats.cache_hits
    assert shared_pairs < fresh_pairs
    assert hits > 0


def test_cache_memory_grows_with_coverage():
    """The paper's downside: the cache accumulates every query ever
    raised (memory), while fresh engines stay per-conditional."""
    icfg = build(SOURCE)
    branches = [b.id for b in icfg.branch_nodes()]
    shared_engine = CorrelationEngine(icfg, CONFIG)
    sizes = []
    for bid in branches:
        analyze_branch(icfg, bid, CONFIG, engine=shared_engine)
        sizes.append(sum(len(qs) for qs in shared_engine.raised.values()))
    assert sizes == sorted(sizes)  # monotone growth
    assert sizes[-1] > sizes[0]


def test_cache_recovers_budget_truncated_pairs():
    icfg = build(SOURCE)
    branches = [b.id for b in icfg.branch_nodes()]
    tiny = AnalysisConfig(budget=3)
    engine = CorrelationEngine(icfg, tiny)
    first = analyze_branch(icfg, branches[0], tiny, engine=engine)
    assert first.stats.budget_exhausted
    # Re-analyzing the same branch continues where the budget stopped.
    second = analyze_branch(icfg, branches[0], tiny, engine=engine)
    third = analyze_branch(icfg, branches[0], tiny, engine=engine)
    exhaustive = analyze_branch(icfg, branches[0], CONFIG)
    for _ in range(50):
        again = analyze_branch(icfg, branches[0], tiny, engine=engine)
        if not again.stats.budget_exhausted:
            break
    assert again.branch_answers == exhaustive.branch_answers
