from tests.helpers import build

from repro.analysis import AnalysisConfig, analyze_branch
from repro.analysis.cost import (duplication_upper_bound,
                                 eliminated_executions_estimate)
from repro.interp import Workload, run_icfg
from repro.ir.nodes import BranchNode

CONFIG = AnalysisConfig(budget=100000)


def analyzed(source, fragment):
    icfg = build(source)
    import re
    branches = [n for n in icfg.iter_nodes() if isinstance(n, BranchNode)
                and fragment in re.sub(r"\w+::", "", n.label())]
    assert branches, fragment
    result = analyze_branch(icfg, branches[0].id, CONFIG)
    return icfg, result


def test_fully_resolved_single_path_needs_no_duplication():
    icfg, result = analyzed("""
        proc main() {
            var x = 1;
            if (x == 1) { print 1; }
        }
    """, "x == 1")
    assert result.fully_correlated
    assert duplication_upper_bound(result) == 0


def test_merge_requires_duplication():
    icfg, result = analyzed("""
        proc main() {
            var c = input();
            var x = 0;
            if (c > 0) { x = 1; }
            print c;
            if (x == 1) { print 1; }
        }
    """, "x == 1")
    # The nodes between the merge point and the test host two answers.
    assert duplication_upper_bound(result) >= 2


def test_unanalyzable_branch_has_zero_bound():
    icfg, result = analyzed("""
        proc main() {
            var a = input(); var b = input();
            if (a == b) { print 1; }
        }
    """, "a == b")
    assert duplication_upper_bound(result) == 0
    assert eliminated_executions_estimate(
        result, run_icfg(icfg, Workload([1, 2])).profile) == 0


def test_benefit_estimate_tracks_resolution_site_frequency():
    source = """
        proc classify(v) {
            if (v <= 0) { return -1; }
            return (unsigned) v;
        }
        proc main() {
            var i = 0;
            while (i < 10) {
                var r = classify(input());
                if (r == -1) { print 0; } else { print r; }
                i = i + 1;
            }
        }
    """
    icfg, result = analyzed(source, "r == -1")
    profile = run_icfg(icfg, Workload([3, -1] * 5)).profile
    estimate = eliminated_executions_estimate(result, profile)
    executed = profile.branch_executions(result.branch_id)
    assert executed == 10
    # Fully correlated through the callee: the estimate should claim
    # (close to) every execution, and never more than were executed.
    assert 0 < estimate <= executed
    assert estimate >= executed // 2


def test_benefit_estimate_capped_by_branch_executions():
    source = """
        proc main() {
            var x = 5;
            var i = 0;
            while (i < 3) {
                if (x == 5) { print 1; }
                i = i + 1;
            }
        }
    """
    icfg, result = analyzed(source, "x == 5")
    profile = run_icfg(icfg, Workload([])).profile
    estimate = eliminated_executions_estimate(result, profile)
    assert estimate <= profile.branch_executions(result.branch_id)
